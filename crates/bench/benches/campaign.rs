//! B4–B9: campaign-level benchmarks — experiment throughput per technique,
//! parallel-runner scaling, journaling overhead, verified-link overhead,
//! health-probe supervision overhead, and telemetry overhead.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use goofi_core::algorithms;
use goofi_core::campaign::{Campaign, Technique};
use goofi_core::fault::{FaultLocation, FaultSpace, FaultSpec};
use goofi_core::journal::ExperimentJournal;
use goofi_core::link::{UnreliableTarget, VerifiedTarget, VerifyConfig};
use goofi_core::monitor::ProgressMonitor;
use goofi_core::preinject;
use goofi_core::runner;
use goofi_core::telemetry::{RingSink, Telemetry, FLIGHT_RECORDER_SPANS};
use goofi_core::trigger::Trigger;
use goofi_thor::ThorTarget;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scanchain::LinkFaultConfig;

fn scifi_campaign(n: usize) -> Campaign {
    let wl = workloads::by_name("bubblesort").unwrap();
    let data = bench::thor_description();
    let space = bench::internal_fault_space(&data, 0..3_000);
    bench::campaign_for("bench-scifi", &wl)
        .faults(space.sample_campaign(n, &mut StdRng::seed_from_u64(42)))
        .build()
        .unwrap()
}

fn swifi_campaign(n: usize) -> Campaign {
    let wl = workloads::by_name("bubblesort").unwrap();
    let space = FaultSpace {
        scan_cells: vec![],
        memory: Some(0..wl.image.words.len() as u32),
        time_window: 0..1,
    };
    let faults: Vec<FaultSpec> = space
        .sample_campaign(n, &mut StdRng::seed_from_u64(43))
        .into_iter()
        .map(|mut f| {
            f.trigger = Trigger::PreRuntime;
            f
        })
        .collect();
    bench::campaign_for("bench-swifi", &wl)
        .technique(Technique::SwifiPreRuntime)
        .faults(faults)
        .build()
        .unwrap()
}

fn bench_techniques(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign-throughput");
    let n = 20;
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);

    let scifi = scifi_campaign(n);
    group.bench_function("scifi_20_experiments", |b| {
        b.iter(|| {
            let mut target = ThorTarget::default();
            algorithms::run_campaign(
                &mut target,
                &scifi,
                &ProgressMonitor::new(n),
                &mut envsim::NullEnvironment,
            )
            .unwrap()
        });
    });

    let swifi = swifi_campaign(n);
    group.bench_function("swifi_20_experiments", |b| {
        b.iter(|| {
            let mut target = ThorTarget::default();
            algorithms::run_campaign(
                &mut target,
                &swifi,
                &ProgressMonitor::new(n),
                &mut envsim::NullEnvironment,
            )
            .unwrap()
        });
    });
    group.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel-scaling");
    let n = 64;
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    let campaign = scifi_campaign(n);
    for workers in [1usize, 2, 4, 8] {
        group.bench_function(format!("workers_{workers}"), |b| {
            b.iter(|| {
                runner::run_campaign_parallel(
                    ThorTarget::default,
                    None::<fn() -> Box<dyn envsim::Environment>>,
                    &campaign,
                    &ProgressMonitor::new(n),
                    workers,
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_journal_overhead(c: &mut Criterion) {
    // B6: cost of crash-safe checkpointing — the same campaign with and
    // without the append-only experiment journal enabled.
    let mut group = c.benchmark_group("journal-overhead");
    let n = 20;
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    let campaign = scifi_campaign(n);

    group.bench_function("serial_plain", |b| {
        b.iter(|| {
            let mut target = ThorTarget::default();
            algorithms::run_campaign(
                &mut target,
                &campaign,
                &ProgressMonitor::new(n),
                &mut envsim::NullEnvironment,
            )
            .unwrap()
        });
    });

    let journal_path =
        std::env::temp_dir().join(format!("goofi-bench-{}.journal", std::process::id()));
    group.bench_function("serial_journaled", |b| {
        b.iter(|| {
            let mut journal = ExperimentJournal::create(&journal_path, &campaign.name).unwrap();
            let mut target = ThorTarget::default();
            algorithms::run_campaign_journaled(
                &mut target,
                &campaign,
                &ProgressMonitor::new(n),
                &mut envsim::NullEnvironment,
                Some(&mut journal),
            )
            .unwrap()
        });
    });

    group.bench_function("parallel4_journaled", |b| {
        b.iter(|| {
            let mut journal = ExperimentJournal::create(&journal_path, &campaign.name).unwrap();
            runner::run_campaign_parallel_journaled(
                ThorTarget::default,
                None::<fn() -> Box<dyn envsim::Environment>>,
                &campaign,
                &ProgressMonitor::new(n),
                4,
                Some(&mut journal),
            )
            .unwrap()
        });
    });
    let _ = std::fs::remove_file(&journal_path);
    group.finish();
}

fn bench_fault_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault-primitives");
    group.bench_function("inject_scan_fault", |b| {
        let mut target = ThorTarget::default();
        goofi_core::TargetAccess::init_test_card(&mut target).unwrap();
        let spec = FaultSpec::single(
            FaultLocation::ScanCell {
                chain: "internal".into(),
                cell: "R5".into(),
                bit: 9,
            },
            Trigger::AfterInstructions(0),
        );
        b.iter(|| algorithms::apply_fault(&mut target, &spec).unwrap());
    });
    group.bench_function("collect_liveness_trace", |b| {
        let campaign = scifi_campaign(1);
        b.iter(|| {
            let mut target = ThorTarget::default();
            preinject::collect_trace(&mut target, &campaign, 5_000, &mut envsim::NullEnvironment)
                .unwrap()
        });
    });
    group.finish();
}

fn bench_verified_link_overhead(c: &mut Criterion) {
    // B7: cost of the verified-transport layer. The baseline is the raw
    // target; the other cases run the same campaign through
    // `VerifiedTarget(UnreliableTarget(..))` at increasing transport fault
    // rates, so the delta decomposes into (a) the fixed double-read /
    // readback-verify tax and (b) the retry-and-recover cost that scales
    // with the fault rate.
    let mut group = c.benchmark_group("verified-link-overhead");
    let n = 20;
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    let campaign = scifi_campaign(n);

    group.bench_function("raw_target", |b| {
        b.iter(|| {
            let mut target = ThorTarget::default();
            algorithms::run_campaign(
                &mut target,
                &campaign,
                &ProgressMonitor::new(n),
                &mut envsim::NullEnvironment,
            )
            .unwrap()
        });
    });

    for (label, rate) in [
        ("verified_fault_free", 0.0),
        ("verified_0.1pct_faults", 0.001),
        ("verified_1pct_faults", 0.01),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let lossy = UnreliableTarget::new(
                    ThorTarget::default(),
                    LinkFaultConfig {
                        seed: 0xB7,
                        corrupt_rate: rate / 2.0,
                        drop_rate: rate / 2.0,
                        ..Default::default()
                    },
                );
                let mut target =
                    VerifiedTarget::with_config(lossy, VerifyConfig { max_attempts: 5 });
                algorithms::run_campaign(
                    &mut target,
                    &campaign,
                    &ProgressMonitor::new(n),
                    &mut envsim::NullEnvironment,
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_supervision_overhead(c: &mut Criterion) {
    // B8: cost of between-experiment health probing on a *healthy* target —
    // the steady-state tax a cautious campaign pays for hang detection. The
    // probe suite is dominated by its golden smoke-workload run, so the
    // expected overhead is roughly one reference run per cadence interval.
    let mut group = c.benchmark_group("supervision-overhead");
    let n = 20;
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    let base = scifi_campaign(n);

    for (label, cadence) in [
        ("probes_off", 0u32),
        ("probe_every_10", 10),
        ("probe_every_5", 5),
        ("probe_every_1", 1),
    ] {
        let mut campaign = base.clone();
        campaign.policy = campaign.policy.clone().with_health_check(cadence);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut target = ThorTarget::default();
                algorithms::run_campaign(
                    &mut target,
                    &campaign,
                    &ProgressMonitor::new(n),
                    &mut envsim::NullEnvironment,
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    // B9: cost of the observability layer on the standard SCIFI campaign.
    // Disabled telemetry is the tax every campaign pays (one `Option`
    // branch per instrumentation point, no clock reads); the enabled cases
    // add the metrics registry alone, then a full in-memory span ring of
    // flight-recorder size.
    let mut group = c.benchmark_group("telemetry-overhead");
    let n = 20;
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    let campaign = scifi_campaign(n);

    let cases: [(&str, fn() -> Telemetry); 3] = [
        ("telemetry_disabled", Telemetry::disabled),
        ("metrics_only", Telemetry::enabled),
        ("metrics_and_ring_trace", || {
            Telemetry::with_sinks(vec![std::sync::Arc::new(RingSink::new(
                FLIGHT_RECORDER_SPANS,
            ))])
        }),
    ];
    for (label, make_tel) in cases {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut target = ThorTarget::default();
                algorithms::run_campaign(
                    &mut target,
                    &campaign,
                    &ProgressMonitor::with_telemetry(n, make_tel()),
                    &mut envsim::NullEnvironment,
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(4));
    targets = bench_techniques, bench_parallel_scaling, bench_journal_overhead, bench_fault_primitives, bench_verified_link_overhead, bench_supervision_overhead, bench_telemetry_overhead
}
criterion_main!(benches);
