//! B1–B3: microbenchmarks of the substrates — scan-chain shift throughput,
//! CPU simulator speed, assembler, and database operations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use goofidb::{Database, Value};
use scanchain::{ScanTarget, TestCard};
use thor::{Cpu, CpuConfig, StopReason};

fn bench_scan_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("scanchain");
    let cpu = Cpu::new(CpuConfig::default());
    let bits = cpu.chain_layout("internal").unwrap().total_bits() as u64;
    group.throughput(Throughput::Elements(bits));
    group.bench_function("read_internal_chain", |b| {
        let mut card = TestCard::new(Cpu::new(CpuConfig::default()));
        card.init().unwrap();
        b.iter(|| card.read_chain("internal").unwrap());
    });
    group.bench_function("write_internal_chain", |b| {
        let mut card = TestCard::new(Cpu::new(CpuConfig::default()));
        card.init().unwrap();
        let image = card.read_chain("internal").unwrap();
        b.iter(|| card.write_chain("internal", &image).unwrap());
    });
    group.bench_function("flip_cell_bit", |b| {
        let mut card = TestCard::new(Cpu::new(CpuConfig::default()));
        card.init().unwrap();
        b.iter(|| card.flip_cell_bit("internal", "R7", 13).unwrap());
    });
    group.finish();
}

fn bench_cpu(c: &mut Criterion) {
    let mut group = c.benchmark_group("thor-cpu");
    for name in ["bubblesort", "crc32", "fibonacci"] {
        let wl = workloads::by_name(name).unwrap();
        // Instruction count of one full run, for throughput reporting.
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&wl.image).unwrap();
        assert_eq!(cpu.run(10_000_000), StopReason::Halted);
        group.throughput(Throughput::Elements(cpu.instructions()));
        group.bench_function(format!("run_{name}"), |b| {
            let mut cpu = Cpu::new(CpuConfig::default());
            cpu.load_image(&wl.image).unwrap();
            b.iter(|| {
                cpu.reset();
                assert_eq!(cpu.run(10_000_000), StopReason::Halted);
            });
        });
    }
    group.bench_function("step_traced", |b| {
        let wl = workloads::by_name("crc32").unwrap();
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&wl.image).unwrap();
        let mut log = thor::AccessLog::default();
        b.iter(|| {
            if cpu.step_logged(&mut log).is_some() {
                cpu.reset();
            }
        });
    });
    group.finish();
}

fn bench_assembler(c: &mut Criterion) {
    let wl = workloads::by_name("matmul").unwrap();
    c.bench_function("assemble_matmul", |b| {
        b.iter(|| thor::asm::assemble(&wl.source).unwrap());
    });
}

fn bench_database(c: &mut Criterion) {
    let mut group = c.benchmark_group("goofidb");
    group.bench_function("insert_100_rows", |b| {
        b.iter_batched(
            || {
                let mut db = Database::new();
                db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, outcome TEXT, cycles INTEGER)")
                    .unwrap();
                db
            },
            |mut db| {
                for i in 0..100 {
                    db.insert(
                        "t",
                        vec![Value::Int(i), Value::text("latent"), Value::Int(i * 7)],
                    )
                    .unwrap();
                }
                db
            },
            BatchSize::SmallInput,
        );
    });

    let mut db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, outcome TEXT, cycles INTEGER)")
        .unwrap();
    for i in 0..1_000 {
        db.insert(
            "t",
            vec![
                Value::Int(i),
                Value::text(["detected", "escaped", "latent", "overwritten"][(i % 4) as usize]),
                Value::Int(i * 3),
            ],
        )
        .unwrap();
    }
    group.bench_function("group_by_1000_rows", |b| {
        b.iter(|| {
            db.query("SELECT outcome, COUNT(*) AS n FROM t GROUP BY outcome ORDER BY n DESC")
                .unwrap()
        });
    });
    group.bench_function("point_select", |b| {
        b.iter(|| db.query("SELECT cycles FROM t WHERE id = 531").unwrap());
    });
    group.bench_function("save_load_roundtrip", |b| {
        b.iter(|| Database::load_from_string(&db.save_to_string()).unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_scan_chain, bench_cpu, bench_assembler, bench_database
}
criterion_main!(benches);
