//! A1 — EDM ablation: the contribution of each error detection mechanism.
//!
//! The analysis phase classifies detected errors "into errors detected by
//! each of the various mechanisms" (§3.4); the natural follow-up question —
//! what does each mechanism buy? — is answered by re-running the same
//! campaign with individual mechanisms disabled (the PSW mask the scan
//! chain exposes).
//!
//! Expected shape: disabling the cache parity collapses detection coverage
//! (it dominates E1); errors that parity caught become silent data
//! corruption — escapes or latents — or get picked up by downstream
//! mechanisms (illegal opcode / control flow) after the corrupt word
//! executes.

use goofi_analysis::stats::CampaignStats;
use goofi_core::algorithms;
use goofi_core::monitor::ProgressMonitor;
use goofi_thor::ThorTarget;
use rand::rngs::StdRng;
use rand::SeedableRng;
use thor::{CpuConfig, EdmSet};

fn main() {
    let n = 400;
    println!("A1: EDM ablation, {n} experiments per configuration\n");
    let data = bench::thor_description();
    let wl = workloads::by_name("crc32").expect("workload exists");

    let probe = bench::campaign_for("a1-probe", &wl)
        .fault(goofi_core::fault::FaultSpec::single(
            goofi_core::fault::FaultLocation::Memory { addr: 0, bit: 0 },
            goofi_core::trigger::Trigger::AfterInstructions(1),
        ))
        .build()
        .unwrap();
    let len = bench::reference_length(&probe);
    let space = bench::full_scifi_space(&data, 0..len);
    let faults = space.sample_campaign(n, &mut StdRng::seed_from_u64(0xA1));
    let campaign = bench::campaign_for("a1", &wl)
        .faults(faults)
        .build()
        .unwrap();

    let configs: Vec<(&str, EdmSet)> = vec![
        ("all mechanisms", EdmSet::all_on()),
        (
            "no cache parity",
            EdmSet {
                parity_i: false,
                parity_d: false,
                ..EdmSet::all_on()
            },
        ),
        (
            "no control flow",
            EdmSet {
                control_flow: false,
                ..EdmSet::all_on()
            },
        ),
        (
            "no illegal opcode",
            EdmSet {
                illegal_opcode: false,
                ..EdmSet::all_on()
            },
        ),
        (
            "no access violation",
            EdmSet {
                access_violation: false,
                ..EdmSet::all_on()
            },
        ),
        (
            "no overflow trap",
            EdmSet {
                overflow: false,
                ..EdmSet::all_on()
            },
        ),
        ("bare CPU (all off)", EdmSet::all_off()),
    ];

    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>12} {:>22}",
        "configuration", "detected", "escaped", "latent", "overwritten", "detection coverage"
    );
    for (label, edm) in configs {
        let mut target = ThorTarget::new(CpuConfig {
            edm,
            ..CpuConfig::default()
        });
        let monitor = ProgressMonitor::new(n);
        let result = algorithms::run_campaign(
            &mut target,
            &campaign,
            &monitor,
            &mut envsim::NullEnvironment,
        )
        .expect("campaign failed");
        let stats: CampaignStats = bench::stats(&result);
        println!(
            "{:<22} {:>9} {:>9} {:>9} {:>12} {:>22}",
            label,
            stats.category_count("detected"),
            stats.category_count("escaped"),
            stats.category_count("latent"),
            stats.category_count("overwritten"),
            stats.detection_coverage().to_percent_string(),
        );
    }
}
