//! B11 — snapshot/restore hot-path speedup.
//!
//! Runs the same E1-class SCIFI campaign (full scan-reachable fault
//! space, seed 0xE1) twice per mode: once on the slow path (every
//! experiment re-downloads the workload and re-executes the pre-trigger
//! prefix) and once on the snapshot path (post-load restore plus
//! monotonic trigger fast-forward). Prints experiments/s for both and the
//! multiplier, and asserts the two paths produce identical records — the
//! speedup is only worth reporting if it is free of behavioural drift.
//!
//! Two configs are timed:
//!
//! * **deep-prefix** (headline): the longest workload (fibonacci), fault
//!   triggers drawn from the last tenth of the run. This is the shape
//!   snapshots exist for — the slow path re-executes ~90% of the workload
//!   before every injection, the fast path restores past it.
//! * **uniform**: bubblesort/crc32/matmul with triggers uniform over the
//!   whole run. Here the post-trigger suffix (which both paths must
//!   execute) bounds the gain, so the multiplier is honest about the
//!   average case.
//!
//! `--quick` shrinks both configs for CI's perf-smoke step; `--per-workload
//! N` and `--workers N` override the defaults (400, 4).

use goofi_core::campaign::Campaign;
use goofi_core::monitor::ProgressMonitor;
use goofi_core::runner;
use goofi_thor::ThorTarget;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0xE1;

#[derive(Clone, Copy)]
enum Window {
    /// Triggers uniform over the whole reference run.
    Uniform,
    /// Triggers drawn from the last tenth of the reference run.
    Late,
}

fn campaigns(names: &[&str], per_workload: usize, window: Window) -> Vec<Campaign> {
    let data = bench::thor_description();
    names
        .iter()
        .map(|name| {
            let wl = workloads::by_name(name).expect("workload exists");
            let probe = bench::campaign_for(&format!("b11-{name}-probe"), &wl)
                .fault(goofi_core::fault::FaultSpec::single(
                    goofi_core::fault::FaultLocation::Memory { addr: 0, bit: 0 },
                    goofi_core::trigger::Trigger::AfterInstructions(1),
                ))
                .build()
                .unwrap();
            let len = bench::reference_length(&probe);
            let range = match window {
                Window::Uniform => 0..len,
                Window::Late => len - len / 10..len,
            };
            let space = bench::full_scifi_space(&data, range);
            bench::campaign_for(&format!("b11-{name}"), &wl)
                .faults(space.sample_campaign(per_workload, &mut StdRng::seed_from_u64(SEED)))
                .build()
                .unwrap()
        })
        .collect()
}

/// Runs every campaign in `mode`, returning (experiments, seconds).
fn run_serial(campaigns: &[Campaign], snapshots: bool) -> (usize, f64) {
    let started = std::time::Instant::now();
    let mut experiments = 0;
    for campaign in campaigns {
        let result = bench::run_opts(campaign, snapshots);
        experiments += result.records.len();
    }
    (experiments, started.elapsed().as_secs_f64())
}

fn run_sharded(campaigns: &[Campaign], workers: usize, snapshots: bool) -> (usize, f64) {
    let started = std::time::Instant::now();
    let mut experiments = 0;
    for campaign in campaigns {
        let monitor = ProgressMonitor::new(campaign.experiment_count());
        let result = runner::run_campaign_parallel_journaled_opts(
            ThorTarget::default,
            None::<fn() -> Box<dyn envsim::Environment>>,
            campaign,
            &monitor,
            workers,
            None,
            snapshots,
        )
        .expect("campaign failed");
        experiments += result.records.len();
    }
    (experiments, started.elapsed().as_secs_f64())
}

/// Identity check plus serial timing for one config; returns the serial
/// multiplier.
fn measure(label: &str, campaigns: &[Campaign]) -> f64 {
    for campaign in campaigns {
        let slow = bench::run_opts(campaign, false);
        let fast = bench::run_opts(campaign, true);
        assert_eq!(
            slow.reference, fast.reference,
            "{}: reference drifted",
            campaign.name
        );
        assert_eq!(
            slow.records, fast.records,
            "{}: records drifted",
            campaign.name
        );
    }
    let (n, slow_s) = run_serial(campaigns, false);
    let (_, fast_s) = run_serial(campaigns, true);
    let speedup = slow_s / fast_s;
    println!(
        "{label:<24} serial ({n} experiments): slow {:7.1} exp/s, snapshot {:7.1} exp/s -> {speedup:5.1}x",
        n as f64 / slow_s,
        n as f64 / fast_s,
    );
    speedup
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut per_workload = 400usize;
    let mut workers = 4usize;
    let mut uniform_names: Vec<&str> = vec!["bubblesort", "crc32", "matmul"];
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                per_workload = 60;
                uniform_names = vec!["crc32"];
                i += 1;
            }
            "--per-workload" => {
                per_workload = args[i + 1].parse().expect("bad --per-workload");
                i += 2;
            }
            "--workers" => {
                workers = args[i + 1].parse().expect("bad --workers");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    println!(
        "B11: snapshot/restore speedup, {per_workload} experiments per workload, seed {SEED:#x}\n"
    );

    let deep = campaigns(&["fibonacci"], per_workload, Window::Late);
    let uniform = campaigns(&uniform_names, per_workload, Window::Uniform);

    let headline = measure("deep-prefix (fibonacci)", &deep);
    measure(&format!("uniform ({})", uniform_names.join("/")), &uniform);
    println!("\nidentity checks passed: snapshot-path records == slow-path records\n");

    let (n, slow_s) = run_sharded(&deep, workers, false);
    let (_, fast_s) = run_sharded(&deep, workers, true);
    println!(
        "deep-prefix sharded x{workers} ({n} experiments): slow {:7.1} exp/s, snapshot {:7.1} exp/s -> {:5.1}x",
        n as f64 / slow_s,
        n as f64 / fast_s,
        slow_s / fast_s,
    );

    bench::emit_bench_json(
        "b11_snapshot_speedup",
        "serial_speedup",
        headline,
        "x",
        SEED,
    );
}
