//! E1 — SCIFI outcome distribution (paper Fig. 2 algorithm + §3.4 taxonomy).
//!
//! Runs the paper's SCIFI algorithm over the full scan-reachable fault
//! space (internal state + both caches) for several workloads and prints
//! the outcome distribution per fault-location class — the table shape of
//! the companion Thor studies (FTCS-28 \[10\], DSN 2001 \[12\]).
//!
//! Expected shape: most faults are non-effective (overwritten/latent);
//! among effective errors the parity-protected caches give near-total
//! detection while register faults escape more often.

use goofi_analysis::report;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let per_workload = 400;
    println!("E1: SCIFI campaigns, {per_workload} experiments per workload\n");
    let data = bench::thor_description();

    let mut all = Vec::new();
    for name in ["bubblesort", "crc32", "matmul"] {
        let wl = workloads::by_name(name).expect("workload exists");
        let campaign_probe = bench::campaign_for(&format!("e1-{name}-probe"), &wl)
            .fault(goofi_core::fault::FaultSpec::single(
                goofi_core::fault::FaultLocation::Memory { addr: 0, bit: 0 },
                goofi_core::trigger::Trigger::AfterInstructions(1),
            ))
            .build()
            .unwrap();
        let len = bench::reference_length(&campaign_probe);

        let space = bench::full_scifi_space(&data, 0..len);
        let faults = space.sample_campaign(per_workload, &mut StdRng::seed_from_u64(0xE1));
        let campaign = bench::campaign_for(&format!("e1-{name}"), &wl)
            .faults(faults)
            .build()
            .unwrap();
        let result = bench::run(&campaign);
        let latencies = goofi_analysis::latency::detection_latencies(&result.records);
        let lat = goofi_analysis::latency::LatencySummary::from_latencies(&latencies);
        let classified = bench::classify(&result);
        println!(
            "-- workload `{name}` ({len} reference instructions) --\n{}",
            report::outcome_table(&goofi_analysis::stats::CampaignStats::from_classified(
                &classified
            ))
        );
        println!(
            "detection latency (instructions): n={} min={} median={} mean={} max={}\n",
            lat.samples, lat.min, lat.median, lat.mean, lat.max,
        );
        all.extend(classified);
    }

    let stats = goofi_analysis::stats::CampaignStats::from_classified(&all);
    println!(
        "{}",
        report::full_report("E1: all workloads combined", &stats)
    );
    bench::emit_bench_json(
        "e1_scifi_outcomes",
        "error_effectiveness",
        stats.effectiveness().proportion,
        "fraction",
        0xE1,
    );
}
