//! E2 — SCIFI vs pre-runtime SWIFI (paper §1/§4; shape from \[10\]).
//!
//! The two techniques reach *different fault spaces*: SCIFI reaches the
//! microarchitectural state (registers, latches, cache bits) through the
//! scan chains; pre-runtime SWIFI reaches only the program/data memory
//! image. This experiment runs both on the same workloads and compares
//! reachable-space sizes and outcome distributions.
//!
//! Expected shape: pre-runtime SWIFI is far more *effective* per fault
//! (every flipped image bit is consumed by the run: code flips trip the
//! illegal-opcode/control-flow detectors, data flips silently corrupt the
//! output and escape), while SCIFI's microarchitectural faults are mostly
//! overwritten but enjoy near-total detection coverage thanks to cache
//! parity — the complementary-technique story of \[10\].

use goofi_analysis::report;
use goofi_analysis::stats::CampaignStats;
use goofi_core::campaign::Technique;
use goofi_core::fault::FaultSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 400;
    println!("E2: SCIFI vs pre-runtime SWIFI, {n} experiments each\n");
    let data = bench::thor_description();
    let wl = workloads::by_name("bubblesort").expect("workload exists");
    let image_words = wl.image.words.len() as u32;

    let probe = bench::campaign_for("e2-probe", &wl)
        .fault(goofi_core::fault::FaultSpec::single(
            goofi_core::fault::FaultLocation::Memory { addr: 0, bit: 0 },
            goofi_core::trigger::Trigger::AfterInstructions(1),
        ))
        .build()
        .unwrap();
    let len = bench::reference_length(&probe);

    // SCIFI: scan-reachable state.
    let scifi_space = bench::full_scifi_space(&data, 0..len);
    let scifi_campaign = bench::campaign_for("e2-scifi", &wl)
        .technique(Technique::Scifi)
        .faults(scifi_space.sample_campaign(n, &mut StdRng::seed_from_u64(0xE2)))
        .build()
        .unwrap();
    let scifi = bench::run(&scifi_campaign);
    let scifi_stats = CampaignStats::from_classified(&bench::classify(&scifi));

    // Pre-runtime SWIFI: the memory image only.
    let swifi_space = FaultSpace {
        scan_cells: vec![],
        memory: Some(0..image_words),
        time_window: 0..1,
    };
    let mut swifi_faults = swifi_space.sample_campaign(n, &mut StdRng::seed_from_u64(0xE2 + 1));
    for f in &mut swifi_faults {
        f.trigger = goofi_core::trigger::Trigger::PreRuntime;
    }
    let swifi_campaign = bench::campaign_for("e2-swifi", &wl)
        .technique(Technique::SwifiPreRuntime)
        .faults(swifi_faults)
        .build()
        .unwrap();
    let swifi = bench::run(&swifi_campaign);
    let swifi_stats = CampaignStats::from_classified(&bench::classify(&swifi));

    println!(
        "reachable fault spaces:\n  SCIFI: {:>9} bits (registers, latches, cache cells)\n  SWIFI: {:>9} bits (memory image of {} words)\n",
        scifi_space.bit_count(),
        swifi_space.bit_count(),
        image_words,
    );
    println!("{}", report::full_report("E2a: SCIFI", &scifi_stats));
    println!(
        "{}",
        report::full_report("E2b: pre-runtime SWIFI", &swifi_stats)
    );

    println!(
        "summary: SCIFI effectiveness {} vs SWIFI {}; SCIFI coverage {} vs SWIFI {}",
        scifi_stats.effectiveness().to_percent_string(),
        swifi_stats.effectiveness().to_percent_string(),
        scifi_stats.detection_coverage().to_percent_string(),
        swifi_stats.detection_coverage().to_percent_string(),
    );
}
