//! E3 — normal vs detail logging mode overhead (paper §3.3).
//!
//! "In normal mode, the system state is logged only when the termination
//! condition is fulfilled. In detail mode the system state is logged …
//! typically after the execution of each machine instruction, which
//! increases the time-overhead."
//!
//! This experiment runs the same campaign in both modes and reports wall
//! time, scan traffic (bits shifted through the test card — the dominant
//! cost on real SCIFI hardware) and log volume.
//!
//! Expected shape: detail mode costs orders of magnitude more in both scan
//! traffic and log volume; normal mode's cost is dominated by the two
//! end-of-run chain reads.

use goofi_core::algorithms;
use goofi_core::logging::LoggingMode;
use goofi_core::monitor::ProgressMonitor;
use goofi_thor::ThorTarget;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let n = 10;
    println!("E3: logging-mode overhead, {n} experiments per mode\n");
    let data = bench::thor_description();
    let wl = workloads::by_name("crc32").expect("workload exists");
    let space = bench::internal_fault_space(&data, 100..2_000);
    let faults = space.sample_campaign(n, &mut StdRng::seed_from_u64(0xE3));

    let mut report_rows = Vec::new();
    for mode in [LoggingMode::Normal, LoggingMode::Detail] {
        let campaign = bench::campaign_for(&format!("e3-{}", mode.encode()), &wl)
            .logging(mode)
            .faults(faults.clone())
            .build()
            .unwrap();
        let mut target = ThorTarget::default();
        let monitor = ProgressMonitor::new(n);
        let started = Instant::now();
        let result = algorithms::run_campaign(
            &mut target,
            &campaign,
            &monitor,
            &mut envsim::NullEnvironment,
        )
        .expect("campaign failed");
        let elapsed = started.elapsed();
        let stats = target.testcard_stats();
        let log_entries: usize = result
            .records
            .iter()
            .map(|r| 1 + r.trace.len())
            .sum::<usize>()
            + 1
            + result.reference.trace.len();
        let log_bytes: usize = result
            .records
            .iter()
            .flat_map(|r| r.trace.iter().chain(std::iter::once(&r.state)))
            .map(|s| s.encode().len())
            .sum();
        report_rows.push((mode, elapsed, stats, log_entries, log_bytes));
    }

    println!(
        "{:<8} {:>12} {:>16} {:>14} {:>14}",
        "mode", "wall time", "scan bits", "log entries", "log bytes"
    );
    for (mode, elapsed, stats, entries, bytes) in &report_rows {
        println!(
            "{:<8} {:>12?} {:>16} {:>14} {:>14}",
            mode.encode(),
            elapsed,
            stats.bits_shifted,
            entries,
            bytes,
        );
    }
    let (_, t_n, s_n, e_n, _) = &report_rows[0];
    let (_, t_d, s_d, e_d, _) = &report_rows[1];
    println!(
        "\noverhead factors (detail / normal): wall time x{:.1}, scan bits x{:.1}, log entries x{:.1}",
        t_d.as_secs_f64() / t_n.as_secs_f64().max(1e-9),
        s_d.bits_shifted as f64 / s_n.bits_shifted.max(1) as f64,
        *e_d as f64 / (*e_n).max(1) as f64,
    );
    println!(
        "\nestimated wall time on 1 MHz TCK hardware: normal {:.2}s, detail {:.2}s per campaign",
        report_rows[0]
            .2
            .estimated_seconds(1e6)
            .expect("1 MHz is a valid TCK"),
        report_rows[1]
            .2
            .estimated_seconds(1e6)
            .expect("1 MHz is a valid TCK"),
    );
}
