//! E4 — pre-injection (liveness) analysis efficiency (paper §4).
//!
//! "The purpose of this analysis is to determine when registers and other
//! fault injection locations hold live data. Injecting a fault into a
//! location that does not hold live data serves no purpose, since the fault
//! will be overwritten."
//!
//! The experiment samples a blind campaign, collects a traced reference
//! run, prunes provably dead injections, and compares: experiments run,
//! effective-error yield, and — crucially — verifies soundness by actually
//! running the pruned experiments and checking that none was effective.
//!
//! Expected shape: a large fraction of blind injections is pruned, the
//! yield of effective errors per executed experiment rises sharply, and no
//! pruned experiment would have been effective.

use goofi_core::preinject::{self, Liveness};
use goofi_thor::ThorTarget;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 500;
    println!("E4: pre-injection analysis, {n} blind experiments\n");
    let data = bench::thor_description();
    let wl = workloads::by_name("matmul").expect("workload exists");

    let probe = bench::campaign_for("e4-probe", &wl)
        .fault(goofi_core::fault::FaultSpec::single(
            goofi_core::fault::FaultLocation::Memory { addr: 0, bit: 0 },
            goofi_core::trigger::Trigger::AfterInstructions(1),
        ))
        .build()
        .unwrap();
    let len = bench::reference_length(&probe);

    // Blind campaign over registers + data memory.
    let mut space = bench::internal_fault_space(&data, 0..len);
    space.memory = Some(0..wl.image.words.len() as u32);
    let faults = space.sample_campaign(n, &mut StdRng::seed_from_u64(0xE4));
    let blind = bench::campaign_for("e4-blind", &wl)
        .faults(faults)
        .build()
        .unwrap();

    // Liveness map from a traced reference run.
    let mut target = ThorTarget::default();
    let trace =
        preinject::collect_trace(&mut target, &blind, 2 * len, &mut envsim::NullEnvironment)
            .expect("trace");
    let map = preinject::LivenessMap::from_trace(&trace);
    println!(
        "reference trace: {} instructions, {} distinct locations accessed",
        map.trace_len(),
        map.location_count(),
    );

    let (kept_campaign, pruned) = preinject::filter_campaign(&blind, &map, false);
    println!(
        "pruned {} of {} experiments as provably dead ({}%)\n",
        pruned.len(),
        n,
        100 * pruned.len() / n,
    );

    // Run both versions.
    let blind_result = bench::run(&blind);
    let blind_stats = bench::stats(&blind_result);
    let kept_result = bench::run(&kept_campaign);
    let kept_stats = bench::stats(&kept_result);

    println!(
        "{:<22} {:>12} {:>12} {:>18}",
        "campaign", "experiments", "effective", "yield (eff/run)"
    );
    for (name, stats) in [("blind", &blind_stats), ("pre-injection", &kept_stats)] {
        println!(
            "{:<22} {:>12} {:>12} {:>17.1}%",
            name,
            stats.total,
            stats.effective(),
            100.0 * stats.effective() as f64 / stats.total.max(1) as f64,
        );
    }

    // Soundness check: run every pruned experiment and verify none was
    // effective (the optimisation must not discard interesting faults).
    let pruned_campaign = {
        let mut c = blind.clone();
        c.name = "e4-pruned".into();
        c.faults = pruned;
        c
    };
    let pruned_result = bench::run(&pruned_campaign);
    let pruned_stats = bench::stats(&pruned_result);
    println!(
        "\nsoundness: {} pruned experiments re-run -> {} effective (must be 0)",
        pruned_stats.total,
        pruned_stats.effective(),
    );
    assert_eq!(
        pruned_stats.effective(),
        0,
        "pre-injection analysis unsound!"
    );

    // Show a few verdict examples.
    println!("\nexample verdicts:");
    for spec in blind.faults.iter().take(5) {
        let verdict = map.spec_liveness(spec);
        println!(
            "  {:<60} {:?}",
            spec.to_string(),
            match verdict {
                Liveness::Live => "live",
                Liveness::Dead => "dead (pruned)",
                Liveness::NeverUsed => "never used again",
                Liveness::Unknown => "unknown (kept)",
            }
        );
    }
}
