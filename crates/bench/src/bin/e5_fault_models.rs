//! E5 — fault models: transient vs permanent vs intermittent (paper §4).
//!
//! The base tool injects single/multiple transient bit flips; §4 lists
//! "support for additional fault models such as intermittent and permanent
//! faults" as an extension. This experiment injects the *same* sampled
//! (location, time) pairs under every model and compares outcomes; a
//! multiple-bit-flip campaign is included as the paper's "multiple
//! transient" case.
//!
//! Expected shape: multiple bit flips are markedly more effective than a
//! single transient flip, intermittent faults add a little over transient,
//! and the stuck-at models split by data polarity — register contents are
//! mostly small non-negative values, so stuck-at-0 frequently asserts a
//! value that is already there (benign), while stuck-at-1 is the most
//! damaging persistent model.

use goofi_analysis::stats::CampaignStats;
use goofi_core::fault::FaultModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 150;
    println!("E5: fault models, {n} experiments per model\n");
    let data = bench::thor_description();
    let wl = workloads::by_name("bubblesort").expect("workload exists");

    let probe = bench::campaign_for("e5-probe", &wl)
        .fault(goofi_core::fault::FaultSpec::single(
            goofi_core::fault::FaultLocation::Memory { addr: 0, bit: 0 },
            goofi_core::trigger::Trigger::AfterInstructions(1),
        ))
        .build()
        .unwrap();
    let len = bench::reference_length(&probe);
    let space = bench::internal_fault_space(&data, 0..len);
    let base = space.sample_campaign(n, &mut StdRng::seed_from_u64(0xE5));

    let models: Vec<(&str, Option<FaultModel>)> = vec![
        ("transient (1 flip)", Some(FaultModel::TransientBitFlip)),
        ("multiple (3 flips)", None), // handled specially below
        (
            "intermittent (x5/100)",
            Some(FaultModel::Intermittent {
                period: 100,
                bursts: 5,
            }),
        ),
        ("stuck-at-0", Some(FaultModel::StuckAtZero)),
        ("stuck-at-1", Some(FaultModel::StuckAtOne)),
    ];

    println!(
        "{:<24} {:>9} {:>9} {:>9} {:>12} {:>14}",
        "model", "detected", "escaped", "latent", "overwritten", "effectiveness"
    );
    for (label, model) in models {
        let faults = match model {
            Some(m) => base
                .iter()
                .cloned()
                .map(|mut f| {
                    f.model = m;
                    f
                })
                .collect(),
            None => space.sample_multi_campaign(n, 3, &mut StdRng::seed_from_u64(0xE5)),
        };
        let campaign = bench::campaign_for(&format!("e5-{label}"), &wl)
            .faults(faults)
            .build()
            .unwrap();
        let result = bench::run(&campaign);
        let stats: CampaignStats = bench::stats(&result);
        println!(
            "{:<24} {:>9} {:>9} {:>9} {:>12} {:>14}",
            label,
            stats.category_count("detected"),
            stats.category_count("escaped"),
            stats.category_count("latent"),
            stats.category_count("overwritten"),
            stats.effectiveness().to_percent_string(),
        );
    }
}
