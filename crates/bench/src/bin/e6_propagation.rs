//! E6 — parentExperiment re-run + error-propagation trace (paper §2.3/§3.3).
//!
//! "Assume that one fault injection experiment E1 shows an interesting
//! result such as a fail-silence violation, and we want to investigate the
//! reason for this violation by re-running the experiment logging the
//! system state after each machine instruction." This experiment automates
//! that workflow: find escaped errors, re-run each in detail mode with the
//! parent link, and print the propagation profile.
//!
//! Expected shape: divergence starts at the injection instruction, the
//! number of corrupted bits grows as the error propagates through
//! registers, and outputs begin to differ strictly after state diverges.

use goofi_analysis::{classify, propagation, Outcome};
use goofi_core::algorithms;
use goofi_core::logging::LoggingMode;
use goofi_thor::ThorTarget;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E6: escaped-error detail re-runs and propagation profiles\n");
    let data = bench::thor_description();
    let wl = workloads::by_name("crc32").expect("workload exists");

    let probe = bench::campaign_for("e6-probe", &wl)
        .fault(goofi_core::fault::FaultSpec::single(
            goofi_core::fault::FaultLocation::Memory { addr: 0, bit: 0 },
            goofi_core::trigger::Trigger::AfterInstructions(1),
        ))
        .build()
        .unwrap();
    let len = bench::reference_length(&probe);
    let space = bench::internal_fault_space(&data, 100..len);
    let faults = space.sample_campaign(300, &mut StdRng::seed_from_u64(0xE6));
    let campaign = bench::campaign_for("e6", &wl)
        .faults(faults)
        .build()
        .unwrap();
    let result = bench::run(&campaign);

    let escaped: Vec<usize> = result
        .records
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(classify(&result.reference, r), Outcome::Escaped { .. }))
        .map(|(i, _)| i)
        .collect();
    println!(
        "campaign: {} experiments, {} escaped errors\n",
        result.records.len(),
        escaped.len(),
    );

    let mut detail_campaign = campaign.clone();
    detail_campaign.logging = LoggingMode::Detail;
    let mut target = ThorTarget::default();
    let detailed_ref =
        algorithms::make_reference_run(&mut target, &detail_campaign, &mut envsim::NullEnvironment)
            .expect("reference");

    println!(
        "{:<22} {:>10} {:>12} {:>10} {:>10}",
        "experiment", "inject@", "diverge@", "peak bits", "peak@"
    );
    for &index in escaped.iter().take(8) {
        let detailed = algorithms::rerun_detailed(
            &mut target,
            &detail_campaign,
            index,
            &mut envsim::NullEnvironment,
        )
        .expect("detail re-run");
        assert_eq!(
            detailed.parent.as_deref(),
            Some(campaign.experiment_name(index).as_str()),
            "parentExperiment link must point at the original experiment"
        );
        let inject_at = match campaign.faults[index].trigger {
            goofi_core::trigger::Trigger::AfterInstructions(t) => t,
            _ => 0,
        };
        let prop = propagation::analyse(&detailed_ref.trace, &detailed.trace);
        println!(
            "{:<22} {:>10} {:>12} {:>10} {:>10}",
            campaign.experiment_name(index),
            inject_at,
            prop.first_divergence
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            prop.peak_bits(),
            prop.peak_step()
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
}
