//! E7 — the Figure 4 database workflow plus automatic analysis (§2.3/§3.4/§4).
//!
//! Stores a target system, a campaign and every logged experiment in the
//! three-table schema, verifies referential integrity, demonstrates the
//! analysis-by-SQL workflow (including the §4 "automatic generation of
//! analysis software" extension) and reports database operation timings.

use goofi_analysis::queries;
use goofi_core::dbio;
use goofidb::Database;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    println!("E7: campaign database workflow\n");
    let data = bench::thor_description();
    let wl = workloads::by_name("fibonacci").expect("workload exists");
    let space = bench::internal_fault_space(&data, 0..3_000);
    let faults = space.sample_campaign(300, &mut StdRng::seed_from_u64(0xE7));
    let campaign = bench::campaign_for("e7", &wl)
        .faults(faults)
        .build()
        .unwrap();
    let result = bench::run(&campaign);

    let mut db = Database::new();
    dbio::init_schema(&mut db).expect("schema");
    dbio::store_target_system(&mut db, &data).expect("target row");
    dbio::store_campaign(&mut db, &campaign).expect("campaign row");

    let started = Instant::now();
    dbio::store_result(&mut db, &result).expect("experiment rows");
    let insert_time = started.elapsed();
    println!(
        "stored {} experiment rows in {:?} ({:.0} rows/s)",
        result.records.len() + 1,
        insert_time,
        (result.records.len() + 1) as f64 / insert_time.as_secs_f64(),
    );

    db.check_integrity().expect("referential integrity");
    println!("referential integrity: OK (foreign keys Campaign->Target, Log->Campaign)");

    // Foreign keys prevent inconsistencies (paper §2.3).
    let fk_err = db.execute("DELETE FROM CampaignData WHERE campaignName = 'e7'");
    println!("deleting a campaign with logged experiments: {fk_err:?}\n");
    assert!(fk_err.is_err());

    // Automatic analysis + SQL reporting.
    let started = Instant::now();
    let classified = queries::analyse_campaign(&mut db, "e7").expect("analysis");
    println!(
        "classified {} experiments into AnalysisResults in {:?}\n",
        classified.len(),
        started.elapsed(),
    );
    let started = Instant::now();
    let dist = queries::outcome_distribution(&db, "e7").expect("query");
    let q_time = started.elapsed();
    println!("SELECT outcome, COUNT(*) ... GROUP BY outcome   ({q_time:?}):\n{dist}");
    let mech = queries::mechanism_distribution(&db, "e7").expect("query");
    println!("detections per mechanism:\n{mech}");
    let escaped = queries::escaped_experiments(&db, "e7").expect("query");
    println!(
        "experiments flagged for detail re-run (escaped): {}",
        escaped.len()
    );

    // Persistence round-trip.
    let started = Instant::now();
    let text = db.save_to_string();
    let restored = Database::load_from_string(&text).expect("reload");
    println!(
        "\npersistence: {} bytes, save+load in {:?}",
        text.len(),
        started.elapsed(),
    );
    assert_eq!(
        queries::outcome_distribution(&restored, "e7").unwrap(),
        dist,
        "analysis results must survive persistence"
    );
    println!("restored database reproduces identical analysis tables");
}
