//! E8 — fault triggers (paper §3.2 breakpoints + §4 additional triggers).
//!
//! Injects the same register fault under every trigger kind — breakpoint
//! at a PC, instruction count, data access, data write, branch execution,
//! subprogram call, and cycle count (real-time clock) — and reports when
//! each one fired and what came of the fault.
//!
//! Expected shape: all triggers fire; event triggers (branch/call/data)
//! land at the first matching event, so their injection times are early
//! and reproducible.

use goofi_analysis::classify;
use goofi_core::fault::{FaultLocation, FaultSpec};
use goofi_core::trigger::Trigger;

fn main() {
    println!("E8: fault triggers\n");
    let wl = workloads::by_name("fibonacci").expect("workload exists");
    // fibonacci: address of the `result` word for the data triggers.
    let result_addr = match wl.output {
        workloads::OutputSpec::Memory { addr, .. } => addr,
        workloads::OutputSpec::Ports => unreachable!(),
    };

    let location = FaultLocation::ScanCell {
        chain: "internal".into(),
        cell: "R2".into(), // fib return-value register
        bit: 4,
    };
    let triggers: Vec<(&str, Trigger)> = vec![
        ("breakpoint pc=5", Trigger::Breakpoint(5)),
        ("after 500 instr", Trigger::AfterInstructions(500)),
        ("data access", Trigger::DataAccess(result_addr)),
        ("data write", Trigger::DataWrite(result_addr)),
        ("branch executed", Trigger::BranchExecuted),
        ("subprogram call", Trigger::CallExecuted),
        ("after 2000 cycles", Trigger::AfterCycles(2_000)),
    ];

    let faults: Vec<FaultSpec> = triggers
        .iter()
        .map(|(_, t)| FaultSpec::single(location.clone(), *t))
        .collect();
    let campaign = bench::campaign_for("e8", &wl)
        .faults(faults)
        .build()
        .unwrap();
    let result = bench::run(&campaign);

    println!(
        "{:<20} {:>12} {:>12} {:<22} outcome",
        "trigger", "instr", "cycles", "termination"
    );
    for (i, (label, _)) in triggers.iter().enumerate() {
        let record = &result.records[i];
        println!(
            "{:<20} {:>12} {:>12} {:<22} {}",
            label,
            record.state.instructions,
            record.state.cycles,
            record.termination.to_string(),
            classify(&result.reference, record),
        );
    }
    println!(
        "\nreference run: {} instructions, {} cycles",
        result.reference.state.instructions, result.reference.state.cycles,
    );
}
