//! E9 — executable assertions + best-effort recovery (shape from \[12\]).
//!
//! GOOFI's first use was the DSN 2001 study "Reducing Critical Failures
//! for Control Algorithms Using Executable Assertions and Best Effort
//! Recovery" (the paper's reference \[12\]): the same faults are injected
//! into a control application with fail-stop assertions and into one whose
//! assertions *recover* instead of stopping. This experiment reproduces
//! that comparison on the PI-controller workloads, closed over the DC
//! motor plant.
//!
//! Expected shape: most faults are benign either way (a converged control
//! loop re-converges — itself a finding of \[12\]). Among the harmful
//! ones, the fail-stop controller stops on every assertion hit, leaving
//! the plant uncontrolled; the recovery controller clamps, resets the
//! integral and keeps serving. Critical failures (plant uncontrolled:
//! early stop, or finishing far from the set point) drop with recovery.

use goofi_analysis::classify;
use goofi_core::algorithms;
use goofi_core::campaign::{Campaign, OutputRegion, Termination};
use goofi_core::monitor::ProgressMonitor;
use goofi_thor::ThorTarget;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs off the rails if the final control output is this far (fixed-point)
/// from the reference's.
const CRITICAL_DEVIATION: i64 = 512; // 2.0 in Q8

fn main() {
    let n = 400;
    println!("E9: fail-stop assertions vs best-effort recovery, {n} experiments each\n");
    let data = bench::thor_description();

    // Identical faults for both workloads: controller registers, during
    // the active phase of the loop.
    let space = goofi_core::fault::FaultSpace {
        scan_cells: data
            .locations
            .iter()
            .filter(|(chain, cell, _, rw)| {
                *rw && chain == "internal" && (cell.starts_with('R') || cell == "FLAGS")
            })
            .map(|(chain, cell, width, _)| (chain.clone(), cell.clone(), *width))
            .collect(),
        memory: None,
        time_window: 0..4_500,
    };
    let faults = space.sample_campaign(n, &mut StdRng::seed_from_u64(0xE9));

    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>12} {:>10} {:>18}",
        "controller", "detected", "escaped", "latent", "overwritten", "failed", "critical failures"
    );
    for name in ["pi-control", "pi-control-ber"] {
        let wl = workloads::by_name(name).expect("workload exists");
        let campaign = Campaign::builder(format!("e9-{name}"))
            .target_system("thor-rd")
            .workload(bench::workload_image(&wl))
            .observe_chains(["internal"])
            .output(OutputRegion::Ports)
            .termination(Termination {
                max_instructions: 3_000_000,
                max_iterations: Some(200),
            })
            .faults(faults.clone())
            .build()
            .expect("valid campaign");

        let mut target = ThorTarget::default();
        let monitor = ProgressMonitor::new(n);
        let mut motor = envsim::DcMotor::new();
        let result = algorithms::faultinjector_scifi(&mut target, &campaign, &monitor, &mut motor)
            .expect("campaign failed");

        let reference_out = result.reference.state.outputs[0] as i32 as i64;
        let mut counts = std::collections::BTreeMap::new();
        let mut failed = 0usize;
        let mut critical = 0usize;
        for record in &result.records {
            let outcome = classify(&result.reference, record);
            *counts.entry(outcome.category()).or_insert(0usize) += 1;
            // A run "fails" when it does not deliver service to the end
            // (any termination other than the reference's) or delivers a
            // wrong output.
            let completed = record.termination == result.reference.termination;
            if !completed {
                failed += 1;
            }
            // Critical failure: the plant ends up uncontrolled — either the
            // controller stopped early (a fail-stop detection leaves the
            // engine without a controller; there is no backup in this
            // setup) or it kept running far from the set point.
            let out = record.state.outputs.first().copied().unwrap_or_default() as i32 as i64;
            if !completed || (out - reference_out).abs() > CRITICAL_DEVIATION {
                critical += 1;
            }
        }
        println!(
            "{:<18} {:>9} {:>9} {:>9} {:>12} {:>10} {:>18}",
            name,
            counts.get("detected").copied().unwrap_or(0),
            counts.get("escaped").copied().unwrap_or(0),
            counts.get("latent").copied().unwrap_or(0),
            counts.get("overwritten").copied().unwrap_or(0),
            failed,
            critical,
        );
    }
    println!(
        "\n(critical failure: controller stopped early — plant left uncontrolled — or \
         final output deviates > {CRITICAL_DEVIATION} fixed-point units from the reference)"
    );
}
