//! RV32I E1 — SCIFI outcome distribution on the second target.
//!
//! The same E1-class experiment as `e1_scifi_outcomes`, pointed at the
//! RV32I core: full scan-reachable fault space over the `internal` chain,
//! seeded sampling, outcome taxonomy per workload. Framework-side
//! everything — fault-space construction, campaign drive, classification,
//! reporting — is byte-for-byte the code that runs the Thor studies; only
//! the `TargetAccess` port behind the interface differs. The bin also
//! times the campaign and emits `BENCH_riscv_e1.json` so CI's perf-smoke
//! job tracks second-target campaign throughput per commit.

use goofi_analysis::report;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0xE1;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut per_workload = 400usize;
    let mut names: Vec<&str> = vec!["rv-fibonacci", "rv-memcpy"];
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                per_workload = 60;
                names = vec!["rv-memcpy"];
                i += 1;
            }
            "--per-workload" => {
                per_workload = args[i + 1].parse().expect("bad --per-workload");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    println!("RV32I E1: SCIFI campaigns, {per_workload} experiments per workload\n");
    let data = bench::riscv_description();

    let mut all = Vec::new();
    let mut experiments = 0usize;
    let mut elapsed = 0.0f64;
    for name in &names {
        let wl = workloads::riscv_by_name(name).expect("workload exists");
        let campaign_probe = bench::riscv_campaign_for(&format!("rv-e1-{name}-probe"), &wl)
            .fault(goofi_core::fault::FaultSpec::single(
                goofi_core::fault::FaultLocation::Memory { addr: 0, bit: 0 },
                goofi_core::trigger::Trigger::AfterInstructions(1),
            ))
            .build()
            .unwrap();
        let len = bench::riscv_reference_length(&campaign_probe);

        let space = bench::internal_fault_space(&data, 0..len);
        let faults = space.sample_campaign(per_workload, &mut StdRng::seed_from_u64(SEED));
        let campaign = bench::riscv_campaign_for(&format!("rv-e1-{name}"), &wl)
            .faults(faults)
            .build()
            .unwrap();
        let started = std::time::Instant::now();
        let result = bench::riscv_run(&campaign);
        elapsed += started.elapsed().as_secs_f64();
        experiments += result.records.len();
        let classified = bench::classify(&result);
        println!(
            "-- workload `{name}` ({len} reference instructions) --\n{}",
            report::outcome_table(&goofi_analysis::stats::CampaignStats::from_classified(
                &classified
            ))
        );
        all.extend(classified);
    }

    let stats = goofi_analysis::stats::CampaignStats::from_classified(&all);
    println!(
        "{}",
        report::full_report("RV32I E1: all workloads combined", &stats)
    );

    let throughput = experiments as f64 / elapsed;
    println!("campaign throughput: {throughput:.1} exp/s ({experiments} experiments)");
    bench::emit_bench_json(
        "riscv_e1",
        "experiments_per_second",
        throughput,
        "exp/s",
        SEED,
    );
}
