//! Shared plumbing for the GOOFI experiment harness.
//!
//! The `e1`–`e8` binaries in `src/bin/` regenerate the experiments indexed
//! in `DESIGN.md`; this library holds the campaign-construction helpers
//! they share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use goofi_analysis::stats::CampaignStats;
use goofi_analysis::{classify_campaign, ClassifiedExperiment};
use goofi_core::algorithms::{self, CampaignResult};
use goofi_core::campaign::{
    Campaign, CampaignBuilder, OutputRegion, TargetSystemData, Termination, WorkloadImage,
};
use goofi_core::fault::FaultSpace;
use goofi_core::monitor::ProgressMonitor;
use goofi_riscv::RiscvTarget;
use goofi_thor::ThorTarget;
use workloads::{OutputSpec, RiscvWorkload, Workload};

/// Converts a library workload into a campaign workload image.
pub fn workload_image(w: &Workload) -> WorkloadImage {
    WorkloadImage {
        name: w.name.clone(),
        words: w.image.words.clone(),
        code_words: w.image.code_words,
        entry: w.image.entry,
    }
}

/// The campaign output region matching a workload's output spec.
pub fn output_region(w: &Workload) -> OutputRegion {
    match w.output {
        OutputSpec::Memory { addr, len } => OutputRegion::Memory { addr, len },
        OutputSpec::Ports => OutputRegion::Ports,
    }
}

/// A campaign builder pre-configured for a workload on the Thor target.
pub fn campaign_for(name: &str, w: &Workload) -> CampaignBuilder {
    Campaign::builder(name)
        .target_system("thor-rd")
        .workload(workload_image(w))
        .observe_chains(["internal"])
        .output(output_region(w))
        .termination(Termination {
            max_instructions: 500_000,
            max_iterations: None,
        })
}

/// The Thor target-system description.
pub fn thor_description() -> TargetSystemData {
    TargetSystemData::from_target(&ThorTarget::default(), "Thor-RD-like CPU simulator")
}

/// Converts an RV32I library workload into a campaign workload image.
pub fn riscv_workload_image(w: &RiscvWorkload) -> WorkloadImage {
    WorkloadImage {
        name: w.name.clone(),
        words: w.image.words.clone(),
        code_words: w.image.code_words,
        entry: w.image.entry,
    }
}

/// The campaign output region matching an RV32I workload's output spec.
pub fn riscv_output_region(w: &RiscvWorkload) -> OutputRegion {
    match w.output {
        OutputSpec::Memory { addr, len } => OutputRegion::Memory { addr, len },
        OutputSpec::Ports => OutputRegion::Ports,
    }
}

/// A campaign builder pre-configured for a workload on the RV32I target —
/// the exact shape of [`campaign_for`] with the second CPU's system name.
pub fn riscv_campaign_for(name: &str, w: &RiscvWorkload) -> CampaignBuilder {
    Campaign::builder(name)
        .target_system("rv32i")
        .workload(riscv_workload_image(w))
        .observe_chains(["internal"])
        .output(riscv_output_region(w))
        .termination(Termination {
            max_instructions: 500_000,
            max_iterations: None,
        })
}

/// The RV32I target-system description.
pub fn riscv_description() -> TargetSystemData {
    TargetSystemData::from_target(&RiscvTarget::default(), "RV32I cycle-counting core")
}

/// The SCIFI fault space over the core's architectural state (the
/// `internal` chain), excluding the test infrastructure chains.
pub fn internal_fault_space(
    data: &TargetSystemData,
    time_window: std::ops::Range<u64>,
) -> FaultSpace {
    FaultSpace {
        scan_cells: data
            .locations
            .iter()
            .filter(|(chain, _, _, rw)| *rw && chain == "internal")
            .map(|(chain, cell, width, _)| (chain.clone(), cell.clone(), *width))
            .collect(),
        memory: None,
        time_window,
    }
}

/// The SCIFI fault space over core plus caches — "the pins and many of the
/// internal state elements" reachable through the scan chains.
pub fn full_scifi_space(data: &TargetSystemData, time_window: std::ops::Range<u64>) -> FaultSpace {
    FaultSpace {
        scan_cells: data
            .locations
            .iter()
            .filter(|(chain, _, _, rw)| {
                *rw && matches!(chain.as_str(), "internal" | "icache" | "dcache")
            })
            .map(|(chain, cell, width, _)| (chain.clone(), cell.clone(), *width))
            .collect(),
        memory: None,
        time_window,
    }
}

/// Runs a campaign serially on a fresh Thor target.
///
/// # Panics
///
/// Panics on campaign failure — the harness treats that as a broken
/// experiment definition.
pub fn run(campaign: &Campaign) -> CampaignResult {
    run_opts(campaign, true)
}

/// Runs a campaign serially on a fresh RV32I target.
///
/// # Panics
///
/// Panics on campaign failure.
pub fn riscv_run(campaign: &Campaign) -> CampaignResult {
    let mut target = RiscvTarget::default();
    let monitor = ProgressMonitor::new(campaign.experiment_count());
    algorithms::run_campaign_journaled_opts(
        &mut target,
        campaign,
        &monitor,
        &mut envsim::NullEnvironment,
        None,
        None,
        true,
    )
    .expect("campaign failed")
}

/// [`run`] with the snapshot/restore hot path made explicit —
/// `snapshots: false` is the slow-path baseline the speedup benchmarks
/// compare against.
///
/// # Panics
///
/// Panics on campaign failure.
pub fn run_opts(campaign: &Campaign, snapshots: bool) -> CampaignResult {
    let mut target = ThorTarget::default();
    let monitor = ProgressMonitor::new(campaign.experiment_count());
    algorithms::run_campaign_journaled_opts(
        &mut target,
        campaign,
        &monitor,
        &mut envsim::NullEnvironment,
        None,
        None,
        snapshots,
    )
    .expect("campaign failed")
}

/// Writes `BENCH_<bench>.json` into the current directory: one flat,
/// machine-readable record per benchmark so CI's perf-smoke step (and any
/// trend tooling) can consume results without scraping stdout.
///
/// # Panics
///
/// Panics when the file cannot be written — a benchmark that cannot
/// publish its result has failed.
pub fn emit_bench_json(bench: &str, metric: &str, value: f64, unit: &str, seed: u64) {
    let body = format!(
        "{{\"bench\":\"{bench}\",\"metric\":\"{metric}\",\"value\":{value},\"unit\":\"{unit}\",\"seed\":{seed}}}\n"
    );
    let path = format!("BENCH_{bench}.json");
    std::fs::write(&path, body).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
}

/// Classifies a campaign result.
pub fn classify(result: &CampaignResult) -> Vec<ClassifiedExperiment> {
    classify_campaign(&result.reference, &result.records)
}

/// Classification statistics of a campaign result.
pub fn stats(result: &CampaignResult) -> CampaignStats {
    CampaignStats::from_classified(&classify(result))
}

/// Number of instructions the reference run of `campaign` takes — used to
/// size injection-time windows.
pub fn reference_length(campaign: &Campaign) -> u64 {
    let mut target = ThorTarget::default();
    algorithms::make_reference_run(&mut target, campaign, &mut envsim::NullEnvironment)
        .expect("reference run failed")
        .state
        .instructions
}

/// [`reference_length`] against the RV32I core.
pub fn riscv_reference_length(campaign: &Campaign) -> u64 {
    let mut target = RiscvTarget::default();
    algorithms::make_reference_run(&mut target, campaign, &mut envsim::NullEnvironment)
        .expect("reference run failed")
        .state
        .instructions
}

#[cfg(test)]
mod tests {
    use super::*;
    use goofi_core::fault::FaultSpec;
    use goofi_core::trigger::Trigger;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn helpers_compose_a_runnable_campaign() {
        let wl = workloads::by_name("primes").unwrap();
        let data = thor_description();
        let space = internal_fault_space(&data, 0..1_000);
        assert!(space.bit_count() > 0);
        let campaign = campaign_for("helper-test", &wl)
            .faults(space.sample_campaign(5, &mut StdRng::seed_from_u64(1)))
            .build()
            .unwrap();
        let result = run(&campaign);
        assert_eq!(result.records.len(), 5);
        assert_eq!(stats(&result).total, 5);
    }

    #[test]
    fn full_space_is_larger_than_internal() {
        let data = thor_description();
        let internal = internal_fault_space(&data, 0..1).bit_count();
        let full = full_scifi_space(&data, 0..1).bit_count();
        assert!(full > internal);
    }

    #[test]
    fn reference_length_is_positive() {
        let wl = workloads::by_name("fibonacci").unwrap();
        let campaign = campaign_for("len", &wl)
            .fault(FaultSpec::single(
                goofi_core::fault::FaultLocation::Memory { addr: 0, bit: 0 },
                Trigger::AfterInstructions(1),
            ))
            .build()
            .unwrap();
        assert!(reference_length(&campaign) > 100);
    }
}
