//! Environment simulators for GOOFI control workloads.
//!
//! The GOOFI set-up phase lets the user attach "a user provided environment
//! simulator emulating the target system environment" (paper Figure 1):
//! during each workload loop iteration "data may be exchanged" between the
//! target and the simulator (§3.2). This crate provides that component — a
//! few simple plant models plus scripted/constant stimuli — behind the
//! [`Environment`] trait that the `goofi-core` campaign runner drives at
//! every `sync` iteration boundary.
//!
//! All plant state is fixed-point (`value * 256`) to match the integer-only
//! target CPU.
//!
//! # Example
//!
//! ```
//! use envsim::{DcMotor, Environment};
//!
//! let mut motor = DcMotor::new();
//! // Drive with a constant control signal of 16.0 (fixed-point 4096).
//! let mut speed = 0;
//! for _ in 0..200 {
//!     speed = motor.exchange(&[4096])[0] as i32;
//! }
//! // The motor settles at the commanded speed.
//! assert!((speed - 4096).abs() < 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Fixed-point scale used by all plants: value 1.0 == 256.
pub const FIXED_ONE: i32 = 256;

/// A target-system environment: consumes the target's outputs and produces
/// its next inputs, once per workload loop iteration.
pub trait Environment: Send {
    /// Short name logged with the campaign data.
    fn name(&self) -> &str;

    /// Resets the plant to its initial state (before each experiment).
    fn reset(&mut self);

    /// One exchange step: `outputs` are the target's output-port values;
    /// the return value is written to the target's input ports.
    fn exchange(&mut self, outputs: &[u32]) -> Vec<u32>;
}

/// A first-order DC-motor model: the shaft speed lags the commanded value.
///
/// `speed += (u - speed) / 16` per iteration — a stable low-pass plant the
/// PI-control workload regulates to its set point, mirroring the control
/// application GOOFI was used with in the paper's reference \[12\].
#[derive(Debug, Clone)]
pub struct DcMotor {
    speed: i32,
    initial_speed: i32,
}

impl Default for DcMotor {
    fn default() -> Self {
        Self::new()
    }
}

impl DcMotor {
    /// A motor at standstill.
    pub fn new() -> Self {
        DcMotor {
            speed: 0,
            initial_speed: 0,
        }
    }

    /// A motor with a non-zero initial speed (fixed-point).
    pub fn with_initial_speed(speed: i32) -> Self {
        DcMotor {
            speed,
            initial_speed: speed,
        }
    }

    /// Current shaft speed (fixed-point).
    pub fn speed(&self) -> i32 {
        self.speed
    }
}

impl Environment for DcMotor {
    fn name(&self) -> &str {
        "dc-motor"
    }

    fn reset(&mut self) {
        self.speed = self.initial_speed;
    }

    fn exchange(&mut self, outputs: &[u32]) -> Vec<u32> {
        let u = outputs.first().copied().unwrap_or(0) as i32;
        self.speed += (u - self.speed) >> 4;
        vec![self.speed as u32]
    }
}

/// A leaky water tank: the level integrates inflow minus a proportional
/// leak. Slightly different dynamics than [`DcMotor`] (pure integrator with
/// loss), useful as a second control scenario.
#[derive(Debug, Clone, Default)]
pub struct WaterTank {
    level: i32,
}

impl WaterTank {
    /// An empty tank.
    pub fn new() -> Self {
        WaterTank::default()
    }

    /// Current level (fixed-point).
    pub fn level(&self) -> i32 {
        self.level
    }
}

impl Environment for WaterTank {
    fn name(&self) -> &str {
        "water-tank"
    }

    fn reset(&mut self) {
        self.level = 0;
    }

    fn exchange(&mut self, outputs: &[u32]) -> Vec<u32> {
        let inflow = outputs.first().copied().unwrap_or(0) as i32;
        // level += inflow/32 - level/64  (leak proportional to level)
        self.level += (inflow >> 5) - (self.level >> 6);
        if self.level < 0 {
            self.level = 0;
        }
        vec![self.level as u32]
    }
}

/// A simplified jet engine: the plant of the control application GOOFI was
/// first used with (paper reference \[12\]).
///
/// First-order like the [`DcMotor`], but with two realistic nonlinearities:
/// the turbine spools *up* slower than it spools *down* (thermal limits),
/// and the speed never falls below the idle floor.
#[derive(Debug, Clone)]
pub struct JetEngine {
    speed: i32,
}

/// Idle speed floor of [`JetEngine`] (fixed-point).
pub const JET_IDLE: i32 = 256;

impl Default for JetEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl JetEngine {
    /// An engine at idle.
    pub fn new() -> Self {
        JetEngine { speed: JET_IDLE }
    }

    /// Current turbine speed (fixed-point).
    pub fn speed(&self) -> i32 {
        self.speed
    }
}

impl Environment for JetEngine {
    fn name(&self) -> &str {
        "jet-engine"
    }

    fn reset(&mut self) {
        self.speed = JET_IDLE;
    }

    fn exchange(&mut self, outputs: &[u32]) -> Vec<u32> {
        let u = outputs.first().copied().unwrap_or(0) as i32;
        let error = u - self.speed;
        // Spool-up is four times slower than spool-down.
        self.speed += if error > 0 { error >> 6 } else { error >> 4 };
        if self.speed < JET_IDLE {
            self.speed = JET_IDLE;
        }
        vec![self.speed as u32]
    }
}

/// The no-environment null object: ignores outputs, supplies no inputs.
///
/// Campaigns over terminating workloads that never exchange data use this
/// in place of a real plant.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullEnvironment;

impl NullEnvironment {
    /// Creates the null environment.
    pub fn new() -> Self {
        NullEnvironment
    }
}

impl Environment for NullEnvironment {
    fn name(&self) -> &str {
        "none"
    }

    fn reset(&mut self) {}

    fn exchange(&mut self, _outputs: &[u32]) -> Vec<u32> {
        Vec::new()
    }
}

/// Feeds a fixed input vector every iteration, ignoring outputs.
#[derive(Debug, Clone)]
pub struct ConstantEnvironment {
    inputs: Vec<u32>,
}

impl ConstantEnvironment {
    /// An environment that always supplies `inputs`.
    pub fn new(inputs: Vec<u32>) -> Self {
        ConstantEnvironment { inputs }
    }
}

impl Environment for ConstantEnvironment {
    fn name(&self) -> &str {
        "constant"
    }

    fn reset(&mut self) {}

    fn exchange(&mut self, _outputs: &[u32]) -> Vec<u32> {
        self.inputs.clone()
    }
}

/// Replays a pre-recorded stimulus sequence; repeats the last entry when
/// the script runs out. Also records every output it is handed, so a test
/// can assert on the target's behaviour over time.
#[derive(Debug, Clone, Default)]
pub struct ScriptedEnvironment {
    script: Vec<Vec<u32>>,
    position: usize,
    observed: Vec<Vec<u32>>,
}

impl ScriptedEnvironment {
    /// An environment replaying `script` step by step.
    pub fn new(script: Vec<Vec<u32>>) -> Self {
        ScriptedEnvironment {
            script,
            position: 0,
            observed: Vec::new(),
        }
    }

    /// Outputs the target produced, one entry per exchange.
    pub fn observed(&self) -> &[Vec<u32>] {
        &self.observed
    }
}

impl Environment for ScriptedEnvironment {
    fn name(&self) -> &str {
        "scripted"
    }

    fn reset(&mut self) {
        self.position = 0;
        self.observed.clear();
    }

    fn exchange(&mut self, outputs: &[u32]) -> Vec<u32> {
        self.observed.push(outputs.to_vec());
        let step = self
            .script
            .get(self.position)
            .or_else(|| self.script.last())
            .cloned()
            .unwrap_or_default();
        if self.position + 1 < self.script.len() {
            self.position += 1;
        }
        step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_motor_tracks_command() {
        let mut m = DcMotor::new();
        for _ in 0..200 {
            m.exchange(&[2560]);
        }
        assert!((m.speed() - 2560).abs() < 32, "speed {}", m.speed());
    }

    #[test]
    fn dc_motor_reset_restores_initial_speed() {
        let mut m = DcMotor::with_initial_speed(100);
        m.exchange(&[5000]);
        assert_ne!(m.speed(), 100);
        m.reset();
        assert_eq!(m.speed(), 100);
    }

    #[test]
    fn jet_engine_spools_up_to_command() {
        let mut e = JetEngine::new();
        for _ in 0..1_000 {
            e.exchange(&[2560]);
        }
        assert!((e.speed() - 2560).abs() < 64, "speed {}", e.speed());
    }

    #[test]
    fn jet_engine_spools_down_faster_than_up() {
        let mut up = JetEngine::new();
        let first_up = up.exchange(&[4096])[0] as i32 - JET_IDLE;
        let mut down = JetEngine::new();
        for _ in 0..2_000 {
            down.exchange(&[4096]);
        }
        let at_speed = down.speed();
        let first_down = at_speed - down.exchange(&[JET_IDLE as u32])[0] as i32;
        // Same magnitude of command change; the downward step is larger.
        assert!(
            first_down > first_up,
            "down step {first_down} vs up step {first_up}"
        );
    }

    #[test]
    fn jet_engine_never_drops_below_idle() {
        let mut e = JetEngine::new();
        for _ in 0..100 {
            e.exchange(&[0]);
        }
        assert_eq!(e.speed(), JET_IDLE);
        e.exchange(&[5000]);
        e.reset();
        assert_eq!(e.speed(), JET_IDLE);
    }

    #[test]
    fn water_tank_balances_inflow_and_leak() {
        let mut t = WaterTank::new();
        for _ in 0..500 {
            t.exchange(&[1024]);
        }
        // Equilibrium: inflow/32 == level/64 -> level == 2*inflow.
        assert!((t.level() - 2048).abs() < 64, "level {}", t.level());
    }

    #[test]
    fn water_tank_never_negative() {
        let mut t = WaterTank::new();
        t.exchange(&[0]);
        assert_eq!(t.level(), 0);
    }

    #[test]
    fn constant_environment_is_constant() {
        let mut e = ConstantEnvironment::new(vec![7, 8]);
        assert_eq!(e.exchange(&[1]), vec![7, 8]);
        assert_eq!(e.exchange(&[999]), vec![7, 8]);
    }

    #[test]
    fn scripted_environment_replays_and_records() {
        let mut e = ScriptedEnvironment::new(vec![vec![1], vec![2], vec![3]]);
        assert_eq!(e.exchange(&[10]), vec![1]);
        assert_eq!(e.exchange(&[11]), vec![2]);
        assert_eq!(e.exchange(&[12]), vec![3]);
        assert_eq!(e.exchange(&[13]), vec![3]); // repeats last
        assert_eq!(e.observed().len(), 4);
        e.reset();
        assert_eq!(e.exchange(&[0]), vec![1]);
        assert_eq!(e.observed().len(), 1);
    }
}
