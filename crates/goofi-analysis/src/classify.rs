//! Outcome classification: reference vs experiment comparison (§3.4).

use goofi_core::logging::{ExperimentRecord, TerminationCause, Validity};
use std::fmt;

/// How an escaped error manifested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EscapeReason {
    /// The workload produced incorrect results.
    WrongOutput,
    /// The workload missed its deadline (time-out or wrong termination
    /// behaviour — "timeliness violations").
    Timeliness,
}

impl fmt::Display for EscapeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EscapeReason::WrongOutput => f.write_str("incorrect results"),
            EscapeReason::Timeliness => f.write_str("timeliness violation"),
        }
    }
}

/// The paper's §3.4 experiment outcome taxonomy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Effective, detected by an error detection mechanism.
    Detected {
        /// Mechanism that caught the error.
        mechanism: String,
    },
    /// Effective, but escaped all detection mechanisms.
    Escaped {
        /// Failure manifestation.
        reason: EscapeReason,
    },
    /// Non-effective: state differs from the reference, nothing failed.
    Latent,
    /// Non-effective: no difference from the reference at all.
    Overwritten,
}

impl Outcome {
    /// Whether the error was effective (detected or escaped).
    pub fn is_effective(&self) -> bool {
        matches!(self, Outcome::Detected { .. } | Outcome::Escaped { .. })
    }

    /// The coarse category name used in report tables and the database.
    pub fn category(&self) -> &'static str {
        match self {
            Outcome::Detected { .. } => "detected",
            Outcome::Escaped { .. } => "escaped",
            Outcome::Latent => "latent",
            Outcome::Overwritten => "overwritten",
        }
    }

    /// The detection mechanism, when detected.
    pub fn mechanism(&self) -> Option<&str> {
        match self {
            Outcome::Detected { mechanism } => Some(mechanism),
            _ => None,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Detected { mechanism } => write!(f, "detected ({mechanism})"),
            Outcome::Escaped { reason } => write!(f, "escaped ({reason})"),
            Outcome::Latent => f.write_str("latent"),
            Outcome::Overwritten => f.write_str("overwritten"),
        }
    }
}

/// Classifies one experiment against the campaign's reference run.
///
/// Rules, in order:
///
/// 1. a [`TerminationCause::Detected`] termination is a **detected** error;
/// 2. a termination kind different from the reference's (e.g. time-out
///    where the reference completed) is an **escaped** error with a
///    timeliness violation;
/// 3. same termination but different workload outputs is an **escaped**
///    error with incorrect results;
/// 4. correct behaviour with a state difference is a **latent** error;
/// 5. no difference at all is an **overwritten** error.
pub fn classify(reference: &ExperimentRecord, experiment: &ExperimentRecord) -> Outcome {
    if let TerminationCause::Detected(d) = &experiment.termination {
        return Outcome::Detected {
            mechanism: d.mechanism.clone(),
        };
    }
    if std::mem::discriminant(&experiment.termination)
        != std::mem::discriminant(&reference.termination)
    {
        return Outcome::Escaped {
            reason: EscapeReason::Timeliness,
        };
    }
    if experiment.state.outputs != reference.state.outputs {
        return Outcome::Escaped {
            reason: EscapeReason::WrongOutput,
        };
    }
    if experiment.state.same_state(&reference.state) {
        Outcome::Overwritten
    } else {
        Outcome::Latent
    }
}

/// One experiment together with its classification and fault metadata,
/// ready for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifiedExperiment {
    /// Experiment name.
    pub name: String,
    /// Classification.
    pub outcome: Outcome,
    /// Fault-location class (e.g. `internal.R3`, `icache`, `memory`).
    pub location_class: Option<String>,
    /// Injection trigger string.
    pub trigger: Option<String>,
}

/// Classifies a whole campaign: pairs each record with the reference run.
///
/// Records without a fault (the reference itself) are skipped, as are
/// records quarantined by golden-run revalidation
/// ([`Validity::Invalid`]) — those measured a broken link, not the target,
/// and their `parentExperiment`-linked reruns carry the valid data.
pub fn classify_campaign(
    reference: &ExperimentRecord,
    records: &[ExperimentRecord],
) -> Vec<ClassifiedExperiment> {
    records
        .iter()
        .filter(|r| !r.is_reference() && r.validity == Validity::Valid)
        .map(|r| ClassifiedExperiment {
            name: r.name.clone(),
            outcome: classify(reference, r),
            location_class: r
                .fault
                .as_ref()
                .and_then(|f| f.locations.first())
                .map(|l| l.class()),
            trigger: r.fault.as_ref().map(|f| f.trigger.encode()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use goofi_core::fault::{FaultLocation, FaultSpec};
    use goofi_core::logging::StateSnapshot;
    use goofi_core::trigger::Trigger;
    use goofi_core::DetectionInfo;

    fn record(
        termination: TerminationCause,
        outputs: Vec<u32>,
        digest: u64,
        fault: Option<FaultSpec>,
    ) -> ExperimentRecord {
        ExperimentRecord {
            name: "e".into(),
            parent: None,
            campaign: "c".into(),
            fault,
            termination,
            state: StateSnapshot {
                outputs,
                memory_digest: digest,
                ..Default::default()
            },
            trace: vec![],
            validity: Validity::Valid,
        }
    }

    fn reference() -> ExperimentRecord {
        record(TerminationCause::WorkloadEnd, vec![42], 1000, None)
    }

    fn some_fault() -> Option<FaultSpec> {
        Some(FaultSpec::single(
            FaultLocation::ScanCell {
                chain: "internal".into(),
                cell: "R1".into(),
                bit: 0,
            },
            Trigger::AfterInstructions(10),
        ))
    }

    #[test]
    fn detected_wins_over_everything() {
        let exp = record(
            TerminationCause::Detected(DetectionInfo {
                mechanism: "parity_icache".into(),
                code: 1,
            }),
            vec![999], // outputs also wrong, but detection takes precedence
            5,
            some_fault(),
        );
        let o = classify(&reference(), &exp);
        assert_eq!(
            o,
            Outcome::Detected {
                mechanism: "parity_icache".into()
            }
        );
        assert!(o.is_effective());
        assert_eq!(o.category(), "detected");
        assert_eq!(o.mechanism(), Some("parity_icache"));
    }

    #[test]
    fn timeout_is_timeliness_escape() {
        let exp = record(TerminationCause::Timeout, vec![42], 1000, some_fault());
        assert_eq!(
            classify(&reference(), &exp),
            Outcome::Escaped {
                reason: EscapeReason::Timeliness
            }
        );
    }

    #[test]
    fn wrong_output_is_escape() {
        let exp = record(TerminationCause::WorkloadEnd, vec![41], 1000, some_fault());
        let o = classify(&reference(), &exp);
        assert_eq!(
            o,
            Outcome::Escaped {
                reason: EscapeReason::WrongOutput
            }
        );
        assert!(o.is_effective());
    }

    #[test]
    fn latent_when_state_differs_silently() {
        let exp = record(TerminationCause::WorkloadEnd, vec![42], 1001, some_fault());
        let o = classify(&reference(), &exp);
        assert_eq!(o, Outcome::Latent);
        assert!(!o.is_effective());
    }

    #[test]
    fn overwritten_when_identical() {
        let exp = record(TerminationCause::WorkloadEnd, vec![42], 1000, some_fault());
        assert_eq!(classify(&reference(), &exp), Outcome::Overwritten);
    }

    #[test]
    fn scan_difference_is_latent() {
        let mut exp = record(TerminationCause::WorkloadEnd, vec![42], 1000, some_fault());
        exp.state.scan.insert("internal".into(), "1".into());
        assert_eq!(classify(&reference(), &exp), Outcome::Latent);
    }

    #[test]
    fn iteration_limit_reference_matches() {
        // Control workloads terminate via the iteration limit in the
        // reference run; an experiment doing the same is not an escape.
        let reference = record(TerminationCause::IterationLimit, vec![7], 5, None);
        let exp = record(TerminationCause::IterationLimit, vec![7], 5, some_fault());
        assert_eq!(classify(&reference, &exp), Outcome::Overwritten);
        let exp = record(TerminationCause::Timeout, vec![7], 5, some_fault());
        assert_eq!(
            classify(&reference, &exp),
            Outcome::Escaped {
                reason: EscapeReason::Timeliness
            }
        );
    }

    #[test]
    fn classify_campaign_skips_reference() {
        let reference = reference();
        let records = vec![
            reference.clone(),
            record(TerminationCause::WorkloadEnd, vec![42], 1000, some_fault()),
            record(TerminationCause::Timeout, vec![0], 0, some_fault()),
        ];
        let classified = classify_campaign(&reference, &records);
        assert_eq!(classified.len(), 2);
        assert_eq!(classified[0].outcome, Outcome::Overwritten);
        assert_eq!(classified[0].location_class.as_deref(), Some("internal.R1"));
        assert_eq!(classified[0].trigger.as_deref(), Some("instr:10"));
        assert_eq!(
            classified[1].outcome,
            Outcome::Escaped {
                reason: EscapeReason::Timeliness
            }
        );
    }

    #[test]
    fn classify_campaign_skips_quarantined_records() {
        let reference = reference();
        let mut bad = record(TerminationCause::Timeout, vec![0], 0, some_fault());
        bad.validity = Validity::Invalid;
        let mut rerun = record(TerminationCause::WorkloadEnd, vec![42], 1000, some_fault());
        rerun.parent = Some("e".into());
        let classified = classify_campaign(&reference, &[bad, rerun]);
        assert_eq!(classified.len(), 1, "only the valid rerun is classified");
        assert_eq!(classified[0].outcome, Outcome::Overwritten);
    }

    #[test]
    fn displays() {
        assert_eq!(
            Outcome::Detected {
                mechanism: "overflow".into()
            }
            .to_string(),
            "detected (overflow)"
        );
        assert_eq!(
            Outcome::Escaped {
                reason: EscapeReason::WrongOutput
            }
            .to_string(),
            "escaped (incorrect results)"
        );
        assert_eq!(Outcome::Latent.to_string(), "latent");
    }
}
