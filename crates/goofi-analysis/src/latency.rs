//! Detection latency: how long an error stays in the system before an
//! error detection mechanism fires.
//!
//! The logged state vector carries "information about when and where any
//! faults were injected" (§3.3) together with the termination counters, so
//! the latency of every detected error — instructions between injection
//! and detection — falls out of the log table. Latency distributions are a
//! standard dependability measure in the companion Thor studies.

use goofi_core::logging::{ExperimentRecord, TerminationCause};
use goofi_core::trigger::Trigger;

/// One detected error's latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectionLatency {
    /// Experiment name.
    pub experiment: String,
    /// Mechanism that fired.
    pub mechanism: String,
    /// Injection time (instructions).
    pub injected_at: u64,
    /// Detection time (instructions).
    pub detected_at: u64,
    /// `detected_at - injected_at`.
    pub latency: u64,
}

/// Extracts per-experiment detection latencies from a campaign's records.
///
/// Only experiments that were *detected* and whose trigger pins a definite
/// injection time (instruction count, or pre-runtime = time 0) contribute.
pub fn detection_latencies(records: &[ExperimentRecord]) -> Vec<DetectionLatency> {
    records
        .iter()
        .filter_map(|r| {
            let TerminationCause::Detected(d) = &r.termination else {
                return None;
            };
            let fault = r.fault.as_ref()?;
            let injected_at = match fault.trigger {
                Trigger::AfterInstructions(t) => t,
                Trigger::PreRuntime => 0,
                _ => return None,
            };
            Some(DetectionLatency {
                experiment: r.name.clone(),
                mechanism: d.mechanism.clone(),
                injected_at,
                detected_at: r.state.instructions,
                latency: r.state.instructions.saturating_sub(injected_at),
            })
        })
        .collect()
}

/// Summary statistics over a latency sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Number of detected errors measured.
    pub samples: usize,
    /// Minimum latency (instructions).
    pub min: u64,
    /// Maximum latency (instructions).
    pub max: u64,
    /// Mean latency, rounded.
    pub mean: u64,
    /// Median latency.
    pub median: u64,
}

impl LatencySummary {
    /// Summarises a latency list; all-zero summary for an empty input.
    pub fn from_latencies(latencies: &[DetectionLatency]) -> LatencySummary {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        let mut values: Vec<u64> = latencies.iter().map(|l| l.latency).collect();
        values.sort_unstable();
        let sum: u128 = values.iter().map(|&v| v as u128).sum();
        LatencySummary {
            samples: values.len(),
            min: values[0],
            max: *values.last().expect("non-empty"),
            mean: (sum / values.len() as u128) as u64,
            median: values[values.len() / 2],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goofi_core::fault::{FaultLocation, FaultSpec};
    use goofi_core::logging::StateSnapshot;
    use goofi_core::DetectionInfo;

    fn record(
        name: &str,
        trigger: Trigger,
        termination: TerminationCause,
        at_instr: u64,
    ) -> ExperimentRecord {
        ExperimentRecord {
            name: name.into(),
            parent: None,
            campaign: "c".into(),
            fault: Some(FaultSpec::single(
                FaultLocation::Memory { addr: 0, bit: 0 },
                trigger,
            )),
            termination,
            state: StateSnapshot {
                instructions: at_instr,
                ..Default::default()
            },
            trace: vec![],
            validity: goofi_core::logging::Validity::Valid,
        }
    }

    fn detected(mechanism: &str) -> TerminationCause {
        TerminationCause::Detected(DetectionInfo {
            mechanism: mechanism.into(),
            code: 1,
        })
    }

    #[test]
    fn latencies_extracted_only_for_detected_with_known_time() {
        let records = vec![
            record(
                "a",
                Trigger::AfterInstructions(100),
                detected("parity_icache"),
                150,
            ),
            record(
                "b",
                Trigger::AfterInstructions(10),
                TerminationCause::WorkloadEnd,
                900,
            ),
            record("c", Trigger::PreRuntime, detected("illegal_opcode"), 3),
            record("d", Trigger::BranchExecuted, detected("overflow"), 80),
        ];
        let lats = detection_latencies(&records);
        assert_eq!(lats.len(), 2);
        assert_eq!(lats[0].latency, 50);
        assert_eq!(lats[0].mechanism, "parity_icache");
        assert_eq!(lats[1].latency, 3);
        assert_eq!(lats[1].injected_at, 0);
    }

    #[test]
    fn summary_statistics() {
        let records = vec![
            record("a", Trigger::AfterInstructions(0), detected("m"), 10),
            record("b", Trigger::AfterInstructions(0), detected("m"), 20),
            record("c", Trigger::AfterInstructions(0), detected("m"), 90),
        ];
        let s = LatencySummary::from_latencies(&detection_latencies(&records));
        assert_eq!(s.samples, 3);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 90);
        assert_eq!(s.mean, 40);
        assert_eq!(s.median, 20);
    }

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(
            LatencySummary::from_latencies(&[]),
            LatencySummary::default()
        );
    }
}
