//! The GOOFI analysis phase.
//!
//! "The data in the database table `LoggedSystemState` is analysed in the
//! analysis phase in order to obtain various dependability measures"
//! (paper §3.4). The paper's outcome taxonomy is implemented verbatim:
//!
//! * **Effective errors**
//!   * *Detected errors* — caught by the target's error detection
//!     mechanisms, "further classified into errors detected by each of the
//!     various mechanisms";
//!   * *Escaped errors* — "errors that escape the error detection
//!     mechanisms causing failures such as incorrect results or timeliness
//!     violations".
//! * **Non-effective errors**
//!   * *Latent errors* — state differs from the reference run but no
//!     detection and no failure;
//!   * *Overwritten errors* — "no difference between the correct system
//!     states".
//!
//! The paper notes that analysis software was hand-written per target
//! ("currently, there is no support for automatic generation of software
//! that analyses the LoggedSystemState table") and lists automating it as
//! future work — [`queries`] is that extension: classification results are
//! written back to the database and canned SQL produces the report tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
pub mod latency;
pub mod propagation;
pub mod queries;
pub mod report;
pub mod stats;

pub use classify::{classify, classify_campaign, ClassifiedExperiment, EscapeReason, Outcome};
