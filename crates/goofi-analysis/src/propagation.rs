//! Error-propagation analysis over detail-mode traces.
//!
//! "The detail mode operation is used to produce an execution trace,
//! allowing the error propagation to be analysed in detail" (§3.3) — and
//! the §2.3 `parentExperiment` workflow exists precisely to re-run an
//! interesting experiment in detail mode. This module diffs the detail
//! trace of a faulty run against the reference trace and reports where the
//! corruption first appeared and how far it spread over time.

use goofi_core::logging::StateSnapshot;

/// Divergence between one pair of trace entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepDivergence {
    /// Instruction index within the trace.
    pub step: usize,
    /// Number of differing scan bits, per chain.
    pub per_chain: Vec<(String, usize)>,
    /// Total differing bits.
    pub total_bits: usize,
    /// Whether the workload outputs differ at this step.
    pub outputs_differ: bool,
}

/// The propagation profile of one experiment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Propagation {
    /// First step at which any state differed, if ever.
    pub first_divergence: Option<usize>,
    /// Divergence at every compared step (steps with zero difference
    /// included, so the series can be plotted).
    pub series: Vec<StepDivergence>,
    /// Steps compared (the shorter of the two traces).
    pub compared_steps: usize,
}

impl Propagation {
    /// Maximum number of corrupted bits seen at any step.
    pub fn peak_bits(&self) -> usize {
        self.series.iter().map(|s| s.total_bits).max().unwrap_or(0)
    }

    /// Step at which corruption peaked.
    pub fn peak_step(&self) -> Option<usize> {
        self.series
            .iter()
            .max_by_key(|s| s.total_bits)
            .filter(|s| s.total_bits > 0)
            .map(|s| s.step)
    }
}

fn diff_bit_strings(a: &str, b: &str) -> usize {
    if a.len() == b.len() {
        a.bytes().zip(b.bytes()).filter(|(x, y)| x != y).count()
    } else {
        // Geometry mismatch: count the whole longer string as corrupt.
        a.len().max(b.len())
    }
}

fn diff_snapshots(
    reference: &StateSnapshot,
    faulty: &StateSnapshot,
) -> (Vec<(String, usize)>, usize) {
    let mut per_chain = Vec::new();
    let mut total = 0;
    for (chain, ref_bits) in &reference.scan {
        let n = match faulty.scan.get(chain) {
            Some(f_bits) => diff_bit_strings(ref_bits, f_bits),
            None => ref_bits.len(),
        };
        if n > 0 {
            per_chain.push((chain.clone(), n));
        }
        total += n;
    }
    for (chain, f_bits) in &faulty.scan {
        if !reference.scan.contains_key(chain) {
            per_chain.push((chain.clone(), f_bits.len()));
            total += f_bits.len();
        }
    }
    (per_chain, total)
}

/// Diffs two detail traces step by step.
pub fn analyse(reference: &[StateSnapshot], faulty: &[StateSnapshot]) -> Propagation {
    let compared = reference.len().min(faulty.len());
    let mut series = Vec::with_capacity(compared);
    let mut first = None;
    for step in 0..compared {
        let (per_chain, total_bits) = diff_snapshots(&reference[step], &faulty[step]);
        let outputs_differ = reference[step].outputs != faulty[step].outputs;
        if first.is_none() && (total_bits > 0 || outputs_differ) {
            first = Some(step);
        }
        series.push(StepDivergence {
            step,
            per_chain,
            total_bits,
            outputs_differ,
        });
    }
    Propagation {
        first_divergence: first,
        series,
        compared_steps: compared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(bits: &str, outputs: &[u32]) -> StateSnapshot {
        let mut s = StateSnapshot {
            outputs: outputs.to_vec(),
            ..Default::default()
        };
        s.scan.insert("internal".into(), bits.to_string());
        s
    }

    #[test]
    fn identical_traces_never_diverge() {
        let t = vec![snap("0000", &[1]), snap("0001", &[2])];
        let p = analyse(&t, &t);
        assert_eq!(p.first_divergence, None);
        assert_eq!(p.peak_bits(), 0);
        assert_eq!(p.peak_step(), None);
        assert_eq!(p.compared_steps, 2);
    }

    #[test]
    fn divergence_located_and_counted() {
        let reference = vec![snap("0000", &[1]), snap("0000", &[1]), snap("0000", &[1])];
        let faulty = vec![snap("0000", &[1]), snap("0100", &[1]), snap("0110", &[2])];
        let p = analyse(&reference, &faulty);
        assert_eq!(p.first_divergence, Some(1));
        assert_eq!(p.series[1].total_bits, 1);
        assert_eq!(p.series[2].total_bits, 2);
        assert!(p.series[2].outputs_differ);
        assert_eq!(p.peak_bits(), 2);
        assert_eq!(p.peak_step(), Some(2));
        assert_eq!(p.series[1].per_chain, vec![("internal".to_string(), 1)]);
    }

    #[test]
    fn output_only_divergence_detected() {
        let reference = vec![snap("00", &[1])];
        let faulty = vec![snap("00", &[9])];
        let p = analyse(&reference, &faulty);
        assert_eq!(p.first_divergence, Some(0));
        assert_eq!(p.series[0].total_bits, 0);
        assert!(p.series[0].outputs_differ);
    }

    #[test]
    fn shorter_trace_bounds_comparison() {
        let reference = vec![snap("0", &[]), snap("0", &[]), snap("0", &[])];
        let faulty = vec![snap("1", &[])];
        let p = analyse(&reference, &faulty);
        assert_eq!(p.compared_steps, 1);
        assert_eq!(p.first_divergence, Some(0));
    }

    #[test]
    fn missing_chain_counts_fully() {
        let reference = vec![snap("0101", &[])];
        let faulty = vec![StateSnapshot::default()];
        let p = analyse(&reference, &faulty);
        assert_eq!(p.series[0].total_bits, 4);
    }
}
