//! Automatic analysis of the `LoggedSystemState` table — the paper's §4
//! extension ("automatic generation of software for analysing the database
//! table LoggedSystemState").
//!
//! [`analyse_campaign`] classifies every experiment of a campaign straight
//! from the database, writes the results to an `AnalysisResults` table, and
//! the canned SQL here then produces the report tables — completing the
//! database-centric analysis loop that the paper's users had to script by
//! hand.

use crate::classify::{classify_campaign, ClassifiedExperiment};
use crate::stats::CampaignStats;
use goofi_core::dbio;
use goofi_core::{GoofiError, Result};
use goofidb::{Database, QueryResult, Value};

/// Name of the classification results table.
pub const ANALYSIS_TABLE: &str = "AnalysisResults";

/// Creates the `AnalysisResults` table (idempotent).
///
/// # Errors
///
/// Database errors other than "table exists".
pub fn init_analysis_table(db: &mut Database) -> Result<()> {
    match db.execute(
        "CREATE TABLE AnalysisResults (
            experimentName TEXT PRIMARY KEY,
            campaignName TEXT,
            outcome TEXT,
            mechanism TEXT,
            locationClass TEXT,
            trig TEXT,
            FOREIGN KEY (experimentName) REFERENCES LoggedSystemState(experimentName),
            FOREIGN KEY (campaignName) REFERENCES CampaignData(campaignName))",
    ) {
        Ok(_) => Ok(()),
        Err(goofidb::DbError::TableExists(_)) => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// Loads a campaign's experiments, classifies them against the reference
/// run, and stores the classifications. Returns the classified list.
///
/// # Errors
///
/// Fails when the campaign has no logged reference run or on database
/// errors.
pub fn analyse_campaign(db: &mut Database, campaign: &str) -> Result<Vec<ClassifiedExperiment>> {
    let records = dbio::load_experiments(db, campaign)?;
    let reference = records
        .iter()
        .find(|r| r.is_reference())
        .cloned()
        .ok_or_else(|| {
            GoofiError::Config(format!("campaign `{campaign}` has no logged reference run"))
        })?;
    let classified = classify_campaign(&reference, &records);
    init_analysis_table(db)?;
    // Re-analysis replaces previous results for the campaign.
    let _ = db.delete_where(ANALYSIS_TABLE, |row| row[1].as_text() == Some(campaign))?;
    for c in &classified {
        db.insert(
            ANALYSIS_TABLE,
            vec![
                Value::text(c.name.clone()),
                Value::text(campaign),
                Value::text(c.outcome.category()),
                c.outcome.mechanism().map_or(Value::Null, Value::text),
                c.location_class.clone().map_or(Value::Null, Value::text),
                c.trigger.clone().map_or(Value::Null, Value::text),
            ],
        )?;
    }
    Ok(classified)
}

/// Statistics for a campaign straight from the database (classifying on the
/// fly; nothing is written).
///
/// # Errors
///
/// Same conditions as [`analyse_campaign`].
pub fn campaign_stats(db: &Database, campaign: &str) -> Result<CampaignStats> {
    let records = dbio::load_experiments(db, campaign)?;
    let reference = records
        .iter()
        .find(|r| r.is_reference())
        .cloned()
        .ok_or_else(|| {
            GoofiError::Config(format!("campaign `{campaign}` has no logged reference run"))
        })?;
    Ok(CampaignStats::from_classified(&classify_campaign(
        &reference, &records,
    )))
}

/// SQL: outcome distribution of a campaign (requires [`analyse_campaign`]).
///
/// # Errors
///
/// Database errors.
pub fn outcome_distribution(db: &Database, campaign: &str) -> Result<QueryResult> {
    Ok(db.query(&format!(
        "SELECT outcome, COUNT(*) AS n FROM AnalysisResults
         WHERE campaignName = '{campaign}' GROUP BY outcome ORDER BY n DESC, outcome"
    ))?)
}

/// SQL: detections per mechanism (requires [`analyse_campaign`]).
///
/// # Errors
///
/// Database errors.
pub fn mechanism_distribution(db: &Database, campaign: &str) -> Result<QueryResult> {
    Ok(db.query(&format!(
        "SELECT mechanism, COUNT(*) AS n FROM AnalysisResults
         WHERE campaignName = '{campaign}' AND mechanism IS NOT NULL
         GROUP BY mechanism ORDER BY n DESC, mechanism"
    ))?)
}

/// SQL: outcome counts per fault-location class (requires
/// [`analyse_campaign`]).
///
/// # Errors
///
/// Database errors.
pub fn location_distribution(db: &Database, campaign: &str) -> Result<QueryResult> {
    Ok(db.query(&format!(
        "SELECT locationClass, outcome, COUNT(*) AS n FROM AnalysisResults
         WHERE campaignName = '{campaign}'
         GROUP BY locationClass, outcome ORDER BY locationClass, outcome"
    ))?)
}

/// SQL: experiments worth re-running in detail mode — the escaped errors
/// (the paper's §2.3 fail-silence-violation example).
///
/// # Errors
///
/// Database errors.
pub fn escaped_experiments(db: &Database, campaign: &str) -> Result<QueryResult> {
    Ok(db.query(&format!(
        "SELECT experimentName FROM AnalysisResults
         WHERE campaignName = '{campaign}' AND outcome = 'escaped'
         ORDER BY experimentName"
    ))?)
}
