//! Report tables: render campaign statistics the way fault-injection papers
//! present them (outcome distributions per location class, per mechanism).

use crate::stats::{CampaignStats, Estimate};
use std::fmt::Write as _;

/// Fixed category order used in all tables.
pub const CATEGORIES: [&str; 4] = ["detected", "escaped", "latent", "overwritten"];

fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let rule = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    rule(&mut out);
    out.push('|');
    for (h, w) in header.iter().zip(&widths) {
        let _ = write!(out, " {h:<w$} |");
    }
    out.push('\n');
    rule(&mut out);
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(out, " {cell:>w$} |");
        }
        out.push('\n');
    }
    rule(&mut out);
    out
}

fn percent(count: usize, total: usize) -> String {
    if total == 0 {
        "-".to_string()
    } else {
        format!("{count} ({:.1}%)", 100.0 * count as f64 / total as f64)
    }
}

/// The overall outcome-distribution table of a campaign.
pub fn outcome_table(stats: &CampaignStats) -> String {
    let header = vec!["outcome".to_string(), "experiments".to_string()];
    let mut rows = Vec::new();
    for cat in CATEGORIES {
        rows.push(vec![
            cat.to_string(),
            percent(stats.category_count(cat), stats.total),
        ]);
    }
    rows.push(vec!["total".to_string(), stats.total.to_string()]);
    render_table(&header, &rows)
}

/// Detected errors broken down per mechanism ("further classified into
/// errors detected by each of the various mechanisms", §3.4).
pub fn mechanism_table(stats: &CampaignStats) -> String {
    let detected = stats.category_count("detected");
    let header = vec!["mechanism".to_string(), "detections".to_string()];
    let mut rows: Vec<Vec<String>> = stats
        .by_mechanism
        .iter()
        .map(|(m, n)| vec![m.clone(), percent(*n, detected)])
        .collect();
    rows.sort_by(|a, b| b[1].cmp(&a[1]).then(a[0].cmp(&b[0])));
    render_table(&header, &rows)
}

/// Outcome distribution per fault-location class — the shape of the result
/// tables in the companion Thor studies.
pub fn location_table(stats: &CampaignStats) -> String {
    let mut header = vec!["location".to_string()];
    header.extend(CATEGORIES.iter().map(|c| c.to_string()));
    header.push("total".to_string());
    let mut rows = Vec::new();
    for (loc, counts) in &stats.by_location {
        let total: usize = counts.values().sum();
        let mut row = vec![loc.clone()];
        for cat in CATEGORIES {
            row.push(percent(counts.get(cat).copied().unwrap_or(0), total));
        }
        row.push(total.to_string());
        rows.push(row);
    }
    render_table(&header, &rows)
}

/// The coverage summary block.
pub fn coverage_summary(stats: &CampaignStats) -> String {
    let fmt = |label: &str, e: Estimate| {
        format!(
            "{label:<28} {}  ({}/{} experiments)\n",
            e.to_percent_string(),
            e.count,
            e.total
        )
    };
    let mut out = String::new();
    out.push_str(&fmt("error effectiveness:", stats.effectiveness()));
    out.push_str(&fmt(
        "error detection coverage:",
        stats.detection_coverage(),
    ));
    out
}

/// The full campaign report: all tables plus the coverage summary.
pub fn full_report(title: &str, stats: &CampaignStats) -> String {
    format!(
        "== {title} ==\n\n{}\n{}\n{}\n{}",
        outcome_table(stats),
        mechanism_table(stats),
        location_table(stats),
        coverage_summary(stats)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{ClassifiedExperiment, Outcome};

    fn stats() -> CampaignStats {
        let classified = vec![
            ClassifiedExperiment {
                name: "a".into(),
                outcome: Outcome::Detected {
                    mechanism: "parity_icache".into(),
                },
                location_class: Some("icache".into()),
                trigger: None,
            },
            ClassifiedExperiment {
                name: "b".into(),
                outcome: Outcome::Overwritten,
                location_class: Some("internal.R1".into()),
                trigger: None,
            },
            ClassifiedExperiment {
                name: "c".into(),
                outcome: Outcome::Latent,
                location_class: Some("icache".into()),
                trigger: None,
            },
        ];
        CampaignStats::from_classified(&classified)
    }

    #[test]
    fn outcome_table_contains_all_categories() {
        let t = outcome_table(&stats());
        for cat in CATEGORIES {
            assert!(t.contains(cat), "{t}");
        }
        assert!(t.contains("1 (33.3%)"), "{t}");
        assert!(t.contains("total"));
    }

    #[test]
    fn mechanism_table_lists_mechanisms() {
        let t = mechanism_table(&stats());
        assert!(t.contains("parity_icache"));
        assert!(t.contains("1 (100.0%)"));
    }

    #[test]
    fn location_table_has_one_row_per_class() {
        let t = location_table(&stats());
        assert!(t.contains("icache"));
        assert!(t.contains("internal.R1"));
    }

    #[test]
    fn full_report_composes() {
        let r = full_report("demo campaign", &stats());
        assert!(r.starts_with("== demo campaign =="));
        assert!(r.contains("error detection coverage:"));
        assert!(r.contains("error effectiveness:"));
    }

    #[test]
    fn empty_stats_render() {
        let s = CampaignStats::default();
        assert!(outcome_table(&s).contains("-"));
        let _ = full_report("empty", &s);
    }
}
