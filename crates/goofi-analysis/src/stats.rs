//! Dependability measures: coverage estimates with confidence intervals.
//!
//! "Fault injection can also be used to obtain dependability measures such
//! as the error coverage of a system. The coverage can then be used in an
//! analytical model to calculate the system's availability and reliability"
//! (paper §1). Campaign outcomes are Bernoulli samples, so coverage is a
//! proportion with a Wilson-score confidence interval.

use crate::classify::ClassifiedExperiment;
use std::collections::BTreeMap;

/// A proportion estimate with its confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Successes.
    pub count: usize,
    /// Trials.
    pub total: usize,
    /// Point estimate `count / total`.
    pub proportion: f64,
    /// Lower bound of the 95% Wilson interval.
    pub low: f64,
    /// Upper bound of the 95% Wilson interval.
    pub high: f64,
}

impl Estimate {
    /// Wilson-score interval at z = 1.96 (95%).
    ///
    /// # Panics
    ///
    /// Panics if `count > total`.
    pub fn wilson(count: usize, total: usize) -> Estimate {
        assert!(count <= total, "count {count} exceeds total {total}");
        if total == 0 {
            return Estimate {
                count,
                total,
                proportion: 0.0,
                low: 0.0,
                high: 1.0,
            };
        }
        let z = 1.96_f64;
        let n = total as f64;
        let p = count as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p + z2 / (2.0 * n)) / denom;
        let margin = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
        Estimate {
            count,
            total,
            proportion: p,
            low: (centre - margin).max(0.0),
            high: (centre + margin).min(1.0),
        }
    }

    /// Formats as `"p% [low%, high%]"`.
    pub fn to_percent_string(&self) -> String {
        format!(
            "{:5.1}% [{:4.1}%, {:4.1}%]",
            self.proportion * 100.0,
            self.low * 100.0,
            self.high * 100.0
        )
    }
}

/// Aggregated campaign statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CampaignStats {
    /// Total classified experiments.
    pub total: usize,
    /// Counts per outcome category.
    pub by_category: BTreeMap<String, usize>,
    /// Counts per detection mechanism (detected outcomes only).
    pub by_mechanism: BTreeMap<String, usize>,
    /// Outcome-category counts per fault-location class.
    pub by_location: BTreeMap<String, BTreeMap<String, usize>>,
}

impl CampaignStats {
    /// Builds statistics from classified experiments.
    pub fn from_classified(classified: &[ClassifiedExperiment]) -> CampaignStats {
        let mut stats = CampaignStats {
            total: classified.len(),
            ..Default::default()
        };
        for c in classified {
            *stats
                .by_category
                .entry(c.outcome.category().to_string())
                .or_insert(0) += 1;
            if let Some(m) = c.outcome.mechanism() {
                *stats.by_mechanism.entry(m.to_string()).or_insert(0) += 1;
            }
            if let Some(loc) = &c.location_class {
                *stats
                    .by_location
                    .entry(loc.clone())
                    .or_default()
                    .entry(c.outcome.category().to_string())
                    .or_insert(0) += 1;
            }
        }
        stats
    }

    /// Experiments in a category.
    pub fn category_count(&self, category: &str) -> usize {
        self.by_category.get(category).copied().unwrap_or(0)
    }

    /// Number of effective errors (detected + escaped).
    pub fn effective(&self) -> usize {
        self.category_count("detected") + self.category_count("escaped")
    }

    /// Error-detection coverage: detected / effective, with CI.
    ///
    /// This is the paper's headline dependability measure — the fraction of
    /// effective errors the target's mechanisms catch.
    pub fn detection_coverage(&self) -> Estimate {
        Estimate::wilson(self.category_count("detected"), self.effective())
    }

    /// Fraction of all experiments whose fault was effective, with CI.
    pub fn effectiveness(&self) -> Estimate {
        Estimate::wilson(self.effective(), self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{EscapeReason, Outcome};

    fn classified(outcome: Outcome, loc: &str) -> ClassifiedExperiment {
        ClassifiedExperiment {
            name: "e".into(),
            outcome,
            location_class: Some(loc.to_string()),
            trigger: None,
        }
    }

    fn sample() -> Vec<ClassifiedExperiment> {
        vec![
            classified(
                Outcome::Detected {
                    mechanism: "parity_icache".into(),
                },
                "icache",
            ),
            classified(
                Outcome::Detected {
                    mechanism: "parity_icache".into(),
                },
                "icache",
            ),
            classified(
                Outcome::Detected {
                    mechanism: "overflow".into(),
                },
                "internal.R1",
            ),
            classified(
                Outcome::Escaped {
                    reason: EscapeReason::WrongOutput,
                },
                "internal.R1",
            ),
            classified(Outcome::Latent, "internal.R2"),
            classified(Outcome::Overwritten, "memory"),
            classified(Outcome::Overwritten, "memory"),
            classified(Outcome::Overwritten, "memory"),
        ]
    }

    #[test]
    fn category_and_mechanism_counts() {
        let s = CampaignStats::from_classified(&sample());
        assert_eq!(s.total, 8);
        assert_eq!(s.category_count("detected"), 3);
        assert_eq!(s.category_count("escaped"), 1);
        assert_eq!(s.category_count("latent"), 1);
        assert_eq!(s.category_count("overwritten"), 3);
        assert_eq!(s.by_mechanism.get("parity_icache"), Some(&2));
        assert_eq!(s.by_mechanism.get("overflow"), Some(&1));
        assert_eq!(s.effective(), 4);
    }

    #[test]
    fn by_location_breakdown() {
        let s = CampaignStats::from_classified(&sample());
        assert_eq!(s.by_location["icache"]["detected"], 2);
        assert_eq!(s.by_location["memory"]["overwritten"], 3);
        assert_eq!(s.by_location["internal.R1"]["escaped"], 1);
    }

    #[test]
    fn coverage_estimates() {
        let s = CampaignStats::from_classified(&sample());
        let cov = s.detection_coverage();
        assert_eq!(cov.count, 3);
        assert_eq!(cov.total, 4);
        assert!((cov.proportion - 0.75).abs() < 1e-12);
        assert!(cov.low < 0.75 && 0.75 < cov.high);
        let eff = s.effectiveness();
        assert_eq!(eff.count, 4);
        assert_eq!(eff.total, 8);
    }

    #[test]
    fn wilson_properties() {
        // Degenerate inputs stay in [0, 1].
        let e = Estimate::wilson(0, 0);
        assert_eq!(e.low, 0.0);
        assert_eq!(e.high, 1.0);
        let e = Estimate::wilson(10, 10);
        assert!(e.high <= 1.0 && e.low > 0.5);
        let e = Estimate::wilson(0, 10);
        assert!(e.low >= 0.0 && e.high < 0.5);
        // Interval shrinks with sample size.
        let small = Estimate::wilson(5, 10);
        let large = Estimate::wilson(500, 1000);
        assert!(large.high - large.low < small.high - small.low);
        // Known value: 8/10 -> Wilson 95% CI roughly [0.49, 0.94].
        let e = Estimate::wilson(8, 10);
        assert!((e.low - 0.49).abs() < 0.02, "{e:?}");
        assert!((e.high - 0.943).abs() < 0.02, "{e:?}");
    }

    #[test]
    #[should_panic(expected = "exceeds total")]
    fn wilson_rejects_bad_input() {
        Estimate::wilson(2, 1);
    }

    #[test]
    fn percent_formatting() {
        let e = Estimate::wilson(1, 2);
        let s = e.to_percent_string();
        assert!(s.contains("50.0%"), "{s}");
    }
}
