//! The fault-injection algorithms — the paper's Figure 2, generically.
//!
//! Each algorithm is a plain function over `T: TargetAccess`, composed
//! entirely from the abstract building blocks. The SCIFI algorithm follows
//! the paper's listing step by step:
//!
//! ```text
//! readCampaignData(campaignNr);
//! makeReferenceRun();
//! for (int i = 0; i < nrOfExperiments; i++) {
//!     initTestCard(); loadWorkload(); writeMemory();
//!     runWorkload(); waitForBreakpoint();
//!     readScanChain(); injectFault(); writeScanChain();
//!     waitForTermination(); readMemory(); readScanChain();
//! }
//! ```
//!
//! `injectFault()` is realised as read-chain → invert bits → write-chain
//! ("reading the contents of the scan-chains, inverting the bits stated in
//! the campaign data and writing back", §3.3).

use crate::campaign::{Campaign, EnvExchange, OutputRegion, Technique};
use crate::fault::{FaultLocation, FaultModel, FaultSpec};
use crate::golden::GoldenCache;
use crate::journal::ExperimentJournal;
use crate::logging::{ExperimentRecord, LoggingMode, StateSnapshot, TerminationCause, Validity};
use crate::monitor::ProgressMonitor;
use crate::policy::{ExperimentFailure, Watchdog};
use crate::supervisor::{RecoveryRecord, RecoveryTrigger, Supervisor};
use crate::target::{RunBudget, RunEvent, TargetAccess, TargetSnapshot};
use crate::telemetry::{Metric, Stage, Telemetry};
use crate::trigger::Trigger;
use crate::{GoofiError, Result};
use envsim::Environment;
use scanchain::BitVec;
use std::collections::BTreeMap;

/// The outcome of a whole campaign: the reference run plus one record per
/// experiment, ready for [`crate::dbio`] storage and analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// The fault-free reference run.
    pub reference: ExperimentRecord,
    /// One record per executed experiment.
    pub records: Vec<ExperimentRecord>,
    /// Experiments that failed despite the campaign's
    /// [`ExperimentPolicy`](crate::policy::ExperimentPolicy) (empty unless
    /// the policy skips failures), in index order.
    pub failures: Vec<ExperimentFailure>,
    /// Records quarantined by golden-run revalidation: produced while the
    /// target link was suspected faulty, marked
    /// [`Validity::Invalid`](crate::logging::Validity) and superseded by
    /// the `parentExperiment`-linked re-runs in
    /// [`records`](CampaignResult::records). Kept for audit.
    pub quarantined: Vec<ExperimentRecord>,
    /// Every recovery episode the target supervisor ran (empty unless the
    /// campaign's policy enables supervision): which probes failed, which
    /// ladder stages were applied, and whether the target came back.
    pub recoveries: Vec<RecoveryRecord>,
}

/// Per-driver snapshot bookkeeping for the per-experiment fast path.
///
/// The slow path pays the dominant prefix cost on every experiment:
/// `initTestCard()` + `loadWorkload()` (a full TAP-level download) and then
/// re-executing the workload up to the injection trigger. A session holds
/// two captures that replace that prefix:
///
/// * **post-load** — taken once, right after the first experiment's Load
///   block; every later experiment restores it instead of re-downloading;
/// * **trigger** — taken at the most recent experiment's trigger point.
///   [`Trigger::AfterInstructions`] fires on an *absolute* instruction
///   counter (part of the captured debug-unit state), so a capture at
///   instruction *t* seeds any later experiment with trigger *T ≥ t*:
///   restore, then execute only the *T − t* delta.
///
/// The fast path engages only when the target stack reports both
/// [`TargetAccess::supports_snapshot`] and
/// [`TargetAccess::prefix_restore_safe`] — fault-model decorators whose
/// observable draw streams are tied to the slow path's exact call sequence
/// (the wedge drill) veto it, which keeps snapshot campaigns essence-equal
/// to slow-path campaigns under every drill.
#[derive(Debug, Default)]
pub struct ExperimentSession {
    /// Lazily probed capability: `None` until the first experiment,
    /// `Some(false)` pins the slow path for the rest of the campaign.
    enabled: Option<bool>,
    /// State right after the Load block, before any execution.
    post_load: Option<TargetSnapshot>,
    /// State at the most recent trigger point (pre-injection, pristine).
    trigger: Option<TriggerSnapshot>,
}

#[derive(Debug)]
struct TriggerSnapshot {
    snap: TargetSnapshot,
    /// Absolute instruction count at capture (the donor's trigger point).
    instructions: u64,
    /// Cycle counter right after the donor's Load block, so a restored
    /// experiment's watchdog measures the same elapsed cycles the slow
    /// path would.
    post_load_cycles: u64,
}

impl ExperimentSession {
    /// A fresh session with no captures.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the fast path is usable on `target`, probing the capability
    /// on first call and pinning the answer.
    fn usable<T: TargetAccess + ?Sized>(&mut self, target: &T) -> bool {
        *self
            .enabled
            .get_or_insert_with(|| target.supports_snapshot() && target.prefix_restore_safe())
    }
}

/// Runs a SCIFI campaign (the paper's `faultInjectorSCIFI`).
///
/// # Errors
///
/// Fails if the campaign's technique is not [`Technique::Scifi`], on target
/// errors, or when stopped from the monitor.
pub fn faultinjector_scifi<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    env: &mut dyn Environment,
) -> Result<CampaignResult> {
    if campaign.technique != Technique::Scifi {
        return Err(GoofiError::Config(
            "faultinjector_scifi requires a SCIFI campaign".into(),
        ));
    }
    run_campaign(target, campaign, monitor, env)
}

/// Runs a pre-runtime or runtime SWIFI campaign (the paper's
/// `faultInjectorSWIFI`).
///
/// # Errors
///
/// Fails if the campaign's technique is SCIFI, on target errors, or when
/// stopped from the monitor.
pub fn faultinjector_swifi<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    env: &mut dyn Environment,
) -> Result<CampaignResult> {
    if campaign.technique == Technique::Scifi {
        return Err(GoofiError::Config(
            "faultinjector_swifi requires a SWIFI campaign".into(),
        ));
    }
    run_campaign(target, campaign, monitor, env)
}

/// Runs a pin-level campaign: faults forced onto device pins through the
/// boundary scan chain (the third technique of the paper's §2.1, composed
/// from the very same building blocks).
///
/// # Errors
///
/// Fails if the campaign's technique is not [`Technique::PinLevel`], on
/// target errors, or when stopped from the monitor.
pub fn faultinjector_pinlevel<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    env: &mut dyn Environment,
) -> Result<CampaignResult> {
    if campaign.technique != Technique::PinLevel {
        return Err(GoofiError::Config(
            "faultinjector_pinlevel requires a pin-level campaign".into(),
        ));
    }
    run_campaign(target, campaign, monitor, env)
}

/// Technique-dispatching campaign driver: reference run, then every
/// experiment, honouring the progress monitor between experiments and the
/// campaign's [`ExperimentPolicy`](crate::policy::ExperimentPolicy) on
/// experiment failures.
///
/// # Errors
///
/// Target errors, configuration errors, [`GoofiError::Stopped`], or — when
/// the policy aborts on a failing experiment —
/// [`GoofiError::ExperimentFailed`] carrying every completed record.
pub fn run_campaign<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    env: &mut dyn Environment,
) -> Result<CampaignResult> {
    run_campaign_journaled(target, campaign, monitor, env, None)
}

/// [`run_campaign`] with an optional crash-safe journal: each finished
/// experiment is appended (and synced) before the next one starts, so a
/// process crash loses at most the experiment in flight — see
/// [`crate::runner::resume_campaign`].
///
/// # Errors
///
/// As [`run_campaign`], plus journal I/O errors.
pub fn run_campaign_journaled<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    env: &mut dyn Environment,
    journal: Option<&mut ExperimentJournal>,
) -> Result<CampaignResult> {
    run_campaign_journaled_opts(target, campaign, monitor, env, journal, None, true)
}

/// [`run_campaign_journaled`] with the hot-path controls exposed:
///
/// * `cache` — a [`GoldenCache`] consulted before the reference run; a hit
///   skips recomputing the golden log entirely (and a revalidation drift
///   invalidates the cached entry);
/// * `snapshots` — `false` forces the slow per-experiment path even on
///   snapshot-capable targets (the CLI's `--no-snapshot`).
///
/// # Errors
///
/// As [`run_campaign_journaled`].
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_journaled_opts<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    env: &mut dyn Environment,
    mut journal: Option<&mut ExperimentJournal>,
    cache: Option<&GoldenCache>,
    snapshots: bool,
) -> Result<CampaignResult> {
    campaign.validate()?;
    let tel = monitor.telemetry().clone();
    let _campaign_span = tel.campaign_span(&campaign.name);
    let reference = match cache.and_then(|c| c.load(campaign)) {
        Some(cached) => {
            tel.count(Metric::GoldenCacheHits, 1);
            cached
        }
        None => {
            let fresh = reference_run_traced(target, campaign, &mut *env, &tel)?;
            if let Some(c) = cache {
                tel.count(Metric::GoldenCacheMisses, 1);
                c.store(campaign, &fresh);
            }
            fresh
        }
    };
    if let Some(j) = journal.as_deref_mut() {
        tel.time(Stage::DbWrite, || j.append_record(None, &reference))?;
    }
    // Snapshot mode only changes anything when the target (and its whole
    // decorator stack) can actually take and safely reuse snapshots;
    // otherwise stay on the slow path — including its execution order.
    let snapshots = snapshots && target.supports_snapshot() && target.prefix_restore_safe();
    let mut session = if snapshots {
        Some(ExperimentSession::new())
    } else {
        None
    };
    // Snapshot mode executes experiments in trigger order: each experiment
    // then fast-forwards from the previous trigger snapshot instead of
    // re-executing its whole prefix, so total prefix work across the
    // campaign is one amortised sweep of the reference run. The sort is
    // stable (ties keep campaign-index order) and the records are
    // reassembled in campaign-index order before returning, so callers see
    // the same result as the slow path.
    let mut order: Vec<usize> = (0..campaign.faults.len()).collect();
    if snapshots {
        order.sort_by_key(|&i| trigger_order_key(&campaign.faults[i].trigger));
    }
    let mut records = Vec::with_capacity(campaign.faults.len());
    let mut record_order: Vec<usize> = Vec::with_capacity(campaign.faults.len());
    let mut failures = Vec::new();
    let mut quarantined = Vec::new();
    let mut recoveries = Vec::new();
    // The supervisor borrows the reference for its golden smoke probe; a
    // clone keeps the original free to move into the result.
    let probe_reference = reference.clone();
    let supervisor = Supervisor::from_campaign(campaign, &probe_reference);
    // Golden-run revalidation window: (campaign index, position in
    // `records`) of every experiment completed since the last clean check.
    let mut window: Vec<(usize, usize)> = Vec::new();
    let revalidate_every = campaign
        .policy
        .revalidate_every
        .map(|n| n as usize)
        .filter(|n| *n > 0);
    for index in order {
        monitor.checkpoint()?;
        match run_experiment_with_policy(
            target,
            campaign,
            index,
            monitor,
            &mut *env,
            session.as_mut(),
        )? {
            Ok(record) => {
                let outcome = resolve_hangs(
                    target,
                    campaign,
                    supervisor.as_ref(),
                    record,
                    index,
                    monitor,
                    &mut *env,
                    &mut journal,
                    &mut quarantined,
                    &mut recoveries,
                )?;
                match outcome {
                    SuperviseOutcome::Record(record) => {
                        monitor.record(&record.termination);
                        if let Some(j) = journal.as_deref_mut() {
                            tel.time(Stage::DbWrite, || j.append_record(Some(index), &record))?;
                        }
                        window.push((index, records.len()));
                        record_order.push(index);
                        records.push(record);
                    }
                    SuperviseOutcome::Failure(failure) => {
                        monitor.record_failed();
                        if let Some(j) = journal.as_deref_mut() {
                            tel.time(Stage::DbWrite, || j.append_failure(&failure))?;
                        }
                        if campaign.policy.fails_campaign() {
                            return Err(GoofiError::ExperimentFailed {
                                failure,
                                partial: Box::new(CampaignResult {
                                    reference,
                                    records,
                                    failures,
                                    quarantined,
                                    recoveries,
                                }),
                            });
                        }
                        failures.push(failure);
                    }
                    SuperviseOutcome::Offline(context) => {
                        return Err(GoofiError::TargetOffline {
                            context,
                            partial: Box::new(CampaignResult {
                                reference,
                                records,
                                failures,
                                quarantined,
                                recoveries,
                            }),
                        });
                    }
                }
            }
            Err(failure) => {
                monitor.record_failed();
                if let Some(j) = journal.as_deref_mut() {
                    tel.time(Stage::DbWrite, || j.append_failure(&failure))?;
                }
                if campaign.policy.fails_campaign() {
                    return Err(GoofiError::ExperimentFailed {
                        failure,
                        partial: Box::new(CampaignResult {
                            reference,
                            records,
                            failures,
                            quarantined,
                            recoveries,
                        }),
                    });
                }
                failures.push(failure);
            }
        }
        // Scheduled health probes between experiments.
        if let Some(sup) = &supervisor {
            if sup.probe_due(index + 1) && !sup.probe(target, &mut *env, monitor).passed() {
                let context = campaign.experiment_name(index);
                let recovery = sup.recover(
                    target,
                    &mut *env,
                    monitor,
                    &context,
                    RecoveryTrigger::ProbeFailure,
                );
                let recovered = recovery.recovered;
                recoveries.push(recovery);
                if !recovered {
                    return Err(GoofiError::TargetOffline {
                        context,
                        partial: Box::new(CampaignResult {
                            reference,
                            records,
                            failures,
                            quarantined,
                            recoveries,
                        }),
                    });
                }
            }
        }
        if revalidate_every.is_some_and(|n| window.len() >= n) {
            let fatal = revalidate_window(
                target,
                campaign,
                monitor,
                &mut *env,
                &mut journal,
                &reference,
                &mut records,
                &mut failures,
                &mut quarantined,
                &mut window,
                cache,
            )?;
            if let Some(failure) = fatal {
                return Err(GoofiError::ExperimentFailed {
                    failure,
                    partial: Box::new(CampaignResult {
                        reference,
                        records,
                        failures,
                        quarantined,
                        recoveries,
                    }),
                });
            }
        }
    }
    // A final check covers the tail window of a campaign whose length is
    // not a multiple of the interval.
    if revalidate_every.is_some() && !window.is_empty() {
        let fatal = revalidate_window(
            target,
            campaign,
            monitor,
            &mut *env,
            &mut journal,
            &reference,
            &mut records,
            &mut failures,
            &mut quarantined,
            &mut window,
            cache,
        )?;
        if let Some(failure) = fatal {
            return Err(GoofiError::ExperimentFailed {
                failure,
                partial: Box::new(CampaignResult {
                    reference,
                    records,
                    failures,
                    quarantined,
                    recoveries,
                }),
            });
        }
    }
    // Undo the trigger-order execution permutation: rebuild `records` in
    // campaign-index order (revalidation replaced records in place, so the
    // lockstep `record_order` stayed aligned throughout).
    let mut indexed: Vec<(usize, ExperimentRecord)> =
        record_order.into_iter().zip(records).collect();
    indexed.sort_by_key(|(index, _)| *index);
    let records = indexed.into_iter().map(|(_, record)| record).collect();
    failures.sort_by_key(|failure| failure.index);
    Ok(CampaignResult {
        reference,
        records,
        failures,
        quarantined,
        recoveries,
    })
}

/// Execution-order key for snapshot-mode campaigns: instruction-count
/// triggers sort by their absolute trigger time so successive experiments
/// fast-forward monotonically; every other trigger keys to zero (those
/// experiments restore the post-load snapshot directly, so their relative
/// order is irrelevant to the hot path).
pub(crate) fn trigger_order_key(trigger: &Trigger) -> u64 {
    match trigger {
        Trigger::AfterInstructions(n) => *n,
        _ => 0,
    }
}

/// What target supervision decided about a freshly-completed record.
#[allow(clippy::large_enum_variant)] // transient per-experiment value, never stored in bulk
enum SuperviseOutcome {
    /// The record stands (possibly a `parentExperiment`-linked re-run that
    /// replaced a quarantined hang).
    Record(ExperimentRecord),
    /// The experiment kept hanging (or its re-run failed); handled by the
    /// campaign's failure policy.
    Failure(ExperimentFailure),
    /// The recovery ladder was exhausted: the target is offline.
    Offline(String),
}

/// Confirms `Timeout` terminations with the health-probe suite and, for
/// real target hangs, quarantines the record (termination rewritten to
/// [`TerminationCause::TargetHang`]), climbs the recovery ladder and
/// re-runs the experiment as a `parentExperiment`-linked child — looping
/// (bounded by the ladder's `max_hang_rounds`) in case the re-run wedges
/// the target again. A `Timeout` whose probes pass is a slow workload and
/// stands unchanged; without a supervisor every record stands unchanged.
///
/// # Errors
///
/// [`GoofiError::Stopped`] or journal I/O errors.
#[allow(clippy::too_many_arguments)]
fn resolve_hangs<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    supervisor: Option<&Supervisor<'_>>,
    mut record: ExperimentRecord,
    index: usize,
    monitor: &ProgressMonitor,
    env: &mut dyn Environment,
    journal: &mut Option<&mut ExperimentJournal>,
    quarantined: &mut Vec<ExperimentRecord>,
    recoveries: &mut Vec<RecoveryRecord>,
) -> Result<SuperviseOutcome> {
    let Some(sup) = supervisor else {
        return Ok(SuperviseOutcome::Record(record));
    };
    let mut round: u32 = 0;
    loop {
        if record.termination != TerminationCause::Timeout {
            return Ok(SuperviseOutcome::Record(record));
        }
        if sup.probe(target, &mut *env, monitor).passed() {
            // The target answers its probes: a slow workload, not a wedge.
            // The Timeout stands.
            return Ok(SuperviseOutcome::Record(record));
        }
        // Confirmed hang: quarantine the record, recover, re-run.
        round += 1;
        monitor.record_hang();
        record.termination = TerminationCause::TargetHang;
        record.validity = Validity::Invalid;
        if let Some(j) = journal.as_deref_mut() {
            monitor
                .telemetry()
                .time(Stage::DbWrite, || j.append_record(Some(index), &record))?;
        }
        monitor.record_quarantined();
        let parent = record.name.clone();
        quarantined.push(record);
        let recovery = sup.recover(target, env, monitor, &parent, RecoveryTrigger::TargetHang);
        let recovered = recovery.recovered;
        recoveries.push(recovery);
        if !recovered {
            return Ok(SuperviseOutcome::Offline(parent));
        }
        if round > sup.ladder().max_hang_rounds {
            return Ok(SuperviseOutcome::Failure(ExperimentFailure {
                index,
                name: parent,
                attempts: round,
                error: "target hang persisted across recovery re-runs".into(),
            }));
        }
        let original = campaign.experiment_name(index);
        let link = Some((format!("{original}/rerun{round}"), parent));
        // Recovery re-runs stay on the slow path: a just-recovered target
        // should genuinely re-execute, not restore pre-hang state.
        match run_linked_experiment_with_policy(target, campaign, index, link, monitor, env, None)?
        {
            Ok(rerun) => record = rerun,
            Err(failure) => return Ok(SuperviseOutcome::Failure(failure)),
        }
    }
}

/// Whether a freshly-executed golden run reproduces the stored reference
/// log: same architectural state, same workload outputs, same termination.
/// Any drift means the link (or the target) misbehaved at some point since
/// the last clean check.
pub fn golden_run_matches(reference: &ExperimentRecord, golden: &ExperimentRecord) -> bool {
    golden.termination == reference.termination
        && golden.state.outputs == reference.state.outputs
        && golden.state.same_state(&reference.state)
}

/// Re-runs the fault-free reference and, on drift from the stored golden
/// log, quarantines every record in `window` (marked invalid, re-journaled)
/// and re-runs each as a fresh `parentExperiment`-linked experiment that
/// replaces the quarantined original in `records` — the paper's §2.3 re-run
/// workflow turned into a link-integrity countermeasure.
///
/// Returns `Ok(Some(failure))` when a re-run failed and the policy aborts
/// the campaign; the window is cleared in every non-error case.
#[allow(clippy::too_many_arguments)]
fn revalidate_window<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    env: &mut dyn Environment,
    journal: &mut Option<&mut ExperimentJournal>,
    reference: &ExperimentRecord,
    records: &mut [ExperimentRecord],
    failures: &mut Vec<ExperimentFailure>,
    quarantined: &mut Vec<ExperimentRecord>,
    window: &mut Vec<(usize, usize)>,
    cache: Option<&GoldenCache>,
) -> Result<Option<ExperimentFailure>> {
    // Revalidation goldens are always genuinely re-executed — never served
    // from the cache — because their whole purpose is to exercise the link
    // and target afresh.
    let golden = reference_run_traced(target, campaign, &mut *env, monitor.telemetry())?;
    if golden_run_matches(reference, &golden) {
        // A clean check is also the moment the cache entry is known good:
        // store it if a previous store failed or never ran.
        if let Some(c) = cache {
            c.store(campaign, reference);
        }
        window.clear();
        return Ok(None);
    }
    // Drift: the cached golden can no longer be trusted by future runs.
    if let Some(c) = cache {
        c.invalidate(campaign);
    }
    // Mark the whole window first, re-run second: once the quarantine
    // entries hit the journal, a crash at any later point still re-runs
    // every suspect experiment on resume.
    for &(index, pos) in window.iter() {
        records[pos].validity = Validity::Invalid;
        if let Some(j) = journal.as_deref_mut() {
            monitor.telemetry().time(Stage::DbWrite, || {
                j.append_record(Some(index), &records[pos])
            })?;
        }
        monitor.record_quarantined();
    }
    for (index, pos) in window.drain(..) {
        let original = records[pos].name.clone();
        let link = Some((format!("{original}/rerun1"), original));
        // The experiment already counted toward progress when it first
        // completed, so re-run outcomes update only the quarantine
        // counter, never `completed`/`failed`. Quarantine re-runs stay on
        // the slow path: they replace results produced over a suspect
        // link, so nothing from before the drift may be reused.
        match run_linked_experiment_with_policy(target, campaign, index, link, monitor, env, None)?
        {
            Ok(rerun) => {
                if let Some(j) = journal.as_deref_mut() {
                    monitor
                        .telemetry()
                        .time(Stage::DbWrite, || j.append_record(Some(index), &rerun))?;
                }
                quarantined.push(std::mem::replace(&mut records[pos], rerun));
            }
            Err(failure) => {
                if let Some(j) = journal.as_deref_mut() {
                    monitor
                        .telemetry()
                        .time(Stage::DbWrite, || j.append_failure(&failure))?;
                }
                // The invalid original stays in place (still quarantined);
                // a later resume re-runs it from the journal.
                if campaign.policy.fails_campaign() {
                    return Ok(Some(failure));
                }
                failures.push(failure);
            }
        }
    }
    Ok(None)
}

/// Runs one experiment under the campaign's retry policy. `Ok(Ok(_))` is a
/// completed record; `Ok(Err(_))` is an experiment that kept failing after
/// every allowed retry (the caller applies the policy's skip/fail choice);
/// `Err(_)` is reserved for [`GoofiError::Stopped`].
///
/// # Errors
///
/// [`GoofiError::Stopped`] when the monitor ends the campaign mid-retry.
pub fn run_experiment_with_policy<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    index: usize,
    monitor: &ProgressMonitor,
    env: &mut dyn Environment,
    session: Option<&mut ExperimentSession>,
) -> Result<std::result::Result<ExperimentRecord, ExperimentFailure>> {
    run_linked_experiment_with_policy(target, campaign, index, None, monitor, env, session)
}

/// [`run_experiment_with_policy`] for a re-run: the produced record is
/// renamed to `name` and linked to `parent` via `parentExperiment` — the
/// paper's §2.3 re-run workflow, used by campaign resume to re-run
/// previously failed experiments as fresh, linked experiments.
///
/// # Errors
///
/// [`GoofiError::Stopped`] when the monitor ends the campaign mid-retry.
#[allow(clippy::too_many_arguments)]
pub fn run_linked_experiment_with_policy<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    index: usize,
    link: Option<(String, String)>,
    monitor: &ProgressMonitor,
    env: &mut dyn Environment,
    mut session: Option<&mut ExperimentSession>,
) -> Result<std::result::Result<ExperimentRecord, ExperimentFailure>> {
    let retries = campaign.policy.retries();
    let tel = monitor.telemetry();
    let mut attempt: u32 = 0;
    loop {
        let result = match &link {
            None => run_experiment_inner(
                target,
                campaign,
                index,
                &mut *env,
                None,
                campaign.logging,
                tel,
                session.as_deref_mut(),
            ),
            Some((name, parent)) => run_experiment_inner(
                target,
                campaign,
                index,
                &mut *env,
                Some(parent.clone()),
                campaign.logging,
                tel,
                session.as_deref_mut(),
            )
            .map(|mut record| {
                record.name = name.clone();
                record
            }),
        };
        match result {
            Ok(record) => return Ok(Ok(record)),
            // A user stop is not an experiment failure: propagate it.
            Err(GoofiError::Stopped) => return Err(GoofiError::Stopped),
            Err(e) => {
                if attempt < retries {
                    monitor.record_retry();
                    let delay = campaign.policy.backoff.delay(attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                    // Honour pause/stop between retries as well.
                    monitor.checkpoint()?;
                    continue;
                }
                return Ok(Err(ExperimentFailure {
                    index,
                    name: match &link {
                        Some((name, _)) => name.clone(),
                        None => campaign.experiment_name(index),
                    },
                    attempts: attempt + 1,
                    error: e.to_string(),
                }));
            }
        }
    }
}

/// Executes the fault-free reference run, "logging the fault-free system
/// state" (§3.3) — in detail mode, after every instruction.
///
/// # Errors
///
/// Target errors.
pub fn make_reference_run<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    env: &mut dyn Environment,
) -> Result<ExperimentRecord> {
    reference_run_traced(target, campaign, env, &Telemetry::disabled())
}

/// [`make_reference_run`] with load/run/scan stage spans recorded to `tel`
/// under a reference-run experiment span.
pub(crate) fn reference_run_traced<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    env: &mut dyn Environment,
    tel: &Telemetry,
) -> Result<ExperimentRecord> {
    let exp_span = tel
        .experiment_span_with(|| format!("{}/{}", campaign.name, ExperimentRecord::REFERENCE_NAME));
    {
        let _load = tel.stage_span(Stage::Load, exp_span.id());
        target.init_test_card()?;
        target.load_workload(&campaign.workload)?;
        env.reset();
        target.write_input_ports(&campaign.initial_inputs)?;
        target.clear_breakpoints()?;
    }
    let mut wd = Watchdog::start(&campaign.policy.watchdog, target.cycles_executed());
    let (termination, trace) = {
        let _run = tel.stage_span(Stage::Run, exp_span.id());
        if campaign.logging == LoggingMode::Detail {
            continue_stepping(target, campaign, env, None, true, &mut wd)?
        } else {
            continue_to_termination(target, campaign, env, &mut wd)?
        }
    };
    let state = {
        let _scan = tel.stage_span(Stage::Scan, exp_span.id());
        snapshot(target, campaign, true)?
    };
    Ok(ExperimentRecord {
        name: format!("{}/{}", campaign.name, ExperimentRecord::REFERENCE_NAME),
        parent: None,
        campaign: campaign.name.clone(),
        fault: None,
        termination,
        state,
        trace,
        validity: Validity::Valid,
    })
}

/// Executes one fault-injection experiment.
///
/// # Errors
///
/// Target errors or an out-of-range experiment index.
pub fn run_experiment<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    index: usize,
    env: &mut dyn Environment,
) -> Result<ExperimentRecord> {
    run_experiment_inner(
        target,
        campaign,
        index,
        env,
        None,
        campaign.logging,
        &Telemetry::disabled(),
        None,
    )
}

/// Re-runs experiment `index` in detail mode, recording `parent` as the
/// originating experiment — the paper's §2.3 `parentExperiment` workflow
/// ("re-running the experiment logging the system state after each machine
/// instruction").
///
/// # Errors
///
/// Target errors or an out-of-range experiment index.
pub fn rerun_detailed<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    index: usize,
    env: &mut dyn Environment,
) -> Result<ExperimentRecord> {
    let parent = campaign.experiment_name(index);
    let mut record = run_experiment_inner(
        target,
        campaign,
        index,
        env,
        Some(parent.clone()),
        LoggingMode::Detail,
        &Telemetry::disabled(),
        None,
    )?;
    record.name = format!("{parent}/detail");
    Ok(record)
}

#[allow(clippy::too_many_arguments)]
fn run_experiment_inner<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    index: usize,
    env: &mut dyn Environment,
    parent: Option<String>,
    logging: LoggingMode,
    tel: &Telemetry,
    mut session: Option<&mut ExperimentSession>,
) -> Result<ExperimentRecord> {
    let spec = campaign.faults.get(index).ok_or_else(|| {
        GoofiError::Config(format!(
            "experiment index {index} out of range ({} faults)",
            campaign.faults.len()
        ))
    })?;
    let exp_span = tel.experiment_span_with(|| campaign.experiment_name(index));

    // initTestCard(); loadWorkload(); writeMemory(); — or, on the fast
    // path, one restore of the post-load capture: the TAP-level workload
    // download is paid once per campaign instead of once per experiment.
    // `env.reset()` still runs (the environment lives host-side, outside
    // any target snapshot); input ports and cleared breakpoints are part
    // of the captured state.
    let mut restored = false;
    if let Some(s) = session.as_deref_mut() {
        if s.usable(&*target) {
            if let Some(snap) = &s.post_load {
                let _sr = tel.stage_span(Stage::SnapshotRestore, exp_span.id());
                target.restore(snap)?;
                tel.count(Metric::Restores, 1);
                env.reset();
                restored = true;
            }
        }
    }
    if !restored {
        let _load = tel.stage_span(Stage::Load, exp_span.id());
        target.init_test_card()?;
        target.load_workload(&campaign.workload)?;
        env.reset();
        target.write_input_ports(&campaign.initial_inputs)?;
        target.clear_breakpoints()?;
        if let Some(s) = session.as_deref_mut() {
            if s.usable(&*target) {
                let _sr = tel.stage_span(Stage::SnapshotRestore, exp_span.id());
                match target.snapshot() {
                    Ok(snap) => {
                        s.post_load = Some(snap);
                        tel.count(Metric::SnapshotsTaken, 1);
                    }
                    // A target that advertises the capability but cannot
                    // deliver pins the slow path for the campaign.
                    Err(_) => s.enabled = Some(false),
                }
            }
        }
    }
    let mut wd_start = target.cycles_executed();
    let mut wd = Watchdog::start(&campaign.policy.watchdog, wd_start);

    let trace: Vec<StateSnapshot>;
    let termination = if spec.trigger.is_pre_runtime() {
        // Pre-runtime SWIFI: corrupt the image, then just run.
        {
            let _inject = tel.stage_span(Stage::Inject, exp_span.id());
            apply_fault(target, spec)?;
        }
        let (t, tr) = {
            let _run = tel.stage_span(Stage::Run, exp_span.id());
            continue_with_model(target, campaign, spec, env, logging, &mut wd)?
        };
        trace = tr;
        t
    } else {
        // runWorkload(); waitForBreakpoint(). In detail mode the
        // pre-injection phase is logged per instruction too, so the
        // experiment trace aligns with the reference trace.
        let detail = logging == LoggingMode::Detail;
        // Trigger fast-forward: `AfterInstructions` fires on an absolute
        // instruction counter that is part of the captured debug-unit
        // state, so the latest trigger capture at instruction t seeds any
        // experiment with trigger T ≥ t — restore, then execute only the
        // delta (or nothing at all when t == T). Gated on normal-mode
        // logging (detail mode must log the whole prefix) and on captures
        // taken before any environment exchange (the host-side
        // environment starts every experiment freshly reset, so restoring
        // past an exchange would desynchronise it from the target).
        let mut exchanges: u64 = 0;
        let mut at_trigger = false;
        if !detail {
            if let (Trigger::AfterInstructions(want), Some(s)) =
                (spec.trigger, session.as_deref_mut())
            {
                if s.usable(&*target) {
                    if let Some(ts) = &s.trigger {
                        if ts.instructions <= want {
                            let _sr = tel.stage_span(Stage::SnapshotRestore, exp_span.id());
                            target.restore(&ts.snap)?;
                            tel.count(Metric::Restores, 1);
                            // The slow path's watchdog starts counting at
                            // the post-load cycle mark; keep that origin.
                            wd_start = ts.post_load_cycles;
                            wd = Watchdog::start(&campaign.policy.watchdog, wd_start);
                            at_trigger = ts.instructions == want;
                        }
                    }
                }
            }
        }
        let (outcome, mut pre_trace) = if at_trigger {
            // Restored exactly onto the trigger point (post-unlatch,
            // post-clear state as captured): nothing left to execute.
            (WaitOutcome::Breakpoint, Vec::new())
        } else {
            target.set_breakpoint(spec.trigger)?;
            let _run = tel.stage_span(Stage::Run, exp_span.id());
            if detail {
                wait_for_breakpoint_detailed(target, campaign, &mut *env, &mut wd)?
            } else {
                (
                    wait_for_breakpoint(target, campaign, &mut *env, &mut wd, &mut exchanges)?,
                    Vec::new(),
                )
            }
        };
        match outcome {
            WaitOutcome::Breakpoint => {
                target.clear_breakpoints()?;
                // Re-seed the trigger cache at this experiment's point:
                // the next experiment restores here when its own trigger
                // is at or past this instant.
                if !detail && !at_trigger && exchanges == 0 {
                    if let (Trigger::AfterInstructions(_), Some(s)) = (spec.trigger, session) {
                        if s.usable(&*target) {
                            let _sr = tel.stage_span(Stage::SnapshotRestore, exp_span.id());
                            if let Ok(snap) = target.snapshot() {
                                s.trigger = Some(TriggerSnapshot {
                                    snap,
                                    instructions: target.instructions_executed(),
                                    post_load_cycles: wd_start,
                                });
                                tel.count(Metric::SnapshotsTaken, 1);
                            }
                        }
                    }
                }
                // readScanChain(); injectFault(); writeScanChain();
                {
                    let _inject = tel.stage_span(Stage::Inject, exp_span.id());
                    apply_fault(target, spec)?;
                }
                // waitForTermination();
                let (t, tr) = {
                    let _run = tel.stage_span(Stage::Run, exp_span.id());
                    continue_with_model(target, campaign, spec, env, logging, &mut wd)?
                };
                pre_trace.extend(tr);
                trace = pre_trace;
                t
            }
            // The trigger never fired: the workload terminated first. The
            // fault was never injected; log the natural termination.
            WaitOutcome::Terminated(t) => {
                trace = pre_trace;
                t
            }
        }
    };

    // readMemory(); readScanChain(); -> log the system state.
    let state = {
        let _scan = tel.stage_span(Stage::Scan, exp_span.id());
        snapshot(target, campaign, true)?
    };
    Ok(ExperimentRecord {
        name: campaign.experiment_name(index),
        parent,
        campaign: campaign.name.clone(),
        fault: Some(spec.clone()),
        termination,
        state,
        trace,
        validity: Validity::Valid,
    })
}

// ---------------------------------------------------------------------------
// Fault application.

/// Injects every location of `spec` once: scan cells via
/// read-chain/flip/write-chain, memory bits via the SWIFI primitive.
///
/// # Errors
///
/// Scan or memory errors (e.g. attempting to flip a read-only cell).
pub fn apply_fault<T: TargetAccess + ?Sized>(target: &mut T, spec: &FaultSpec) -> Result<()> {
    match spec.model {
        FaultModel::TransientBitFlip | FaultModel::Intermittent { .. } => {
            flip_locations(target, &spec.locations)
        }
        FaultModel::StuckAtZero => force_locations(target, &spec.locations, false),
        FaultModel::StuckAtOne => force_locations(target, &spec.locations, true),
    }
}

fn flip_locations<T: TargetAccess + ?Sized>(
    target: &mut T,
    locations: &[FaultLocation],
) -> Result<()> {
    // Batched scan transaction: all flips into one chain share a single
    // capture–shift–update walk instead of paying a read+write pair per
    // bit. Bit flips commute, so grouping cannot change the outcome.
    let mut chains: BTreeMap<String, BitVec> = BTreeMap::new();
    for loc in locations {
        match loc {
            FaultLocation::ScanCell { chain, cell, bit } => {
                let layout = chain_layout(target, chain)?;
                let offset = cell_bit_offset(&layout, chain, cell, *bit)?;
                if !chains.contains_key(chain) {
                    chains.insert(chain.clone(), target.read_scan_chain(chain)?);
                }
                let bits = chains.get_mut(chain).expect("chain captured above");
                bits.flip(offset);
            }
            FaultLocation::Memory { addr, bit } => {
                target.flip_memory_bit(*addr, *bit)?;
            }
        }
    }
    for (chain, bits) in &chains {
        target.write_scan_chain(chain, bits)?;
    }
    Ok(())
}

fn force_locations<T: TargetAccess + ?Sized>(
    target: &mut T,
    locations: &[FaultLocation],
    value: bool,
) -> Result<()> {
    // Same batching as `flip_locations`; a chain none of whose bits
    // actually change skips its update walk entirely.
    let mut chains: BTreeMap<String, (BitVec, bool)> = BTreeMap::new();
    for loc in locations {
        match loc {
            FaultLocation::ScanCell { chain, cell, bit } => {
                let layout = chain_layout(target, chain)?;
                let offset = cell_bit_offset(&layout, chain, cell, *bit)?;
                if !chains.contains_key(chain) {
                    let bits = target.read_scan_chain(chain)?;
                    chains.insert(chain.clone(), (bits, false));
                }
                let (bits, dirty) = chains.get_mut(chain).expect("chain captured above");
                if bits.get(offset) != value {
                    bits.set(offset, value);
                    *dirty = true;
                }
            }
            FaultLocation::Memory { addr, bit } => {
                let word = target.read_memory(*addr, 1)?[0];
                let is_set = (word >> bit) & 1 == 1;
                if is_set != value {
                    target.flip_memory_bit(*addr, *bit)?;
                }
            }
        }
    }
    for (chain, (bits, dirty)) in &chains {
        if *dirty {
            target.write_scan_chain(chain, bits)?;
        }
    }
    Ok(())
}

fn chain_layout<T: TargetAccess + ?Sized>(
    target: &T,
    chain: &str,
) -> Result<scanchain::ChainLayout> {
    target
        .chain_layouts()
        .into_iter()
        .find(|l| l.name() == chain)
        .ok_or_else(|| GoofiError::Scan(scanchain::ScanError::UnknownChain(chain.to_string())))
}

fn cell_bit_offset(
    layout: &scanchain::ChainLayout,
    chain: &str,
    cell: &str,
    bit: usize,
) -> Result<usize> {
    let def = layout
        .cell(cell)
        .ok_or_else(|| GoofiError::Scan(scanchain::ScanError::UnknownCell(cell.to_string())))?;
    if def.access == scanchain::CellAccess::ReadOnly {
        return Err(GoofiError::Scan(scanchain::ScanError::ReadOnlyCell {
            cell: cell.to_string(),
            chain: chain.to_string(),
        }));
    }
    if bit >= def.width {
        return Err(GoofiError::Scan(scanchain::ScanError::ValueTooWide {
            cell: cell.to_string(),
            width: def.width,
            value: bit as u64,
        }));
    }
    Ok(def.offset + bit)
}

// ---------------------------------------------------------------------------
// Run-control helpers.

enum WaitOutcome {
    Breakpoint,
    Terminated(TerminationCause),
}

/// Detail-mode variant of [`wait_for_breakpoint`]: single-steps to the
/// breakpoint, logging a snapshot after every instruction.
fn wait_for_breakpoint_detailed<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    env: &mut dyn Environment,
    wd: &mut Watchdog,
) -> Result<(WaitOutcome, Vec<StateSnapshot>)> {
    let mut trace = Vec::new();
    loop {
        if remaining_budget(target, campaign) == 0 || wd.expired(target.cycles_executed()) {
            return Ok((WaitOutcome::Terminated(TerminationCause::Timeout), trace));
        }
        let before = target.instructions_executed();
        let event = target.step_instruction()?;
        if target.instructions_executed() > before {
            trace.push(snapshot(target, campaign, false)?);
        }
        match event {
            None => {}
            Some(RunEvent::Breakpoint { .. }) => return Ok((WaitOutcome::Breakpoint, trace)),
            Some(RunEvent::Halted) => {
                return Ok((
                    WaitOutcome::Terminated(TerminationCause::WorkloadEnd),
                    trace,
                ))
            }
            Some(RunEvent::Detected(d)) => {
                return Ok((
                    WaitOutcome::Terminated(TerminationCause::Detected(d)),
                    trace,
                ))
            }
            Some(RunEvent::Timeout | RunEvent::BudgetExhausted) => {
                return Ok((WaitOutcome::Terminated(TerminationCause::Timeout), trace))
            }
            Some(RunEvent::IterationBoundary { iteration }) => {
                if campaign
                    .termination
                    .max_iterations
                    .is_some_and(|max| iteration >= max)
                {
                    return Ok((
                        WaitOutcome::Terminated(TerminationCause::IterationLimit),
                        trace,
                    ));
                }
                exchange_env(target, campaign, &mut *env)?;
            }
        }
    }
}

/// Runs until the armed breakpoint fires, exchanging environment data at
/// iteration boundaries; reports natural termination if it comes first.
/// `exchanges` counts the environment exchanges performed — a trigger-point
/// snapshot is only reusable when none happened before it.
fn wait_for_breakpoint<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    env: &mut dyn Environment,
    wd: &mut Watchdog,
    exchanges: &mut u64,
) -> Result<WaitOutcome> {
    loop {
        let remaining = remaining_budget(target, campaign);
        if remaining == 0 || wd.expired(target.cycles_executed()) || wd.check_wall_now() {
            return Ok(WaitOutcome::Terminated(TerminationCause::Timeout));
        }
        let slice = wd.clamp_slice(remaining);
        match target.run_workload(RunBudget {
            max_instructions: slice,
        })? {
            RunEvent::Breakpoint { .. } => return Ok(WaitOutcome::Breakpoint),
            RunEvent::Halted => return Ok(WaitOutcome::Terminated(TerminationCause::WorkloadEnd)),
            RunEvent::Detected(d) => {
                return Ok(WaitOutcome::Terminated(TerminationCause::Detected(d)))
            }
            RunEvent::Timeout => return Ok(WaitOutcome::Terminated(TerminationCause::Timeout)),
            RunEvent::BudgetExhausted => {
                // Only a real timeout when the whole remaining budget was
                // offered; a clamped watchdog slice just loops to re-check.
                if slice == remaining {
                    return Ok(WaitOutcome::Terminated(TerminationCause::Timeout));
                }
            }
            RunEvent::IterationBoundary { iteration } => {
                if campaign
                    .termination
                    .max_iterations
                    .is_some_and(|max| iteration >= max)
                {
                    return Ok(WaitOutcome::Terminated(TerminationCause::IterationLimit));
                }
                *exchanges += 1;
                exchange_env(target, campaign, &mut *env)?;
            }
        }
    }
}

/// Continues a just-injected experiment to termination, honouring the fault
/// model (persistent models keep re-asserting the fault) and the logging
/// mode (detail mode snapshots after every instruction).
fn continue_with_model<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    spec: &FaultSpec,
    env: &mut dyn Environment,
    logging: LoggingMode,
    wd: &mut Watchdog,
) -> Result<(TerminationCause, Vec<StateSnapshot>)> {
    let detail = logging == LoggingMode::Detail;
    match spec.model {
        FaultModel::TransientBitFlip if !detail => {
            continue_to_termination(target, campaign, env, wd)
        }
        FaultModel::TransientBitFlip => continue_stepping(target, campaign, env, None, true, wd),
        // Persistent models need per-instruction control.
        model => continue_stepping(target, campaign, env, Some((spec, model)), detail, wd),
    }
}

/// Coarse-grained continuation: whole `run_workload` slices (normal mode),
/// clamped to short slices while a watchdog is armed.
fn continue_to_termination<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    env: &mut dyn Environment,
    wd: &mut Watchdog,
) -> Result<(TerminationCause, Vec<StateSnapshot>)> {
    loop {
        let remaining = remaining_budget(target, campaign);
        if remaining == 0 || wd.expired(target.cycles_executed()) || wd.check_wall_now() {
            return Ok((TerminationCause::Timeout, Vec::new()));
        }
        let slice = wd.clamp_slice(remaining);
        match target.run_workload(RunBudget {
            max_instructions: slice,
        })? {
            RunEvent::Halted => return Ok((TerminationCause::WorkloadEnd, Vec::new())),
            RunEvent::Detected(d) => return Ok((TerminationCause::Detected(d), Vec::new())),
            RunEvent::Timeout => return Ok((TerminationCause::Timeout, Vec::new())),
            RunEvent::BudgetExhausted => {
                if slice == remaining {
                    return Ok((TerminationCause::Timeout, Vec::new()));
                }
            }
            RunEvent::Breakpoint { .. } => {
                // A stray breakpoint (should not happen: cleared before).
                target.clear_breakpoints()?;
            }
            RunEvent::IterationBoundary { iteration } => {
                if campaign
                    .termination
                    .max_iterations
                    .is_some_and(|max| iteration >= max)
                {
                    return Ok((TerminationCause::IterationLimit, Vec::new()));
                }
                exchange_env(target, campaign, &mut *env)?;
            }
        }
    }
}

/// Fine-grained continuation: single-step, used by detail-mode logging and
/// by persistent fault models. "In detail mode the system state is logged
/// as frequently as the target system allows, typically after the execution
/// of each machine instruction, which increases the time-overhead" (§3.3).
fn continue_stepping<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    env: &mut dyn Environment,
    persistent: Option<(&FaultSpec, FaultModel)>,
    detail: bool,
    wd: &mut Watchdog,
) -> Result<(TerminationCause, Vec<StateSnapshot>)> {
    let mut trace = Vec::new();
    let inject_instr = target.instructions_executed();
    let mut bursts_done: u32 = 1; // the initial injection counts as burst 1

    loop {
        if remaining_budget(target, campaign) == 0 || wd.expired(target.cycles_executed()) {
            return Ok((TerminationCause::Timeout, trace));
        }
        let before = target.instructions_executed();
        let event = target.step_instruction()?;
        // Only retired instructions get a trace entry, so the faulty trace
        // stays index-aligned with the reference trace. Detail-mode entries
        // skip the memory digest: hashing all of memory per instruction
        // would dwarf the experiment itself.
        if detail && target.instructions_executed() > before {
            trace.push(snapshot(target, campaign, false)?);
        }
        // Re-assert persistent faults.
        if let Some((spec, model)) = persistent {
            match model {
                FaultModel::StuckAtZero => force_locations(target, &spec.locations, false)?,
                FaultModel::StuckAtOne => force_locations(target, &spec.locations, true)?,
                FaultModel::Intermittent { period, bursts } => {
                    let elapsed = target.instructions_executed().saturating_sub(inject_instr);
                    if bursts_done < bursts && period > 0 && elapsed >= period * bursts_done as u64
                    {
                        flip_locations(target, &spec.locations)?;
                        bursts_done += 1;
                    }
                }
                FaultModel::TransientBitFlip => {}
            }
        }
        match event {
            None => {}
            Some(RunEvent::Halted) => return Ok((TerminationCause::WorkloadEnd, trace)),
            Some(RunEvent::Detected(d)) => return Ok((TerminationCause::Detected(d), trace)),
            Some(RunEvent::Timeout | RunEvent::BudgetExhausted) => {
                return Ok((TerminationCause::Timeout, trace))
            }
            Some(RunEvent::Breakpoint { .. }) => {
                target.clear_breakpoints()?;
            }
            Some(RunEvent::IterationBoundary { iteration }) => {
                if campaign
                    .termination
                    .max_iterations
                    .is_some_and(|max| iteration >= max)
                {
                    return Ok((TerminationCause::IterationLimit, trace));
                }
                exchange_env(target, campaign, &mut *env)?;
            }
        }
    }
}

fn remaining_budget<T: TargetAccess + ?Sized>(target: &T, campaign: &Campaign) -> u64 {
    campaign
        .termination
        .max_instructions
        .saturating_sub(target.instructions_executed())
}

/// One environment exchange, via ports or via the campaign's designated
/// memory locations (§3.2).
fn exchange_env<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    env: &mut dyn Environment,
) -> Result<()> {
    match &campaign.env_exchange {
        EnvExchange::Ports => {
            let outputs = target.read_output_ports()?;
            let inputs = env.exchange(&outputs);
            target.write_input_ports(&inputs)?;
        }
        EnvExchange::Memory { outputs, inputs } => {
            let mut out_values = Vec::with_capacity(outputs.len());
            for &addr in outputs {
                out_values.push(target.read_memory(addr, 1)?[0]);
            }
            let in_values = env.exchange(&out_values);
            for (&addr, value) in inputs.iter().zip(in_values) {
                target.write_memory(addr, &[value])?;
            }
        }
    }
    Ok(())
}

/// Captures the observable system state per the campaign's observe list.
///
/// # Errors
///
/// Target errors. An out-of-range output region (a fault corrupted a
/// pointer) yields empty outputs rather than an error, so the experiment
/// still logs.
pub fn snapshot<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    with_memory_digest: bool,
) -> Result<StateSnapshot> {
    let mut snap = StateSnapshot {
        iterations: target.iterations_completed(),
        instructions: target.instructions_executed(),
        cycles: target.cycles_executed(),
        ..StateSnapshot::default()
    };
    for chain in &campaign.observe.chains {
        let bits = target.read_scan_chain(chain)?;
        snap.scan.insert(chain.clone(), bits.to_bit_string());
    }
    if with_memory_digest {
        snap.memory_digest = target.memory_digest(target.memory_size() as usize)?;
    }
    snap.outputs = match campaign.observe.output {
        OutputRegion::Memory { addr, len } => {
            target.read_memory(addr, len as usize).unwrap_or_default()
        }
        OutputRegion::Ports => target.read_output_ports()?,
    };
    Ok(snap)
}
