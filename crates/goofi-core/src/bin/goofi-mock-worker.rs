//! Shard worker over the deterministic in-process simulator — the test
//! suite's stand-in for `goofi worker`, sharing its exact argument
//! grammar and wire behaviour so the scheduler cannot tell them apart.

use goofi_core::framework::SimTarget;
use goofi_core::service::{run_worker, WorkerArgs};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match WorkerArgs::parse(&argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("goofi-mock-worker: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run_worker(&args, SimTarget::new) {
        eprintln!("goofi-mock-worker: {e}");
        std::process::exit(1);
    }
}
