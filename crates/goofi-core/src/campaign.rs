//! Campaign configuration: the set-up phase of GOOFI.
//!
//! "In the set-up phase, the user selects a target system … chooses the
//! fault injection locations … as well as the fault models to use and the
//! points in time the faults should be injected. The user also selects the
//! target system workload and the number of fault injection experiments to
//! perform" plus "the termination conditions for the experiments" (§3.2).
//! [`Campaign`] carries all of that; [`CampaignBuilder`] is the typed
//! replacement for the paper's set-up GUI (Figure 6).

use crate::fault::{FaultLocation, FaultSpec};
use crate::logging::LoggingMode;
use crate::GoofiError;

/// A downloadable workload image, independent of any particular assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadImage {
    /// Workload name (logged with the campaign).
    pub name: String,
    /// The memory image, loaded at word 0.
    pub words: Vec<u32>,
    /// Words belonging to the write-protected code segment.
    pub code_words: u32,
    /// Entry-point address.
    pub entry: u32,
}

impl WorkloadImage {
    /// Hex serialisation of the image words (database storage).
    pub fn encode_words(&self) -> String {
        self.words
            .iter()
            .map(|w| format!("{w:08x}"))
            .collect::<Vec<_>>()
            .join("")
    }

    /// Parses [`WorkloadImage::encode_words`] output.
    pub fn decode_words(s: &str) -> Option<Vec<u32>> {
        if !s.len().is_multiple_of(8) {
            return None;
        }
        s.as_bytes()
            .chunks(8)
            .map(|c| u32::from_str_radix(std::str::from_utf8(c).ok()?, 16).ok())
            .collect()
    }
}

/// Where the workload's result lives (compared against the reference run to
/// classify escaped errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputRegion {
    /// A data-memory block `[addr, addr+len)`.
    Memory {
        /// First word address.
        addr: u32,
        /// Number of words.
        len: u32,
    },
    /// The output-port latches.
    Ports,
}

impl OutputRegion {
    /// Database string form.
    pub fn encode(self) -> String {
        match self {
            OutputRegion::Memory { addr, len } => format!("mem:{addr}:{len}"),
            OutputRegion::Ports => "ports".to_string(),
        }
    }

    /// Parses [`OutputRegion::encode`] output.
    pub fn decode(s: &str) -> Option<OutputRegion> {
        if s == "ports" {
            return Some(OutputRegion::Ports);
        }
        let rest = s.strip_prefix("mem:")?;
        let (a, l) = rest.split_once(':')?;
        Some(OutputRegion::Memory {
            addr: a.parse().ok()?,
            len: l.parse().ok()?,
        })
    }
}

/// How the target exchanges data with the environment simulator at each
/// loop iteration: via the I/O ports, or via "the memory locations holding
/// output and input data within the target system" (§3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvExchange {
    /// Outputs read from the output ports; inputs written to input ports.
    Ports,
    /// Outputs read from memory; inputs written to memory.
    Memory {
        /// Word addresses holding the target's outputs.
        outputs: Vec<u32>,
        /// Word addresses receiving the environment's inputs.
        inputs: Vec<u32>,
    },
}

impl EnvExchange {
    /// Database string form.
    pub fn encode(&self) -> String {
        match self {
            EnvExchange::Ports => "ports".to_string(),
            EnvExchange::Memory { outputs, inputs } => {
                let fmt = |v: &[u32]| v.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
                format!("mem:{}:{}", fmt(outputs), fmt(inputs))
            }
        }
    }

    /// Parses [`EnvExchange::encode`] output.
    pub fn decode(s: &str) -> Option<EnvExchange> {
        if s == "ports" {
            return Some(EnvExchange::Ports);
        }
        let rest = s.strip_prefix("mem:")?;
        let (outs, ins) = rest.split_once(':')?;
        let parse = |v: &str| -> Option<Vec<u32>> {
            v.split(',')
                .filter(|p| !p.is_empty())
                .map(|p| p.parse().ok())
                .collect()
        };
        Some(EnvExchange::Memory {
            outputs: parse(outs)?,
            inputs: parse(ins)?,
        })
    }
}

/// What to log at experiment end: "the locations to observe can be selected
/// by the user in the set-up phase" (§3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObserveList {
    /// Scan chains captured into the state vector.
    pub chains: Vec<String>,
    /// The workload output region.
    pub output: OutputRegion,
}

/// Fault-injection techniques implemented by the tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Scan-chain implemented fault injection (§3).
    Scifi,
    /// Pre-runtime software implemented fault injection (§1).
    SwifiPreRuntime,
    /// Runtime SWIFI (§4 extension): faults injected into memory at a
    /// trigger point, without scan-chain access.
    SwifiRuntime,
    /// Pin-level fault injection (§2.1: "we can define algorithms for fault
    /// injection techniques such as SCIFI, SWIFI or pin level fault
    /// injection"): faults forced onto the device pins, reached through the
    /// boundary scan chain.
    PinLevel,
}

impl Technique {
    /// Database string form.
    pub fn encode(self) -> &'static str {
        match self {
            Technique::Scifi => "scifi",
            Technique::SwifiPreRuntime => "swifi-pre",
            Technique::SwifiRuntime => "swifi-run",
            Technique::PinLevel => "pin",
        }
    }

    /// Parses [`Technique::encode`] output.
    pub fn decode(s: &str) -> Option<Technique> {
        match s {
            "scifi" => Some(Technique::Scifi),
            "swifi-pre" => Some(Technique::SwifiPreRuntime),
            "swifi-run" => Some(Technique::SwifiRuntime),
            "pin" => Some(Technique::PinLevel),
            _ => None,
        }
    }
}

/// Experiment termination conditions (§3.2): "a time-out value has been
/// reached, an error has been detected or the execution of the workload
/// ends, whichever comes first", plus the iteration cap for infinite-loop
/// workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Termination {
    /// Instruction budget per experiment (the time-out).
    pub max_instructions: u64,
    /// Maximum workload loop iterations (`None` for terminating workloads).
    pub max_iterations: Option<u64>,
}

impl Default for Termination {
    fn default() -> Self {
        Termination {
            max_instructions: 1_000_000,
            max_iterations: None,
        }
    }
}

/// A fully configured fault-injection campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// Campaign name (primary key of `CampaignData`).
    pub name: String,
    /// Target system name (foreign key into `TargetSystemData`).
    pub target_system: String,
    /// Injection technique.
    pub technique: Technique,
    /// The workload to run.
    pub workload: WorkloadImage,
    /// One fault per experiment.
    pub faults: Vec<FaultSpec>,
    /// Termination conditions.
    pub termination: Termination,
    /// Normal or detail logging.
    pub logging: LoggingMode,
    /// What to observe/log.
    pub observe: ObserveList,
    /// Initial input-port values downloaded with the workload.
    pub initial_inputs: Vec<u32>,
    /// How environment data is exchanged at iteration boundaries.
    pub env_exchange: EnvExchange,
    /// How the campaign driver reacts to failing or hung experiments.
    pub policy: crate::policy::ExperimentPolicy,
}

impl Campaign {
    /// Starts building a campaign.
    pub fn builder(name: impl Into<String>) -> CampaignBuilder {
        CampaignBuilder::new(name)
    }

    /// Number of experiments.
    pub fn experiment_count(&self) -> usize {
        self.faults.len()
    }

    /// The name of experiment `i` within this campaign.
    pub fn experiment_name(&self, i: usize) -> String {
        format!("{}/exp{i:05}", self.name)
    }

    /// Merges several campaigns into a new one — the paper's §3.2 set-up
    /// operation ("merge campaign data from several fault injection
    /// campaigns into a new fault injection campaign"). The head campaign
    /// supplies workload, technique, termination and observe settings; the
    /// fault lists are concatenated in order.
    ///
    /// # Errors
    ///
    /// Returns [`GoofiError::Config`] when no campaigns are given, or when
    /// the campaigns disagree on workload, technique or target system (a
    /// merged campaign must still describe one coherent experiment series).
    pub fn merge(name: impl Into<String>, campaigns: &[&Campaign]) -> crate::Result<Campaign> {
        let name = name.into();
        let head = campaigns
            .first()
            .ok_or_else(|| GoofiError::Config("merge needs at least one campaign".into()))?;
        for c in &campaigns[1..] {
            if c.workload != head.workload {
                return Err(GoofiError::Config(format!(
                    "cannot merge `{}` into `{name}`: different workload",
                    c.name
                )));
            }
            if c.technique != head.technique {
                return Err(GoofiError::Config(format!(
                    "cannot merge `{}` into `{name}`: different technique",
                    c.name
                )));
            }
            if c.target_system != head.target_system {
                return Err(GoofiError::Config(format!(
                    "cannot merge `{}` into `{name}`: different target system",
                    c.name
                )));
            }
        }
        let mut merged = (*head).clone();
        merged.name = name;
        merged.faults = campaigns.iter().flat_map(|c| c.faults.clone()).collect();
        merged.validate()?;
        Ok(merged)
    }

    /// Validates technique/fault consistency.
    ///
    /// # Errors
    ///
    /// Returns [`GoofiError::Config`] when e.g. a pre-runtime SWIFI campaign
    /// contains scan-cell faults or non-pre-runtime triggers.
    pub fn validate(&self) -> crate::Result<()> {
        if self.name.is_empty() {
            return Err(GoofiError::Config("campaign name must not be empty".into()));
        }
        if self.workload.words.is_empty() {
            return Err(GoofiError::Config("workload image is empty".into()));
        }
        for (i, f) in self.faults.iter().enumerate() {
            if f.locations.is_empty() {
                return Err(GoofiError::Config(format!(
                    "experiment {i} has no fault locations"
                )));
            }
            match self.technique {
                Technique::Scifi => {
                    if f.trigger.is_pre_runtime() {
                        return Err(GoofiError::Config(format!(
                            "experiment {i}: SCIFI requires a runtime trigger"
                        )));
                    }
                }
                Technique::SwifiPreRuntime => {
                    if !f.trigger.is_pre_runtime() {
                        return Err(GoofiError::Config(format!(
                            "experiment {i}: pre-runtime SWIFI requires the PreRuntime trigger"
                        )));
                    }
                    if f.locations
                        .iter()
                        .any(|l| !matches!(l, FaultLocation::Memory { .. }))
                    {
                        return Err(GoofiError::Config(format!(
                            "experiment {i}: pre-runtime SWIFI can only target memory"
                        )));
                    }
                }
                Technique::SwifiRuntime => {
                    if f.trigger.is_pre_runtime() {
                        return Err(GoofiError::Config(format!(
                            "experiment {i}: runtime SWIFI requires a runtime trigger"
                        )));
                    }
                    if f.locations
                        .iter()
                        .any(|l| !matches!(l, FaultLocation::Memory { .. }))
                    {
                        return Err(GoofiError::Config(format!(
                            "experiment {i}: runtime SWIFI can only target memory"
                        )));
                    }
                }
                Technique::PinLevel => {
                    if f.trigger.is_pre_runtime() {
                        return Err(GoofiError::Config(format!(
                            "experiment {i}: pin-level injection requires a runtime trigger"
                        )));
                    }
                    if f.locations
                        .iter()
                        .any(|l| !matches!(l, FaultLocation::ScanCell { .. }))
                    {
                        return Err(GoofiError::Config(format!(
                            "experiment {i}: pin-level injection targets (boundary) scan cells"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`Campaign`] — the typed set-up dialogue.
///
/// # Example
///
/// ```
/// use goofi_core::campaign::{Campaign, OutputRegion, Technique, WorkloadImage};
/// use goofi_core::fault::{FaultLocation, FaultSpec};
/// use goofi_core::trigger::Trigger;
///
/// let workload = WorkloadImage {
///     name: "demo".into(),
///     words: vec![0x0100_0000], // halt
///     code_words: 1,
///     entry: 0,
/// };
/// let campaign = Campaign::builder("c1")
///     .target_system("thor-rd")
///     .technique(Technique::Scifi)
///     .workload(workload)
///     .observe_chains(["internal"])
///     .output(OutputRegion::Ports)
///     .fault(FaultSpec::single(
///         FaultLocation::ScanCell { chain: "internal".into(), cell: "R1".into(), bit: 0 },
///         Trigger::AfterInstructions(0),
///     ))
///     .build()
///     .unwrap();
/// assert_eq!(campaign.experiment_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    name: String,
    target_system: String,
    technique: Technique,
    workload: Option<WorkloadImage>,
    faults: Vec<FaultSpec>,
    termination: Termination,
    logging: LoggingMode,
    chains: Vec<String>,
    output: OutputRegion,
    initial_inputs: Vec<u32>,
    env_exchange: EnvExchange,
    policy: crate::policy::ExperimentPolicy,
}

impl CampaignBuilder {
    fn new(name: impl Into<String>) -> Self {
        CampaignBuilder {
            name: name.into(),
            target_system: String::new(),
            technique: Technique::Scifi,
            workload: None,
            faults: Vec::new(),
            termination: Termination::default(),
            logging: LoggingMode::Normal,
            chains: Vec::new(),
            output: OutputRegion::Ports,
            initial_inputs: Vec::new(),
            env_exchange: EnvExchange::Ports,
            policy: crate::policy::ExperimentPolicy::default(),
        }
    }

    /// Sets the target-system name.
    pub fn target_system(mut self, name: impl Into<String>) -> Self {
        self.target_system = name.into();
        self
    }

    /// Sets the injection technique.
    pub fn technique(mut self, t: Technique) -> Self {
        self.technique = t;
        self
    }

    /// Sets the workload image.
    pub fn workload(mut self, w: WorkloadImage) -> Self {
        self.workload = Some(w);
        self
    }

    /// Adds one fault (one experiment).
    pub fn fault(mut self, f: FaultSpec) -> Self {
        self.faults.push(f);
        self
    }

    /// Adds many faults.
    pub fn faults(mut self, fs: impl IntoIterator<Item = FaultSpec>) -> Self {
        self.faults.extend(fs);
        self
    }

    /// Sets the termination conditions.
    pub fn termination(mut self, t: Termination) -> Self {
        self.termination = t;
        self
    }

    /// Sets the logging mode.
    pub fn logging(mut self, mode: LoggingMode) -> Self {
        self.logging = mode;
        self
    }

    /// Chooses which scan chains are captured into the state vector.
    pub fn observe_chains<S: Into<String>>(mut self, chains: impl IntoIterator<Item = S>) -> Self {
        self.chains = chains.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the workload output region.
    pub fn output(mut self, o: OutputRegion) -> Self {
        self.output = o;
        self
    }

    /// Sets the initial input-port values.
    pub fn initial_inputs(mut self, inputs: Vec<u32>) -> Self {
        self.initial_inputs = inputs;
        self
    }

    /// Sets how environment data is exchanged at iteration boundaries
    /// (ports by default; §3.2 also allows designated memory locations).
    pub fn env_exchange(mut self, exchange: EnvExchange) -> Self {
        self.env_exchange = exchange;
        self
    }

    /// Sets the experiment resilience policy (fail-fast by default).
    pub fn policy(mut self, policy: crate::policy::ExperimentPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Finishes and validates the campaign.
    ///
    /// # Errors
    ///
    /// Returns [`GoofiError::Config`] when mandatory pieces are missing or
    /// inconsistent (see [`Campaign::validate`]).
    pub fn build(self) -> crate::Result<Campaign> {
        let workload = self
            .workload
            .ok_or_else(|| GoofiError::Config("campaign needs a workload".into()))?;
        let campaign = Campaign {
            name: self.name,
            target_system: self.target_system,
            technique: self.technique,
            workload,
            faults: self.faults,
            termination: self.termination,
            logging: self.logging,
            observe: ObserveList {
                chains: self.chains,
                output: self.output,
            },
            initial_inputs: self.initial_inputs,
            env_exchange: self.env_exchange,
            policy: self.policy,
        };
        campaign.validate()?;
        Ok(campaign)
    }
}

/// The configuration-phase description of a target system — the contents of
/// the `TargetSystemData` table (paper §2.3, Figure 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetSystemData {
    /// Target-system name (primary key).
    pub name: String,
    /// Human description.
    pub description: String,
    /// Memory size in words.
    pub memory_words: u32,
    /// Scan chains and their fault-injection locations:
    /// `(chain, cell, width, writable)`.
    pub locations: Vec<(String, String, usize, bool)>,
}

impl TargetSystemData {
    /// Builds the description by interrogating a live target, as the
    /// configuration GUI would.
    pub fn from_target<T: crate::TargetAccess + ?Sized>(
        target: &T,
        description: impl Into<String>,
    ) -> Self {
        let mut locations = Vec::new();
        for layout in target.chain_layouts() {
            for cell in layout.cells() {
                locations.push((
                    layout.name().to_string(),
                    cell.name.clone(),
                    cell.width,
                    cell.access == scanchain::CellAccess::ReadWrite,
                ));
            }
        }
        TargetSystemData {
            name: target.target_name().to_string(),
            description: description.into(),
            memory_words: target.memory_size(),
            locations,
        }
    }

    /// The fault space over all writable scan locations plus a memory range.
    pub fn fault_space(
        &self,
        memory: Option<std::ops::Range<u32>>,
        time_window: std::ops::Range<u64>,
    ) -> crate::fault::FaultSpace {
        crate::fault::FaultSpace {
            scan_cells: self
                .locations
                .iter()
                .filter(|(_, _, _, writable)| *writable)
                .map(|(chain, cell, width, _)| (chain.clone(), cell.clone(), *width))
                .collect(),
            memory,
            time_window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultLocation, FaultSpec};
    use crate::trigger::Trigger;

    fn image() -> WorkloadImage {
        WorkloadImage {
            name: "w".into(),
            words: vec![1, 2, 3],
            code_words: 2,
            entry: 0,
        }
    }

    fn scan_fault(t: Trigger) -> FaultSpec {
        FaultSpec::single(
            FaultLocation::ScanCell {
                chain: "internal".into(),
                cell: "R1".into(),
                bit: 3,
            },
            t,
        )
    }

    fn mem_fault(t: Trigger) -> FaultSpec {
        FaultSpec::single(FaultLocation::Memory { addr: 10, bit: 1 }, t)
    }

    #[test]
    fn builder_produces_valid_campaign() {
        let c = Campaign::builder("c")
            .target_system("t")
            .workload(image())
            .fault(scan_fault(Trigger::AfterInstructions(5)))
            .build()
            .unwrap();
        assert_eq!(c.experiment_count(), 1);
        assert_eq!(c.experiment_name(3), "c/exp00003");
    }

    #[test]
    fn builder_requires_workload() {
        let e = Campaign::builder("c").build().unwrap_err();
        assert!(matches!(e, GoofiError::Config(_)));
    }

    #[test]
    fn scifi_rejects_pre_runtime_trigger() {
        let e = Campaign::builder("c")
            .workload(image())
            .technique(Technique::Scifi)
            .fault(scan_fault(Trigger::PreRuntime))
            .build()
            .unwrap_err();
        assert!(matches!(e, GoofiError::Config(_)));
    }

    #[test]
    fn swifi_pre_requires_memory_and_pre_trigger() {
        let ok = Campaign::builder("c")
            .workload(image())
            .technique(Technique::SwifiPreRuntime)
            .fault(mem_fault(Trigger::PreRuntime))
            .build();
        assert!(ok.is_ok());

        let e = Campaign::builder("c")
            .workload(image())
            .technique(Technique::SwifiPreRuntime)
            .fault(mem_fault(Trigger::AfterInstructions(1)))
            .build()
            .unwrap_err();
        assert!(matches!(e, GoofiError::Config(_)));

        let e = Campaign::builder("c")
            .workload(image())
            .technique(Technique::SwifiPreRuntime)
            .fault(scan_fault(Trigger::PreRuntime))
            .build()
            .unwrap_err();
        assert!(matches!(e, GoofiError::Config(_)));
    }

    #[test]
    fn swifi_runtime_rejects_scan_locations() {
        let e = Campaign::builder("c")
            .workload(image())
            .technique(Technique::SwifiRuntime)
            .fault(scan_fault(Trigger::AfterInstructions(1)))
            .build()
            .unwrap_err();
        assert!(matches!(e, GoofiError::Config(_)));
    }

    #[test]
    fn merge_concatenates_faults() {
        let a = Campaign::builder("a")
            .workload(image())
            .fault(scan_fault(Trigger::AfterInstructions(1)))
            .fault(scan_fault(Trigger::AfterInstructions(2)))
            .build()
            .unwrap();
        let b = Campaign::builder("b")
            .workload(image())
            .fault(scan_fault(Trigger::AfterInstructions(3)))
            .build()
            .unwrap();
        let merged = Campaign::merge("ab", &[&a, &b]).unwrap();
        assert_eq!(merged.name, "ab");
        assert_eq!(merged.experiment_count(), 3);
        assert_eq!(merged.faults[2], b.faults[0]);
        assert_eq!(merged.workload, a.workload);
    }

    #[test]
    fn merge_rejects_incompatible_campaigns() {
        let a = Campaign::builder("a")
            .workload(image())
            .fault(scan_fault(Trigger::AfterInstructions(1)))
            .build()
            .unwrap();
        let mut other_wl = image();
        other_wl.words.push(7);
        let b = Campaign::builder("b")
            .workload(other_wl)
            .fault(scan_fault(Trigger::AfterInstructions(1)))
            .build()
            .unwrap();
        assert!(matches!(
            Campaign::merge("ab", &[&a, &b]),
            Err(GoofiError::Config(_))
        ));
        let c = Campaign::builder("c")
            .workload(image())
            .technique(Technique::SwifiPreRuntime)
            .fault(mem_fault(Trigger::PreRuntime))
            .build()
            .unwrap();
        assert!(matches!(
            Campaign::merge("ac", &[&a, &c]),
            Err(GoofiError::Config(_))
        ));
        assert!(matches!(
            Campaign::merge("none", &[]),
            Err(GoofiError::Config(_))
        ));
    }

    #[test]
    fn image_word_encoding_roundtrip() {
        let img = image();
        let enc = img.encode_words();
        assert_eq!(WorkloadImage::decode_words(&enc), Some(img.words));
        assert_eq!(WorkloadImage::decode_words("123"), None);
        assert_eq!(WorkloadImage::decode_words("zzzzzzzz"), None);
    }

    #[test]
    fn enum_encodings_roundtrip() {
        for t in [
            Technique::Scifi,
            Technique::SwifiPreRuntime,
            Technique::SwifiRuntime,
            Technique::PinLevel,
        ] {
            assert_eq!(Technique::decode(t.encode()), Some(t));
        }
        for o in [
            OutputRegion::Ports,
            OutputRegion::Memory { addr: 5, len: 2 },
        ] {
            assert_eq!(OutputRegion::decode(&o.encode()), Some(o));
        }
    }
}
