//! The `TargetAccess` contract suite — genericity proven by table, not by
//! assertion.
//!
//! The paper claims GOOFI is generic: port a target through the Framework
//! template and every campaign algorithm works unchanged. That claim is
//! only as good as the *contract* each port upholds, so this module spells
//! the contract out as a reusable, table-driven suite: every check is a
//! plain function over `&mut dyn `[`TargetAccess`], and [`run_suite`] runs
//! them all against any port — the Thor simulator, the RV32I core, the
//! in-process [`crate::framework::SimTarget`], a scan-readout fallback
//! ([`ReadoutFallback`]), or any decorator stack (verified link, lossy
//! link, wedge drill) — and returns a [`ConformanceReport`].
//!
//! The checks (see [`CHECK_NAMES`]):
//!
//! - **capabilities** — stable non-empty name, non-empty chain layouts,
//!   non-zero memory, capability flags matching the spec's expectations;
//! - **readout_restore_identity** — a [`readout_snapshot`] written back via
//!   [`readout_restore`] reads out bit-identically;
//! - **digest_stability** — [`TargetAccess::memory_digest`] is stable
//!   across calls, equal to the generic digest of a plain readout, and
//!   sensitive to a single flipped bit;
//! - **snapshot_mutate_restore** — a native snapshot survives memory
//!   mutation and restores the exact digest, any number of times;
//! - **trigger_monotonicity** — instruction-count breakpoints fire at
//!   exactly the armed count, later counts fire strictly later, and a
//!   cleared target runs to termination;
//! - **reset_to_idle** — a power cycle plus workload reload zeroes the
//!   counters and reproduces the exact first run (event, ports, digest).
//!
//! Workloads handed to the suite must terminate on their own (halt,
//! detection or timeout) without iteration boundaries.

use crate::campaign::WorkloadImage;
use crate::target::{
    readout_restore, readout_snapshot, ReadoutSnapshot, RunBudget, RunEvent, TargetAccess,
    TargetSnapshot,
};
use crate::trigger::Trigger;
use crate::{GoofiError, Result};
use scanchain::{BitVec, ChainLayout};
use std::fmt;

/// What the suite should expect from a particular port.
///
/// The workload is the only mandatory ingredient — it must be a valid
/// image for the port under test (the suite is generic; the workload is
/// not). Everything else defaults to "don't check".
#[derive(Debug, Clone)]
pub struct ConformanceSpec {
    /// Human-readable label for the report (e.g. `"rv32i via fallback"`).
    pub label: String,
    /// A self-terminating workload valid for the port under test.
    pub workload: WorkloadImage,
    /// Expected [`TargetAccess::target_name`], when pinned.
    pub expect_name: Option<String>,
    /// Expected [`TargetAccess::supports_snapshot`], when pinned.
    pub expect_snapshot: Option<bool>,
    /// Expected [`TargetAccess::prefix_restore_safe`], when pinned.
    pub expect_prefix_safe: Option<bool>,
    /// Whether a restore brings the execution counters back too (true for
    /// native whole-state snapshots, false for scan-readout fallbacks,
    /// whose counters are not scan-writable).
    pub counters_restored: bool,
    /// Two instruction counts for the trigger check, first < second, both
    /// inside the workload's run length.
    pub breakpoints: (u64, u64),
    /// Instructions to pre-run before state checks (non-trivial state).
    pub prefix_instructions: u64,
    /// Memory word to flip in mutation checks; defaults to the last-but-one
    /// word, safely outside any code segment.
    pub flip_addr: Option<u32>,
}

impl ConformanceSpec {
    /// A spec with the given label and workload and default expectations.
    pub fn new(label: impl Into<String>, workload: WorkloadImage) -> Self {
        ConformanceSpec {
            label: label.into(),
            workload,
            expect_name: None,
            expect_snapshot: None,
            expect_prefix_safe: None,
            counters_restored: false,
            breakpoints: (3, 6),
            prefix_instructions: 4,
            flip_addr: None,
        }
    }
}

/// Outcome of one contract check.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// Check name (one of [`CHECK_NAMES`]).
    pub name: &'static str,
    /// `None` on pass, the failure description otherwise.
    pub error: Option<String>,
}

/// Everything [`run_suite`] found out about one port.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// The port's [`TargetAccess::target_name`].
    pub target: String,
    /// The spec's label.
    pub label: String,
    /// One entry per check, in [`CHECK_NAMES`] order.
    pub checks: Vec<CheckResult>,
}

impl ConformanceReport {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.error.is_none())
    }

    /// The failed checks.
    pub fn failures(&self) -> Vec<&CheckResult> {
        self.checks.iter().filter(|c| c.error.is_some()).collect()
    }
}

impl fmt::Display for ConformanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "conformance: {} [{}]", self.label, self.target)?;
        for check in &self.checks {
            match &check.error {
                None => writeln!(f, "  PASS {}", check.name)?,
                Some(e) => writeln!(f, "  FAIL {} - {e}", check.name)?,
            }
        }
        Ok(())
    }
}

type Check = fn(&mut dyn TargetAccess, &ConformanceSpec) -> std::result::Result<(), String>;

/// The names of the contract checks, in execution order.
pub const CHECK_NAMES: [&str; 6] = [
    "capabilities",
    "readout_restore_identity",
    "digest_stability",
    "snapshot_mutate_restore",
    "trigger_monotonicity",
    "reset_to_idle",
];

const CHECKS: [(&str, Check); 6] = [
    ("capabilities", check_capabilities),
    ("readout_restore_identity", check_readout_restore_identity),
    ("digest_stability", check_digest_stability),
    ("snapshot_mutate_restore", check_snapshot_mutate_restore),
    ("trigger_monotonicity", check_trigger_monotonicity),
    ("reset_to_idle", check_reset_to_idle),
];

/// Runs every contract check against the port and reports per-check
/// outcomes. Nothing panics: a port that breaks the contract produces a
/// failing [`ConformanceReport`], which the caller asserts on.
pub fn run_suite<T>(target: &mut T, spec: &ConformanceSpec) -> ConformanceReport
where
    T: TargetAccess + AsDynTarget + ?Sized,
{
    let dyn_target = target.as_dyn_target();
    let mut checks = Vec::with_capacity(CHECKS.len());
    for (name, check) in CHECKS {
        checks.push(CheckResult {
            name,
            error: check(dyn_target, spec).err(),
        });
    }
    ConformanceReport {
        target: dyn_target.target_name().to_string(),
        label: spec.label.clone(),
        checks,
    }
}

/// Object-safe view of a target — lets [`run_suite`] accept both concrete
/// ports and `dyn TargetAccess` behind one signature.
pub trait AsDynTarget {
    /// The target as a trait object.
    fn as_dyn_target(&mut self) -> &mut dyn TargetAccess;
}

impl<T: TargetAccess> AsDynTarget for T {
    fn as_dyn_target(&mut self) -> &mut dyn TargetAccess {
        self
    }
}

impl AsDynTarget for dyn TargetAccess {
    fn as_dyn_target(&mut self) -> &mut dyn TargetAccess {
        self
    }
}

fn ctx<E: fmt::Display>(what: &str) -> impl FnOnce(E) -> String + '_ {
    move |e| format!("{what}: {e}")
}

/// Fresh start: card up, workload loaded, no breakpoints armed.
fn prepare(t: &mut dyn TargetAccess, spec: &ConformanceSpec) -> std::result::Result<(), String> {
    t.init_test_card().map_err(ctx("init_test_card"))?;
    t.load_workload(&spec.workload)
        .map_err(ctx("load_workload"))?;
    t.clear_breakpoints().map_err(ctx("clear_breakpoints"))?;
    Ok(())
}

/// Runs until the workload terminates (halt/detection/timeout), riding
/// through at most a handful of iteration boundaries.
fn run_to_terminal(t: &mut dyn TargetAccess) -> std::result::Result<RunEvent, String> {
    for _ in 0..100 {
        let event = t
            .run_workload(RunBudget::default())
            .map_err(ctx("run_workload"))?;
        match event {
            RunEvent::IterationBoundary { .. } => continue,
            RunEvent::Breakpoint { .. } => {
                return Err("unexpected breakpoint with none armed".into())
            }
            terminal => return Ok(terminal),
        }
    }
    Err("workload did not terminate within 100 run calls".into())
}

fn flip_target_addr(t: &mut dyn TargetAccess, spec: &ConformanceSpec) -> u32 {
    spec.flip_addr
        .unwrap_or_else(|| t.memory_size().saturating_sub(2))
}

fn check_capabilities(
    t: &mut dyn TargetAccess,
    spec: &ConformanceSpec,
) -> std::result::Result<(), String> {
    prepare(t, spec)?;
    if t.target_name().is_empty() {
        return Err("target_name is empty".into());
    }
    if let Some(want) = &spec.expect_name {
        if t.target_name() != want {
            return Err(format!(
                "target_name {} != expected {want}",
                t.target_name()
            ));
        }
    }
    if t.memory_size() == 0 {
        return Err("memory_size is zero".into());
    }
    let layouts: Vec<ChainLayout> = t.chain_layouts();
    if layouts.is_empty() {
        return Err("no scan chains exposed".into());
    }
    for layout in &layouts {
        if layout.total_bits() == 0 {
            return Err(format!("chain {} has zero bits", layout.name()));
        }
        let bits = t
            .read_scan_chain(layout.name())
            .map_err(ctx("read_scan_chain"))?;
        if bits.len() != layout.total_bits() {
            return Err(format!(
                "chain {} readout is {} bits, layout says {}",
                layout.name(),
                bits.len(),
                layout.total_bits()
            ));
        }
    }
    if let Some(want) = spec.expect_snapshot {
        if t.supports_snapshot() != want {
            return Err(format!(
                "supports_snapshot() == {}, expected {want}",
                t.supports_snapshot()
            ));
        }
    }
    if let Some(want) = spec.expect_prefix_safe {
        if t.prefix_restore_safe() != want {
            return Err(format!(
                "prefix_restore_safe() == {}, expected {want}",
                t.prefix_restore_safe()
            ));
        }
    }
    Ok(())
}

fn check_readout_restore_identity(
    t: &mut dyn TargetAccess,
    spec: &ConformanceSpec,
) -> std::result::Result<(), String> {
    prepare(t, spec)?;
    // Run a short prefix so the state is not the all-zero reset image.
    t.run_workload(RunBudget {
        max_instructions: spec.prefix_instructions,
    })
    .map_err(ctx("prefix run"))?;
    let first = readout_snapshot(t).map_err(ctx("readout_snapshot"))?;
    readout_restore(t, &first).map_err(ctx("readout_restore"))?;
    let second = readout_snapshot(t).map_err(ctx("second readout_snapshot"))?;
    if first.memory != second.memory {
        return Err("memory readout changed across restore".into());
    }
    if first.chains.len() != second.chains.len() {
        return Err("chain count changed across restore".into());
    }
    for ((name_a, bits_a), (name_b, bits_b)) in first.chains.iter().zip(&second.chains) {
        if name_a != name_b {
            return Err(format!("chain order changed: {name_a} vs {name_b}"));
        }
        if bits_a != bits_b {
            return Err(format!("chain {name_a} not bit-identical across restore"));
        }
    }
    if (first.instructions, first.cycles, first.iterations)
        != (second.instructions, second.cycles, second.iterations)
    {
        return Err("counters moved with no execution in between".into());
    }
    Ok(())
}

fn check_digest_stability(
    t: &mut dyn TargetAccess,
    spec: &ConformanceSpec,
) -> std::result::Result<(), String> {
    prepare(t, spec)?;
    t.run_workload(RunBudget {
        max_instructions: spec.prefix_instructions,
    })
    .map_err(ctx("prefix run"))?;
    let len = t.memory_size() as usize;
    let d1 = t.memory_digest(len).map_err(ctx("memory_digest"))?;
    let d2 = t.memory_digest(len).map_err(ctx("second memory_digest"))?;
    if d1 != d2 {
        return Err(format!("digest unstable across calls: {d1:#x} vs {d2:#x}"));
    }
    let generic = crate::logging::digest_words(&t.read_memory(0, len).map_err(ctx("read_memory"))?);
    if d1 != generic {
        return Err(format!(
            "digest fast path {d1:#x} disagrees with generic readout digest {generic:#x}"
        ));
    }
    let addr = flip_target_addr(t, spec);
    t.flip_memory_bit(addr, 4).map_err(ctx("flip_memory_bit"))?;
    let flipped = t.memory_digest(len).map_err(ctx("post-flip digest"))?;
    if flipped == d1 {
        return Err(format!("digest blind to a bit flip at word {addr}"));
    }
    t.flip_memory_bit(addr, 4).map_err(ctx("flip back"))?;
    let back = t.memory_digest(len).map_err(ctx("post-unflip digest"))?;
    if back != d1 {
        return Err("digest did not return to original after un-flip".into());
    }
    Ok(())
}

fn check_snapshot_mutate_restore(
    t: &mut dyn TargetAccess,
    spec: &ConformanceSpec,
) -> std::result::Result<(), String> {
    prepare(t, spec)?;
    if !t.supports_snapshot() {
        // An honest non-port: the capability probe must match the error.
        return match t.snapshot() {
            Err(GoofiError::Unimplemented(_)) => Ok(()),
            Err(other) => Err(format!(
                "supports_snapshot() is false but snapshot() failed with {other} instead of Unimplemented"
            )),
            Ok(_) => Err("supports_snapshot() is false but snapshot() succeeded".into()),
        };
    }
    t.run_workload(RunBudget {
        max_instructions: spec.prefix_instructions,
    })
    .map_err(ctx("prefix run"))?;
    let len = t.memory_size() as usize;
    let snap: TargetSnapshot = t.snapshot().map_err(ctx("snapshot"))?;
    let digest0 = t.memory_digest(len).map_err(ctx("baseline digest"))?;
    let instr0 = t.instructions_executed();
    let addr = flip_target_addr(t, spec);
    for round in 0..2 {
        t.flip_memory_bit(addr, 7).map_err(ctx("flip_memory_bit"))?;
        if t.memory_digest(len).map_err(ctx("post-mutation digest"))? == digest0 {
            return Err(format!("round {round}: mutation invisible in digest"));
        }
        t.restore(&snap).map_err(ctx("restore"))?;
        let restored = t.memory_digest(len).map_err(ctx("post-restore digest"))?;
        if restored != digest0 {
            return Err(format!(
                "round {round}: restore digest {restored:#x} != snapshot digest {digest0:#x}"
            ));
        }
        if spec.counters_restored && t.instructions_executed() != instr0 {
            return Err(format!(
                "round {round}: instruction counter {} not restored to {instr0}",
                t.instructions_executed()
            ));
        }
    }
    Ok(())
}

fn check_trigger_monotonicity(
    t: &mut dyn TargetAccess,
    spec: &ConformanceSpec,
) -> std::result::Result<(), String> {
    let (n1, n2) = spec.breakpoints;
    if n1 >= n2 {
        return Err(format!(
            "spec error: breakpoints must be ordered, got ({n1}, {n2})"
        ));
    }
    prepare(t, spec)?;
    t.set_breakpoint(Trigger::AfterInstructions(n1))
        .map_err(ctx("set_breakpoint"))?;
    let a1 = match t.run_workload(RunBudget::default()).map_err(ctx("run"))? {
        RunEvent::Breakpoint { at_instruction, .. } => at_instruction,
        other => return Err(format!("expected breakpoint at {n1}, got {other:?}")),
    };
    if a1 != n1 {
        return Err(format!("breakpoint armed at {n1} fired at {a1}"));
    }
    t.clear_breakpoints().map_err(ctx("clear_breakpoints"))?;
    t.set_breakpoint(Trigger::AfterInstructions(n2))
        .map_err(ctx("second set_breakpoint"))?;
    let a2 = match t.run_workload(RunBudget::default()).map_err(ctx("run"))? {
        RunEvent::Breakpoint { at_instruction, .. } => at_instruction,
        other => return Err(format!("expected breakpoint at {n2}, got {other:?}")),
    };
    if a2 != n2 {
        return Err(format!("breakpoint armed at {n2} fired at {a2}"));
    }
    if a2 <= a1 {
        return Err(format!("later trigger fired earlier: {a2} <= {a1}"));
    }
    t.clear_breakpoints()
        .map_err(ctx("final clear_breakpoints"))?;
    run_to_terminal(t)?;
    Ok(())
}

fn check_reset_to_idle(
    t: &mut dyn TargetAccess,
    spec: &ConformanceSpec,
) -> std::result::Result<(), String> {
    prepare(t, spec)?;
    let len = t.memory_size() as usize;
    let event1 = run_to_terminal(t)?;
    let ports1 = t.read_output_ports().map_err(ctx("read_output_ports"))?;
    let digest1 = t.memory_digest(len).map_err(ctx("memory_digest"))?;
    if t.instructions_executed() == 0 {
        return Err("workload terminated with zero instructions executed".into());
    }
    t.power_cycle().map_err(ctx("power_cycle"))?;
    t.load_workload(&spec.workload).map_err(ctx("reload"))?;
    if t.instructions_executed() != 0 || t.iterations_completed() != 0 {
        return Err(format!(
            "counters not idle after power cycle + reload: instr={} iter={}",
            t.instructions_executed(),
            t.iterations_completed()
        ));
    }
    let event2 = run_to_terminal(t)?;
    if event2 != event1 {
        return Err(format!(
            "rerun terminated differently: {event1:?} vs {event2:?}"
        ));
    }
    let ports2 = t.read_output_ports().map_err(ctx("read_output_ports"))?;
    if ports2 != ports1 {
        return Err(format!(
            "rerun output ports differ: {ports1:?} vs {ports2:?}"
        ));
    }
    let digest2 = t.memory_digest(len).map_err(ctx("memory_digest"))?;
    if digest2 != digest1 {
        return Err(format!(
            "rerun memory digest differs: {digest1:#x} vs {digest2:#x}"
        ));
    }
    Ok(())
}

/// Generic snapshot support for ports without native state cloning: wraps
/// any [`TargetAccess`] and implements `snapshot`/`restore` with the
/// scan-readout building blocks ([`readout_snapshot`]/[`readout_restore`]).
///
/// This is the adapter `examples/port_a_target.rs` walks through: a brand
/// new port gets working (if slower) snapshot support for free, with the
/// documented readout limitation — state invisible to the scan chains,
/// including the execution counters, is not captured, so
/// [`ConformanceSpec::counters_restored`] must stay `false` for specs run
/// against it.
#[derive(Debug)]
pub struct ReadoutFallback<T: TargetAccess> {
    inner: T,
}

impl<T: TargetAccess> ReadoutFallback<T> {
    /// Wraps a port.
    pub fn new(inner: T) -> Self {
        ReadoutFallback { inner }
    }

    /// The wrapped port.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: TargetAccess> TargetAccess for ReadoutFallback<T> {
    fn target_name(&self) -> &str {
        self.inner.target_name()
    }

    fn init_test_card(&mut self) -> Result<()> {
        self.inner.init_test_card()
    }

    fn load_workload(&mut self, image: &WorkloadImage) -> Result<()> {
        self.inner.load_workload(image)
    }

    fn reset_target(&mut self) -> Result<()> {
        self.inner.reset_target()
    }

    fn write_memory(&mut self, addr: u32, data: &[u32]) -> Result<()> {
        self.inner.write_memory(addr, data)
    }

    fn read_memory(&mut self, addr: u32, len: usize) -> Result<Vec<u32>> {
        self.inner.read_memory(addr, len)
    }

    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> Result<()> {
        self.inner.flip_memory_bit(addr, bit)
    }

    fn memory_size(&self) -> u32 {
        self.inner.memory_size()
    }

    fn set_breakpoint(&mut self, trigger: Trigger) -> Result<()> {
        self.inner.set_breakpoint(trigger)
    }

    fn clear_breakpoints(&mut self) -> Result<()> {
        self.inner.clear_breakpoints()
    }

    fn run_workload(&mut self, budget: RunBudget) -> Result<RunEvent> {
        self.inner.run_workload(budget)
    }

    fn step_instruction(&mut self) -> Result<Option<RunEvent>> {
        self.inner.step_instruction()
    }

    fn chain_layouts(&self) -> Vec<ChainLayout> {
        self.inner.chain_layouts()
    }

    fn read_scan_chain(&mut self, chain: &str) -> Result<BitVec> {
        self.inner.read_scan_chain(chain)
    }

    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> Result<()> {
        self.inner.write_scan_chain(chain, bits)
    }

    fn write_input_ports(&mut self, inputs: &[u32]) -> Result<()> {
        self.inner.write_input_ports(inputs)
    }

    fn read_output_ports(&mut self) -> Result<Vec<u32>> {
        self.inner.read_output_ports()
    }

    fn instructions_executed(&self) -> u64 {
        self.inner.instructions_executed()
    }

    fn cycles_executed(&self) -> u64 {
        self.inner.cycles_executed()
    }

    fn iterations_completed(&self) -> u64 {
        self.inner.iterations_completed()
    }

    fn step_traced(&mut self) -> Result<(Option<RunEvent>, crate::preinject::StepAccess)> {
        self.inner.step_traced()
    }

    fn power_cycle(&mut self) -> Result<()> {
        self.inner.power_cycle()
    }

    fn snapshot(&mut self) -> Result<TargetSnapshot> {
        Ok(TargetSnapshot::new(readout_snapshot(&mut self.inner)?))
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) -> Result<()> {
        let snap = snapshot
            .downcast_ref::<ReadoutSnapshot>()
            .ok_or_else(|| GoofiError::Target("snapshot is not a readout capture".into()))?;
        // Pulse reset before scanning state back in: latches a scan write
        // cannot reach — halt flags, detection state, counters — must
        // return to idle, or a core that ran to completion since the
        // capture would stay halted through the restore. This is exactly
        // how a TAP-driven restore works on real silicon: reset, then
        // shift the saved state in.
        self.inner.reset_target()?;
        readout_restore(&mut self.inner, snap)
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn prefix_restore_safe(&self) -> bool {
        self.inner.prefix_restore_safe()
    }

    // memory_digest deliberately NOT forwarded: the trait default routes
    // through this wrapper's read_memory, which is the documented decorator
    // behaviour — and the inner fast path is exercised directly when the
    // suite runs against the bare port.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{NullTarget, SimTarget};
    use crate::link::{UnreliableTarget, VerifiedTarget};
    use crate::supervisor::WedgeableTarget;
    use scanchain::{LinkFaultConfig, WedgeConfig};

    fn sim_workload() -> WorkloadImage {
        WorkloadImage {
            name: "sim-conformance".into(),
            // 20 instructions, no iteration boundary.
            words: vec![20, 0],
            code_words: 2,
            entry: 0,
        }
    }

    fn sim_spec(label: &str) -> ConformanceSpec {
        let mut spec = ConformanceSpec::new(label, sim_workload());
        spec.expect_snapshot = Some(true);
        spec.expect_prefix_safe = Some(true);
        spec.counters_restored = true;
        spec
    }

    #[test]
    fn sim_target_conforms() {
        let mut spec = sim_spec("sim native");
        spec.expect_name = Some("sim".into());
        let report = run_suite(&mut SimTarget::new(), &spec);
        assert!(report.passed(), "{report}");
        assert_eq!(report.checks.len(), CHECK_NAMES.len());
    }

    #[test]
    fn sim_target_via_readout_fallback_conforms() {
        let mut spec = sim_spec("sim via readout fallback");
        // Readout restores cannot reach the private instruction counter.
        spec.counters_restored = false;
        let mut target = ReadoutFallback::new(SimTarget::new());
        let report = run_suite(&mut target, &spec);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn decorator_stacks_conform_and_forward_capabilities() {
        // verified link over sim
        let report = run_suite(
            &mut VerifiedTarget::new(SimTarget::new()),
            &sim_spec("verified(sim)"),
        );
        assert!(report.passed(), "{report}");

        // healthy (zero-rate) lossy link over sim
        let report = run_suite(
            &mut UnreliableTarget::new(SimTarget::new(), LinkFaultConfig::default()),
            &sim_spec("unreliable(sim, zero rates)"),
        );
        assert!(report.passed(), "{report}");

        // wedge drill with zero rates: forwards everything, but consumes a
        // seeded draw per run call, so prefix-skip is NOT safe — the
        // capability must say so through the whole stack.
        let mut spec = sim_spec("wedgeable(verified(sim))");
        spec.expect_prefix_safe = Some(false);
        let report = run_suite(
            &mut WedgeableTarget::new(
                VerifiedTarget::new(SimTarget::new()),
                WedgeConfig::default(),
            ),
            &spec,
        );
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn unported_template_fails_loudly() {
        let report = run_suite(
            &mut NullTarget::new(),
            &ConformanceSpec::new("unported", sim_workload()),
        );
        assert!(!report.passed());
        // Every check that needs a working card fails at init_test_card.
        let failures = report.failures();
        assert!(!failures.is_empty());
        for failure in failures {
            let msg = failure.error.as_deref().unwrap();
            assert!(msg.contains("init_test_card"), "{msg}");
        }
    }

    #[test]
    fn dyn_targets_are_accepted() {
        let mut boxed: Box<dyn TargetAccess> = Box::new(SimTarget::new());
        let report = run_suite(
            boxed.as_mut() as &mut dyn TargetAccess,
            &sim_spec("dyn sim"),
        );
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn report_renders_outcomes() {
        let report = run_suite(&mut SimTarget::new(), &sim_spec("render"));
        let text = report.to_string();
        assert!(text.contains("PASS capabilities"), "{text}");
        assert!(text.contains("[sim]"), "{text}");
    }
}
