//! Database storage: the paper's Figure 4 schema over `goofidb`.
//!
//! Three tables joined by foreign keys: `TargetSystemData` ("all information
//! about the target system required for setting up new fault injection
//! campaigns"), `CampaignData` ("all the information needed to conduct a
//! campaign") and `LoggedSystemState` ("the system state during and after an
//! experiment"), whose `parentExperiment` attribute links detail-mode
//! re-runs to the original experiment (§2.3).

use crate::algorithms::CampaignResult;
use crate::campaign::{
    Campaign, EnvExchange, ObserveList, OutputRegion, TargetSystemData, Technique, Termination,
    WorkloadImage,
};
use crate::fault::FaultSpec;
use crate::logging::{ExperimentRecord, LoggingMode, StateSnapshot, TerminationCause, Validity};
use crate::supervisor::{RecoveryAction, RecoveryRecord, RecoveryStage, RecoveryTrigger};
use crate::vfs::{self, Vfs};
use crate::{GoofiError, Result};
use goofidb::{Database, Value};
use std::path::Path;

/// Table name: target-system descriptions.
pub const TARGET_TABLE: &str = "TargetSystemData";
/// Table name: campaign configurations.
pub const CAMPAIGN_TABLE: &str = "CampaignData";
/// Table name: per-experiment logs.
pub const LOG_TABLE: &str = "LoggedSystemState";
/// Table name: recovery-ladder audit log (one row per applied action).
pub const RECOVERY_TABLE: &str = "RecoveryActions";

/// Creates the four tables (idempotent).
///
/// # Errors
///
/// Database errors other than "table exists".
pub fn init_schema(db: &mut Database) -> Result<()> {
    let stmts = [
        "CREATE TABLE TargetSystemData (
            name TEXT PRIMARY KEY,
            description TEXT,
            memoryWords INTEGER,
            locations TEXT)",
        "CREATE TABLE CampaignData (
            campaignName TEXT PRIMARY KEY,
            targetSystem TEXT,
            technique TEXT,
            workloadName TEXT,
            workloadImage TEXT,
            codeWords INTEGER,
            entry INTEGER,
            nrOfExperiments INTEGER,
            maxInstructions INTEGER,
            maxIterations INTEGER,
            loggingMode TEXT,
            observeChains TEXT,
            outputRegion TEXT,
            initialInputs TEXT,
            envExchange TEXT,
            faults TEXT,
            policy TEXT,
            FOREIGN KEY (targetSystem) REFERENCES TargetSystemData(name))",
        "CREATE TABLE LoggedSystemState (
            experimentName TEXT PRIMARY KEY,
            parentExperiment TEXT,
            campaignName TEXT,
            experimentData TEXT,
            termination TEXT,
            stateVector TEXT,
            trace TEXT,
            validity TEXT,
            FOREIGN KEY (campaignName) REFERENCES CampaignData(campaignName))",
        "CREATE TABLE RecoveryActions (
            actionName TEXT PRIMARY KEY,
            campaignName TEXT,
            experimentName TEXT,
            trigger TEXT,
            seq INTEGER,
            stage TEXT,
            attempt INTEGER,
            recovered INTEGER,
            detail TEXT,
            FOREIGN KEY (campaignName) REFERENCES CampaignData(campaignName))",
    ];
    for stmt in stmts {
        match db.execute(stmt) {
            Ok(_) => {}
            Err(goofidb::DbError::TableExists(_)) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Stores (or replaces) a target-system description.
///
/// # Errors
///
/// Database errors.
pub fn store_target_system(db: &mut Database, data: &TargetSystemData) -> Result<()> {
    let locations = data
        .locations
        .iter()
        .map(|(chain, cell, width, rw)| {
            format!("{chain}:{cell}:{width}:{}", if *rw { "rw" } else { "ro" })
        })
        .collect::<Vec<_>>()
        .join(";");
    // Replace an existing row of the same name.
    let existing = db
        .table(TARGET_TABLE)
        .is_some_and(|t| t.contains_key(&Value::text(data.name.clone())));
    if existing {
        db.update_where(
            TARGET_TABLE,
            |row| row[0] == Value::text(data.name.clone()),
            |row| {
                row[1] = Value::text(data.description.clone());
                row[2] = Value::from(data.memory_words);
                row[3] = Value::text(locations.clone());
            },
        )?;
    } else {
        db.insert(
            TARGET_TABLE,
            vec![
                Value::text(data.name.clone()),
                Value::text(data.description.clone()),
                Value::from(data.memory_words),
                Value::text(locations),
            ],
        )?;
    }
    Ok(())
}

/// Loads a target-system description.
///
/// # Errors
///
/// Fails when the target system is unknown or the row is malformed.
pub fn load_target_system(db: &Database, name: &str) -> Result<TargetSystemData> {
    let table = db
        .table(TARGET_TABLE)
        .ok_or_else(|| GoofiError::Config(format!("no {TARGET_TABLE} table")))?;
    let row = table
        .find_by_key(&Value::text(name))
        .ok_or_else(|| GoofiError::Config(format!("unknown target system `{name}`")))?;
    let locations_text = row[3].as_text().unwrap_or_default();
    let mut locations = Vec::new();
    for entry in locations_text.split(';').filter(|e| !e.is_empty()) {
        let parts: Vec<&str> = entry.split(':').collect();
        if parts.len() != 4 {
            return Err(GoofiError::Config(format!("bad location entry `{entry}`")));
        }
        locations.push((
            parts[0].to_string(),
            parts[1].to_string(),
            parts[2]
                .parse()
                .map_err(|_| GoofiError::Config(format!("bad width in `{entry}`")))?,
            parts[3] == "rw",
        ));
    }
    Ok(TargetSystemData {
        name: name.to_string(),
        description: row[1].as_text().unwrap_or_default().to_string(),
        memory_words: row[2].as_int().unwrap_or(0) as u32,
        locations,
    })
}

/// Stores a campaign configuration (the set-up phase output).
///
/// # Errors
///
/// Fails when the referenced target system is absent (foreign key) or the
/// campaign name is taken.
pub fn store_campaign(db: &mut Database, campaign: &Campaign) -> Result<()> {
    let faults = campaign
        .faults
        .iter()
        .map(FaultSpec::encode)
        .collect::<Vec<_>>()
        .join("|");
    let inputs = campaign
        .initial_inputs
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(",");
    db.insert(
        CAMPAIGN_TABLE,
        vec![
            Value::text(campaign.name.clone()),
            if campaign.target_system.is_empty() {
                Value::Null
            } else {
                Value::text(campaign.target_system.clone())
            },
            Value::text(campaign.technique.encode()),
            Value::text(campaign.workload.name.clone()),
            Value::text(campaign.workload.encode_words()),
            Value::from(campaign.workload.code_words),
            Value::from(campaign.workload.entry),
            Value::from(campaign.faults.len() as u64),
            Value::from(campaign.termination.max_instructions),
            campaign
                .termination
                .max_iterations
                .map_or(Value::Null, Value::from),
            Value::text(campaign.logging.encode()),
            Value::text(campaign.observe.chains.join(",")),
            Value::text(campaign.observe.output.encode()),
            Value::text(inputs),
            Value::text(campaign.env_exchange.encode()),
            Value::text(faults),
            Value::text(campaign.policy.encode()),
        ],
    )?;
    Ok(())
}

/// Replaces a stored campaign's configuration — the paper's §3.2 set-up
/// operation ("the user may also modify already stored campaign data
/// created for earlier fault injection campaigns").
///
/// # Errors
///
/// Fails when the campaign does not exist, or when experiments have
/// already been logged against it (results must stay reproducible from
/// their campaign row).
pub fn update_campaign(db: &mut Database, campaign: &Campaign) -> Result<()> {
    let exists = db
        .table(CAMPAIGN_TABLE)
        .is_some_and(|t| t.contains_key(&Value::text(campaign.name.clone())));
    if !exists {
        return Err(GoofiError::Config(format!(
            "unknown campaign `{}`",
            campaign.name
        )));
    }
    let has_logs = db.table(LOG_TABLE).is_some_and(|t| {
        t.iter()
            .any(|row| row[2].as_text() == Some(campaign.name.as_str()))
    });
    if has_logs {
        return Err(GoofiError::Config(format!(
            "campaign `{}` already has logged experiments; merge into a new campaign instead",
            campaign.name
        )));
    }
    db.delete_where(CAMPAIGN_TABLE, |row| {
        row[0] == Value::text(campaign.name.clone())
    })?;
    store_campaign(db, campaign)
}

/// Loads a campaign back from the database (the paper's
/// `readCampaignData(campaignNr)` step).
///
/// # Errors
///
/// Fails on unknown campaigns or malformed rows.
pub fn load_campaign(db: &Database, name: &str) -> Result<Campaign> {
    let table = db
        .table(CAMPAIGN_TABLE)
        .ok_or_else(|| GoofiError::Config(format!("no {CAMPAIGN_TABLE} table")))?;
    let row = table
        .find_by_key(&Value::text(name))
        .ok_or_else(|| GoofiError::Config(format!("unknown campaign `{name}`")))?;
    let bad = |what: &str| GoofiError::Config(format!("campaign `{name}`: bad {what}"));

    let words = WorkloadImage::decode_words(row[4].as_text().unwrap_or_default())
        .ok_or_else(|| bad("workload image"))?;
    let mut faults = Vec::new();
    for f in row[15]
        .as_text()
        .unwrap_or_default()
        .split('|')
        .filter(|f| !f.is_empty())
    {
        faults.push(FaultSpec::decode(f).ok_or_else(|| bad("fault spec"))?);
    }
    let initial_inputs = row[13]
        .as_text()
        .unwrap_or_default()
        .split(',')
        .filter(|p| !p.is_empty())
        .map(str::parse)
        .collect::<std::result::Result<Vec<u32>, _>>()
        .map_err(|_| bad("initial inputs"))?;
    Ok(Campaign {
        name: name.to_string(),
        target_system: row[1].as_text().unwrap_or_default().to_string(),
        technique: Technique::decode(row[2].as_text().unwrap_or_default())
            .ok_or_else(|| bad("technique"))?,
        workload: WorkloadImage {
            name: row[3].as_text().unwrap_or_default().to_string(),
            words,
            code_words: row[5].as_int().unwrap_or(0) as u32,
            entry: row[6].as_int().unwrap_or(0) as u32,
        },
        faults,
        termination: Termination {
            max_instructions: row[8].as_int().unwrap_or(0) as u64,
            max_iterations: row[9].as_int().map(|v| v as u64),
        },
        logging: LoggingMode::decode(row[10].as_text().unwrap_or_default())
            .ok_or_else(|| bad("logging mode"))?,
        observe: ObserveList {
            chains: row[11]
                .as_text()
                .unwrap_or_default()
                .split(',')
                .filter(|c| !c.is_empty())
                .map(str::to_string)
                .collect(),
            output: OutputRegion::decode(row[12].as_text().unwrap_or_default())
                .ok_or_else(|| bad("output region"))?,
        },
        initial_inputs,
        env_exchange: EnvExchange::decode(row[14].as_text().unwrap_or_default())
            .ok_or_else(|| bad("envExchange"))?,
        // Databases saved before the policy column existed load with the
        // default (fail-fast) policy.
        policy: match row.get(16).and_then(|v| v.as_text()) {
            Some(text) => {
                crate::policy::ExperimentPolicy::decode(text).ok_or_else(|| bad("policy"))?
            }
            None => crate::policy::ExperimentPolicy::default(),
        },
    })
}

/// Logs one experiment to `LoggedSystemState`.
///
/// # Errors
///
/// Fails when the campaign row is absent (foreign key) or the experiment
/// name is taken.
pub fn log_experiment(db: &mut Database, record: &ExperimentRecord) -> Result<()> {
    let trace = record
        .trace
        .iter()
        .map(StateSnapshot::encode)
        .collect::<Vec<_>>()
        .join("---\n");
    let mut row = vec![
        Value::text(record.name.clone()),
        record.parent.clone().map_or(Value::Null, Value::text),
        Value::text(record.campaign.clone()),
        record
            .fault
            .as_ref()
            .map_or(Value::Null, |f| Value::text(f.encode())),
        Value::text(record.termination.encode()),
        Value::text(record.state.encode()),
        if trace.is_empty() {
            Value::Null
        } else {
            Value::text(trace)
        },
        Value::text(record.validity.encode()),
    ];
    // Database files created before the validity column existed have a
    // seven-column LoggedSystemState; keep logging into them (their records
    // are all implicitly valid).
    if let Some(t) = db.table(LOG_TABLE) {
        row.truncate(t.schema().columns.len());
    }
    db.insert(LOG_TABLE, row)?;
    Ok(())
}

/// Stores a full campaign result: the reference run, all experiments, and
/// any quarantined records (kept for audit alongside their authoritative
/// re-runs). Idempotent by experiment name, so a result assembled after a
/// resume can be stored over records already salvaged from a partial run or
/// imported from a journal.
///
/// # Errors
///
/// Database errors (the campaign row must already exist).
pub fn store_result(db: &mut Database, result: &CampaignResult) -> Result<()> {
    store_result_traced(db, result, &crate::telemetry::Telemetry::disabled())
}

/// [`store_result`] with each record's insert timed as a `db-write` span in
/// the given telemetry handle.
///
/// # Errors
///
/// Database errors (the campaign row must already exist).
pub fn store_result_traced(
    db: &mut Database,
    result: &CampaignResult,
    tel: &crate::telemetry::Telemetry,
) -> Result<()> {
    let existing = |db: &Database, name: &str| {
        db.table(LOG_TABLE)
            .is_some_and(|t| t.contains_key(&Value::text(name)))
    };
    for record in std::iter::once(&result.reference)
        .chain(result.records.iter())
        .chain(result.quarantined.iter())
    {
        if !existing(db, &record.name) {
            tel.time(crate::telemetry::Stage::DbWrite, || {
                log_experiment(db, record)
            })?;
        }
    }
    Ok(())
}

/// Logs every action of the given recovery episodes to `RecoveryActions`,
/// one row per ladder step, keyed `{experiment}@{trigger}#{seq}` so storing
/// the same episodes twice (e.g. after a resume) is idempotent. Databases
/// created before the table existed are upgraded in place by
/// [`init_schema`]; call that first.
///
/// # Errors
///
/// Database errors (the campaign row must already exist).
pub fn log_recovery_actions(
    db: &mut Database,
    campaign: &str,
    recoveries: &[RecoveryRecord],
) -> Result<()> {
    let existing = |db: &Database, name: &str| {
        db.table(RECOVERY_TABLE)
            .is_some_and(|t| t.contains_key(&Value::text(name)))
    };
    for episode in recoveries {
        for (seq, action) in episode.actions.iter().enumerate() {
            let key = format!("{}@{}#{seq}", episode.experiment, episode.trigger.encode());
            if existing(db, &key) {
                continue;
            }
            db.insert(
                RECOVERY_TABLE,
                vec![
                    Value::text(key),
                    Value::text(campaign.to_string()),
                    Value::text(episode.experiment.clone()),
                    Value::text(episode.trigger.encode()),
                    Value::from(seq as u64),
                    Value::text(action.stage.encode()),
                    Value::from(u64::from(action.attempt)),
                    Value::from(u64::from(action.recovered)),
                    Value::text(action.detail.clone()),
                ],
            )?;
        }
    }
    Ok(())
}

/// Loads a campaign's recovery episodes back from `RecoveryActions`,
/// grouping rows into [`RecoveryRecord`]s. Returns an empty vector when the
/// table is absent (pre-supervision database).
///
/// # Errors
///
/// Fails on malformed rows.
pub fn load_recovery_actions(db: &Database, campaign: &str) -> Result<Vec<RecoveryRecord>> {
    let Some(table) = db.table(RECOVERY_TABLE) else {
        return Ok(Vec::new());
    };
    let bad = |what: &str| GoofiError::Config(format!("recovery action: bad {what}"));
    let mut rows = Vec::new();
    for row in table.iter() {
        if row[1].as_text() != Some(campaign) {
            continue;
        }
        let experiment = row[2].as_text().unwrap_or_default().to_string();
        let trigger = RecoveryTrigger::decode(row[3].as_text().unwrap_or_default())
            .ok_or_else(|| bad("trigger"))?;
        let seq = row[4].as_int().ok_or_else(|| bad("seq"))?;
        let action = RecoveryAction {
            stage: RecoveryStage::decode(row[5].as_text().unwrap_or_default())
                .ok_or_else(|| bad("stage"))?,
            attempt: row[6].as_int().ok_or_else(|| bad("attempt"))? as u32,
            recovered: row[7].as_int().ok_or_else(|| bad("recovered"))? != 0,
            detail: row[8].as_text().unwrap_or_default().to_string(),
        };
        rows.push((experiment, trigger, seq, action));
    }
    rows.sort_by(|a, b| (&a.0, a.1.encode(), a.2).cmp(&(&b.0, b.1.encode(), b.2)));
    let mut episodes: Vec<RecoveryRecord> = Vec::new();
    for (experiment, trigger, _, action) in rows {
        match episodes.last_mut() {
            Some(e) if e.experiment == experiment && e.trigger == trigger => {
                e.recovered = e.recovered || action.recovered;
                e.actions.push(action);
            }
            _ => episodes.push(RecoveryRecord {
                experiment,
                trigger,
                recovered: action.recovered,
                actions: vec![action],
            }),
        }
    }
    Ok(episodes)
}

/// Imports the records of a crash-safe experiment journal (see
/// [`crate::journal`]) into `LoggedSystemState`, skipping experiments
/// already present — so a journal can be folded into the database after a
/// crash, idempotently. Returns how many records were inserted.
///
/// This is also the campaign service's merge primitive: the scheduler
/// folds every shard journal of a finished job through here (in shard
/// order), and the name-keyed dedup is what turns the service's
/// at-least-once execution into an exactly-once database.
///
/// # Errors
///
/// Journal read errors and database errors (the campaign row must exist).
pub fn import_journal(
    db: &mut Database,
    path: impl AsRef<std::path::Path>,
    campaign: &str,
) -> Result<usize> {
    import_journal_with(db, &vfs::RealFs, path, campaign)
}

/// [`import_journal`] over an explicit [`Vfs`] — the seam the durability
/// torture harness injects faults through.
///
/// # Errors
///
/// As [`import_journal`].
pub fn import_journal_with(
    db: &mut Database,
    vfs: &dyn Vfs,
    path: impl AsRef<std::path::Path>,
    campaign: &str,
) -> Result<usize> {
    let state = crate::journal::ExperimentJournal::load_with(vfs, path, campaign)?;
    let mut inserted = 0;
    let existing = |db: &Database, name: &str| {
        db.table(LOG_TABLE)
            .is_some_and(|t| t.contains_key(&Value::text(name)))
    };
    for record in state
        .reference
        .iter()
        .chain(state.completed.values())
        .chain(state.quarantined.iter())
    {
        if !existing(db, &record.name) {
            log_experiment(db, record)?;
            inserted += 1;
        }
    }
    Ok(inserted)
}

/// Saves the database through a [`Vfs`] with the atomic temp-file, `fsync`,
/// rename discipline — the routed equivalent of
/// [`Database::save_to_path`], and the only save path the CLI uses.
///
/// # Errors
///
/// I/O errors, surfaced as [`GoofiError::Io`] with the offending path.
pub fn save_database(vfs: &dyn Vfs, path: impl AsRef<Path>, db: &Database) -> Result<()> {
    let path = path.as_ref();
    vfs::atomic_write(vfs, path, db.save_to_string().as_bytes())
        .map_err(|e| GoofiError::io("saving database to", path, &e))
}

/// Loads a database through a [`Vfs`], verifying every table's `CHECK`
/// checksum footer. A checksum mismatch or garbled row surfaces as
/// [`goofidb::DbError::Corrupt`] with a hint to run `goofi fsck --repair` —
/// the strict counterpart of the lenient salvage load that fsck itself
/// performs.
///
/// # Errors
///
/// I/O errors ([`GoofiError::Io`]) and corruption/parse errors
/// ([`GoofiError::Db`]).
pub fn load_database(vfs: &dyn Vfs, path: impl AsRef<Path>) -> Result<Database> {
    let path = path.as_ref();
    let text = vfs
        .read_to_string(path)
        .map_err(|e| GoofiError::io("loading database from", path, &e))?;
    Database::load_from_string(&text).map_err(|e| match e {
        goofidb::DbError::Corrupt { table, detail } => GoofiError::Db(goofidb::DbError::Corrupt {
            table,
            detail: format!("{detail} (run `goofi fsck --repair` to salvage)"),
        }),
        other => GoofiError::Db(other),
    })
}

/// Loads one experiment record by name.
///
/// # Errors
///
/// Fails on unknown experiments or malformed rows.
pub fn load_experiment(db: &Database, name: &str) -> Result<ExperimentRecord> {
    let table = db
        .table(LOG_TABLE)
        .ok_or_else(|| GoofiError::Config(format!("no {LOG_TABLE} table")))?;
    let row = table
        .find_by_key(&Value::text(name))
        .ok_or_else(|| GoofiError::Config(format!("unknown experiment `{name}`")))?;
    decode_log_row(row)
}

/// Loads every experiment of a campaign (reference first, when present).
///
/// # Errors
///
/// Fails on malformed rows.
pub fn load_experiments(db: &Database, campaign: &str) -> Result<Vec<ExperimentRecord>> {
    let table = db
        .table(LOG_TABLE)
        .ok_or_else(|| GoofiError::Config(format!("no {LOG_TABLE} table")))?;
    let mut records = Vec::new();
    for row in table.iter() {
        if row[2].as_text() == Some(campaign) {
            records.push(decode_log_row(row)?);
        }
    }
    // Length-then-lexicographic keeps numeric order even past the 5-digit
    // zero padding of experiment names.
    records.sort_by_key(|r| (!r.is_reference(), r.name.len(), r.name.clone()));
    Ok(records)
}

fn decode_log_row(row: &[Value]) -> Result<ExperimentRecord> {
    let name = row[0].as_text().unwrap_or_default().to_string();
    let bad = |what: &str| GoofiError::Config(format!("experiment `{name}`: bad {what}"));
    let fault = match row[3].as_text() {
        Some(s) => Some(FaultSpec::decode(s).ok_or_else(|| bad("experimentData"))?),
        None => None,
    };
    let termination = TerminationCause::decode(row[4].as_text().unwrap_or_default())
        .ok_or_else(|| bad("termination"))?;
    let state = StateSnapshot::decode(row[5].as_text().unwrap_or_default())
        .ok_or_else(|| bad("stateVector"))?;
    let mut trace = Vec::new();
    if let Some(text) = row[6].as_text() {
        for part in text.split("---\n") {
            trace.push(StateSnapshot::decode(part).ok_or_else(|| bad("trace"))?);
        }
    }
    // Rows written before the validity column existed decode as valid.
    let validity = match row.get(7).and_then(|v| v.as_text()) {
        Some(text) => Validity::decode(text).ok_or_else(|| bad("validity"))?,
        None => Validity::Valid,
    };
    Ok(ExperimentRecord {
        name: name.clone(),
        parent: row[1].as_text().map(str::to_string),
        campaign: row[2].as_text().unwrap_or_default().to_string(),
        fault,
        termination,
        state,
        trace,
        validity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultLocation;
    use crate::trigger::Trigger;

    fn demo_campaign() -> Campaign {
        Campaign::builder("c1")
            .target_system("thor-rd")
            .technique(Technique::Scifi)
            .workload(WorkloadImage {
                name: "w".into(),
                words: vec![0xDEADBEEF, 0x01000000],
                code_words: 2,
                entry: 0,
            })
            .observe_chains(["internal"])
            .output(OutputRegion::Memory { addr: 10, len: 2 })
            .initial_inputs(vec![5, 6])
            .fault(FaultSpec::single(
                FaultLocation::ScanCell {
                    chain: "internal".into(),
                    cell: "R1".into(),
                    bit: 4,
                },
                Trigger::AfterInstructions(100),
            ))
            .fault(FaultSpec::single(
                FaultLocation::Memory { addr: 3, bit: 7 },
                Trigger::Breakpoint(1),
            ))
            .build()
            .unwrap()
    }

    fn demo_target() -> TargetSystemData {
        TargetSystemData {
            name: "thor-rd".into(),
            description: "simulated thor".into(),
            memory_words: 65536,
            locations: vec![
                ("internal".into(), "R1".into(), 32, true),
                ("internal".into(), "DETECT".into(), 32, false),
            ],
        }
    }

    #[test]
    fn schema_is_idempotent() {
        let mut db = Database::new();
        init_schema(&mut db).unwrap();
        init_schema(&mut db).unwrap();
        assert_eq!(db.table_names().len(), 4);
    }

    #[test]
    fn target_system_roundtrip() {
        let mut db = Database::new();
        init_schema(&mut db).unwrap();
        let t = demo_target();
        store_target_system(&mut db, &t).unwrap();
        assert_eq!(load_target_system(&db, "thor-rd").unwrap(), t);
        // Re-store replaces.
        let mut t2 = t.clone();
        t2.description = "updated".into();
        store_target_system(&mut db, &t2).unwrap();
        assert_eq!(load_target_system(&db, "thor-rd").unwrap(), t2);
        assert!(load_target_system(&db, "nope").is_err());
    }

    #[test]
    fn campaign_roundtrip() {
        let mut db = Database::new();
        init_schema(&mut db).unwrap();
        store_target_system(&mut db, &demo_target()).unwrap();
        let c = demo_campaign();
        store_campaign(&mut db, &c).unwrap();
        assert_eq!(load_campaign(&db, "c1").unwrap(), c);
        assert!(load_campaign(&db, "nope").is_err());
    }

    #[test]
    fn campaign_policy_roundtrips() {
        let mut db = Database::new();
        init_schema(&mut db).unwrap();
        store_target_system(&mut db, &demo_target()).unwrap();
        let mut c = demo_campaign();
        c.policy = crate::policy::ExperimentPolicy::retry_then_skip(3)
            .with_backoff(crate::policy::Backoff::exponential(5, 50))
            .with_watchdog(crate::policy::WatchdogBudget {
                max_cycles: Some(50_000),
                max_wall_ms: Some(1_000),
            });
        store_campaign(&mut db, &c).unwrap();
        assert_eq!(load_campaign(&db, "c1").unwrap(), c);
    }

    #[test]
    fn import_journal_is_idempotent() {
        let mut db = Database::new();
        init_schema(&mut db).unwrap();
        store_target_system(&mut db, &demo_target()).unwrap();
        let c = demo_campaign();
        store_campaign(&mut db, &c).unwrap();

        let mut path = std::env::temp_dir();
        path.push(format!("goofi-dbio-import-{}.gjl", std::process::id()));
        let mut journal = crate::journal::ExperimentJournal::create(&path, "c1").unwrap();
        let reference = ExperimentRecord {
            name: "c1/reference".into(),
            parent: None,
            campaign: "c1".into(),
            fault: None,
            termination: TerminationCause::WorkloadEnd,
            state: StateSnapshot::default(),
            trace: vec![],
            validity: Validity::Valid,
        };
        let exp = ExperimentRecord {
            name: "c1/exp00000".into(),
            fault: Some(c.faults[0].clone()),
            ..reference.clone()
        };
        journal.append_record(None, &reference).unwrap();
        journal.append_record(Some(0), &exp).unwrap();
        drop(journal);

        assert_eq!(import_journal(&mut db, &path, "c1").unwrap(), 2);
        // Importing again inserts nothing new.
        assert_eq!(import_journal(&mut db, &path, "c1").unwrap(), 0);
        assert_eq!(load_experiments(&db, "c1").unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn campaign_fk_requires_target_system() {
        let mut db = Database::new();
        init_schema(&mut db).unwrap();
        let e = store_campaign(&mut db, &demo_campaign()).unwrap_err();
        assert!(matches!(
            e,
            GoofiError::Db(goofidb::DbError::ForeignKeyViolation { .. })
        ));
    }

    #[test]
    fn update_campaign_replaces_until_logs_exist() {
        let mut db = Database::new();
        init_schema(&mut db).unwrap();
        store_target_system(&mut db, &demo_target()).unwrap();
        let mut c = demo_campaign();
        store_campaign(&mut db, &c).unwrap();

        // Modify the stored set-up (paper §3.2).
        c.termination.max_instructions = 42;
        c.faults.truncate(1);
        update_campaign(&mut db, &c).unwrap();
        assert_eq!(load_campaign(&db, "c1").unwrap(), c);

        // Unknown campaigns are rejected.
        let mut other = c.clone();
        other.name = "nope".into();
        assert!(update_campaign(&mut db, &other).is_err());

        // Once experiments are logged, the campaign is frozen.
        log_experiment(
            &mut db,
            &ExperimentRecord {
                name: "c1/exp00000".into(),
                parent: None,
                campaign: "c1".into(),
                fault: Some(c.faults[0].clone()),
                termination: TerminationCause::WorkloadEnd,
                state: StateSnapshot::default(),
                trace: vec![],
                validity: Validity::Valid,
            },
        )
        .unwrap();
        assert!(update_campaign(&mut db, &c).is_err());
    }

    #[test]
    fn experiment_roundtrip_including_parent_and_trace() {
        let mut db = Database::new();
        init_schema(&mut db).unwrap();
        store_target_system(&mut db, &demo_target()).unwrap();
        let c = demo_campaign();
        store_campaign(&mut db, &c).unwrap();

        let mut snap = StateSnapshot {
            memory_digest: 42,
            outputs: vec![1, 2],
            ..Default::default()
        };
        snap.scan.insert("internal".into(), "0110".into());
        let record = ExperimentRecord {
            name: "c1/exp00000".into(),
            parent: None,
            campaign: "c1".into(),
            fault: Some(c.faults[0].clone()),
            termination: TerminationCause::WorkloadEnd,
            state: snap.clone(),
            trace: vec![snap.clone(), snap.clone()],
            validity: Validity::Valid,
        };
        log_experiment(&mut db, &record).unwrap();
        assert_eq!(load_experiment(&db, "c1/exp00000").unwrap(), record);

        // A detail-mode re-run referencing its parent (paper §2.3).
        let rerun = ExperimentRecord {
            name: "c1/exp00000/detail".into(),
            parent: Some("c1/exp00000".into()),
            ..record.clone()
        };
        log_experiment(&mut db, &rerun).unwrap();
        let loaded = load_experiment(&db, "c1/exp00000/detail").unwrap();
        assert_eq!(loaded.parent.as_deref(), Some("c1/exp00000"));
    }

    #[test]
    fn load_experiments_sorts_reference_first() {
        let mut db = Database::new();
        init_schema(&mut db).unwrap();
        store_target_system(&mut db, &demo_target()).unwrap();
        let c = demo_campaign();
        store_campaign(&mut db, &c).unwrap();

        let make = |name: &str, fault: Option<FaultSpec>| ExperimentRecord {
            name: name.into(),
            parent: None,
            campaign: "c1".into(),
            fault,
            termination: TerminationCause::WorkloadEnd,
            state: StateSnapshot::default(),
            trace: vec![],
            validity: Validity::Valid,
        };
        log_experiment(&mut db, &make("c1/exp00001", Some(c.faults[0].clone()))).unwrap();
        log_experiment(&mut db, &make("c1/reference", None)).unwrap();
        log_experiment(&mut db, &make("c1/exp00000", Some(c.faults[1].clone()))).unwrap();

        let records = load_experiments(&db, "c1").unwrap();
        assert_eq!(records.len(), 3);
        assert!(records[0].is_reference());
        assert_eq!(records[1].name, "c1/exp00000");
        assert_eq!(records[2].name, "c1/exp00001");
        assert!(load_experiments(&db, "other").unwrap().is_empty());
    }

    #[test]
    fn validity_roundtrips_and_legacy_tables_still_log() {
        let mut db = Database::new();
        init_schema(&mut db).unwrap();
        store_target_system(&mut db, &demo_target()).unwrap();
        let c = demo_campaign();
        store_campaign(&mut db, &c).unwrap();

        let mut record = ExperimentRecord {
            name: "c1/exp00000".into(),
            parent: None,
            campaign: "c1".into(),
            fault: Some(c.faults[0].clone()),
            termination: TerminationCause::WorkloadEnd,
            state: StateSnapshot::default(),
            trace: vec![],
            validity: Validity::Invalid,
        };
        log_experiment(&mut db, &record).unwrap();
        assert_eq!(
            load_experiment(&db, "c1/exp00000").unwrap().validity,
            Validity::Invalid
        );

        // A database created before the validity column existed keeps
        // accepting logs; its records load as valid.
        let mut old = Database::new();
        old.execute(
            "CREATE TABLE LoggedSystemState (
                experimentName TEXT PRIMARY KEY,
                parentExperiment TEXT,
                campaignName TEXT,
                experimentData TEXT,
                termination TEXT,
                stateVector TEXT,
                trace TEXT)",
        )
        .unwrap();
        record.campaign = String::new();
        record.fault = None;
        log_experiment(&mut old, &record).unwrap();
        assert_eq!(
            load_experiment(&old, "c1/exp00000").unwrap().validity,
            Validity::Valid
        );
    }

    #[test]
    fn store_result_includes_quarantined_records() {
        let mut db = Database::new();
        init_schema(&mut db).unwrap();
        store_target_system(&mut db, &demo_target()).unwrap();
        let c = demo_campaign();
        store_campaign(&mut db, &c).unwrap();

        let reference = ExperimentRecord {
            name: "c1/reference".into(),
            parent: None,
            campaign: "c1".into(),
            fault: None,
            termination: TerminationCause::WorkloadEnd,
            state: StateSnapshot::default(),
            trace: vec![],
            validity: Validity::Valid,
        };
        let quarantined = ExperimentRecord {
            name: "c1/exp00000".into(),
            fault: Some(c.faults[0].clone()),
            validity: Validity::Invalid,
            ..reference.clone()
        };
        let rerun = ExperimentRecord {
            name: "c1/exp00000/rerun1".into(),
            parent: Some("c1/exp00000".into()),
            fault: Some(c.faults[0].clone()),
            ..reference.clone()
        };
        let result = CampaignResult {
            reference,
            records: vec![rerun],
            failures: vec![],
            quarantined: vec![quarantined],
            recoveries: vec![],
        };
        store_result(&mut db, &result).unwrap();
        let records = load_experiments(&db, "c1").unwrap();
        assert_eq!(records.len(), 3);
        let stored = load_experiment(&db, "c1/exp00000").unwrap();
        assert_eq!(stored.validity, Validity::Invalid);
        let stored = load_experiment(&db, "c1/exp00000/rerun1").unwrap();
        assert_eq!(stored.parent.as_deref(), Some("c1/exp00000"));
        assert_eq!(stored.validity, Validity::Valid);
    }

    #[test]
    fn recovery_actions_roundtrip_and_are_idempotent() {
        let mut db = Database::new();
        init_schema(&mut db).unwrap();
        store_target_system(&mut db, &demo_target()).unwrap();
        store_campaign(&mut db, &demo_campaign()).unwrap();

        let episodes = vec![
            RecoveryRecord {
                experiment: "c1/exp00002".into(),
                trigger: RecoveryTrigger::TargetHang,
                actions: vec![
                    RecoveryAction {
                        stage: RecoveryStage::SoftReset,
                        attempt: 1,
                        recovered: false,
                        detail: "chain `internal`: two idle captures disagree".into(),
                    },
                    RecoveryAction {
                        stage: RecoveryStage::ReinitTestCard,
                        attempt: 1,
                        recovered: true,
                        detail: String::new(),
                    },
                ],
                recovered: true,
            },
            RecoveryRecord {
                experiment: "c1/exp00005".into(),
                trigger: RecoveryTrigger::ProbeFailure,
                actions: vec![RecoveryAction {
                    stage: RecoveryStage::Offline,
                    attempt: 1,
                    recovered: false,
                    detail: "every recovery stage exhausted".into(),
                }],
                recovered: false,
            },
        ];
        log_recovery_actions(&mut db, "c1", &episodes).unwrap();
        // Logging again inserts nothing new.
        log_recovery_actions(&mut db, "c1", &episodes).unwrap();
        assert_eq!(load_recovery_actions(&db, "c1").unwrap(), episodes);
        assert!(load_recovery_actions(&db, "other").unwrap().is_empty());

        // Pre-supervision databases simply have no episodes.
        let old = Database::new();
        assert!(load_recovery_actions(&old, "c1").unwrap().is_empty());
    }

    #[test]
    fn experiment_fk_requires_campaign() {
        let mut db = Database::new();
        init_schema(&mut db).unwrap();
        let record = ExperimentRecord {
            name: "x".into(),
            parent: None,
            campaign: "missing".into(),
            fault: None,
            termination: TerminationCause::Timeout,
            state: StateSnapshot::default(),
            trace: vec![],
            validity: Validity::Valid,
        };
        assert!(log_experiment(&mut db, &record).is_err());
    }
}
