//! Framework error type.

use std::error::Error;
use std::fmt;

/// Errors raised by the fault-injection framework.
#[derive(Debug)]
pub enum GoofiError {
    /// A scan-chain/test-card operation failed.
    Scan(scanchain::ScanError),
    /// A database operation failed.
    Db(goofidb::DbError),
    /// A target-system operation failed (message from the target interface).
    Target(String),
    /// The campaign configuration is invalid.
    Config(String),
    /// A `Framework` template method was called before being implemented
    /// for the target system (paper Figure 3: "Write your code here!").
    Unimplemented(&'static str),
    /// The campaign was stopped from the progress monitor.
    Stopped,
    /// The link to the target kept failing: a transport operation could not
    /// be completed (or verified) within the recovery budget of a
    /// [`VerifiedTarget`](crate::link::VerifiedTarget).
    LinkFault {
        /// The operation that failed, e.g. `read_scan_chain(internal)`.
        operation: String,
        /// Attempts made before giving up.
        attempts: u32,
        /// What the last attempt observed.
        detail: String,
    },
    /// An experiment journal could not be written or read.
    Journal(String),
    /// A filesystem operation on a persistence artifact (journal, spool
    /// manifest, shard journal, database file) failed. `ENOSPC`/`EIO`
    /// mid-campaign surface here — with the offending path — instead of
    /// panicking.
    Io {
        /// What was being done, e.g. `appending to`.
        op: String,
        /// The file the operation failed on.
        path: std::path::PathBuf,
        /// The rendered [`std::io::Error`].
        detail: String,
    },
    /// A campaign-service wire message (newline-delimited JSON between
    /// `goofi submit`, the daemon, and its shard workers) was malformed,
    /// truncated, or could not be transported.
    Wire(String),
    /// An experiment failed despite the campaign's
    /// [`ExperimentPolicy`](crate::policy::ExperimentPolicy) and the policy
    /// aborts the campaign. Unlike a bare error, this carries every record
    /// completed before the failure — a failing experiment no longer
    /// discards finished work.
    ExperimentFailed {
        /// The failing experiment (lowest index when several workers
        /// failed concurrently).
        failure: crate::policy::ExperimentFailure,
        /// Reference run plus all records completed before the abort.
        partial: Box<crate::algorithms::CampaignResult>,
    },
    /// The target stopped responding and the
    /// [`RecoveryLadder`](crate::supervisor::RecoveryLadder) exhausted every
    /// stage: the target is offline. Like [`GoofiError::ExperimentFailed`],
    /// this preserves all work completed before the target died.
    TargetOffline {
        /// Where the target died, e.g. the experiment being recovered.
        context: String,
        /// Reference run plus all records completed before the target
        /// went offline.
        partial: Box<crate::algorithms::CampaignResult>,
    },
}

impl fmt::Display for GoofiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoofiError::Scan(e) => write!(f, "scan-chain error: {e}"),
            GoofiError::Db(e) => write!(f, "database error: {e}"),
            GoofiError::Target(msg) => write!(f, "target system error: {msg}"),
            GoofiError::Config(msg) => write!(f, "campaign configuration error: {msg}"),
            GoofiError::Unimplemented(method) => {
                write!(
                    f,
                    "abstract method `{method}` not implemented for this target system"
                )
            }
            GoofiError::Stopped => f.write_str("campaign stopped by the user"),
            GoofiError::LinkFault {
                operation,
                attempts,
                detail,
            } => write!(
                f,
                "unrecovered link fault in {operation} after {attempts} attempt(s): {detail}"
            ),
            GoofiError::Journal(msg) => write!(f, "experiment journal error: {msg}"),
            GoofiError::Io { op, path, detail } => {
                write!(f, "I/O error {op} {}: {detail}", path.display())
            }
            GoofiError::Wire(msg) => write!(f, "wire protocol error: {msg}"),
            GoofiError::ExperimentFailed { failure, partial } => write!(
                f,
                "{failure}; {} completed record(s) preserved",
                partial.records.len()
            ),
            GoofiError::TargetOffline { context, partial } => write!(
                f,
                "target offline: recovery ladder exhausted during {context}; \
                 {} completed record(s) preserved",
                partial.records.len()
            ),
        }
    }
}

impl GoofiError {
    /// An [`GoofiError::Io`] from a failed filesystem step.
    pub fn io(op: &str, path: impl Into<std::path::PathBuf>, e: &std::io::Error) -> GoofiError {
        GoofiError::Io {
            op: op.to_string(),
            path: path.into(),
            detail: e.to_string(),
        }
    }
}

impl Error for GoofiError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GoofiError::Scan(e) => Some(e),
            GoofiError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<scanchain::ScanError> for GoofiError {
    fn from(e: scanchain::ScanError) -> Self {
        GoofiError::Scan(e)
    }
}

impl From<goofidb::DbError> for GoofiError {
    fn from(e: goofidb::DbError) -> Self {
        GoofiError::Db(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = GoofiError::Unimplemented("load_workload");
        assert!(e.to_string().contains("load_workload"));
        let e = GoofiError::from(scanchain::ScanError::UnknownChain("x".into()));
        assert!(e.to_string().contains("scan-chain"));
        let e = GoofiError::from(goofidb::DbError::NoSuchTable("t".into()));
        assert!(e.to_string().contains("database"));
        assert!(GoofiError::Stopped.to_string().contains("stopped"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e = GoofiError::from(goofidb::DbError::NoSuchTable("t".into()));
        assert!(e.source().is_some());
        assert!(GoofiError::Stopped.source().is_none());
    }
}
