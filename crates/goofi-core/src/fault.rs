//! Fault models and fault locations: *what* is injected and *where*.
//!
//! The paper's base tool "is capable of injecting single or multiple
//! transient bit-flip faults" (§1); §4 adds "additional fault models such as
//! intermittent and permanent faults" — all four are implemented.

use crate::trigger::Trigger;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// A single fault-injection location.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FaultLocation {
    /// One bit of a named cell in a scan chain (SCIFI).
    ScanCell {
        /// Chain name.
        chain: String,
        /// Cell name within the chain.
        cell: String,
        /// Bit index within the cell.
        bit: usize,
    },
    /// One bit of a memory word (SWIFI).
    Memory {
        /// Word address.
        addr: u32,
        /// Bit index (0..32).
        bit: u8,
    },
}

impl FaultLocation {
    /// Compact string form for the `experimentData` database attribute.
    pub fn encode(&self) -> String {
        match self {
            FaultLocation::ScanCell { chain, cell, bit } => format!("scan:{chain}:{cell}:{bit}"),
            FaultLocation::Memory { addr, bit } => format!("mem:{addr}:{bit}"),
        }
    }

    /// Parses [`FaultLocation::encode`] output.
    pub fn decode(s: &str) -> Option<FaultLocation> {
        let parts: Vec<&str> = s.split(':').collect();
        match parts.as_slice() {
            ["scan", chain, cell, bit] => Some(FaultLocation::ScanCell {
                chain: chain.to_string(),
                cell: cell.to_string(),
                bit: bit.parse().ok()?,
            }),
            ["mem", addr, bit] => Some(FaultLocation::Memory {
                addr: addr.parse().ok()?,
                bit: bit.parse().ok()?,
            }),
            _ => None,
        }
    }

    /// A coarse location class for analysis tables (e.g. `"internal.R3"`,
    /// `"icache"`, `"memory"`).
    pub fn class(&self) -> String {
        match self {
            FaultLocation::ScanCell { chain, cell, .. } => {
                // Cache cells are named L<i>.<FIELD>; group per chain.
                if cell.starts_with('L') && cell.contains('.') {
                    chain.clone()
                } else {
                    format!("{chain}.{cell}")
                }
            }
            FaultLocation::Memory { .. } => "memory".to_string(),
        }
    }
}

impl fmt::Display for FaultLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultLocation::ScanCell { chain, cell, bit } => {
                write!(f, "{chain}/{cell}[{bit}]")
            }
            FaultLocation::Memory { addr, bit } => write!(f, "mem[{addr:#x}] bit {bit}"),
        }
    }
}

/// The fault model applied at the trigger point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// Invert the bit once (transient bit flip — the base model).
    TransientBitFlip,
    /// Force the bit to 0 for the rest of the experiment (permanent).
    StuckAtZero,
    /// Force the bit to 1 for the rest of the experiment (permanent).
    StuckAtOne,
    /// Re-flip the bit every `period` instructions, `bursts` times in total
    /// (intermittent).
    Intermittent {
        /// Instructions between re-injections.
        period: u64,
        /// Total number of injections.
        bursts: u32,
    },
}

impl FaultModel {
    /// Compact string form for the database.
    pub fn encode(self) -> String {
        match self {
            FaultModel::TransientBitFlip => "flip".to_string(),
            FaultModel::StuckAtZero => "sa0".to_string(),
            FaultModel::StuckAtOne => "sa1".to_string(),
            FaultModel::Intermittent { period, bursts } => format!("int:{period}:{bursts}"),
        }
    }

    /// Parses [`FaultModel::encode`] output.
    pub fn decode(s: &str) -> Option<FaultModel> {
        match s {
            "flip" => return Some(FaultModel::TransientBitFlip),
            "sa0" => return Some(FaultModel::StuckAtZero),
            "sa1" => return Some(FaultModel::StuckAtOne),
            _ => {}
        }
        let rest = s.strip_prefix("int:")?;
        let (p, b) = rest.split_once(':')?;
        Some(FaultModel::Intermittent {
            period: p.parse().ok()?,
            bursts: b.parse().ok()?,
        })
    }

    /// Whether the model needs to re-assert the fault while the workload
    /// continues running (permanent and intermittent models).
    pub fn is_persistent(self) -> bool {
        !matches!(self, FaultModel::TransientBitFlip)
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultModel::TransientBitFlip => f.write_str("transient bit-flip"),
            FaultModel::StuckAtZero => f.write_str("stuck-at-0"),
            FaultModel::StuckAtOne => f.write_str("stuck-at-1"),
            FaultModel::Intermittent { period, bursts } => {
                write!(f, "intermittent (x{bursts}, every {period} instr)")
            }
        }
    }
}

/// One experiment's fault: locations (one for single, several for multiple
/// bit flips), model, and injection trigger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Bits to disturb (all at the same trigger point).
    pub locations: Vec<FaultLocation>,
    /// Fault model.
    pub model: FaultModel,
    /// Injection time.
    pub trigger: Trigger,
}

impl FaultSpec {
    /// A single transient bit flip at `location` when `trigger` fires.
    pub fn single(location: FaultLocation, trigger: Trigger) -> FaultSpec {
        FaultSpec {
            locations: vec![location],
            model: FaultModel::TransientBitFlip,
            trigger,
        }
    }

    /// Serialises to the `experimentData` attribute format.
    pub fn encode(&self) -> String {
        let locs: Vec<String> = self.locations.iter().map(FaultLocation::encode).collect();
        format!(
            "model={};trigger={};locations={}",
            self.model.encode(),
            self.trigger.encode(),
            locs.join(",")
        )
    }

    /// Parses [`FaultSpec::encode`] output.
    pub fn decode(s: &str) -> Option<FaultSpec> {
        let mut model = None;
        let mut trigger = None;
        let mut locations = Vec::new();
        for part in s.split(';') {
            let (k, v) = part.split_once('=')?;
            match k {
                "model" => model = FaultModel::decode(v),
                "trigger" => trigger = Trigger::decode(v),
                "locations" => {
                    for l in v.split(',').filter(|l| !l.is_empty()) {
                        locations.push(FaultLocation::decode(l)?);
                    }
                }
                _ => return None,
            }
        }
        Some(FaultSpec {
            locations,
            model: model?,
            trigger: trigger?,
        })
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at ", self.model)?;
        for (i, l) in self.locations.iter().enumerate() {
            if i > 0 {
                f.write_str(" + ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ", {}", self.trigger)
    }
}

/// The sampling universe for a campaign: which bits and which times are
/// eligible. The set-up phase presents this as the "hierarchical list of
/// possible locations" (paper Figure 6) from which experiments are drawn.
#[derive(Debug, Clone, Default)]
pub struct FaultSpace {
    /// Scan-cell candidates: `(chain, cell, width_in_bits)`.
    pub scan_cells: Vec<(String, String, usize)>,
    /// Memory candidate range `[start, end)` in words.
    pub memory: Option<std::ops::Range<u32>>,
    /// Injection-time window in instructions `[earliest, latest)`.
    pub time_window: std::ops::Range<u64>,
}

impl FaultSpace {
    /// Total number of injectable bits.
    pub fn bit_count(&self) -> u64 {
        let scan: u64 = self.scan_cells.iter().map(|(_, _, w)| *w as u64).sum();
        let mem = self
            .memory
            .as_ref()
            .map(|r| (r.end - r.start) as u64 * 32)
            .unwrap_or(0);
        scan + mem
    }

    /// Draws one uniformly random bit location.
    ///
    /// # Panics
    ///
    /// Panics if the space is empty.
    pub fn sample_location<R: Rng>(&self, rng: &mut R) -> FaultLocation {
        let total = self.bit_count();
        assert!(total > 0, "empty fault space");
        let mut pick = rng.gen_range(0..total);
        for (chain, cell, width) in &self.scan_cells {
            if pick < *width as u64 {
                return FaultLocation::ScanCell {
                    chain: chain.clone(),
                    cell: cell.clone(),
                    bit: pick as usize,
                };
            }
            pick -= *width as u64;
        }
        let mem = self.memory.as_ref().expect("pick must land in memory");
        FaultLocation::Memory {
            addr: mem.start + (pick / 32) as u32,
            bit: (pick % 32) as u8,
        }
    }

    /// Draws a uniformly random injection time (instruction count) from the
    /// time window.
    pub fn sample_time<R: Rng>(&self, rng: &mut R) -> u64 {
        if self.time_window.is_empty() {
            self.time_window.start
        } else {
            rng.gen_range(self.time_window.clone())
        }
    }

    /// Samples `n` single-bit-flip experiments: uniformly random
    /// (location, time) pairs — the standard campaign generator.
    pub fn sample_campaign<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<FaultSpec> {
        (0..n)
            .map(|_| {
                FaultSpec::single(
                    self.sample_location(rng),
                    Trigger::AfterInstructions(self.sample_time(rng)),
                )
            })
            .collect()
    }

    /// Samples `n` experiments with `flips` simultaneous bit flips each
    /// (the paper's "multiple transient bit-flip faults").
    pub fn sample_multi_campaign<R: Rng>(
        &self,
        n: usize,
        flips: usize,
        rng: &mut R,
    ) -> Vec<FaultSpec> {
        (0..n)
            .map(|_| {
                let mut locations = Vec::with_capacity(flips);
                while locations.len() < flips {
                    let l = self.sample_location(rng);
                    if !locations.contains(&l) {
                        locations.push(l);
                    }
                }
                locations.shuffle(rng);
                FaultSpec {
                    locations,
                    model: FaultModel::TransientBitFlip,
                    trigger: Trigger::AfterInstructions(self.sample_time(rng)),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> FaultSpace {
        FaultSpace {
            scan_cells: vec![
                ("internal".into(), "R1".into(), 32),
                ("internal".into(), "PC".into(), 32),
            ],
            memory: Some(100..104),
            time_window: 0..1000,
        }
    }

    #[test]
    fn bit_count_sums_scan_and_memory() {
        assert_eq!(space().bit_count(), 64 + 4 * 32);
    }

    #[test]
    fn sampled_locations_are_in_space() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(42);
        let mut saw_scan = false;
        let mut saw_mem = false;
        for _ in 0..500 {
            match s.sample_location(&mut rng) {
                FaultLocation::ScanCell { chain, cell, bit } => {
                    assert_eq!(chain, "internal");
                    assert!(cell == "R1" || cell == "PC");
                    assert!(bit < 32);
                    saw_scan = true;
                }
                FaultLocation::Memory { addr, bit } => {
                    assert!((100..104).contains(&addr));
                    assert!(bit < 32);
                    saw_mem = true;
                }
            }
        }
        assert!(saw_scan && saw_mem);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = space();
        let a = s.sample_campaign(20, &mut StdRng::seed_from_u64(7));
        let b = s.sample_campaign(20, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = s.sample_campaign(20, &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn multi_campaign_has_distinct_locations() {
        let s = space();
        let specs = s.sample_multi_campaign(10, 3, &mut StdRng::seed_from_u64(1));
        for spec in specs {
            assert_eq!(spec.locations.len(), 3);
            for (i, l) in spec.locations.iter().enumerate() {
                assert!(!spec.locations[..i].contains(l));
            }
        }
    }

    #[test]
    fn spec_encode_decode_roundtrip() {
        let specs = vec![
            FaultSpec::single(
                FaultLocation::ScanCell {
                    chain: "internal".into(),
                    cell: "R3".into(),
                    bit: 17,
                },
                Trigger::AfterInstructions(500),
            ),
            FaultSpec {
                locations: vec![
                    FaultLocation::Memory { addr: 40, bit: 3 },
                    FaultLocation::Memory { addr: 41, bit: 0 },
                ],
                model: FaultModel::Intermittent {
                    period: 100,
                    bursts: 5,
                },
                trigger: Trigger::PreRuntime,
            },
            FaultSpec {
                locations: vec![FaultLocation::Memory { addr: 1, bit: 31 }],
                model: FaultModel::StuckAtOne,
                trigger: Trigger::Breakpoint(0x20),
            },
        ];
        for spec in specs {
            assert_eq!(
                FaultSpec::decode(&spec.encode()),
                Some(spec.clone()),
                "{spec}"
            );
        }
        assert_eq!(FaultSpec::decode("garbage"), None);
    }

    #[test]
    fn location_classes() {
        assert_eq!(
            FaultLocation::ScanCell {
                chain: "internal".into(),
                cell: "R3".into(),
                bit: 0
            }
            .class(),
            "internal.R3"
        );
        assert_eq!(
            FaultLocation::ScanCell {
                chain: "icache".into(),
                cell: "L5.DATA".into(),
                bit: 0
            }
            .class(),
            "icache"
        );
        assert_eq!(FaultLocation::Memory { addr: 0, bit: 0 }.class(), "memory");
    }

    #[test]
    fn persistence_flags() {
        assert!(!FaultModel::TransientBitFlip.is_persistent());
        assert!(FaultModel::StuckAtZero.is_persistent());
        assert!(FaultModel::Intermittent {
            period: 1,
            bursts: 2
        }
        .is_persistent());
    }
}
