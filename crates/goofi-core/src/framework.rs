//! The porting template: the paper's `Framework` class (Figure 3).
//!
//! In the Java tool, a programmer adapts GOOFI to a new target by copying
//! the `Framework` class — whose every method body reads `// Write your
//! code here!` — and filling in the abstract methods used by the desired
//! fault-injection algorithms. [`NullTarget`] is the same artefact in Rust:
//! a [`TargetAccess`] implementation whose every method returns
//! [`GoofiError::Unimplemented`], with the method name in the error. Copy
//! it, rename it, and replace the bodies one by one; any algorithm run
//! against a partially ported target fails fast with the name of the first
//! missing building block, exactly like the paper's workflow.

use crate::campaign::WorkloadImage;
use crate::preinject::StepAccess;
use crate::target::{RunBudget, RunEvent, TargetAccess, TargetSnapshot};
use crate::trigger::Trigger;
use crate::{GoofiError, Result};
use scanchain::{BitVec, ChainLayout};

/// The "write your code here" target-system template.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTarget;

impl NullTarget {
    /// Creates the template target.
    pub fn new() -> Self {
        NullTarget
    }
}

impl TargetAccess for NullTarget {
    fn target_name(&self) -> &str {
        "unported-target"
    }

    fn init_test_card(&mut self) -> Result<()> {
        Err(GoofiError::Unimplemented("init_test_card")) // Write your code here!
    }

    fn load_workload(&mut self, _image: &WorkloadImage) -> Result<()> {
        Err(GoofiError::Unimplemented("load_workload")) // Write your code here!
    }

    fn reset_target(&mut self) -> Result<()> {
        Err(GoofiError::Unimplemented("reset_target")) // Write your code here!
    }

    fn write_memory(&mut self, _addr: u32, _data: &[u32]) -> Result<()> {
        Err(GoofiError::Unimplemented("write_memory")) // Write your code here!
    }

    fn read_memory(&mut self, _addr: u32, _len: usize) -> Result<Vec<u32>> {
        Err(GoofiError::Unimplemented("read_memory")) // Write your code here!
    }

    fn flip_memory_bit(&mut self, _addr: u32, _bit: u8) -> Result<()> {
        Err(GoofiError::Unimplemented("flip_memory_bit")) // Write your code here!
    }

    fn memory_size(&self) -> u32 {
        0
    }

    fn set_breakpoint(&mut self, _trigger: Trigger) -> Result<()> {
        Err(GoofiError::Unimplemented("set_breakpoint")) // Write your code here!
    }

    fn clear_breakpoints(&mut self) -> Result<()> {
        Err(GoofiError::Unimplemented("clear_breakpoints")) // Write your code here!
    }

    fn run_workload(&mut self, _budget: RunBudget) -> Result<RunEvent> {
        Err(GoofiError::Unimplemented("run_workload")) // Write your code here!
    }

    fn step_instruction(&mut self) -> Result<Option<RunEvent>> {
        Err(GoofiError::Unimplemented("step_instruction")) // Write your code here!
    }

    fn chain_layouts(&self) -> Vec<ChainLayout> {
        Vec::new()
    }

    fn read_scan_chain(&mut self, _chain: &str) -> Result<BitVec> {
        Err(GoofiError::Unimplemented("read_scan_chain")) // Write your code here!
    }

    fn write_scan_chain(&mut self, _chain: &str, _bits: &BitVec) -> Result<()> {
        Err(GoofiError::Unimplemented("write_scan_chain")) // Write your code here!
    }

    fn write_input_ports(&mut self, _inputs: &[u32]) -> Result<()> {
        Err(GoofiError::Unimplemented("write_input_ports")) // Write your code here!
    }

    fn read_output_ports(&mut self) -> Result<Vec<u32>> {
        Err(GoofiError::Unimplemented("read_output_ports")) // Write your code here!
    }

    fn instructions_executed(&self) -> u64 {
        0
    }

    fn cycles_executed(&self) -> u64 {
        0
    }

    fn iterations_completed(&self) -> u64 {
        0
    }

    fn step_traced(&mut self) -> Result<(Option<RunEvent>, StepAccess)> {
        Err(GoofiError::Unimplemented("step_traced")) // Write your code here!
    }

    // snapshot/restore deliberately NOT stubbed out here: the trait
    // defaults already return Unimplemented and — crucially — report
    // `supports_snapshot() == false`, so a fresh port honestly advertises
    // "no snapshot support yet" and every experiment driver falls back to
    // the correct (slow) reload-and-replay path. A port opts in later by
    // overriding snapshot + restore + supports_snapshot together, or by
    // wrapping itself in [`crate::conformance::ReadoutFallback`] for
    // scan-readout snapshots with zero extra code.
}

/// A small, fully deterministic simulated target system.
///
/// Where [`NullTarget`] is the porting *template*, `SimTarget` is a
/// complete porting *example*: every [`TargetAccess`] building block
/// implemented against an in-process simulated device. It exists so that
/// components which need a real runnable target but must not depend on a
/// target-system crate — the campaign service's shard-worker test binary,
/// above all — have one inside `goofi-core` itself. Identical inputs
/// always produce identical records, which is what lets the service tests
/// assert that a sharded, crash-ridden campaign merges to the same
/// database essence as a serial run.
///
/// The simulated device:
///
/// - has one scan chain `internal` with cells `A` (8 bits, read-write)
///   and `S` (4 bits, read-only);
/// - has 64 words of memory;
/// - runs a workload for as many instructions as the first word of the
///   loaded [`WorkloadImage`] says (default 100 when absent or zero),
///   then halts; the second word, when nonzero, is an iteration-boundary
///   period in instructions;
/// - rewrites cell `A` to zero every instruction, like hardware that
///   refreshes the register each cycle — persistent fault models must
///   keep re-asserting;
/// - reports its instruction count as its single output port.
#[derive(Debug, Clone)]
pub struct SimTarget {
    layout: ChainLayout,
    chain: BitVec,
    memory: Vec<u32>,
    instructions: u64,
    iterations: u64,
    workload_len: u64,
    iteration_every: Option<u64>,
    breakpoint: Option<u64>,
    halted: bool,
}

impl Default for SimTarget {
    fn default() -> Self {
        Self::new()
    }
}

impl SimTarget {
    /// Creates the simulated target in its power-on state.
    pub fn new() -> Self {
        let layout = ChainLayout::builder("internal")
            .cell("A", 8, scanchain::CellAccess::ReadWrite)
            .cell("S", 4, scanchain::CellAccess::ReadOnly)
            .build();
        SimTarget {
            chain: BitVec::zeros(layout.total_bits()),
            layout,
            memory: vec![0; 64],
            instructions: 0,
            iterations: 0,
            workload_len: 100,
            iteration_every: None,
            breakpoint: None,
            halted: false,
        }
    }

    fn exec_one(&mut self) -> Option<RunEvent> {
        if self.halted {
            return Some(RunEvent::Halted);
        }
        if self.breakpoint == Some(self.instructions) {
            return Some(RunEvent::Breakpoint {
                at_instruction: self.instructions,
                at_cycle: self.instructions,
            });
        }
        self.instructions += 1;
        // The simulated hardware refreshes cell A every instruction.
        self.layout
            .write_cell(&mut self.chain, "A", 0)
            .expect("layout always has cell A");
        if self.instructions >= self.workload_len {
            self.halted = true;
            return Some(RunEvent::Halted);
        }
        if let Some(every) = self.iteration_every {
            if self.instructions.is_multiple_of(every) {
                self.iterations += 1;
                return Some(RunEvent::IterationBoundary {
                    iteration: self.iterations,
                });
            }
        }
        None
    }
}

impl TargetAccess for SimTarget {
    fn target_name(&self) -> &str {
        "sim"
    }

    fn init_test_card(&mut self) -> Result<()> {
        Ok(())
    }

    fn load_workload(&mut self, image: &WorkloadImage) -> Result<()> {
        self.workload_len = match image.words.first() {
            Some(&n) if n > 0 => n as u64,
            _ => 100,
        };
        self.iteration_every = match image.words.get(1) {
            Some(&n) if n > 0 => Some(n as u64),
            _ => None,
        };
        self.instructions = 0;
        self.iterations = 0;
        self.halted = false;
        self.chain = BitVec::zeros(self.layout.total_bits());
        Ok(())
    }

    fn reset_target(&mut self) -> Result<()> {
        Ok(())
    }

    fn write_memory(&mut self, addr: u32, data: &[u32]) -> Result<()> {
        for (i, word) in data.iter().enumerate() {
            let slot = self
                .memory
                .get_mut(addr as usize + i)
                .ok_or_else(|| GoofiError::Target(format!("write past memory end: {addr}")))?;
            *slot = *word;
        }
        Ok(())
    }

    fn read_memory(&mut self, addr: u32, len: usize) -> Result<Vec<u32>> {
        self.memory
            .get(addr as usize..addr as usize + len)
            .map(<[u32]>::to_vec)
            .ok_or_else(|| GoofiError::Target(format!("read past memory end: {addr}")))
    }

    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> Result<()> {
        let slot = self
            .memory
            .get_mut(addr as usize)
            .ok_or_else(|| GoofiError::Target(format!("flip past memory end: {addr}")))?;
        *slot ^= 1 << bit;
        Ok(())
    }

    fn memory_size(&self) -> u32 {
        self.memory.len() as u32
    }

    fn set_breakpoint(&mut self, trigger: Trigger) -> Result<()> {
        match trigger {
            Trigger::AfterInstructions(n) => {
                self.breakpoint = Some(n);
                Ok(())
            }
            other => Err(GoofiError::Config(format!(
                "sim target only supports instruction-count triggers, got {other}"
            ))),
        }
    }

    fn clear_breakpoints(&mut self) -> Result<()> {
        self.breakpoint = None;
        Ok(())
    }

    fn run_workload(&mut self, budget: RunBudget) -> Result<RunEvent> {
        for _ in 0..budget.max_instructions {
            if let Some(event) = self.exec_one() {
                return Ok(event);
            }
        }
        Ok(RunEvent::BudgetExhausted)
    }

    fn step_instruction(&mut self) -> Result<Option<RunEvent>> {
        Ok(self.exec_one())
    }

    fn chain_layouts(&self) -> Vec<ChainLayout> {
        vec![self.layout.clone()]
    }

    fn read_scan_chain(&mut self, chain: &str) -> Result<BitVec> {
        if chain != "internal" {
            return Err(GoofiError::Target(format!("unknown scan chain: {chain}")));
        }
        Ok(self.chain.clone())
    }

    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> Result<()> {
        if chain != "internal" {
            return Err(GoofiError::Target(format!("unknown scan chain: {chain}")));
        }
        self.chain = self.layout.masked_update(&self.chain, bits)?;
        Ok(())
    }

    fn write_input_ports(&mut self, _inputs: &[u32]) -> Result<()> {
        Ok(())
    }

    fn read_output_ports(&mut self) -> Result<Vec<u32>> {
        Ok(vec![self.instructions as u32])
    }

    fn instructions_executed(&self) -> u64 {
        self.instructions
    }

    fn cycles_executed(&self) -> u64 {
        self.instructions
    }

    fn iterations_completed(&self) -> u64 {
        self.iterations
    }

    fn step_traced(&mut self) -> Result<(Option<RunEvent>, StepAccess)> {
        let event = self.exec_one();
        Ok((
            event,
            StepAccess {
                reads: vec![],
                writes: vec!["internal:A".into()],
            },
        ))
    }

    // Native snapshot fast path: the simulated device is plain data, so a
    // capture is one clone and a restore is one assignment.
    fn snapshot(&mut self) -> Result<TargetSnapshot> {
        Ok(TargetSnapshot::new(self.clone()))
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) -> Result<()> {
        let state = snapshot
            .downcast_ref::<SimTarget>()
            .ok_or_else(|| GoofiError::Target("snapshot is not a sim-target capture".into()))?;
        *self = state.clone();
        Ok(())
    }

    fn supports_snapshot(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_method_names_itself() {
        let mut t = NullTarget::new();
        let err = |e: GoofiError, name: &str| match e {
            GoofiError::Unimplemented(m) => assert_eq!(m, name),
            other => panic!("expected Unimplemented, got {other}"),
        };
        err(t.init_test_card().unwrap_err(), "init_test_card");
        err(
            t.load_workload(&WorkloadImage {
                name: String::new(),
                words: vec![],
                code_words: 0,
                entry: 0,
            })
            .unwrap_err(),
            "load_workload",
        );
        err(t.reset_target().unwrap_err(), "reset_target");
        err(t.write_memory(0, &[]).unwrap_err(), "write_memory");
        err(t.read_memory(0, 0).unwrap_err(), "read_memory");
        err(t.flip_memory_bit(0, 0).unwrap_err(), "flip_memory_bit");
        err(
            t.set_breakpoint(Trigger::BranchExecuted).unwrap_err(),
            "set_breakpoint",
        );
        err(t.clear_breakpoints().unwrap_err(), "clear_breakpoints");
        err(
            t.run_workload(RunBudget::default()).unwrap_err(),
            "run_workload",
        );
        err(t.step_instruction().unwrap_err(), "step_instruction");
        err(t.read_scan_chain("x").unwrap_err(), "read_scan_chain");
        err(
            t.write_scan_chain("x", &BitVec::zeros(1)).unwrap_err(),
            "write_scan_chain",
        );
        err(t.write_input_ports(&[]).unwrap_err(), "write_input_ports");
        err(t.read_output_ports().unwrap_err(), "read_output_ports");
        err(t.step_traced().unwrap_err(), "step_traced");
        err(t.snapshot().unwrap_err(), "snapshot");
        let foreign = TargetSnapshot::new(0u8);
        err(t.restore(&foreign).unwrap_err(), "restore");
        assert!(!t.supports_snapshot());
        assert!(t.chain_layouts().is_empty());
        assert_eq!(t.memory_size(), 0);
    }

    #[test]
    fn algorithms_fail_fast_on_unported_target() {
        // Running an algorithm against the template reports the first
        // missing building block — the paper's porting workflow.
        let mut t = NullTarget::new();
        let campaign = crate::campaign::Campaign::builder("c")
            .workload(WorkloadImage {
                name: "w".into(),
                words: vec![0],
                code_words: 1,
                entry: 0,
            })
            .fault(crate::fault::FaultSpec::single(
                crate::fault::FaultLocation::ScanCell {
                    chain: "internal".into(),
                    cell: "R1".into(),
                    bit: 0,
                },
                crate::trigger::Trigger::AfterInstructions(1),
            ))
            .build()
            .unwrap();
        let monitor = crate::monitor::ProgressMonitor::new(1);
        let e =
            crate::algorithms::make_reference_run(&mut t, &campaign, &mut envsim::NullEnvironment)
                .unwrap_err();
        assert!(matches!(e, GoofiError::Unimplemented("init_test_card")));
        let _ = monitor;
    }

    fn sim_campaign(faults: usize) -> crate::campaign::Campaign {
        crate::campaign::Campaign::builder("sim-c")
            .workload(WorkloadImage {
                name: "sim-wl".into(),
                words: vec![60],
                code_words: 1,
                entry: 0,
            })
            .observe_chains(["internal"])
            .output(crate::campaign::OutputRegion::Ports)
            .termination(crate::campaign::Termination {
                max_instructions: 1_000,
                max_iterations: None,
            })
            .faults(
                (0..faults)
                    .map(|i| {
                        crate::fault::FaultSpec::single(
                            crate::fault::FaultLocation::ScanCell {
                                chain: "internal".into(),
                                cell: "A".into(),
                                bit: i % 8,
                            },
                            crate::trigger::Trigger::AfterInstructions(5 + i as u64),
                        )
                    })
                    .collect::<Vec<_>>(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn sim_target_runs_campaigns_deterministically() {
        let campaign = sim_campaign(4);
        let run = |_: ()| {
            let mut target = SimTarget::new();
            crate::algorithms::run_campaign(
                &mut target,
                &campaign,
                &crate::monitor::ProgressMonitor::new(campaign.experiment_count()),
                &mut envsim::NullEnvironment,
            )
            .unwrap()
        };
        let a = run(());
        let b = run(());
        assert_eq!(a.records.len(), 4);
        assert_eq!(a.reference.state, b.reference.state);
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.name, rb.name);
            assert_eq!(ra.termination, rb.termination);
            assert_eq!(ra.state, rb.state);
        }
    }
}
