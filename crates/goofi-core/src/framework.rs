//! The porting template: the paper's `Framework` class (Figure 3).
//!
//! In the Java tool, a programmer adapts GOOFI to a new target by copying
//! the `Framework` class — whose every method body reads `// Write your
//! code here!` — and filling in the abstract methods used by the desired
//! fault-injection algorithms. [`NullTarget`] is the same artefact in Rust:
//! a [`TargetAccess`] implementation whose every method returns
//! [`GoofiError::Unimplemented`], with the method name in the error. Copy
//! it, rename it, and replace the bodies one by one; any algorithm run
//! against a partially ported target fails fast with the name of the first
//! missing building block, exactly like the paper's workflow.

use crate::campaign::WorkloadImage;
use crate::preinject::StepAccess;
use crate::target::{RunBudget, RunEvent, TargetAccess};
use crate::trigger::Trigger;
use crate::{GoofiError, Result};
use scanchain::{BitVec, ChainLayout};

/// The "write your code here" target-system template.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTarget;

impl NullTarget {
    /// Creates the template target.
    pub fn new() -> Self {
        NullTarget
    }
}

impl TargetAccess for NullTarget {
    fn target_name(&self) -> &str {
        "unported-target"
    }

    fn init_test_card(&mut self) -> Result<()> {
        Err(GoofiError::Unimplemented("init_test_card")) // Write your code here!
    }

    fn load_workload(&mut self, _image: &WorkloadImage) -> Result<()> {
        Err(GoofiError::Unimplemented("load_workload")) // Write your code here!
    }

    fn reset_target(&mut self) -> Result<()> {
        Err(GoofiError::Unimplemented("reset_target")) // Write your code here!
    }

    fn write_memory(&mut self, _addr: u32, _data: &[u32]) -> Result<()> {
        Err(GoofiError::Unimplemented("write_memory")) // Write your code here!
    }

    fn read_memory(&mut self, _addr: u32, _len: usize) -> Result<Vec<u32>> {
        Err(GoofiError::Unimplemented("read_memory")) // Write your code here!
    }

    fn flip_memory_bit(&mut self, _addr: u32, _bit: u8) -> Result<()> {
        Err(GoofiError::Unimplemented("flip_memory_bit")) // Write your code here!
    }

    fn memory_size(&self) -> u32 {
        0
    }

    fn set_breakpoint(&mut self, _trigger: Trigger) -> Result<()> {
        Err(GoofiError::Unimplemented("set_breakpoint")) // Write your code here!
    }

    fn clear_breakpoints(&mut self) -> Result<()> {
        Err(GoofiError::Unimplemented("clear_breakpoints")) // Write your code here!
    }

    fn run_workload(&mut self, _budget: RunBudget) -> Result<RunEvent> {
        Err(GoofiError::Unimplemented("run_workload")) // Write your code here!
    }

    fn step_instruction(&mut self) -> Result<Option<RunEvent>> {
        Err(GoofiError::Unimplemented("step_instruction")) // Write your code here!
    }

    fn chain_layouts(&self) -> Vec<ChainLayout> {
        Vec::new()
    }

    fn read_scan_chain(&mut self, _chain: &str) -> Result<BitVec> {
        Err(GoofiError::Unimplemented("read_scan_chain")) // Write your code here!
    }

    fn write_scan_chain(&mut self, _chain: &str, _bits: &BitVec) -> Result<()> {
        Err(GoofiError::Unimplemented("write_scan_chain")) // Write your code here!
    }

    fn write_input_ports(&mut self, _inputs: &[u32]) -> Result<()> {
        Err(GoofiError::Unimplemented("write_input_ports")) // Write your code here!
    }

    fn read_output_ports(&mut self) -> Result<Vec<u32>> {
        Err(GoofiError::Unimplemented("read_output_ports")) // Write your code here!
    }

    fn instructions_executed(&self) -> u64 {
        0
    }

    fn cycles_executed(&self) -> u64 {
        0
    }

    fn iterations_completed(&self) -> u64 {
        0
    }

    fn step_traced(&mut self) -> Result<(Option<RunEvent>, StepAccess)> {
        Err(GoofiError::Unimplemented("step_traced")) // Write your code here!
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_method_names_itself() {
        let mut t = NullTarget::new();
        let err = |e: GoofiError, name: &str| match e {
            GoofiError::Unimplemented(m) => assert_eq!(m, name),
            other => panic!("expected Unimplemented, got {other}"),
        };
        err(t.init_test_card().unwrap_err(), "init_test_card");
        err(
            t.load_workload(&WorkloadImage {
                name: String::new(),
                words: vec![],
                code_words: 0,
                entry: 0,
            })
            .unwrap_err(),
            "load_workload",
        );
        err(t.reset_target().unwrap_err(), "reset_target");
        err(t.write_memory(0, &[]).unwrap_err(), "write_memory");
        err(t.read_memory(0, 0).unwrap_err(), "read_memory");
        err(t.flip_memory_bit(0, 0).unwrap_err(), "flip_memory_bit");
        err(
            t.set_breakpoint(Trigger::BranchExecuted).unwrap_err(),
            "set_breakpoint",
        );
        err(t.clear_breakpoints().unwrap_err(), "clear_breakpoints");
        err(
            t.run_workload(RunBudget::default()).unwrap_err(),
            "run_workload",
        );
        err(t.step_instruction().unwrap_err(), "step_instruction");
        err(t.read_scan_chain("x").unwrap_err(), "read_scan_chain");
        err(
            t.write_scan_chain("x", &BitVec::zeros(1)).unwrap_err(),
            "write_scan_chain",
        );
        err(t.write_input_ports(&[]).unwrap_err(), "write_input_ports");
        err(t.read_output_ports().unwrap_err(), "read_output_ports");
        err(t.step_traced().unwrap_err(), "step_traced");
        assert!(t.chain_layouts().is_empty());
        assert_eq!(t.memory_size(), 0);
    }

    #[test]
    fn algorithms_fail_fast_on_unported_target() {
        // Running an algorithm against the template reports the first
        // missing building block — the paper's porting workflow.
        let mut t = NullTarget::new();
        let campaign = crate::campaign::Campaign::builder("c")
            .workload(WorkloadImage {
                name: "w".into(),
                words: vec![0],
                code_words: 1,
                entry: 0,
            })
            .fault(crate::fault::FaultSpec::single(
                crate::fault::FaultLocation::ScanCell {
                    chain: "internal".into(),
                    cell: "R1".into(),
                    bit: 0,
                },
                crate::trigger::Trigger::AfterInstructions(1),
            ))
            .build()
            .unwrap();
        let monitor = crate::monitor::ProgressMonitor::new(1);
        let e =
            crate::algorithms::make_reference_run(&mut t, &campaign, &mut envsim::NullEnvironment)
                .unwrap_err();
        assert!(matches!(e, GoofiError::Unimplemented("init_test_card")));
        let _ = monitor;
    }
}
