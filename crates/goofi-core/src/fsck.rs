//! `goofi fsck`: detect and repair corruption in GOOFI's own durable
//! state.
//!
//! The framework injects faults into target systems for a living; this
//! module turns the same scrutiny inward. It walks every durable artifact
//! — the database file, campaign journals, and the service spool — and
//! classifies each piece of damage as a [`CorruptionClass`]. With repair
//! enabled it applies the *salvage-and-quarantine* discipline:
//!
//! - journals are rewritten keeping every individually checksum-valid
//!   entry ([`crate::journal::salvage_with`]); files that are not
//!   recognisably journals are renamed aside to `<path>.corrupt`;
//! - database tables are reloaded leniently; garbled `LoggedSystemState`
//!   rows whose primary key survived are replaced by `Validity::Invalid`
//!   stubs plus `parentExperiment`-linked `…/rerun1` stubs, so the loss
//!   is documented and re-runnable rather than silently dropped;
//! - spool job directories without a readable manifest are renamed to
//!   `quarantined-<id>` (which [`crate::service::Scheduler`] skips), and
//!   shard journals that disagree with their manifest are quarantined.
//!
//! Nothing is ever deleted: every repair either rewrites a file from its
//! surviving valid content or renames the damaged original aside.

use crate::logging::{ExperimentRecord, StateSnapshot, TerminationCause, Validity};
use crate::vfs::{self, Vfs};
use crate::{dbio, journal, GoofiError, Result};
use goofidb::{Database, IssueKind, Value};
use std::fmt;
use std::path::{Path, PathBuf};

/// Taxonomy of on-disk damage `goofi fsck` can detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionClass {
    /// A journal file whose header is damaged — not recognisably a
    /// journal.
    JournalBadHeader,
    /// A journal's final entry is torn (crash mid-append).
    JournalTornTail,
    /// A journal entry *before* the tail fails its checksum — corruption
    /// the plain loader's torn-tail tolerance does not cover.
    JournalGarbledEntry,
    /// The database file is structurally unreadable (bad header, damaged
    /// block structure, truncation).
    DbUnreadable,
    /// A database table's rows disagree with its `CHECK` footer.
    DbChecksumMismatch,
    /// A database row failed to decode or insert.
    DbGarbledRow,
    /// A stray `<db>.tmp` from a crashed atomic save.
    DbStrayTemp,
    /// A spool job directory without a manifest.
    SpoolOrphanDir,
    /// A spool job manifest that does not parse.
    SpoolBadManifest,
    /// A shard journal naming a different campaign than its manifest.
    SpoolShardMismatch,
}

impl CorruptionClass {
    /// Stable text form used in reports.
    pub fn encode(self) -> &'static str {
        match self {
            CorruptionClass::JournalBadHeader => "journal-bad-header",
            CorruptionClass::JournalTornTail => "journal-torn-tail",
            CorruptionClass::JournalGarbledEntry => "journal-garbled-entry",
            CorruptionClass::DbUnreadable => "db-unreadable",
            CorruptionClass::DbChecksumMismatch => "db-checksum-mismatch",
            CorruptionClass::DbGarbledRow => "db-garbled-row",
            CorruptionClass::DbStrayTemp => "db-stray-temp",
            CorruptionClass::SpoolOrphanDir => "spool-orphan-dir",
            CorruptionClass::SpoolBadManifest => "spool-bad-manifest",
            CorruptionClass::SpoolShardMismatch => "spool-shard-mismatch",
        }
    }
}

impl fmt::Display for CorruptionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.encode())
    }
}

/// One piece of damage found by an fsck pass.
#[derive(Debug, Clone)]
pub struct Finding {
    /// What kind of damage.
    pub class: CorruptionClass,
    /// File (or directory) the damage was found in.
    pub path: PathBuf,
    /// Human-readable description.
    pub detail: String,
    /// What the repair pass did about it, when repair ran.
    pub repaired: Option<String>,
}

/// The aggregated result of an fsck pass.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Every finding, in discovery order.
    pub findings: Vec<Finding>,
}

impl FsckReport {
    /// Whether no damage was found.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// How many findings were repaired.
    pub fn repaired(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.repaired.is_some())
            .count()
    }

    /// Appends another report's findings.
    pub fn merge(&mut self, mut other: FsckReport) {
        self.findings.append(&mut other.findings);
    }

    /// Renders the report for the CLI.
    pub fn render(&self) -> String {
        if self.clean() {
            return "fsck: clean".to_string();
        }
        let mut out = format!(
            "fsck: {} finding(s), {} repaired\n",
            self.findings.len(),
            self.repaired()
        );
        for f in &self.findings {
            out.push_str(&format!(
                "  {} {}: {}\n",
                f.class,
                f.path.display(),
                f.detail
            ));
            if let Some(note) = &f.repaired {
                out.push_str(&format!("    repaired: {note}\n"));
            }
        }
        out.pop();
        out
    }
}

fn finding(class: CorruptionClass, path: &Path, detail: impl Into<String>) -> Finding {
    Finding {
        class,
        path: path.to_path_buf(),
        detail: detail.into(),
        repaired: None,
    }
}

fn corrupt_sibling(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_owned();
    s.push(".corrupt");
    PathBuf::from(s)
}

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

/// Checks (and optionally repairs) the database file at `path`.
///
/// Detection: a stray `<path>.tmp` from a crashed atomic save, a
/// structurally unreadable file, per-table `CHECK` checksum mismatches,
/// and garbled or rejected rows. Repair: the stray temp is removed, the
/// database is reloaded leniently, garbled `LoggedSystemState` rows whose
/// experiment name survived become `Validity::Invalid` stubs with
/// `parentExperiment`-linked `…/rerun1` stubs, and the salvaged database
/// is atomically re-saved. A file that is not recognisably a goofidb dump
/// is renamed aside to `<path>.corrupt` rather than overwritten.
///
/// A missing file is clean — it simply means no database exists yet.
///
/// # Errors
///
/// I/O errors from reading or rewriting.
pub fn fsck_database(vfs: &dyn Vfs, path: &Path, repair: bool) -> Result<FsckReport> {
    let mut report = FsckReport::default();

    let tmp = {
        let mut s = path.as_os_str().to_owned();
        s.push(".tmp");
        PathBuf::from(s)
    };
    if vfs.exists(&tmp) {
        let mut f = finding(
            CorruptionClass::DbStrayTemp,
            &tmp,
            "leftover temp file from an interrupted save",
        );
        if repair {
            vfs.remove_file(&tmp)
                .map_err(|e| GoofiError::io("removing", &tmp, &e))?;
            f.repaired = Some("removed".into());
        }
        report.findings.push(f);
    }

    let text = match vfs::read_lossy(vfs, path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(GoofiError::io("reading", path, &e)),
    };

    if Database::load_from_string(&text).is_ok() {
        return Ok(report);
    }

    // Not recognisably a goofidb dump: quarantine, never overwrite.
    if !text.starts_with("#goofidb") {
        let mut f = finding(
            CorruptionClass::DbUnreadable,
            path,
            "not a goofidb dump (bad header)",
        );
        if repair {
            let aside = corrupt_sibling(path);
            vfs.rename(path, &aside)
                .map_err(|e| GoofiError::io("quarantining", path, &e))?;
            f.repaired = Some(format!("quarantined to {}", aside.display()));
        }
        report.findings.push(f);
        return Ok(report);
    }

    let (mut db, issues) = Database::load_from_string_lenient(&text);
    let mut stub_sources: Vec<(String, String)> = Vec::new();
    for issue in &issues {
        let class = match issue.kind {
            IssueKind::ChecksumMismatch => CorruptionClass::DbChecksumMismatch,
            IssueKind::BadRow | IssueKind::InsertFailed => CorruptionClass::DbGarbledRow,
            IssueKind::BadLine | IssueKind::Truncated => CorruptionClass::DbUnreadable,
        };
        let detail = if issue.table.is_empty() {
            format!("[{}] {}", issue.kind.encode(), issue.detail)
        } else {
            format!(
                "[{}] table {}: {}",
                issue.kind.encode(),
                issue.table,
                issue.detail
            )
        };
        report.findings.push(finding(class, path, detail));
        // A garbled experiment row whose primary key (and campaign)
        // survived can be stubbed for a rerun.
        if issue.table == dbio::LOG_TABLE && issue.kind == IssueKind::BadRow {
            if let (Some(Some(Value::Text(name))), Some(Some(Value::Text(campaign)))) =
                (issue.recovered.first(), issue.recovered.get(2))
            {
                stub_sources.push((name.clone(), campaign.clone()));
            }
        }
    }
    if report.clean() {
        return Ok(report);
    }
    if repair {
        let mut notes = Vec::new();
        for (name, campaign) in stub_sources {
            match stub_lost_experiment(&mut db, &name, &campaign) {
                Ok(true) => notes.push(format!("stubbed `{name}` as invalid with rerun hook")),
                Ok(false) => {}
                Err(e) => notes.push(format!("could not stub `{name}`: {e}")),
            }
        }
        dbio::save_database(vfs, path, &db)?;
        let salvage_note = format!(
            "salvaged {} table(s){}",
            db.table_names().len(),
            if notes.is_empty() {
                String::new()
            } else {
                format!("; {}", notes.join("; "))
            }
        );
        for f in &mut report.findings {
            if f.repaired.is_none() {
                f.repaired = Some(salvage_note.clone());
            }
        }
    }
    Ok(report)
}

/// Inserts a `Validity::Invalid` stub for a lost experiment plus a
/// `parentExperiment`-linked `…/rerun1` stub — the same convention the
/// service uses for poisoned shards. Returns `false` when the experiment
/// already has a (surviving) row.
fn stub_lost_experiment(db: &mut Database, name: &str, campaign: &str) -> Result<bool> {
    let exists = |db: &Database, key: &str| {
        db.table(dbio::LOG_TABLE)
            .is_some_and(|t| t.contains_key(&Value::text(key)))
    };
    if exists(db, name) {
        return Ok(false);
    }
    let stub = |n: String, parent: Option<String>| ExperimentRecord {
        name: n,
        parent,
        campaign: campaign.to_string(),
        fault: None,
        termination: TerminationCause::TargetHang,
        state: StateSnapshot::default(),
        trace: Vec::new(),
        validity: Validity::Invalid,
    };
    dbio::log_experiment(db, &stub(name.to_string(), None))?;
    let rerun = format!("{name}/rerun1");
    if !exists(db, &rerun) {
        dbio::log_experiment(db, &stub(rerun, Some(name.to_string())))?;
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// Journals
// ---------------------------------------------------------------------------

/// Checks (and optionally repairs) one experiment journal.
///
/// When `expect_campaign` is given (the spool path passes the manifest's
/// campaign), a journal naming a different campaign is classified as
/// [`CorruptionClass::SpoolShardMismatch`] and quarantined on repair.
/// Other damage — bad header, garbled entries, torn tail — is repaired by
/// [`crate::journal::salvage_with`]. A missing file is clean.
///
/// # Errors
///
/// I/O errors from reading or rewriting.
pub fn fsck_journal(
    vfs: &dyn Vfs,
    path: &Path,
    expect_campaign: Option<&str>,
    repair: bool,
) -> Result<FsckReport> {
    let mut report = FsckReport::default();
    let text = match vfs::read_lossy(vfs, path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(GoofiError::io("reading", path, &e)),
    };
    let scan = journal::scan_text(&text);
    let mut quarantine_whole_file = false;
    match &scan.campaign {
        None => {
            report.findings.push(finding(
                CorruptionClass::JournalBadHeader,
                path,
                "not a goofi journal (damaged header)",
            ));
            quarantine_whole_file = true;
        }
        Some(campaign) => {
            if let Some(expected) = expect_campaign {
                if campaign != expected {
                    report.findings.push(finding(
                        CorruptionClass::SpoolShardMismatch,
                        path,
                        format!("journal names campaign `{campaign}`, manifest says `{expected}`"),
                    ));
                    quarantine_whole_file = true;
                }
            }
            if scan.garbled > 0 {
                report.findings.push(finding(
                    CorruptionClass::JournalGarbledEntry,
                    path,
                    format!(
                        "{} garbled entry line(s) before the tail ({} valid)",
                        scan.garbled,
                        scan.valid.len()
                    ),
                ));
            }
            if scan.torn_tail {
                report.findings.push(finding(
                    CorruptionClass::JournalTornTail,
                    path,
                    "final entry torn by a crash mid-append",
                ));
            }
        }
    }
    if report.clean() || !repair {
        return Ok(report);
    }
    let note = if quarantine_whole_file {
        let aside = corrupt_sibling(path);
        vfs.rename(path, &aside)
            .map_err(|e| GoofiError::io("quarantining", path, &e))?;
        format!("quarantined to {}", aside.display())
    } else {
        let outcome = journal::salvage_with(vfs, path)?;
        format!(
            "rewrote journal keeping {} entr{}, dropped {}",
            outcome.kept,
            if outcome.kept == 1 { "y" } else { "ies" },
            outcome.dropped
        )
    };
    for f in &mut report.findings {
        f.repaired = Some(note.clone());
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Spool
// ---------------------------------------------------------------------------

/// Checks (and optionally repairs) a campaign-service spool directory.
///
/// Detection: `job-*` directories without a manifest, manifests that do
/// not parse, and shard journals that are damaged or disagree with their
/// manifest's campaign. Repair: damaged job directories are renamed to
/// `quarantined-<id>` — a prefix [`crate::service::Scheduler`] never
/// resumes — and shard journals are salvaged or quarantined per
/// [`fsck_journal`]. A missing spool directory is clean.
///
/// # Errors
///
/// I/O errors from listing, reading, or rewriting.
pub fn fsck_spool(vfs: &dyn Vfs, spool: &Path, repair: bool) -> Result<FsckReport> {
    let mut report = FsckReport::default();
    if !vfs.exists(spool) {
        return Ok(report);
    }
    let mut entries = vfs
        .read_dir(spool)
        .map_err(|e| GoofiError::io("listing", spool, &e))?;
    entries.sort();
    for dir in entries {
        let Some(name) = dir.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        if !name.starts_with("job-") {
            continue;
        }
        let manifest = dir.join("manifest");
        let campaign = match vfs::read_lossy(vfs, &manifest) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let mut f = finding(
                    CorruptionClass::SpoolOrphanDir,
                    &dir,
                    "job directory has no manifest",
                );
                if repair {
                    f.repaired = Some(quarantine_job_dir(vfs, spool, &dir, &name)?);
                }
                report.findings.push(f);
                continue;
            }
            Err(e) => return Err(GoofiError::io("reading", &manifest, &e)),
            Ok(text) => match parse_manifest(&text) {
                Some((campaign, _workers)) => campaign,
                None => {
                    let mut f = finding(
                        CorruptionClass::SpoolBadManifest,
                        &manifest,
                        "manifest does not parse",
                    );
                    if repair {
                        f.repaired = Some(quarantine_job_dir(vfs, spool, &dir, &name)?);
                    }
                    report.findings.push(f);
                    continue;
                }
            },
        };
        let mut shards = vfs
            .read_dir(&dir)
            .map_err(|e| GoofiError::io("listing", &dir, &e))?;
        shards.sort();
        for shard in shards {
            let is_journal = shard
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".gjl"));
            if is_journal {
                report.merge(fsck_journal(vfs, &shard, Some(&campaign), repair)?);
            }
        }
    }
    Ok(report)
}

/// Renames a damaged job directory to `quarantined-<id>`, which the
/// scheduler's recovery scan skips. Returns the repair note.
fn quarantine_job_dir(vfs: &dyn Vfs, spool: &Path, dir: &Path, name: &str) -> Result<String> {
    let aside = spool.join(format!("quarantined-{name}"));
    vfs.rename(dir, &aside)
        .map_err(|e| GoofiError::io("quarantining", dir, &e))?;
    Ok(format!("quarantined to {}", aside.display()))
}

/// Parses a spool job manifest (`#goofi-job v1` / `campaign …` /
/// `workers …`). Shared with the scheduler's reader, which additionally
/// wraps errors.
pub fn parse_manifest(text: &str) -> Option<(String, usize)> {
    let mut lines = text.lines();
    if lines.next() != Some("#goofi-job v1") {
        return None;
    }
    let mut campaign = None;
    let mut workers = None;
    for line in lines {
        match line.split_once(' ') {
            Some(("campaign", v)) => campaign = Some(v.to_string()),
            Some(("workers", v)) => workers = v.parse().ok(),
            _ => {}
        }
    }
    Some((campaign?, workers?))
}

// ---------------------------------------------------------------------------
// Everything
// ---------------------------------------------------------------------------

/// Runs every check: the database at `db_path`, its default spool
/// directory (`<db>.spool`), and optionally one campaign journal.
///
/// # Errors
///
/// I/O errors from any check.
pub fn fsck_all(
    vfs: &dyn Vfs,
    db_path: &Path,
    journal: Option<(&Path, &str)>,
    repair: bool,
) -> Result<FsckReport> {
    let mut report = fsck_database(vfs, db_path, repair)?;
    if let Some((path, campaign)) = journal {
        report.merge(fsck_journal(vfs, path, Some(campaign), repair)?);
    }
    let spool = PathBuf::from(format!("{}.spool", db_path.display()));
    report.merge(fsck_spool(vfs, &spool, repair)?);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealFs;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("goofi-fsck-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seed_db() -> Database {
        let mut db = Database::new();
        dbio::init_schema(&mut db).unwrap();
        let mut campaign_row = vec![Value::Null; 17];
        campaign_row[0] = Value::text("c1");
        campaign_row[7] = Value::Int(2);
        db.insert(dbio::CAMPAIGN_TABLE, campaign_row).unwrap();
        let record = |name: &str| ExperimentRecord {
            name: name.into(),
            parent: None,
            campaign: "c1".into(),
            fault: None,
            termination: TerminationCause::WorkloadEnd,
            state: StateSnapshot::default(),
            trace: Vec::new(),
            validity: Validity::Valid,
        };
        dbio::log_experiment(&mut db, &record("c1/exp00000")).unwrap();
        dbio::log_experiment(&mut db, &record("c1/exp00001")).unwrap();
        db
    }

    #[test]
    fn clean_database_reports_clean() {
        let dir = temp_dir("clean-db");
        let path = dir.join("db.gdb");
        seed_db().save_to_path(&path).unwrap();
        let report = fsck_database(&RealFs, &path, false).unwrap();
        assert!(report.clean(), "{}", report.render());
        assert_eq!(report.render(), "fsck: clean");
        // Missing files are clean too.
        assert!(fsck_database(&RealFs, &dir.join("absent"), false)
            .unwrap()
            .clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbled_db_row_is_stubbed_on_repair() {
        let dir = temp_dir("garble-db");
        let path = dir.join("db.gdb");
        seed_db().save_to_path(&path).unwrap();
        // Garble exp00001's row payload (keep the name field intact).
        let text = std::fs::read_to_string(&path).unwrap();
        let garbled = text.replace("exp00001\tN\tT:c1\tN\tT:end", "exp00001\tN\tT:c1\tN\tX?end");
        assert_ne!(text, garbled);
        std::fs::write(&path, garbled).unwrap();

        let report = fsck_database(&RealFs, &path, false).unwrap();
        assert!(!report.clean());
        assert!(report
            .findings
            .iter()
            .any(|f| f.class == CorruptionClass::DbGarbledRow));
        assert!(report
            .findings
            .iter()
            .any(|f| f.class == CorruptionClass::DbChecksumMismatch));

        let report = fsck_database(&RealFs, &path, true).unwrap();
        assert!(report.repaired() > 0, "{}", report.render());
        // The repaired database loads strictly and documents the loss.
        let db = dbio::load_database(&RealFs, &path).unwrap();
        let lost = dbio::load_experiment(&db, "c1/exp00001").unwrap();
        assert_eq!(lost.validity, Validity::Invalid);
        let rerun = dbio::load_experiment(&db, "c1/exp00001/rerun1").unwrap();
        assert_eq!(rerun.parent.as_deref(), Some("c1/exp00001"));
        assert_eq!(rerun.validity, Validity::Invalid);
        assert!(fsck_database(&RealFs, &path, false).unwrap().clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stray_temp_and_unreadable_db_are_quarantined() {
        let dir = temp_dir("stray-db");
        let path = dir.join("db.gdb");
        std::fs::write(&path, "this is no database\n").unwrap();
        std::fs::write(dir.join("db.gdb.tmp"), "half a save").unwrap();
        let report = fsck_database(&RealFs, &path, true).unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| f.class == CorruptionClass::DbStrayTemp));
        assert!(report
            .findings
            .iter()
            .any(|f| f.class == CorruptionClass::DbUnreadable));
        assert_eq!(report.repaired(), report.findings.len());
        assert!(!path.exists());
        assert!(dir.join("db.gdb.corrupt").exists());
        assert!(!dir.join("db.gdb.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spool_orphan_and_mismatch_are_quarantined() {
        let dir = temp_dir("spool");
        let spool = dir.join("db.gdb.spool");
        // job-1: no manifest at all.
        std::fs::create_dir_all(spool.join("job-1")).unwrap();
        // job-2: good manifest, but its shard journal names another
        // campaign.
        std::fs::create_dir_all(spool.join("job-2")).unwrap();
        std::fs::write(
            spool.join("job-2/manifest"),
            "#goofi-job v1\ncampaign c1\nworkers 1\n",
        )
        .unwrap();
        crate::journal::ExperimentJournal::create(spool.join("job-2/shard-0.gjl"), "other")
            .unwrap();
        // job-3: manifest garbage.
        std::fs::create_dir_all(spool.join("job-3")).unwrap();
        std::fs::write(spool.join("job-3/manifest"), "garbage\n").unwrap();

        let report = fsck_spool(&RealFs, &spool, false).unwrap();
        let classes: Vec<_> = report.findings.iter().map(|f| f.class).collect();
        assert!(classes.contains(&CorruptionClass::SpoolOrphanDir));
        assert!(classes.contains(&CorruptionClass::SpoolShardMismatch));
        assert!(classes.contains(&CorruptionClass::SpoolBadManifest));

        let report = fsck_spool(&RealFs, &spool, true).unwrap();
        assert_eq!(report.repaired(), report.findings.len());
        assert!(spool.join("quarantined-job-1").exists());
        assert!(spool.join("quarantined-job-3").exists());
        assert!(spool.join("job-2/shard-0.gjl.corrupt").exists());
        assert!(fsck_spool(&RealFs, &spool, false).unwrap().clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_parser_matches_writer_format() {
        assert_eq!(
            parse_manifest("#goofi-job v1\ncampaign c one\nworkers 3\n"),
            Some(("c one".to_string(), 3))
        );
        assert_eq!(parse_manifest("#goofi-job v1\ncampaign c\n"), None);
        assert_eq!(parse_manifest("nope\n"), None);
    }
}
