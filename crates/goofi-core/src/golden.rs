//! Memoized golden-run cache — the reference-log half of the hot path.
//!
//! Every campaign run, resume, revalidation batch and service worker
//! starts by recomputing the fault-free reference run, which costs a full
//! workload download plus a complete execution. The reference is a pure
//! function of the campaign configuration (workload image, termination,
//! logging, observe list, watchdog policy) and the environment model, so
//! the [`GoldenCache`] persists it next to the journal keyed by a digest
//! of exactly those inputs: a later run with the same key loads the
//! stored record instead of re-executing.
//!
//! Trust rules, in line with the durability contract (DESIGN.md §7):
//!
//! * the cache is consulted only where the slow path would blindly trust
//!   its own fresh reference — never by golden-run *revalidation* or the
//!   supervisor's smoke probe, whose entire purpose is to genuinely
//!   re-execute;
//! * a revalidation drift deletes the entry
//!   ([`GoldenCache::invalidate`]); a clean revalidation (re-)stores it;
//! * any decode failure — torn write, bit rot, version or key mismatch —
//!   is silently a miss: the reference is recomputed and the entry
//!   rewritten. `goofi fsck` never needs to learn about cache files
//!   because a damaged cache can only cost time, not correctness.

use crate::campaign::Campaign;
use crate::journal::{encode_record_payload, fnv1a, parse_entry, Entry};
use crate::logging::{digest_words, ExperimentRecord};
use crate::vfs::{atomic_write, read_lossy, Vfs};
use std::path::{Path, PathBuf};

/// First line of every cache file.
const MAGIC: &str = "#goofi-golden v1";

/// A persisted golden-run cache entry location plus the [`Vfs`] to reach
/// it. One instance serves one campaign run; the file lives next to the
/// journal as `golden-<key>.gc`.
#[derive(Debug)]
pub struct GoldenCache<'v> {
    vfs: &'v dyn Vfs,
    path: PathBuf,
    key: String,
}

impl<'v> GoldenCache<'v> {
    /// A cache entry for `campaign` under `env_tag` (the environment
    /// model's `name()` — two runs of the same campaign against different
    /// environments must never share a golden), stored beside
    /// `journal_path`.
    pub fn new(
        vfs: &'v dyn Vfs,
        journal_path: &Path,
        campaign: &Campaign,
        env_tag: &str,
    ) -> GoldenCache<'v> {
        let key = cache_key(campaign, env_tag);
        let file = format!("golden-{key}.gc");
        let path = journal_path
            .parent()
            .map_or_else(|| PathBuf::from(&file), |dir| dir.join(&file));
        GoldenCache { vfs, path, key }
    }

    /// The cache file's location (for reporting).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads the cached reference record, or `None` on any kind of miss:
    /// absent file, damaged file, key mismatch, undecodable record.
    pub fn load(&self, campaign: &Campaign) -> Option<ExperimentRecord> {
        let text = read_lossy(self.vfs, &self.path).ok()?;
        let mut lines = text.lines();
        if lines.next()? != MAGIC {
            return None;
        }
        if lines.next()? != self.key {
            return None;
        }
        // The record line reuses the journal's checksummed entry format,
        // so a torn tail fails the checksum and reads as a miss.
        match parse_entry(lines.next()?, &campaign.name)? {
            Entry::Reference(record) => Some(record),
            _ => None,
        }
    }

    /// Persists `reference` atomically. Store failures are deliberately
    /// swallowed: a cache that cannot be written only costs the next run
    /// a recomputation.
    pub fn store(&self, _campaign: &Campaign, reference: &ExperimentRecord) {
        let payload = encode_record_payload(None, reference);
        let body = format!(
            "{MAGIC}\n{}\n{payload}\t#{:08x}\n",
            self.key,
            fnv1a(payload.as_bytes())
        );
        let _ = atomic_write(self.vfs, &self.path, body.as_bytes());
    }

    /// Deletes the entry (golden-run revalidation observed drift, so the
    /// stored golden can no longer be trusted by future runs). Removal
    /// failures are swallowed for the same reason as store failures —
    /// except that a stale entry *would* matter, which is why the next
    /// load also re-checks the key and checksum.
    pub fn invalidate(&self, _campaign: &Campaign) {
        let _ = self.vfs.remove_file(&self.path);
    }
}

/// FNV-64 digest (hex) over every campaign field that shapes the
/// reference run, plus the environment tag. Fault lists are included:
/// over-keying can only cost a recomputation, never serve a wrong golden.
fn cache_key(campaign: &Campaign, env_tag: &str) -> String {
    let mut text = String::new();
    text.push_str(&campaign.name);
    text.push('\x1f');
    text.push_str(&campaign.target_system);
    text.push('\x1f');
    text.push_str(campaign.technique.encode());
    text.push('\x1f');
    text.push_str(&campaign.workload.name);
    text.push('\x1f');
    text.push_str(&format!(
        "{:016x}/{}/{}",
        digest_words(&campaign.workload.words),
        campaign.workload.code_words,
        campaign.workload.entry
    ));
    text.push('\x1f');
    for fault in &campaign.faults {
        text.push_str(&fault.encode());
        text.push('\x1e');
    }
    text.push('\x1f');
    text.push_str(&format!(
        "{}/{:?}",
        campaign.termination.max_instructions, campaign.termination.max_iterations
    ));
    text.push('\x1f');
    text.push_str(campaign.logging.encode());
    text.push('\x1f');
    for chain in &campaign.observe.chains {
        text.push_str(chain);
        text.push('\x1e');
    }
    text.push_str(&campaign.observe.output.encode());
    text.push('\x1f');
    for input in &campaign.initial_inputs {
        text.push_str(&format!("{input:x}/"));
    }
    text.push('\x1f');
    text.push_str(&campaign.env_exchange.encode());
    text.push('\x1f');
    text.push_str(&campaign.policy.encode());
    text.push('\x1f');
    text.push_str(env_tag);
    format!("{:016x}", fnv64(text.as_bytes()))
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, WorkloadImage};
    use crate::fault::{FaultLocation, FaultModel, FaultSpec};
    use crate::logging::{StateSnapshot, TerminationCause, Validity};
    use crate::trigger::Trigger;
    use crate::vfs::RealFs;

    fn campaign(name: &str) -> Campaign {
        Campaign::builder(name)
            .target_system("sim")
            .workload(WorkloadImage {
                name: "wl".into(),
                words: vec![1, 2, 3],
                code_words: 3,
                entry: 0,
            })
            .fault(FaultSpec {
                model: FaultModel::TransientBitFlip,
                trigger: Trigger::AfterInstructions(5),
                locations: vec![FaultLocation::Memory { addr: 0, bit: 0 }],
            })
            .build()
            .unwrap()
    }

    fn reference(campaign: &Campaign) -> ExperimentRecord {
        ExperimentRecord {
            name: format!("{}/reference", campaign.name),
            parent: None,
            campaign: campaign.name.clone(),
            fault: None,
            termination: TerminationCause::WorkloadEnd,
            state: StateSnapshot {
                outputs: vec![7, 8],
                memory_digest: 42,
                ..StateSnapshot::default()
            },
            trace: Vec::new(),
            validity: Validity::Valid,
        }
    }

    #[test]
    fn store_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("goofi-golden-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("roundtrip.journal");
        let c = campaign("gc-roundtrip");
        let cache = GoldenCache::new(&RealFs, &journal, &c, "none");
        assert!(cache.load(&c).is_none());
        let reference = reference(&c);
        cache.store(&c, &reference);
        assert_eq!(cache.load(&c), Some(reference));
        cache.invalidate(&c);
        assert!(cache.load(&c).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_separates_configs_and_environments() {
        let c1 = campaign("gc-key");
        let mut c2 = campaign("gc-key");
        c2.workload.words = vec![9, 9, 9];
        assert_ne!(cache_key(&c1, "none"), cache_key(&c2, "none"));
        assert_ne!(cache_key(&c1, "none"), cache_key(&c1, "dc-motor"));
        assert_eq!(
            cache_key(&c1, "none"),
            cache_key(&campaign("gc-key"), "none")
        );
    }

    #[test]
    fn damaged_entry_is_a_miss_not_an_error() {
        let dir = std::env::temp_dir().join(format!("goofi-golden-dmg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("dmg.journal");
        let c = campaign("gc-dmg");
        let cache = GoldenCache::new(&RealFs, &journal, &c, "none");
        cache.store(&c, &reference(&c));
        // Flip a byte in the record line: the checksum fails, load misses.
        let mut bytes = std::fs::read(cache.path()).unwrap();
        let n = bytes.len();
        bytes[n - 5] ^= 0x40;
        std::fs::write(cache.path(), &bytes).unwrap();
        assert!(cache.load(&c).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
