//! Crash-safe experiment journal: append-only campaign checkpointing.
//!
//! `goofidb` persistence is a whole-file rewrite — atomic (see
//! `Database::save_to_path`) but only written when someone asks. A
//! campaign that dies 4 000 experiments into 5 000 would lose everything
//! since the last save. The journal closes that gap: the campaign driver
//! appends one entry per finished experiment, each entry flushed and
//! `fsync`ed, so after a crash [`crate::runner::resume_campaign`] can
//! reload exactly the completed set, skip it, and re-run only what is
//! missing or failed.
//!
//! The campaign service ([`crate::service`]) leans on the same property
//! one level up: each shard worker keeps a private journal under
//! [`crate::runner::resume_campaign_shard`] (entries carry *global*
//! campaign indices), so a crashed or lease-revoked worker's replacement
//! replays the journal instead of redoing its work, and the scheduler
//! merges shard journals into the database idempotently via
//! [`crate::dbio::import_journal`].
//!
//! ## Format
//!
//! A journal is a line-oriented text file:
//!
//! ```text
//! #goofi-journal v1
//! C <campaign-name>
//! R <index|-> <name> <parent|-> <fault|-> <termination> <state> <trace|-> <validity> #<fnv>
//! F <index> <attempts> <error> #<fnv>
//! ```
//!
//! Fields are tab-separated and escaped (`\t`, `\n`, `\\`); `R` entries
//! are completed experiment records (`-` in the index column marks the
//! reference run), `F` entries are experiments that failed despite the
//! policy's retries. Every entry line ends with an FNV-1a checksum of its
//! payload. Loading stops at the first torn or corrupt line — precisely
//! the tail a crash mid-append can leave — so a damaged tail never
//! poisons the records before it.

use crate::logging::{ExperimentRecord, StateSnapshot, TerminationCause, Validity};
use crate::policy::ExperimentFailure;
use crate::vfs::{self, Vfs, VfsFile};
use crate::{fault::FaultSpec, GoofiError, Result};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const HEADER: &str = "#goofi-journal v1";

/// What a journal file says about a partially-run campaign.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalState {
    /// Campaign name recorded in the journal header.
    pub campaign: String,
    /// The reference run, when it completed before the crash.
    pub reference: Option<ExperimentRecord>,
    /// Completed experiment records by campaign index.
    pub completed: BTreeMap<usize, ExperimentRecord>,
    /// Experiments that failed (index → failure), unless a later `R`
    /// entry for the same index superseded the failure.
    pub failed: BTreeMap<usize, ExperimentFailure>,
    /// How many `F` entries each index has accumulated across runs —
    /// superseded or not (quarantined `R` entries count a round too).
    /// Resume derives unique `…/rerun<k>` names from this, so an
    /// experiment that fails on every resume still gets a fresh child name
    /// each time.
    pub failed_rounds: BTreeMap<usize, u32>,
    /// Records quarantined by golden-run revalidation (validity
    /// `invalid`), unless a later valid `R` entry superseded them. Their
    /// indices appear in [`JournalState::failed`] so resume re-runs them;
    /// the records themselves are kept for database import.
    pub quarantined: Vec<ExperimentRecord>,
}

impl JournalState {
    /// Total entries that survived loading.
    pub fn len(&self) -> usize {
        self.completed.len() + self.failed.len() + usize::from(self.reference.is_some())
    }

    /// Whether nothing was journaled yet.
    pub fn is_empty(&self) -> bool {
        self.reference.is_none() && self.completed.is_empty() && self.failed.is_empty()
    }
}

/// An open, append-only experiment journal.
///
/// Each append is written as one line, flushed, and synced to disk before
/// returning, so an entry either fully exists or is a recognisable torn
/// tail.
pub struct ExperimentJournal {
    file: Box<dyn VfsFile>,
    path: PathBuf,
}

impl std::fmt::Debug for ExperimentJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentJournal")
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

impl ExperimentJournal {
    /// Creates a fresh journal for `campaign`, truncating any existing
    /// file at `path`.
    ///
    /// # Errors
    ///
    /// I/O errors, surfaced as [`GoofiError::Io`].
    pub fn create(path: impl AsRef<Path>, campaign: &str) -> Result<Self> {
        Self::create_with(&vfs::RealFs, path, campaign)
    }

    /// [`ExperimentJournal::create`] over an explicit [`Vfs`] — the seam
    /// the durability torture harness injects faults through.
    ///
    /// # Errors
    ///
    /// I/O errors, surfaced as [`GoofiError::Io`].
    pub fn create_with(vfs: &dyn Vfs, path: impl AsRef<Path>, campaign: &str) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = vfs
            .create(&path)
            .map_err(|e| GoofiError::io("creating", &path, &e))?;
        let header = format!("{HEADER}\nC\t{}\n", escape(campaign));
        file.write_all(header.as_bytes())
            .and_then(|()| file.sync())
            .map_err(|e| GoofiError::io("writing header to", &path, &e))?;
        Ok(ExperimentJournal { file, path })
    }

    /// Opens an existing journal for appending (after [`load`]).
    ///
    /// # Errors
    ///
    /// I/O errors, surfaced as [`GoofiError::Io`].
    ///
    /// [`load`]: ExperimentJournal::load
    pub fn open_append(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_append_with(&vfs::RealFs, path)
    }

    /// [`ExperimentJournal::open_append`] over an explicit [`Vfs`].
    ///
    /// # Errors
    ///
    /// I/O errors, surfaced as [`GoofiError::Io`].
    pub fn open_append_with(vfs: &dyn Vfs, path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = vfs
            .open_append(&path)
            .map_err(|e| GoofiError::io("opening", &path, &e))?;
        Ok(ExperimentJournal { file, path })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a completed experiment record. `index` is the experiment's
    /// campaign index; `None` marks the reference run.
    ///
    /// # Errors
    ///
    /// I/O errors, surfaced as [`GoofiError::Journal`].
    pub fn append_record(&mut self, index: Option<usize>, record: &ExperimentRecord) -> Result<()> {
        self.append_line(&encode_record_payload(index, record))
    }

    /// Appends an experiment failure.
    ///
    /// # Errors
    ///
    /// I/O errors, surfaced as [`GoofiError::Journal`].
    pub fn append_failure(&mut self, failure: &ExperimentFailure) -> Result<()> {
        let payload = format!(
            "F\t{}\t{}\t{}",
            failure.index,
            failure.attempts,
            escape(&failure.error)
        );
        self.append_line(&payload)
    }

    fn append_line(&mut self, payload: &str) -> Result<()> {
        let line = format!("{payload}\t#{:08x}\n", fnv1a(payload.as_bytes()));
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.sync())
            .map_err(|e| GoofiError::io("appending to", &self.path, &e))
    }

    /// Loads a journal, tolerating a torn tail: parsing stops at the first
    /// incomplete, checksum-mismatched or malformed entry line.
    ///
    /// # Errors
    ///
    /// I/O errors and a missing/mismatched header — a damaged *tail* is
    /// expected after a crash, a damaged *head* means this is not a
    /// journal.
    pub fn load(path: impl AsRef<Path>, campaign_name: &str) -> Result<JournalState> {
        Self::load_with(&vfs::RealFs, path, campaign_name)
    }

    /// [`ExperimentJournal::load`] over an explicit [`Vfs`].
    ///
    /// # Errors
    ///
    /// As [`ExperimentJournal::load`].
    pub fn load_with(
        vfs: &dyn Vfs,
        path: impl AsRef<Path>,
        campaign_name: &str,
    ) -> Result<JournalState> {
        let path = path.as_ref();
        let text = vfs
            .read_to_string(path)
            .map_err(|e| GoofiError::io("reading", path, &e))?;
        let complete = text.ends_with('\n');
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(GoofiError::Journal(format!(
                "{}: not a goofi journal (bad header)",
                path.display()
            )));
        }
        let mut state = JournalState::default();
        match lines.next().and_then(|l| l.strip_prefix("C\t")) {
            Some(name) => state.campaign = unescape(name),
            None => {
                return Err(GoofiError::Journal(format!(
                    "{}: missing campaign line",
                    path.display()
                )))
            }
        }
        if state.campaign != campaign_name {
            return Err(GoofiError::Journal(format!(
                "{}: journal belongs to campaign `{}`, not `{campaign_name}`",
                path.display(),
                state.campaign
            )));
        }
        let mut rest = lines.peekable();
        while let Some(line) = rest.next() {
            // The final line is torn if the file lacks a trailing newline.
            if rest.peek().is_none() && !complete {
                break;
            }
            match parse_entry(line, campaign_name) {
                Some(Entry::Reference(record)) => state.reference = Some(record),
                Some(Entry::Completed(index, record)) => {
                    if record.validity == Validity::Invalid {
                        // Quarantined: drop any completed record so resume
                        // re-runs the experiment; the round keeps the
                        // rerun name unique.
                        state.completed.remove(&index);
                        *state.failed_rounds.entry(index).or_insert(0) += 1;
                        state.failed.insert(
                            index,
                            ExperimentFailure {
                                index,
                                name: record.name.clone(),
                                attempts: 1,
                                error: "quarantined by golden-run revalidation".into(),
                            },
                        );
                        state.quarantined.push(record);
                    } else {
                        state.failed.remove(&index);
                        state.completed.insert(index, record);
                    }
                }
                Some(Entry::Failed(failure)) => {
                    *state.failed_rounds.entry(failure.index).or_insert(0) += 1;
                    if !state.completed.contains_key(&failure.index) {
                        state.failed.insert(failure.index, failure);
                    }
                }
                // Corrupt line: everything after it is suspect too.
                None => break,
            }
        }
        Ok(state)
    }
}

/// A line-level integrity scan of a journal file — finer-grained than
/// [`ExperimentJournal::load`], which stops at the first bad line. The
/// scan validates every entry line *individually*, so `goofi fsck` can
/// salvage valid records that sit beyond a garbled middle line.
#[derive(Debug, Clone, Default)]
pub struct JournalScan {
    /// Campaign named in the header, or `None` when the header itself is
    /// damaged (this is not recognisably a journal).
    pub campaign: Option<String>,
    /// Entry lines (verbatim) whose checksum and format both validate.
    pub valid: Vec<String>,
    /// Complete-but-invalid lines before the end of the file — corruption
    /// that the plain loader's torn-tail tolerance does *not* cover.
    pub garbled: usize,
    /// The final line is torn: invalid, or valid but missing its
    /// terminating newline (in which case it is also in `valid` — the
    /// record survives, the file still needs rewriting before appends).
    pub torn_tail: bool,
}

impl JournalScan {
    /// Whether the file is a pristine journal.
    pub fn clean(&self) -> bool {
        self.campaign.is_some() && self.garbled == 0 && !self.torn_tail
    }
}

/// Scans journal text line by line. See [`JournalScan`].
pub fn scan_text(text: &str) -> JournalScan {
    let mut scan = JournalScan::default();
    let mut lines = text.lines();
    if lines.next() != Some(HEADER) {
        return scan;
    }
    let campaign = match lines.next().and_then(|l| l.strip_prefix("C\t")) {
        Some(name) => unescape(name),
        None => return scan,
    };
    scan.campaign = Some(campaign.clone());
    let complete = text.ends_with('\n');
    let mut rest = lines.peekable();
    while let Some(line) = rest.next() {
        let last = rest.peek().is_none();
        if parse_entry(line, &campaign).is_some() {
            scan.valid.push(line.to_string());
            if last && !complete {
                // Valid payload but the newline never landed: the record
                // survives, yet appending to the file as-is would
                // concatenate onto this line. Flag it for rewriting.
                scan.torn_tail = true;
            }
        } else if last {
            // An invalid final line — unterminated or complete-but-bad —
            // is the residue of a crash mid-append: a torn tail.
            scan.torn_tail = true;
        } else {
            scan.garbled += 1;
        }
    }
    scan
}

/// What [`salvage_with`] did to a journal file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SalvageOutcome {
    /// The file was rewritten (damage was found and cut out).
    pub rewritten: bool,
    /// Valid entry lines kept.
    pub kept: usize,
    /// Damaged lines dropped (garbled entries plus a torn tail).
    pub dropped: usize,
    /// The file was not recognisably a journal and was renamed aside to
    /// this quarantine path instead of rewritten.
    pub quarantined: Option<PathBuf>,
}

/// Repairs a journal in place: keeps the header and every entry line that
/// individually validates, atomically rewriting the file. A file whose
/// *header* is damaged is renamed aside to `<path>.corrupt` (quarantined,
/// never silently deleted) so its owner can start a fresh journal. A
/// pristine journal is left untouched.
///
/// # Errors
///
/// I/O errors, surfaced as [`GoofiError::Io`].
pub fn salvage_with(vfs: &dyn Vfs, path: &Path) -> Result<SalvageOutcome> {
    // Lossy read: a garbled sector is rarely valid UTF-8, and salvage must
    // still be able to look at the rest of the file.
    let text =
        crate::vfs::read_lossy(vfs, path).map_err(|e| GoofiError::io("reading", path, &e))?;
    let scan = scan_text(&text);
    let Some(campaign) = &scan.campaign else {
        let mut corrupt = path.as_os_str().to_owned();
        corrupt.push(".corrupt");
        let corrupt = PathBuf::from(corrupt);
        vfs.rename(path, &corrupt)
            .map_err(|e| GoofiError::io("quarantining", path, &e))?;
        return Ok(SalvageOutcome {
            rewritten: false,
            kept: 0,
            dropped: 0,
            quarantined: Some(corrupt),
        });
    };
    if scan.clean() {
        return Ok(SalvageOutcome {
            kept: scan.valid.len(),
            ..SalvageOutcome::default()
        });
    }
    let mut body = format!("{HEADER}\nC\t{}\n", escape(campaign));
    for line in &scan.valid {
        body.push_str(line);
        body.push('\n');
    }
    vfs::atomic_write(vfs, path, body.as_bytes())
        .map_err(|e| GoofiError::io("rewriting", path, &e))?;
    let entry_lines = text.lines().count().saturating_sub(2);
    Ok(SalvageOutcome {
        rewritten: true,
        kept: scan.valid.len(),
        dropped: entry_lines - scan.valid.len(),
        quarantined: None,
    })
}

pub(crate) enum Entry {
    Reference(ExperimentRecord),
    Completed(usize, ExperimentRecord),
    Failed(ExperimentFailure),
}

/// One journal record line, minus the trailing checksum column (shared
/// with the golden-run cache, which persists a reference record in the
/// same checksummed format).
pub(crate) fn encode_record_payload(index: Option<usize>, record: &ExperimentRecord) -> String {
    format!(
        "R\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        index.map_or_else(|| "-".to_string(), |i| i.to_string()),
        escape(&record.name),
        record.parent.as_deref().map_or_else(|| "-".into(), escape),
        record
            .fault
            .as_ref()
            .map_or_else(|| "-".into(), |f| escape(&f.encode())),
        escape(&record.termination.encode()),
        escape(&record.state.encode()),
        if record.trace.is_empty() {
            "-".to_string()
        } else {
            escape(
                &record
                    .trace
                    .iter()
                    .map(StateSnapshot::encode)
                    .collect::<Vec<_>>()
                    .join("---\n"),
            )
        },
        record.validity.encode(),
    )
}

pub(crate) fn parse_entry(line: &str, campaign: &str) -> Option<Entry> {
    let (payload, checksum) = line.rsplit_once("\t#")?;
    if u32::from_str_radix(checksum, 16).ok()? != fnv1a(payload.as_bytes()) {
        return None;
    }
    let fields: Vec<&str> = payload.split('\t').collect();
    match fields.as_slice() {
        // The validity column was added later; 8-field entries written by
        // older versions load as valid records.
        ["R", index, name, parent, fault, termination, state, trace]
        | ["R", index, name, parent, fault, termination, state, trace, _] => {
            let validity = match fields.get(8) {
                Some(v) => Validity::decode(v)?,
                None => Validity::Valid,
            };
            let record = ExperimentRecord {
                name: unescape(name),
                parent: (*parent != "-").then(|| unescape(parent)),
                campaign: campaign.to_string(),
                fault: if *fault == "-" {
                    None
                } else {
                    Some(FaultSpec::decode(&unescape(fault))?)
                },
                termination: TerminationCause::decode(&unescape(termination))?,
                state: StateSnapshot::decode(&unescape(state))?,
                trace: if *trace == "-" {
                    Vec::new()
                } else {
                    unescape(trace)
                        .split("---\n")
                        .map(StateSnapshot::decode)
                        .collect::<Option<Vec<_>>>()?
                },
                validity,
            };
            if *index == "-" {
                Some(Entry::Reference(record))
            } else {
                Some(Entry::Completed(index.parse().ok()?, record))
            }
        }
        ["F", index, attempts, error] => {
            let index = index.parse().ok()?;
            Some(Entry::Failed(ExperimentFailure {
                index,
                name: format!("{campaign}/exp{index:05}"),
                attempts: attempts.parse().ok()?,
                error: unescape(error),
            }))
        }
        _ => None,
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

pub(crate) fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "goofi-journal-test-{}-{name}.gjl",
            std::process::id()
        ));
        p
    }

    fn record(name: &str, parent: Option<&str>) -> ExperimentRecord {
        let mut state = StateSnapshot {
            memory_digest: 7,
            outputs: vec![1, 2, 3],
            iterations: 1,
            instructions: 100,
            cycles: 150,
            ..StateSnapshot::default()
        };
        state.scan.insert("internal".into(), "0101".into());
        ExperimentRecord {
            name: name.into(),
            parent: parent.map(str::to_string),
            campaign: "c1".into(),
            fault: None,
            termination: TerminationCause::WorkloadEnd,
            state,
            trace: vec![StateSnapshot::default()],
            validity: Validity::Valid,
        }
    }

    #[test]
    fn validity_roundtrips_and_supersedes() {
        let path = temp_journal("validity");
        let mut j = ExperimentJournal::create(&path, "c1").unwrap();
        let good = record("c1/exp00000", None);
        let mut bad = good.clone();
        bad.validity = Validity::Invalid;
        j.append_record(Some(0), &good).unwrap();
        // Quarantine re-journals the same index with validity=invalid: the
        // record leaves `completed` (so resume re-runs it as a linked
        // rerun) and is kept aside for database import.
        j.append_record(Some(0), &bad).unwrap();
        drop(j);
        let state = ExperimentJournal::load(&path, "c1").unwrap();
        assert!(!state.completed.contains_key(&0));
        assert_eq!(
            state.failed[&0].error,
            "quarantined by golden-run revalidation"
        );
        assert_eq!(state.failed_rounds[&0], 1);
        assert_eq!(state.quarantined.len(), 1);
        assert_eq!(state.quarantined[0].validity, Validity::Invalid);

        // … and an eight-field entry from an older version loads as valid.
        let mut jv = ExperimentJournal::create(&path, "c1").unwrap();
        jv.append_record(Some(1), &good).unwrap();
        drop(jv);
        let text = std::fs::read_to_string(&path).unwrap();
        let legacy: String = text
            .lines()
            .map(|line| match line.split_once("\t#") {
                Some((payload, _)) if payload.starts_with("R\t") => {
                    let stripped = payload.rsplit_once('\t').unwrap().0;
                    format!("{stripped}\t#{:08x}\n", fnv1a(stripped.as_bytes()))
                }
                _ => format!("{line}\n"),
            })
            .collect();
        std::fs::write(&path, legacy).unwrap();
        let state = ExperimentJournal::load(&path, "c1").unwrap();
        assert_eq!(state.completed[&1].validity, Validity::Valid);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn roundtrips_records_and_failures() {
        let path = temp_journal("roundtrip");
        let mut j = ExperimentJournal::create(&path, "c1").unwrap();
        let reference = record("c1/reference", None);
        let exp0 = record("c1/exp00000", None);
        let rerun = record("c1/exp00002/rerun1", Some("c1/exp00002"));
        j.append_record(None, &reference).unwrap();
        j.append_record(Some(0), &exp0).unwrap();
        j.append_failure(&ExperimentFailure {
            index: 1,
            name: "c1/exp00001".into(),
            attempts: 3,
            error: "target system error: tab\there".into(),
        })
        .unwrap();
        j.append_record(Some(2), &rerun).unwrap();
        drop(j);

        let state = ExperimentJournal::load(&path, "c1").unwrap();
        assert_eq!(state.campaign, "c1");
        assert_eq!(state.reference.as_ref(), Some(&reference));
        assert_eq!(state.completed.len(), 2);
        assert_eq!(state.completed[&0], exp0);
        assert_eq!(state.completed[&2], rerun);
        assert_eq!(state.failed.len(), 1);
        assert_eq!(state.failed[&1].attempts, 3);
        assert_eq!(state.failed_rounds[&1], 1);
        assert!(state.failed[&1].error.contains("tab\there"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn later_record_supersedes_failure() {
        let path = temp_journal("supersede");
        let mut j = ExperimentJournal::create(&path, "c1").unwrap();
        j.append_failure(&ExperimentFailure {
            index: 0,
            name: "c1/exp00000".into(),
            attempts: 1,
            error: "flaky".into(),
        })
        .unwrap();
        j.append_record(Some(0), &record("c1/exp00000/rerun1", Some("c1/exp00000")))
            .unwrap();
        drop(j);
        let state = ExperimentJournal::load(&path, "c1").unwrap();
        assert!(state.failed.is_empty());
        // The F entry still counts a round, keeping future rerun names
        // unique.
        assert_eq!(state.failed_rounds[&0], 1);
        assert_eq!(state.completed.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let path = temp_journal("torn");
        let mut j = ExperimentJournal::create(&path, "c1").unwrap();
        j.append_record(Some(0), &record("c1/exp00000", None))
            .unwrap();
        j.append_record(Some(1), &record("c1/exp00001", None))
            .unwrap();
        drop(j);
        // Simulate a crash mid-append: truncate the last line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 10]).unwrap();
        let state = ExperimentJournal::load(&path, "c1").unwrap();
        assert_eq!(state.completed.len(), 1);
        assert!(state.completed.contains_key(&0));

        // A corrupted middle line cuts the journal there.
        let corrupt = text.replace("exp00000", "exp0?¿00");
        std::fs::write(&path, corrupt).unwrap();
        let state = ExperimentJournal::load(&path, "c1").unwrap();
        assert!(state.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_after_load_continues_the_journal() {
        let path = temp_journal("append");
        let mut j = ExperimentJournal::create(&path, "c1").unwrap();
        j.append_record(Some(0), &record("c1/exp00000", None))
            .unwrap();
        drop(j);
        let mut j = ExperimentJournal::open_append(&path).unwrap();
        j.append_record(Some(1), &record("c1/exp00001", None))
            .unwrap();
        drop(j);
        let state = ExperimentJournal::load(&path, "c1").unwrap();
        assert_eq!(state.completed.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_campaign_is_rejected() {
        let path = temp_journal("wrong");
        ExperimentJournal::create(&path, "c1").unwrap();
        assert!(matches!(
            ExperimentJournal::load(&path, "other"),
            Err(GoofiError::Journal(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_journal_file_is_rejected() {
        let path = temp_journal("notjournal");
        std::fs::write(&path, "hello\n").unwrap();
        assert!(ExperimentJournal::load(&path, "c1").is_err());
        std::fs::remove_file(&path).unwrap();
        assert!(ExperimentJournal::load(&path, "c1").is_err()); // missing file
    }

    #[test]
    fn escape_roundtrips() {
        for s in ["plain", "tab\tnl\ncr\rback\\slash", "", "trailing\\"] {
            assert_eq!(unescape(&escape(s)), s);
        }
    }
}
