//! GOOFI — the Generic Object-Oriented Fault Injection framework.
//!
//! This crate is the Rust reproduction of the tool presented in *GOOFI:
//! Generic Object-Oriented Fault Injection Tool* (Aidemark, Vinter,
//! Folkesson, Karlsson — DSN 2003). The paper's three-layer architecture
//! maps onto this workspace as follows:
//!
//! | paper (Java)                       | here (Rust)                          |
//! |------------------------------------|--------------------------------------|
//! | GUI layer                          | typed campaign builders + [`monitor`] (CLI/API) |
//! | `FaultInjectionAlgorithms` class   | [`algorithms`] (generic functions) + abstract methods on [`TargetAccess`] |
//! | `Framework` template class         | [`framework::NullTarget`] + the documented [`TargetAccess`] trait |
//! | `TargetSystemInterface` subclasses | e.g. the `goofi-thor` crate          |
//! | SQL database layer                 | [`dbio`] over the `goofidb` crate    |
//!
//! The Java abstract class becomes a trait: concrete fault-injection
//! algorithms such as [`algorithms::faultinjector_scifi`] are written purely
//! in terms of the abstract building blocks (`init_test_card`,
//! `load_workload`, `run_workload`, `read_scan_chain`, …), which is what
//! makes them reusable across target systems — the paper's core claim.
//!
//! A campaign flows through the paper's four phases:
//!
//! 1. **Configuration** — describe a target system ([`campaign::TargetSystemData`]).
//! 2. **Set-up** — build a [`campaign::Campaign`]: workload, fault
//!    locations/times (sampled from a [`fault::FaultSpace`]), fault models,
//!    termination conditions, logging mode.
//! 3. **Fault injection** — run [`algorithms`] (serially or via the parallel
//!    [`runner`]), logging every experiment to the database.
//! 4. **Analysis** — query the `LoggedSystemState` table (`goofi-analysis`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod campaign;
pub mod conformance;
pub mod dbio;
mod error;
pub mod fault;
pub mod framework;
pub mod fsck;
pub mod golden;
pub mod journal;
pub mod link;
pub mod logging;
pub mod monitor;
pub mod policy;
pub mod preinject;
pub mod runner;
pub mod service;
pub mod supervisor;
mod target;
pub mod telemetry;
pub mod trigger;
pub mod vfs;

pub use error::GoofiError;
pub use target::{
    readout_restore, readout_snapshot, DetectionInfo, ReadoutSnapshot, RunBudget, RunEvent,
    TargetAccess, TargetSnapshot,
};

/// Convenience alias used throughout the framework.
pub type Result<T> = std::result::Result<T, GoofiError>;
