//! Unreliable-link resilience: fault decorator and verified-I/O decorator.
//!
//! The paper's test card assumes a perfect host↔target link; real campaigns
//! over JTAG cables, lab networks, or remote simulators see corrupted
//! readbacks, lost transactions, and stalled shifts. This module supplies
//! both sides of that problem as *stackable decorators* over any
//! [`TargetAccess`]:
//!
//! - [`UnreliableTarget`] injects transport faults drawn from a seeded
//!   [`scanchain::LinkFaultModel`] into the data-path operations (scan-chain
//!   reads/writes, memory reads/writes, the bit-flip primitive). Run-control
//!   operations (`run_workload`, breakpoints, reset) are never faulted: the
//!   model targets the *transport*, not the target system.
//! - [`VerifiedTarget`] recovers from such faults: reads are repeated until
//!   two consecutive captures agree, writes are read back and compared, and
//!   every failed round re-initialises the test card
//!   ([`TargetAccess::init_test_card`]) before retrying. After
//!   [`VerifyConfig::max_attempts`] rounds the operation escalates to
//!   [`GoofiError::LinkFault`], which the campaign policy layer treats like
//!   any other experiment failure.
//!
//! Stack them as `VerifiedTarget::new(UnreliableTarget::new(target, cfg))`
//! to test the recovery layer, or wrap a real target with just
//! [`VerifiedTarget`] in deployments with a flaky physical link. Because
//! both the fault stream and the retry discipline are deterministic, a
//! campaign run twice with the same seeds produces bit-for-bit identical
//! results — the property the end-to-end tests assert.

use crate::campaign::WorkloadImage;
use crate::monitor::ProgressMonitor;
use crate::target::{RunBudget, RunEvent, TargetAccess, TargetSnapshot};
use crate::trigger::Trigger;
use crate::{GoofiError, Result};
use scanchain::{
    BitVec, ChainLayout, LinkFault, LinkFaultConfig, LinkFaultCounts, LinkFaultModel, ScanError,
};

/// A [`TargetAccess`] whose transport misbehaves per a [`LinkFaultModel`].
///
/// Each data-path operation asks the model for the fate of one transaction;
/// corrupted transactions flip a single bit in flight, dropped transactions
/// silently do nothing (reads return stale zeros), duplicated transactions
/// are applied twice, and stall/disconnect faults fail the operation with
/// the corresponding [`ScanError`]. The host-side recovery path —
/// [`TargetAccess::init_test_card`] and all run-control operations — is
/// deliberately never faulted, so a [`VerifiedTarget`] above this wrapper
/// can always re-establish the link.
#[derive(Debug)]
pub struct UnreliableTarget<T> {
    inner: T,
    model: LinkFaultModel,
}

impl<T: TargetAccess> UnreliableTarget<T> {
    /// Wraps `inner` with a fault model built from `config`.
    pub fn new(inner: T, config: LinkFaultConfig) -> Self {
        UnreliableTarget {
            inner,
            model: LinkFaultModel::new(config),
        }
    }

    /// The fault model (configuration, transaction count, event counters).
    pub fn model(&self) -> &LinkFaultModel {
        &self.model
    }

    /// Events injected so far, by kind.
    pub fn counts(&self) -> LinkFaultCounts {
        self.model.counts()
    }

    /// Shared access to the wrapped target.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Consumes the wrapper, returning the target and the model.
    pub fn into_parts(self) -> (T, LinkFaultModel) {
        (self.inner, self.model)
    }

    /// Applies one fault decision to a write-like transaction carrying
    /// `data` words; returns the words actually transmitted (`None` when
    /// the transaction is dropped) and how many times to apply them.
    fn disturb_words(
        &mut self,
        data: &[u32],
        operation: &str,
    ) -> Result<Option<(Vec<u32>, usize)>> {
        match self.model.next_fault() {
            None => Ok(Some((data.to_vec(), 1))),
            Some(LinkFault::CorruptBit) => {
                let mut words = data.to_vec();
                if !words.is_empty() {
                    let word = self.model.random_index(words.len());
                    let bit = self.model.random_index(32);
                    words[word] ^= 1u32 << bit;
                }
                Ok(Some((words, 1)))
            }
            Some(LinkFault::Drop) => Ok(None),
            Some(LinkFault::Duplicate) => Ok(Some((data.to_vec(), 2))),
            Some(LinkFault::Stall) => Err(GoofiError::Scan(ScanError::ShiftStall {
                operation: operation.to_string(),
            })),
            Some(LinkFault::Disconnect) => Err(GoofiError::Scan(ScanError::LinkDown {
                operation: operation.to_string(),
            })),
        }
    }
}

impl<T: TargetAccess> TargetAccess for UnreliableTarget<T> {
    fn target_name(&self) -> &str {
        self.inner.target_name()
    }

    // Recovery path: never faulted, so the link can always be restored.
    fn init_test_card(&mut self) -> Result<()> {
        self.inner.init_test_card()
    }

    fn load_workload(&mut self, image: &WorkloadImage) -> Result<()> {
        self.inner.load_workload(image)
    }

    fn reset_target(&mut self) -> Result<()> {
        self.inner.reset_target()
    }

    // Forwarded explicitly: the trait default would re-implement power
    // cycling as init+reset *at this layer*, bypassing whatever deeper
    // cold-reset the wrapped target provides.
    fn power_cycle(&mut self) -> Result<()> {
        self.inner.power_cycle()
    }

    // Snapshot/restore bypasses the lossy link entirely: a capture is a
    // host-side state clone of the wrapped target, not scan traffic, so
    // the fault model has nothing to disturb. Forwarded clean, like
    // power_cycle, so the inner target's native fast path is reachable.
    fn snapshot(&mut self) -> Result<TargetSnapshot> {
        self.inner.snapshot()
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) -> Result<()> {
        self.inner.restore(snapshot)
    }

    fn supports_snapshot(&self) -> bool {
        self.inner.supports_snapshot()
    }

    fn prefix_restore_safe(&self) -> bool {
        self.inner.prefix_restore_safe()
    }

    fn write_memory(&mut self, addr: u32, data: &[u32]) -> Result<()> {
        match self.disturb_words(data, "write memory")? {
            None => Ok(()),
            Some((words, times)) => {
                for _ in 0..times {
                    self.inner.write_memory(addr, &words)?;
                }
                Ok(())
            }
        }
    }

    fn read_memory(&mut self, addr: u32, len: usize) -> Result<Vec<u32>> {
        let words = self.inner.read_memory(addr, len)?;
        match self.model.next_fault() {
            None | Some(LinkFault::Duplicate) => Ok(words),
            Some(LinkFault::CorruptBit) => {
                let mut words = words;
                if !words.is_empty() {
                    let word = self.model.random_index(words.len());
                    let bit = self.model.random_index(32);
                    words[word] ^= 1u32 << bit;
                }
                Ok(words)
            }
            // A dropped read returns a stale all-zero buffer.
            Some(LinkFault::Drop) => Ok(vec![0; words.len()]),
            Some(LinkFault::Stall) => Err(GoofiError::Scan(ScanError::ShiftStall {
                operation: "read memory".into(),
            })),
            Some(LinkFault::Disconnect) => Err(GoofiError::Scan(ScanError::LinkDown {
                operation: "read memory".into(),
            })),
        }
    }

    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> Result<()> {
        match self.model.next_fault() {
            None => self.inner.flip_memory_bit(addr, bit),
            Some(LinkFault::CorruptBit) => {
                // The command arrives with its bit index corrupted: a
                // *different* bit of the same word is flipped.
                let wrong = (u32::from(bit) + 1 + self.model.random_index(31) as u32) % 32;
                self.inner.flip_memory_bit(addr, wrong as u8)
            }
            // The command never reaches the device.
            Some(LinkFault::Drop) => Ok(()),
            // Applied twice: the flips cancel, equally wrong as a drop.
            Some(LinkFault::Duplicate) => {
                self.inner.flip_memory_bit(addr, bit)?;
                self.inner.flip_memory_bit(addr, bit)
            }
            Some(LinkFault::Stall) => Err(GoofiError::Scan(ScanError::ShiftStall {
                operation: "flip memory bit".into(),
            })),
            Some(LinkFault::Disconnect) => Err(GoofiError::Scan(ScanError::LinkDown {
                operation: "flip memory bit".into(),
            })),
        }
    }

    fn memory_size(&self) -> u32 {
        self.inner.memory_size()
    }

    fn set_breakpoint(&mut self, trigger: Trigger) -> Result<()> {
        self.inner.set_breakpoint(trigger)
    }

    fn clear_breakpoints(&mut self) -> Result<()> {
        self.inner.clear_breakpoints()
    }

    fn run_workload(&mut self, budget: RunBudget) -> Result<RunEvent> {
        self.inner.run_workload(budget)
    }

    fn step_instruction(&mut self) -> Result<Option<RunEvent>> {
        self.inner.step_instruction()
    }

    fn chain_layouts(&self) -> Vec<ChainLayout> {
        self.inner.chain_layouts()
    }

    fn read_scan_chain(&mut self, chain: &str) -> Result<BitVec> {
        let image = self.inner.read_scan_chain(chain)?;
        self.model
            .disturb_read(image, &format!("read `{chain}`"))
            .map_err(GoofiError::Scan)
    }

    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> Result<()> {
        match self.model.next_fault() {
            None => self.inner.write_scan_chain(chain, bits),
            Some(LinkFault::CorruptBit) => {
                let mut disturbed = bits.clone();
                if !disturbed.is_empty() {
                    let bit = self.model.random_index(disturbed.len());
                    disturbed.flip(bit);
                }
                self.inner.write_scan_chain(chain, &disturbed)
            }
            // The update never reaches the device.
            Some(LinkFault::Drop) => Ok(()),
            Some(LinkFault::Duplicate) => {
                self.inner.write_scan_chain(chain, bits)?;
                self.inner.write_scan_chain(chain, bits)
            }
            Some(LinkFault::Stall) => Err(GoofiError::Scan(ScanError::ShiftStall {
                operation: format!("write `{chain}`"),
            })),
            Some(LinkFault::Disconnect) => Err(GoofiError::Scan(ScanError::LinkDown {
                operation: format!("write `{chain}`"),
            })),
        }
    }

    fn write_input_ports(&mut self, inputs: &[u32]) -> Result<()> {
        self.inner.write_input_ports(inputs)
    }

    fn read_output_ports(&mut self) -> Result<Vec<u32>> {
        self.inner.read_output_ports()
    }

    fn instructions_executed(&self) -> u64 {
        self.inner.instructions_executed()
    }

    fn cycles_executed(&self) -> u64 {
        self.inner.cycles_executed()
    }

    fn iterations_completed(&self) -> u64 {
        self.inner.iterations_completed()
    }

    fn step_traced(&mut self) -> Result<(Option<RunEvent>, crate::preinject::StepAccess)> {
        self.inner.step_traced()
    }
}

/// Retry budget of a [`VerifiedTarget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Maximum verification rounds per operation. Each round performs the
    /// operation and its verification readback; a failed round
    /// re-initialises the test card before the next. Must be at least 1.
    pub max_attempts: u32,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig { max_attempts: 3 }
    }
}

/// Running totals of link events seen by a [`VerifiedTarget`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkEventStats {
    /// Operations that needed at least one retry but ultimately succeeded.
    pub recovered: u64,
    /// Operations that exhausted the retry budget and escalated to
    /// [`GoofiError::LinkFault`].
    pub unrecovered: u64,
}

/// A [`TargetAccess`] decorator that makes data-path I/O trustworthy over
/// an unreliable link.
///
/// - **Reads** (`read_scan_chain`, `read_memory`, `read_output_ports`) are
///   repeated until two consecutive captures agree, so a single corrupted
///   or stale readback cannot masquerade as target state.
/// - **Writes** (`write_scan_chain`, `write_memory`) are read back and
///   compared against what was written (for scan chains, only the writable
///   cells of the layout — read-only capture cells legitimately differ).
/// - **`flip_memory_bit`** is re-expressed as a verified
///   read-modify-write, so a dropped or mis-addressed flip command is
///   detected and corrected.
///
/// A failed round calls [`TargetAccess::init_test_card`] to re-establish
/// the link before retrying. Once [`VerifyConfig::max_attempts`] rounds are
/// spent the operation fails with [`GoofiError::LinkFault`]; recovered and
/// unrecovered events are counted locally and, when a monitor is attached
/// via [`VerifiedTarget::with_monitor`], on the campaign's
/// [`ProgressMonitor`].
#[derive(Debug)]
pub struct VerifiedTarget<T> {
    inner: T,
    config: VerifyConfig,
    monitor: Option<ProgressMonitor>,
    stats: LinkEventStats,
}

impl<T: TargetAccess> VerifiedTarget<T> {
    /// Wraps `inner` with the default retry budget.
    pub fn new(inner: T) -> Self {
        Self::with_config(inner, VerifyConfig::default())
    }

    /// Wraps `inner` with an explicit retry budget.
    pub fn with_config(inner: T, config: VerifyConfig) -> Self {
        VerifiedTarget {
            inner,
            config: VerifyConfig {
                max_attempts: config.max_attempts.max(1),
            },
            monitor: None,
            stats: LinkEventStats::default(),
        }
    }

    /// Attaches a campaign monitor so recovered/unrecovered link events
    /// show up in the progress window.
    pub fn with_monitor(mut self, monitor: ProgressMonitor) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Shared access to the wrapped target.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Consumes the wrapper, returning the target.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Link events seen so far.
    pub fn stats(&self) -> LinkEventStats {
        self.stats
    }

    fn note_recovered(&mut self, operation: &str) {
        self.stats.recovered += 1;
        if let Some(m) = &self.monitor {
            m.record_link_recovered();
            m.telemetry().event("link-recovered", operation);
        }
    }

    fn fail(&mut self, operation: &str, attempts: u32, detail: String) -> GoofiError {
        self.stats.unrecovered += 1;
        if let Some(m) = &self.monitor {
            m.record_link_unrecovered();
            m.telemetry().event(
                "link-unrecovered",
                &format!("{operation} after {attempts} attempts"),
            );
        }
        GoofiError::LinkFault {
            operation: operation.to_string(),
            attempts,
            detail,
        }
    }

    /// Re-establishes the link between rounds. A failing re-init is not
    /// itself fatal — the next round's operation reports the real error.
    fn recover(&mut self) {
        let _ = self.inner.init_test_card();
    }

    /// Runs `read` until two consecutive captures agree.
    fn read_agreeing<V: PartialEq + Clone>(
        &mut self,
        operation: &str,
        mut read: impl FnMut(&mut T) -> Result<V>,
    ) -> Result<V> {
        let mut detail = String::from("no attempt completed");
        for attempt in 1..=self.config.max_attempts {
            let round = (|| {
                let first = read(&mut self.inner)?;
                let second = read(&mut self.inner)?;
                Ok::<_, GoofiError>((first, second))
            })();
            match round {
                Ok((first, second)) if first == second => {
                    if attempt > 1 {
                        self.note_recovered(operation);
                    }
                    return Ok(first);
                }
                Ok(_) => detail = "consecutive captures disagree".to_string(),
                Err(e) => detail = e.to_string(),
            }
            self.recover();
        }
        Err(self.fail(operation, self.config.max_attempts, detail))
    }

    /// Runs `write` then `check`; retries with link recovery until the
    /// verification passes or the budget is spent.
    fn write_verified(
        &mut self,
        operation: &str,
        mut write: impl FnMut(&mut T) -> Result<()>,
        mut check: impl FnMut(&mut T) -> Result<std::result::Result<(), String>>,
    ) -> Result<()> {
        let mut detail = String::from("no attempt completed");
        for attempt in 1..=self.config.max_attempts {
            let round = (|| {
                write(&mut self.inner)?;
                check(&mut self.inner)
            })();
            match round {
                Ok(Ok(())) => {
                    if attempt > 1 {
                        self.note_recovered(operation);
                    }
                    return Ok(());
                }
                Ok(Err(mismatch)) => detail = mismatch,
                Err(e) => detail = e.to_string(),
            }
            self.recover();
        }
        Err(self.fail(operation, self.config.max_attempts, detail))
    }
}

impl<T: TargetAccess> TargetAccess for VerifiedTarget<T> {
    fn target_name(&self) -> &str {
        self.inner.target_name()
    }

    fn init_test_card(&mut self) -> Result<()> {
        self.inner.init_test_card()
    }

    fn load_workload(&mut self, image: &WorkloadImage) -> Result<()> {
        self.inner.load_workload(image)
    }

    fn reset_target(&mut self) -> Result<()> {
        self.inner.reset_target()
    }

    // Forwarded explicitly so the wrapped target's real cold reset runs
    // (the trait default would only init+reset this wrapper).
    fn power_cycle(&mut self) -> Result<()> {
        self.inner.power_cycle()
    }

    // Snapshot/restore is host-side state cloning, not link traffic, so
    // there is nothing for this layer to verify — forwarded clean so the
    // wrapped target's native fast path stays reachable.
    fn snapshot(&mut self) -> Result<TargetSnapshot> {
        self.inner.snapshot()
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) -> Result<()> {
        self.inner.restore(snapshot)
    }

    fn supports_snapshot(&self) -> bool {
        self.inner.supports_snapshot()
    }

    fn prefix_restore_safe(&self) -> bool {
        self.inner.prefix_restore_safe()
    }

    fn write_memory(&mut self, addr: u32, data: &[u32]) -> Result<()> {
        if data.is_empty() {
            return self.inner.write_memory(addr, data);
        }
        let expected = data.to_vec();
        let len = expected.len();
        self.write_verified(
            "write_memory",
            |t| t.write_memory(addr, &expected),
            |t| {
                let back = t.read_memory(addr, len)?;
                Ok(if back == expected {
                    Ok(())
                } else {
                    Err("readback differs from written data".to_string())
                })
            },
        )
    }

    fn read_memory(&mut self, addr: u32, len: usize) -> Result<Vec<u32>> {
        if len == 0 {
            return self.inner.read_memory(addr, len);
        }
        self.read_agreeing("read_memory", |t| t.read_memory(addr, len))
    }

    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> Result<()> {
        if bit >= 32 {
            // Let the target report its own out-of-range error.
            return self.inner.flip_memory_bit(addr, bit);
        }
        // Verified read-modify-write: a dropped, duplicated or mis-addressed
        // flip command over the link cannot silently change the injected
        // fault.
        let before = self.read_memory(addr, 1)?[0];
        let expected = before ^ (1u32 << u32::from(bit));
        self.write_memory(addr, &[expected])
    }

    fn memory_size(&self) -> u32 {
        self.inner.memory_size()
    }

    fn set_breakpoint(&mut self, trigger: Trigger) -> Result<()> {
        self.inner.set_breakpoint(trigger)
    }

    fn clear_breakpoints(&mut self) -> Result<()> {
        self.inner.clear_breakpoints()
    }

    fn run_workload(&mut self, budget: RunBudget) -> Result<RunEvent> {
        self.inner.run_workload(budget)
    }

    fn step_instruction(&mut self) -> Result<Option<RunEvent>> {
        self.inner.step_instruction()
    }

    fn chain_layouts(&self) -> Vec<ChainLayout> {
        self.inner.chain_layouts()
    }

    fn read_scan_chain(&mut self, chain: &str) -> Result<BitVec> {
        self.read_agreeing(&format!("read_scan_chain({chain})"), |t| {
            t.read_scan_chain(chain)
        })
    }

    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> Result<()> {
        let layout = self
            .inner
            .chain_layouts()
            .into_iter()
            .find(|l| l.name() == chain);
        let written = bits.clone();
        self.write_verified(
            &format!("write_scan_chain({chain})"),
            |t| t.write_scan_chain(chain, &written),
            |t| {
                let back = t.read_scan_chain(chain)?;
                // Only writable cells must survive the round trip; read-only
                // capture cells legitimately differ from the shifted image.
                // Without a layout the whole image must match.
                let mismatch = match &layout {
                    Some(layout) => {
                        layout
                            .writable_cells()
                            .flat_map(|c| c.bit_range())
                            .find(|&i| {
                                i < back.len() && i < written.len() && back.get(i) != written.get(i)
                            })
                    }
                    None => {
                        (0..back.len().min(written.len())).find(|&i| back.get(i) != written.get(i))
                    }
                };
                Ok(match mismatch {
                    None => Ok(()),
                    Some(i) => Err(format!("readback differs at chain bit {i}")),
                })
            },
        )
    }

    fn write_input_ports(&mut self, inputs: &[u32]) -> Result<()> {
        self.inner.write_input_ports(inputs)
    }

    fn read_output_ports(&mut self) -> Result<Vec<u32>> {
        self.read_agreeing("read_output_ports", |t| t.read_output_ports())
    }

    fn instructions_executed(&self) -> u64 {
        self.inner.instructions_executed()
    }

    fn cycles_executed(&self) -> u64 {
        self.inner.cycles_executed()
    }

    fn iterations_completed(&self) -> u64 {
        self.inner.iterations_completed()
    }

    fn step_traced(&mut self) -> Result<(Option<RunEvent>, crate::preinject::StepAccess)> {
        self.inner.step_traced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanchain::CellAccess;

    /// A minimal in-memory target: 64 words of RAM and one scan chain with
    /// a writable register and a read-only counter cell.
    struct MemTarget {
        memory: Vec<u32>,
        chain: BitVec,
        layout: ChainLayout,
        inits: u32,
    }

    impl MemTarget {
        fn new() -> Self {
            let layout = ChainLayout::builder("regs")
                .cell("R0", 8, CellAccess::ReadWrite)
                .cell("CNT", 4, CellAccess::ReadOnly)
                .build();
            MemTarget {
                memory: vec![0; 64],
                chain: BitVec::zeros(12),
                layout,
                inits: 0,
            }
        }
    }

    impl TargetAccess for MemTarget {
        fn target_name(&self) -> &str {
            "mem"
        }
        fn init_test_card(&mut self) -> Result<()> {
            self.inits += 1;
            Ok(())
        }
        fn load_workload(&mut self, _image: &WorkloadImage) -> Result<()> {
            Ok(())
        }
        fn reset_target(&mut self) -> Result<()> {
            Ok(())
        }
        fn write_memory(&mut self, addr: u32, data: &[u32]) -> Result<()> {
            let a = addr as usize;
            self.memory[a..a + data.len()].copy_from_slice(data);
            Ok(())
        }
        fn read_memory(&mut self, addr: u32, len: usize) -> Result<Vec<u32>> {
            let a = addr as usize;
            Ok(self.memory[a..a + len].to_vec())
        }
        fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> Result<()> {
            self.memory[addr as usize] ^= 1u32 << u32::from(bit);
            Ok(())
        }
        fn memory_size(&self) -> u32 {
            64
        }
        fn set_breakpoint(&mut self, _trigger: Trigger) -> Result<()> {
            Ok(())
        }
        fn clear_breakpoints(&mut self) -> Result<()> {
            Ok(())
        }
        fn run_workload(&mut self, _budget: RunBudget) -> Result<RunEvent> {
            Ok(RunEvent::Halted)
        }
        fn step_instruction(&mut self) -> Result<Option<RunEvent>> {
            Ok(Some(RunEvent::Halted))
        }
        fn chain_layouts(&self) -> Vec<ChainLayout> {
            vec![self.layout.clone()]
        }
        fn read_scan_chain(&mut self, _chain: &str) -> Result<BitVec> {
            Ok(self.chain.clone())
        }
        fn write_scan_chain(&mut self, _chain: &str, bits: &BitVec) -> Result<()> {
            // Masked update: only writable cells take the shifted value.
            let masked = self.layout.masked_update(&self.chain, bits)?;
            self.chain = masked;
            Ok(())
        }
        fn write_input_ports(&mut self, _inputs: &[u32]) -> Result<()> {
            Ok(())
        }
        fn read_output_ports(&mut self) -> Result<Vec<u32>> {
            Ok(vec![self.memory[0]])
        }
        fn instructions_executed(&self) -> u64 {
            0
        }
        fn cycles_executed(&self) -> u64 {
            0
        }
        fn iterations_completed(&self) -> u64 {
            0
        }
        fn step_traced(&mut self) -> Result<(Option<RunEvent>, crate::preinject::StepAccess)> {
            Err(GoofiError::Unimplemented("step_traced"))
        }
    }

    fn lossy(rate_cfg: LinkFaultConfig) -> UnreliableTarget<MemTarget> {
        UnreliableTarget::new(MemTarget::new(), rate_cfg)
    }

    #[test]
    fn unreliable_target_passes_through_when_inactive() {
        let mut t = lossy(LinkFaultConfig::default());
        t.write_memory(3, &[0xDEAD_BEEF]).unwrap();
        assert_eq!(t.read_memory(3, 1).unwrap(), vec![0xDEAD_BEEF]);
        t.flip_memory_bit(3, 0).unwrap();
        assert_eq!(t.read_memory(3, 1).unwrap(), vec![0xDEAD_BEEE]);
        assert_eq!(t.counts().total(), 0);
    }

    #[test]
    fn unreliable_target_drops_and_corrupts_deterministically() {
        let run = |seed| {
            let mut t = lossy(LinkFaultConfig {
                seed,
                corrupt_rate: 0.3,
                drop_rate: 0.3,
                ..Default::default()
            });
            let mut log = Vec::new();
            for i in 0..200u32 {
                t.write_memory(0, &[i]).unwrap();
                log.push(t.read_memory(0, 1).unwrap()[0]);
            }
            (log, t.counts())
        };
        let (a, ca) = run(5);
        let (b, cb) = run(5);
        assert_eq!(a, b, "same seed, same disturbed history");
        assert_eq!(ca, cb);
        assert!(ca.total() > 0, "rates this high must fire");
        let (c, _) = run(6);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn unreliable_target_maps_stall_and_disconnect_to_errors() {
        let mut t = lossy(LinkFaultConfig {
            seed: 2,
            stall_rate: 1.0,
            ..Default::default()
        });
        assert!(matches!(
            t.read_scan_chain("regs"),
            Err(GoofiError::Scan(ScanError::ShiftStall { .. }))
        ));
        let mut t = lossy(LinkFaultConfig {
            seed: 2,
            disconnect_rate: 1.0,
            ..Default::default()
        });
        assert!(matches!(
            t.write_memory(0, &[1]),
            Err(GoofiError::Scan(ScanError::LinkDown { .. }))
        ));
    }

    #[test]
    fn verified_target_is_transparent_on_a_clean_link() {
        let mut t = VerifiedTarget::new(MemTarget::new());
        t.write_memory(1, &[7, 8]).unwrap();
        assert_eq!(t.read_memory(1, 2).unwrap(), vec![7, 8]);
        t.flip_memory_bit(1, 1).unwrap();
        assert_eq!(t.read_memory(1, 1).unwrap(), vec![5]);
        let mut bits = BitVec::zeros(12);
        t.chain_layouts()[0]
            .write_cell(&mut bits, "R0", 0xA5)
            .unwrap();
        t.write_scan_chain("regs", &bits).unwrap();
        let back = t.read_scan_chain("regs").unwrap();
        assert_eq!(t.chain_layouts()[0].read_cell(&back, "R0").unwrap(), 0xA5);
        assert_eq!(t.stats(), LinkEventStats::default());
    }

    #[test]
    fn verified_target_recovers_from_a_lossy_link() {
        let monitor = ProgressMonitor::new(0);
        let inner = lossy(LinkFaultConfig {
            seed: 11,
            corrupt_rate: 0.05,
            drop_rate: 0.05,
            stall_rate: 0.02,
            disconnect_rate: 0.02,
            ..Default::default()
        });
        let mut t = VerifiedTarget::with_config(inner, VerifyConfig { max_attempts: 10 })
            .with_monitor(monitor.clone());
        for i in 0..100u32 {
            t.write_memory(i % 64, &[i.wrapping_mul(2654435761)])
                .unwrap();
            assert_eq!(
                t.read_memory(i % 64, 1).unwrap(),
                vec![i.wrapping_mul(2654435761)],
                "verified read must return the written value"
            );
        }
        let stats = t.stats();
        assert!(stats.recovered > 0, "rates this high must need recovery");
        assert_eq!(stats.unrecovered, 0);
        assert_eq!(monitor.snapshot().link_recovered as u64, stats.recovered);
        assert!(t.inner().inner().inits > 0, "recovery re-inits the card");
    }

    #[test]
    fn verified_flips_survive_dropped_commands() {
        // Note the moderate drop rate: two *consecutive* dropped reads both
        // return the same stale zeros and defeat double-read agreement —
        // the known residual risk of the scheme, quadratic in the drop
        // rate. The seeded stream keeps this test deterministic.
        let inner = lossy(LinkFaultConfig {
            seed: 3,
            drop_rate: 0.1,
            ..Default::default()
        });
        let mut t = VerifiedTarget::with_config(inner, VerifyConfig { max_attempts: 12 });
        for bit in 0..16u8 {
            t.flip_memory_bit(9, bit).unwrap();
        }
        assert_eq!(t.read_memory(9, 1).unwrap(), vec![0x0000_FFFF]);
    }

    #[test]
    fn verified_target_escalates_when_budget_is_spent() {
        let monitor = ProgressMonitor::new(0);
        let inner = lossy(LinkFaultConfig {
            seed: 4,
            disconnect_rate: 1.0,
            ..Default::default()
        });
        let mut t = VerifiedTarget::with_config(inner, VerifyConfig { max_attempts: 2 })
            .with_monitor(monitor.clone());
        let err = t.read_memory(0, 1).unwrap_err();
        match err {
            GoofiError::LinkFault {
                operation,
                attempts,
                ..
            } => {
                assert_eq!(operation, "read_memory");
                assert_eq!(attempts, 2);
            }
            other => panic!("expected LinkFault, got {other}"),
        }
        assert_eq!(t.stats().unrecovered, 1);
        assert_eq!(monitor.snapshot().link_unrecovered, 1);
    }

    #[test]
    fn verified_scan_write_checks_only_writable_cells() {
        // The read-only CNT cell never takes shifted values; a verified
        // write must not loop forever trying to make it match.
        let mut t = VerifiedTarget::new(MemTarget::new());
        let mut bits = BitVec::ones(12); // asks CNT to become 0xF too
        t.chain_layouts()[0]
            .write_cell(&mut bits, "R0", 0x3C)
            .unwrap();
        t.write_scan_chain("regs", &bits).unwrap();
        let back = t.read_scan_chain("regs").unwrap();
        let layout = &t.chain_layouts()[0];
        assert_eq!(layout.read_cell(&back, "R0").unwrap(), 0x3C);
        assert_eq!(
            layout.read_cell(&back, "CNT").unwrap(),
            0,
            "RO cell untouched"
        );
        assert_eq!(t.stats(), LinkEventStats::default());
    }
}
