//! Logging modes, state snapshots and experiment records.
//!
//! GOOFI "can be operated in either normal or detail mode. In normal mode,
//! the system state is logged only when the termination condition is
//! fulfilled. In detail mode the system state is logged as frequently as the
//! target system allows, typically after the execution of each machine
//! instruction" (§3.3). The logged state "typically includes the contents of
//! all the locations in the target system that are observable … as well as
//! the workload input and output values, together with information about
//! when and where any faults were injected".

use crate::target::DetectionInfo;
use std::collections::BTreeMap;
use std::fmt;

/// Normal (end-state only) or detail (per-instruction trace) logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LoggingMode {
    /// Log the system state only at termination.
    #[default]
    Normal,
    /// Additionally log the state vector after every instruction.
    Detail,
}

impl LoggingMode {
    /// Database string form.
    pub fn encode(self) -> &'static str {
        match self {
            LoggingMode::Normal => "normal",
            LoggingMode::Detail => "detail",
        }
    }

    /// Parses [`LoggingMode::encode`] output.
    pub fn decode(s: &str) -> Option<LoggingMode> {
        match s {
            "normal" => Some(LoggingMode::Normal),
            "detail" => Some(LoggingMode::Detail),
            _ => None,
        }
    }
}

/// Why an experiment terminated.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TerminationCause {
    /// The workload ran to completion.
    WorkloadEnd,
    /// An error detection mechanism fired.
    Detected(DetectionInfo),
    /// The time-out value was reached (watchdog or instruction budget).
    Timeout,
    /// The configured maximum number of loop iterations completed.
    IterationLimit,
    /// A [`Timeout`](TerminationCause::Timeout) that the health-probe suite
    /// confirmed was a wedged target, not a slow workload: the target
    /// failed its probes after the run and had to climb the
    /// [`RecoveryLadder`](crate::supervisor::RecoveryLadder). Such records
    /// are quarantined and superseded by a `parentExperiment`-linked re-run
    /// after recovery.
    TargetHang,
}

impl TerminationCause {
    /// Database string form.
    pub fn encode(&self) -> String {
        match self {
            TerminationCause::WorkloadEnd => "end".to_string(),
            TerminationCause::Detected(d) => format!("detected:{}:{}", d.mechanism, d.code),
            TerminationCause::Timeout => "timeout".to_string(),
            TerminationCause::IterationLimit => "iterations".to_string(),
            TerminationCause::TargetHang => "hang".to_string(),
        }
    }

    /// Parses [`TerminationCause::encode`] output.
    pub fn decode(s: &str) -> Option<TerminationCause> {
        match s {
            "end" => return Some(TerminationCause::WorkloadEnd),
            "timeout" => return Some(TerminationCause::Timeout),
            "iterations" => return Some(TerminationCause::IterationLimit),
            "hang" => return Some(TerminationCause::TargetHang),
            _ => {}
        }
        let rest = s.strip_prefix("detected:")?;
        let (mechanism, code) = rest.rsplit_once(':')?;
        Some(TerminationCause::Detected(DetectionInfo {
            mechanism: mechanism.to_string(),
            code: code.parse().ok()?,
        }))
    }
}

impl fmt::Display for TerminationCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TerminationCause::WorkloadEnd => f.write_str("workload end"),
            TerminationCause::Detected(d) => write!(f, "detected by {}", d.mechanism),
            TerminationCause::Timeout => f.write_str("time-out"),
            TerminationCause::IterationLimit => f.write_str("iteration limit"),
            TerminationCause::TargetHang => f.write_str("target hang"),
        }
    }
}

/// One logged system state: the `statevector` attribute of the
/// `LoggedSystemState` table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StateSnapshot {
    /// Captured scan chains (chain name → bit string), restricted to the
    /// observe list of the campaign.
    pub scan: BTreeMap<String, String>,
    /// FNV-1a digest of all of target memory (latent-error comparison).
    pub memory_digest: u64,
    /// The workload's output values (designated memory region or ports).
    pub outputs: Vec<u32>,
    /// Completed loop iterations.
    pub iterations: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
}

impl StateSnapshot {
    /// Serialises to the text form stored in the database.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for (chain, bits) in &self.scan {
            out.push_str(&format!("chain {chain} {bits}\n"));
        }
        out.push_str(&format!("memdigest {}\n", self.memory_digest));
        let outs: Vec<String> = self.outputs.iter().map(u32::to_string).collect();
        out.push_str(&format!("outputs {}\n", outs.join(",")));
        out.push_str(&format!(
            "counters {} {} {}\n",
            self.iterations, self.instructions, self.cycles
        ));
        out
    }

    /// Parses [`StateSnapshot::encode`] output.
    pub fn decode(s: &str) -> Option<StateSnapshot> {
        let mut snap = StateSnapshot::default();
        for line in s.lines() {
            let mut parts = line.splitn(2, ' ');
            let key = parts.next()?;
            let rest = parts.next().unwrap_or("");
            match key {
                "chain" => {
                    let (name, bits) = rest.split_once(' ')?;
                    snap.scan.insert(name.to_string(), bits.to_string());
                }
                "memdigest" => snap.memory_digest = rest.parse().ok()?,
                "outputs" => {
                    snap.outputs = rest
                        .split(',')
                        .filter(|p| !p.is_empty())
                        .map(str::parse)
                        .collect::<std::result::Result<_, _>>()
                        .ok()?;
                }
                "counters" => {
                    let mut it = rest.split(' ');
                    snap.iterations = it.next()?.parse().ok()?;
                    snap.instructions = it.next()?.parse().ok()?;
                    snap.cycles = it.next()?.parse().ok()?;
                }
                _ => return None,
            }
        }
        Some(snap)
    }

    /// Whether two snapshots describe the same architectural state
    /// (used to separate latent from overwritten errors).
    pub fn same_state(&self, other: &StateSnapshot) -> bool {
        self.scan == other.scan && self.memory_digest == other.memory_digest
    }
}

const DIGEST_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const DIGEST_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Block size of the memory digest, in words. Matches the page size of
/// targets with copy-on-write paged memory, so per-block digests can be
/// memoized page by page across snapshots (see
/// [`crate::TargetAccess::memory_digest`]).
pub const DIGEST_BLOCK_WORDS: usize = 1024;

/// The memory digest function: the image is split into
/// [`DIGEST_BLOCK_WORDS`]-word blocks, each hashed independently by
/// [`digest_block`], and the block digests are chained with the length.
///
/// A single byte-wise FNV chain serialises on its multiply (one
/// multiply's latency per byte), which made digesting a full memory image
/// the most expensive part of every experiment readout. The block
/// structure buys two things: within a block, eight interleaved lanes let
/// the CPU overlap the multiplies, and across blocks a paged target can
/// reuse the digest of any block whose page is still shared with a
/// snapshot. The chain fold is position-dependent, so word order and
/// length still change the digest. The value is an internal fingerprint
/// (latent-error comparison, golden cache keys) — nothing outside this
/// repository depends on the exact function.
pub fn digest_words(words: &[u32]) -> u64 {
    let mut hash = digest_seed(words.len());
    for block in words.chunks(DIGEST_BLOCK_WORDS) {
        hash = digest_fold(hash, digest_block(block));
    }
    hash
}

/// Initial chain value of [`digest_words`] for an image of `len` words.
/// Paged targets fold memoized [`digest_block`] values onto this seed with
/// [`digest_fold`] to reproduce `digest_words` without materialising the
/// flat image.
pub fn digest_seed(len: usize) -> u64 {
    DIGEST_OFFSET ^ len as u64
}

/// One chain step of [`digest_words`]: folds the next block's
/// [`digest_block`] value into the running hash.
pub fn digest_fold(hash: u64, block_digest: u64) -> u64 {
    (hash ^ block_digest).wrapping_mul(DIGEST_PRIME)
}

/// Digest of one block of [`digest_words`]'s chain: eight interleaved
/// FNV-1a-style streams over word lanes, folded into one value with the
/// block length. Exposed so paged targets can memoize per-page digests;
/// `digest_words` is exactly the fold of this over consecutive
/// [`DIGEST_BLOCK_WORDS`]-word chunks.
pub fn digest_block(words: &[u32]) -> u64 {
    const LANES: usize = 8;
    let mut lanes = [DIGEST_OFFSET; LANES];
    let mut chunks = words.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (lane, w) in lanes.iter_mut().zip(chunk) {
            *lane = (*lane ^ u64::from(*w)).wrapping_mul(DIGEST_PRIME);
        }
    }
    for (lane, w) in lanes.iter_mut().zip(chunks.remainder()) {
        *lane = (*lane ^ u64::from(*w)).wrapping_mul(DIGEST_PRIME);
    }
    let mut hash = DIGEST_OFFSET ^ words.len() as u64;
    for lane in lanes {
        hash = (hash ^ lane).wrapping_mul(DIGEST_PRIME);
    }
    hash
}

/// Whether a logged experiment's results can be trusted.
///
/// Records produced while the target link was misbehaving are *quarantined*:
/// kept in the database for audit, marked [`Validity::Invalid`], excluded
/// from analysis, and re-run as fresh `parentExperiment`-linked experiments
/// (see the golden-run revalidation in [`crate::algorithms`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Validity {
    /// The record is trusted (the default).
    #[default]
    Valid,
    /// The record was produced under suspected link faults and has been
    /// quarantined; a linked re-run supersedes it.
    Invalid,
}

impl Validity {
    /// Database string form.
    pub fn encode(self) -> &'static str {
        match self {
            Validity::Valid => "valid",
            Validity::Invalid => "invalid",
        }
    }

    /// Parses [`Validity::encode`] output.
    pub fn decode(s: &str) -> Option<Validity> {
        match s {
            "valid" => Some(Validity::Valid),
            "invalid" => Some(Validity::Invalid),
            _ => None,
        }
    }
}

/// The complete log of one fault-injection experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Unique experiment name (e.g. `"c1/exp0042"`).
    pub name: String,
    /// Parent experiment when this is a detail-mode re-run (paper §2.3's
    /// `parentExperiment` attribute); empty otherwise.
    pub parent: Option<String>,
    /// Campaign this experiment belongs to.
    pub campaign: String,
    /// The injected fault; `None` for the reference (fault-free) run.
    pub fault: Option<crate::fault::FaultSpec>,
    /// Why the run terminated.
    pub termination: TerminationCause,
    /// Final system state.
    pub state: StateSnapshot,
    /// Detail-mode per-instruction trace (empty in normal mode).
    pub trace: Vec<StateSnapshot>,
    /// Whether the record survived golden-run revalidation (quarantined
    /// records are kept but excluded from analysis).
    pub validity: Validity,
}

impl ExperimentRecord {
    /// Name used for the reference run of a campaign.
    pub const REFERENCE_NAME: &'static str = "reference";

    /// Whether this record is the campaign's reference run.
    pub fn is_reference(&self) -> bool {
        self.fault.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logging_mode_roundtrip() {
        for m in [LoggingMode::Normal, LoggingMode::Detail] {
            assert_eq!(LoggingMode::decode(m.encode()), Some(m));
        }
        assert_eq!(LoggingMode::decode("x"), None);
    }

    #[test]
    fn termination_roundtrip() {
        for t in [
            TerminationCause::WorkloadEnd,
            TerminationCause::Timeout,
            TerminationCause::IterationLimit,
            TerminationCause::TargetHang,
            TerminationCause::Detected(DetectionInfo {
                mechanism: "parity_icache".into(),
                code: 1,
            }),
        ] {
            assert_eq!(
                TerminationCause::decode(&t.encode()),
                Some(t.clone()),
                "{t}"
            );
        }
        assert_eq!(TerminationCause::decode("nope"), None);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut snap = StateSnapshot {
            memory_digest: 12345,
            outputs: vec![1, 2, 3],
            iterations: 4,
            instructions: 500,
            cycles: 900,
            ..Default::default()
        };
        snap.scan.insert("internal".into(), "0101".into());
        snap.scan.insert("icache".into(), "111".into());
        assert_eq!(StateSnapshot::decode(&snap.encode()), Some(snap.clone()));
    }

    #[test]
    fn empty_outputs_roundtrip() {
        let snap = StateSnapshot::default();
        assert_eq!(StateSnapshot::decode(&snap.encode()), Some(snap));
    }

    #[test]
    fn same_state_ignores_counters() {
        let mut a = StateSnapshot {
            memory_digest: 1,
            cycles: 10,
            ..Default::default()
        };
        let mut b = a.clone();
        b.cycles = 99;
        assert!(a.same_state(&b));
        b.memory_digest = 2;
        assert!(!a.same_state(&b));
        b.memory_digest = 1;
        a.scan.insert("internal".into(), "1".into());
        assert!(!a.same_state(&b));
    }

    #[test]
    fn validity_roundtrip() {
        for v in [Validity::Valid, Validity::Invalid] {
            assert_eq!(Validity::decode(v.encode()), Some(v));
        }
        assert_eq!(Validity::decode("x"), None);
        assert_eq!(Validity::default(), Validity::Valid);
    }

    #[test]
    fn digest_is_order_sensitive() {
        assert_ne!(digest_words(&[1, 2]), digest_words(&[2, 1]));
        assert_eq!(digest_words(&[1, 2]), digest_words(&[1, 2]));
        assert_ne!(digest_words(&[0]), digest_words(&[]));
    }
}
