//! Campaign progress monitoring: the paper's progress window (Figure 7).
//!
//! "During the fault injection campaign, a progress window is shown enabling
//! the user to monitor the experiments, e.g. getting information about the
//! number of faults injected and also to pause, restart or end the campaign"
//! (§3.3). [`ProgressMonitor`] is that component as a thread-safe API: the
//! campaign loop calls [`ProgressMonitor::checkpoint`] between experiments,
//! which blocks while paused and aborts when stopped; any thread (a CLI, a
//! UI, a test) can pause/resume/stop and read the live counters.

use crate::logging::TerminationCause;
use crate::telemetry::{Metric, Telemetry};
use crate::{GoofiError, Result};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    Run,
    Pause,
    Stop,
}

/// Live campaign counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Progress {
    /// Experiments configured in the campaign.
    pub total: usize,
    /// Experiments completed so far.
    pub completed: usize,
    /// Experiments skipped (e.g. pruned by pre-injection analysis).
    pub skipped: usize,
    /// Experiments that failed despite the campaign's retry policy.
    pub failed: usize,
    /// Experiment retries attempted so far.
    pub retried: usize,
    /// Link faults detected and recovered by a
    /// [`VerifiedTarget`](crate::link::VerifiedTarget).
    pub link_recovered: usize,
    /// Link faults that exhausted the recovery budget.
    pub link_unrecovered: usize,
    /// Records quarantined by golden-run revalidation.
    pub quarantined: usize,
    /// Health-probe suites run between experiments.
    pub probes_run: usize,
    /// Health-probe suites that failed (triggering the recovery ladder).
    pub probes_failed: usize,
    /// Watchdog timeouts confirmed as wedged targets
    /// ([`TerminationCause::TargetHang`]).
    pub hangs: usize,
    /// Soft-reset recovery attempts applied.
    pub soft_resets: usize,
    /// Test-card re-init recovery attempts applied.
    pub card_reinits: usize,
    /// Power-cycle recovery attempts applied.
    pub power_cycles: usize,
    /// Targets that exhausted the recovery ladder and went offline
    /// (the parallel runner retires the worker and redistributes its
    /// remaining experiments).
    pub targets_offline: usize,
    /// Completed experiments per termination cause (encoded form).
    pub by_termination: BTreeMap<String, usize>,
}

impl Progress {
    /// Fraction of experiments done, 0.0..=1.0.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            (self.completed + self.skipped + self.failed) as f64 / self.total as f64
        }
    }
}

#[derive(Debug)]
struct Inner {
    command: Mutex<Command>,
    wakeup: Condvar,
    progress: Mutex<Progress>,
    // Paired with `progress` (a condvar must never be used with two
    // different mutexes); notified on every counter change so watchers
    // such as `goofi submit --watch` can stream live progress.
    progress_changed: Condvar,
    telemetry: Telemetry,
}

/// Thread-safe pause/resume/stop control plus progress counters.
#[derive(Debug, Clone)]
pub struct ProgressMonitor {
    inner: Arc<Inner>,
}

impl Default for ProgressMonitor {
    fn default() -> Self {
        Self::new(0)
    }
}

impl ProgressMonitor {
    /// Creates a monitor for a campaign of `total` experiments, with
    /// telemetry disabled.
    pub fn new(total: usize) -> Self {
        Self::with_telemetry(total, Telemetry::disabled())
    }

    /// Creates a monitor whose counters are mirrored into `telemetry`'s
    /// metrics registry, and which carries the handle to every component
    /// the monitor reaches (runner, algorithms, supervisor, link).
    pub fn with_telemetry(total: usize, telemetry: Telemetry) -> Self {
        ProgressMonitor {
            inner: Arc::new(Inner {
                command: Mutex::new(Command::Run),
                wakeup: Condvar::new(),
                progress: Mutex::new(Progress {
                    total,
                    ..Progress::default()
                }),
                progress_changed: Condvar::new(),
                telemetry,
            }),
        }
    }

    /// The telemetry handle this monitor carries (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// Pauses the campaign after the current experiment.
    pub fn pause(&self) {
        *self.inner.command.lock() = Command::Pause;
    }

    /// Resumes a paused campaign.
    pub fn resume(&self) {
        let mut cmd = self.inner.command.lock();
        if *cmd == Command::Pause {
            *cmd = Command::Run;
        }
        self.inner.wakeup.notify_all();
    }

    /// Ends the campaign after the current experiment.
    pub fn stop(&self) {
        *self.inner.command.lock() = Command::Stop;
        self.inner.wakeup.notify_all();
    }

    /// Whether a stop has been requested.
    pub fn is_stopped(&self) -> bool {
        *self.inner.command.lock() == Command::Stop
    }

    /// Called by the campaign loop between experiments: blocks while
    /// paused.
    ///
    /// # Errors
    ///
    /// Returns [`GoofiError::Stopped`] once the user has ended the campaign.
    pub fn checkpoint(&self) -> Result<()> {
        let mut cmd = self.inner.command.lock();
        while *cmd == Command::Pause {
            self.inner.wakeup.wait(&mut cmd);
        }
        if *cmd == Command::Stop {
            return Err(GoofiError::Stopped);
        }
        Ok(())
    }

    /// Mutates the counters under the lock and wakes progress watchers.
    fn update(&self, mutate: impl FnOnce(&mut Progress)) {
        let mut p = self.inner.progress.lock();
        mutate(&mut p);
        self.inner.progress_changed.notify_all();
    }

    /// Records a completed experiment and its termination cause.
    pub fn record(&self, cause: &TerminationCause) {
        self.update(|p| {
            p.completed += 1;
            *p.by_termination.entry(cause.encode()).or_insert(0) += 1;
        });
        self.inner.telemetry.count(Metric::Completed, 1);
    }

    /// Records an experiment skipped without running (pre-injection
    /// analysis).
    pub fn record_skipped(&self) {
        self.update(|p| p.skipped += 1);
        self.inner.telemetry.count(Metric::Skipped, 1);
    }

    /// Records an experiment that failed despite the campaign's policy.
    pub fn record_failed(&self) {
        self.update(|p| p.failed += 1);
        self.inner.telemetry.count(Metric::Failed, 1);
    }

    /// Records one retry attempt of a failing experiment.
    pub fn record_retry(&self) {
        self.update(|p| p.retried += 1);
        self.inner.telemetry.count(Metric::Retried, 1);
    }

    /// Records a link fault that was detected and recovered.
    pub fn record_link_recovered(&self) {
        self.update(|p| p.link_recovered += 1);
        self.inner.telemetry.count(Metric::LinkRecovered, 1);
    }

    /// Records a link fault that exhausted the recovery budget.
    pub fn record_link_unrecovered(&self) {
        self.update(|p| p.link_unrecovered += 1);
        self.inner.telemetry.count(Metric::LinkUnrecovered, 1);
    }

    /// Records one experiment record quarantined by golden-run
    /// revalidation.
    pub fn record_quarantined(&self) {
        self.update(|p| p.quarantined += 1);
        self.inner.telemetry.count(Metric::Quarantined, 1);
    }

    /// Records one health-probe suite and whether it passed.
    pub fn record_probe(&self, passed: bool) {
        self.update(|p| {
            p.probes_run += 1;
            if !passed {
                p.probes_failed += 1;
            }
        });
        self.inner.telemetry.count(Metric::ProbesRun, 1);
        if !passed {
            self.inner.telemetry.count(Metric::ProbesFailed, 1);
        }
    }

    /// Records a watchdog timeout confirmed as a wedged target.
    pub fn record_hang(&self) {
        self.update(|p| p.hangs += 1);
        self.inner.telemetry.count(Metric::Hangs, 1);
    }

    /// Records a soft-reset recovery attempt.
    pub fn record_soft_reset(&self) {
        self.update(|p| p.soft_resets += 1);
        self.inner.telemetry.count(Metric::SoftResets, 1);
    }

    /// Records a test-card re-init recovery attempt.
    pub fn record_card_reinit(&self) {
        self.update(|p| p.card_reinits += 1);
        self.inner.telemetry.count(Metric::CardReinits, 1);
    }

    /// Records a power-cycle recovery attempt.
    pub fn record_power_cycle(&self) {
        self.update(|p| p.power_cycles += 1);
        self.inner.telemetry.count(Metric::PowerCycles, 1);
    }

    /// Records a target that exhausted the recovery ladder.
    pub fn record_target_offline(&self) {
        self.update(|p| p.targets_offline += 1);
        self.inner.telemetry.count(Metric::TargetsOffline, 1);
    }

    /// Marks previously-journaled work as done when a campaign resumes:
    /// bumps the completed/failed counters without re-running anything.
    pub fn record_resumed(&self, completed: usize, failed: usize) {
        self.update(|p| {
            p.completed += completed;
            p.failed += failed;
        });
        self.inner
            .telemetry
            .count(Metric::Completed, completed as u64);
        self.inner.telemetry.count(Metric::Failed, failed as u64);
    }

    /// Adjusts the expected experiment count (e.g. when campaigns merge).
    pub fn set_total(&self, total: usize) {
        self.update(|p| p.total = total);
    }

    /// A copy of the current counters.
    pub fn snapshot(&self) -> Progress {
        self.inner.progress.lock().clone()
    }

    /// Blocks until the counters differ from `last` or `timeout` elapses,
    /// then returns a copy of the current counters. This is the push side
    /// of live progress streaming: shard workers loop on it to emit one
    /// wire event per change instead of polling [`ProgressMonitor::snapshot`].
    pub fn wait_for_change(&self, last: &Progress, timeout: std::time::Duration) -> Progress {
        let deadline = std::time::Instant::now() + timeout;
        let mut p = self.inner.progress.lock();
        while *p == *last {
            let now = std::time::Instant::now();
            if now >= deadline {
                break;
            }
            if self
                .inner
                .progress_changed
                .wait_for(&mut p, deadline - now)
                .timed_out()
            {
                break;
            }
        }
        p.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::DetectionInfo;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn records_and_fractions() {
        let m = ProgressMonitor::new(4);
        m.record(&TerminationCause::WorkloadEnd);
        m.record(&TerminationCause::Detected(DetectionInfo {
            mechanism: "parity_icache".into(),
            code: 1,
        }));
        m.record_skipped();
        let p = m.snapshot();
        assert_eq!(p.completed, 2);
        assert_eq!(p.skipped, 1);
        assert_eq!(p.fraction(), 0.75);
        assert_eq!(p.by_termination.get("end"), Some(&1));
    }

    #[test]
    fn failed_experiments_count_toward_progress() {
        let m = ProgressMonitor::new(4);
        m.record(&TerminationCause::WorkloadEnd);
        m.record_retry();
        m.record_retry();
        m.record_failed();
        m.record_resumed(1, 1);
        let p = m.snapshot();
        assert_eq!(p.completed, 2);
        assert_eq!(p.failed, 2);
        assert_eq!(p.retried, 2);
        assert_eq!(p.fraction(), 1.0);
    }

    #[test]
    fn link_and_quarantine_counters_accumulate() {
        let m = ProgressMonitor::new(2);
        m.record_link_recovered();
        m.record_link_recovered();
        m.record_link_unrecovered();
        m.record_quarantined();
        let p = m.snapshot();
        assert_eq!(p.link_recovered, 2);
        assert_eq!(p.link_unrecovered, 1);
        assert_eq!(p.quarantined, 1);
        // Link events are not experiment progress.
        assert_eq!(p.completed, 0);
    }

    #[test]
    fn supervision_counters_accumulate() {
        let m = ProgressMonitor::new(2);
        m.record_probe(true);
        m.record_probe(false);
        m.record_hang();
        m.record_soft_reset();
        m.record_soft_reset();
        m.record_card_reinit();
        m.record_power_cycle();
        m.record_target_offline();
        let p = m.snapshot();
        assert_eq!(p.probes_run, 2);
        assert_eq!(p.probes_failed, 1);
        assert_eq!(p.hangs, 1);
        assert_eq!(p.soft_resets, 2);
        assert_eq!(p.card_reinits, 1);
        assert_eq!(p.power_cycles, 1);
        assert_eq!(p.targets_offline, 1);
        // Supervision events are not experiment progress.
        assert_eq!(p.completed, 0);
    }

    #[test]
    fn stop_aborts_checkpoint() {
        let m = ProgressMonitor::new(1);
        m.checkpoint().unwrap();
        m.stop();
        assert!(m.is_stopped());
        assert!(matches!(m.checkpoint(), Err(GoofiError::Stopped)));
    }

    #[test]
    fn pause_blocks_until_resume() {
        let m = ProgressMonitor::new(1);
        m.pause();
        let m2 = m.clone();
        let handle = thread::spawn(move || m2.checkpoint());
        // Give the worker time to block on the pause.
        thread::sleep(Duration::from_millis(50));
        assert!(!handle.is_finished());
        m.resume();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn stop_wakes_a_paused_campaign() {
        let m = ProgressMonitor::new(1);
        m.pause();
        let m2 = m.clone();
        let handle = thread::spawn(move || m2.checkpoint());
        thread::sleep(Duration::from_millis(50));
        m.stop();
        assert!(matches!(handle.join().unwrap(), Err(GoofiError::Stopped)));
    }

    #[test]
    fn resume_does_not_cancel_stop() {
        let m = ProgressMonitor::new(1);
        m.stop();
        m.resume();
        assert!(m.is_stopped());
    }

    #[test]
    fn empty_campaign_fraction_is_one() {
        assert_eq!(ProgressMonitor::new(0).snapshot().fraction(), 1.0);
    }

    #[test]
    fn wait_for_change_wakes_on_record() {
        let m = ProgressMonitor::new(2);
        let last = m.snapshot();
        let m2 = m.clone();
        let handle = thread::spawn(move || m2.wait_for_change(&last, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(30));
        m.record(&TerminationCause::WorkloadEnd);
        let p = handle.join().unwrap();
        assert_eq!(p.completed, 1);
    }

    #[test]
    fn wait_for_change_times_out_unchanged() {
        let m = ProgressMonitor::new(2);
        let last = m.snapshot();
        let p = m.wait_for_change(&last, Duration::from_millis(20));
        assert_eq!(p, last);
    }

    #[test]
    fn counters_mirror_into_telemetry() {
        let m = ProgressMonitor::with_telemetry(3, Telemetry::enabled());
        m.record(&TerminationCause::WorkloadEnd);
        m.record_retry();
        m.record_probe(false);
        m.record_resumed(2, 1);
        m.record_quarantined();
        let p = m.snapshot();
        let t = m.telemetry().metrics().unwrap();
        assert_eq!(t.counter("completed"), p.completed as u64);
        assert_eq!(t.counter("failed"), p.failed as u64);
        assert_eq!(t.counter("retried"), p.retried as u64);
        assert_eq!(t.counter("probes-run"), p.probes_run as u64);
        assert_eq!(t.counter("probes-failed"), p.probes_failed as u64);
        assert_eq!(t.counter("quarantined"), p.quarantined as u64);
    }
}
