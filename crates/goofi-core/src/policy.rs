//! Experiment resilience policy: retries, failure handling and watchdogs.
//!
//! GOOFI campaigns are meant to run unattended — the paper's progress
//! monitor (Figure 7) and the `parentExperiment` re-run workflow (§2.3)
//! both exist because thousands-of-experiment campaigns meet flaky
//! hardware, hung workloads and operator restarts. [`ExperimentPolicy`]
//! makes that machinery explicit: what the campaign driver does when a
//! single experiment errors ([`FailureAction`]), how often it retries and
//! with what pacing ([`Backoff`]), and how a hung workload is cut off and
//! classified as a `Timeout` termination ([`WatchdogBudget`]).
//!
//! The default policy reproduces the historical behaviour exactly: fail
//! fast, no retries, no watchdog beyond the campaign's instruction budget.

use std::fmt;
use std::time::{Duration, Instant};

/// What the campaign driver does when one experiment returns an error
/// (after any retries allowed by the policy are exhausted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailureAction {
    /// Abort the campaign on the first failing experiment (historical
    /// behaviour). Completed records are still returned with the error.
    #[default]
    FailFast,
    /// Record the failure and move on to the next experiment.
    SkipAndContinue,
    /// Retry up to [`ExperimentPolicy::max_retries`] times, then record the
    /// failure and move on.
    RetryThenSkip,
    /// Retry up to [`ExperimentPolicy::max_retries`] times, then abort the
    /// campaign.
    RetryThenFail,
}

impl FailureAction {
    fn encode(self) -> &'static str {
        match self {
            FailureAction::FailFast => "failfast",
            FailureAction::SkipAndContinue => "skip",
            FailureAction::RetryThenSkip => "retry-skip",
            FailureAction::RetryThenFail => "retry-fail",
        }
    }

    fn decode(s: &str) -> Option<Self> {
        match s {
            "failfast" => Some(FailureAction::FailFast),
            "skip" => Some(FailureAction::SkipAndContinue),
            "retry-skip" => Some(FailureAction::RetryThenSkip),
            "retry-fail" => Some(FailureAction::RetryThenFail),
            _ => None,
        }
    }
}

/// Bounded exponential backoff between experiment retries.
///
/// Attempt `k` (zero-based) sleeps `initial_ms * 2^k`, capped at `max_ms`.
/// The default (all zero) retries immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Backoff {
    /// Delay before the first retry, in milliseconds.
    pub initial_ms: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub max_ms: u64,
}

impl Backoff {
    /// A bounded exponential backoff.
    pub fn exponential(initial_ms: u64, max_ms: u64) -> Self {
        Backoff { initial_ms, max_ms }
    }

    /// The delay before retry number `attempt` (zero-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        let ms = self
            .initial_ms
            .saturating_mul(factor)
            .min(self.max_ms.max(self.initial_ms));
        Duration::from_millis(ms)
    }
}

/// Per-experiment watchdog budget, independent of the campaign's
/// instruction budget.
///
/// The instruction budget in [`crate::campaign::Termination`] cannot catch
/// every hang: a target stalled without retiring instructions never
/// consumes it, and a generous budget can keep a worker busy for hours.
/// The watchdog bounds each experiment in *workload cycles* and/or *wall
/// time*; either expiring terminates the experiment with
/// [`crate::logging::TerminationCause::Timeout`], exactly as the paper's
/// "time-out value has been reached" condition (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WatchdogBudget {
    /// Maximum workload cycles per experiment (`None` = unbounded).
    pub max_cycles: Option<u64>,
    /// Maximum wall-clock milliseconds per experiment (`None` = unbounded).
    pub max_wall_ms: Option<u64>,
}

impl WatchdogBudget {
    /// Whether any bound is configured.
    pub fn is_bounded(&self) -> bool {
        self.max_cycles.is_some() || self.max_wall_ms.is_some()
    }
}

/// How the driver handles per-experiment failures and hangs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExperimentPolicy {
    /// Reaction to a failing experiment.
    pub on_error: FailureAction,
    /// Retries per experiment (only meaningful for the `RetryThen*`
    /// actions).
    pub max_retries: u32,
    /// Pacing between retries.
    pub backoff: Backoff,
    /// Per-experiment hang detection.
    pub watchdog: WatchdogBudget,
    /// Golden-run revalidation interval: every `n` completed experiments
    /// the driver re-runs the fault-free reference and compares it to the
    /// stored golden log; on a mismatch the window of records since the
    /// last check is quarantined and re-run (`None` disables the check).
    pub revalidate_every: Option<u32>,
    /// Target supervision cadence: every `n` completed experiments the
    /// driver runs the health-probe suite
    /// ([`crate::supervisor::Supervisor`]) and climbs the recovery ladder
    /// on failure. Setting this also enables hang confirmation: a
    /// `Timeout` termination whose post-run probes fail is reclassified as
    /// [`crate::logging::TerminationCause::TargetHang`], quarantined and
    /// re-run after recovery. `None` disables supervision entirely.
    pub health_check_every: Option<u32>,
}

impl ExperimentPolicy {
    /// Abort the campaign on the first failure (the default).
    pub fn fail_fast() -> Self {
        ExperimentPolicy::default()
    }

    /// Record failures and keep going.
    pub fn skip_and_continue() -> Self {
        ExperimentPolicy {
            on_error: FailureAction::SkipAndContinue,
            ..Default::default()
        }
    }

    /// Retry each failing experiment up to `retries` times, then skip it.
    pub fn retry_then_skip(retries: u32) -> Self {
        ExperimentPolicy {
            on_error: FailureAction::RetryThenSkip,
            max_retries: retries,
            ..Default::default()
        }
    }

    /// Retry each failing experiment up to `retries` times, then abort.
    pub fn retry_then_fail(retries: u32) -> Self {
        ExperimentPolicy {
            on_error: FailureAction::RetryThenFail,
            max_retries: retries,
            ..Default::default()
        }
    }

    /// Sets the retry backoff.
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Sets the watchdog budget.
    pub fn with_watchdog(mut self, watchdog: WatchdogBudget) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Sets the golden-run revalidation interval (`0` disables it).
    pub fn with_revalidation(mut self, every: u32) -> Self {
        self.revalidate_every = (every > 0).then_some(every);
        self
    }

    /// Sets the target-supervision (health-probe) cadence (`0` disables
    /// it).
    pub fn with_health_check(mut self, every: u32) -> Self {
        self.health_check_every = (every > 0).then_some(every);
        self
    }

    /// Retries the driver should attempt for one experiment.
    pub fn retries(&self) -> u32 {
        match self.on_error {
            FailureAction::FailFast | FailureAction::SkipAndContinue => 0,
            FailureAction::RetryThenSkip | FailureAction::RetryThenFail => self.max_retries,
        }
    }

    /// Whether an exhausted experiment failure aborts the whole campaign.
    pub fn fails_campaign(&self) -> bool {
        matches!(
            self.on_error,
            FailureAction::FailFast | FailureAction::RetryThenFail
        )
    }

    /// Encodes the policy for database storage
    /// (`onerr=<action>;retries=<n>;backoff=<initial>:<max>;wd=<cycles|->:<ms|->;reval=<n|->;hc=<n|->`).
    pub fn encode(&self) -> String {
        let opt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |v| v.to_string());
        format!(
            "onerr={};retries={};backoff={}:{};wd={}:{};reval={};hc={}",
            self.on_error.encode(),
            self.max_retries,
            self.backoff.initial_ms,
            self.backoff.max_ms,
            opt(self.watchdog.max_cycles),
            opt(self.watchdog.max_wall_ms),
            opt(self.revalidate_every.map(u64::from)),
            opt(self.health_check_every.map(u64::from)),
        )
    }

    /// Decodes [`ExperimentPolicy::encode`] output. Unknown keys are
    /// ignored and missing keys keep their defaults, so policies stored by
    /// future versions still load.
    pub fn decode(s: &str) -> Option<Self> {
        let mut policy = ExperimentPolicy::default();
        let opt = |v: &str| -> Option<Option<u64>> {
            if v == "-" {
                Some(None)
            } else {
                v.parse().ok().map(Some)
            }
        };
        for part in s.split(';').filter(|p| !p.is_empty()) {
            let (key, value) = part.split_once('=')?;
            match key {
                "onerr" => policy.on_error = FailureAction::decode(value)?,
                "retries" => policy.max_retries = value.parse().ok()?,
                "backoff" => {
                    let (i, m) = value.split_once(':')?;
                    policy.backoff = Backoff {
                        initial_ms: i.parse().ok()?,
                        max_ms: m.parse().ok()?,
                    };
                }
                "wd" => {
                    let (c, w) = value.split_once(':')?;
                    policy.watchdog = WatchdogBudget {
                        max_cycles: opt(c)?,
                        max_wall_ms: opt(w)?,
                    };
                }
                "reval" => {
                    policy.revalidate_every = opt(value)?.map(|v| v as u32);
                }
                "hc" => {
                    policy.health_check_every = opt(value)?.map(|v| v as u32);
                }
                _ => {}
            }
        }
        Some(policy)
    }
}

/// One experiment that failed despite the policy's retries.
///
/// Kept as data (`Clone`/`PartialEq`, error rendered to text) so campaign
/// results containing failures stay comparable and storable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentFailure {
    /// Experiment index within the campaign.
    pub index: usize,
    /// Experiment name ([`crate::campaign::Campaign::experiment_name`]).
    pub name: String,
    /// Attempts made (1 = no retries).
    pub attempts: u32,
    /// Rendered error of the last attempt.
    pub error: String,
}

impl fmt::Display for ExperimentFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "experiment `{}` (index {}) failed after {} attempt(s): {}",
            self.name, self.index, self.attempts, self.error
        )
    }
}

/// Maximum instructions per `run_workload` slice while a watchdog is
/// armed, so expiry is observed promptly even in coarse-grained runs.
const WATCHDOG_SLICE: u64 = 4096;

/// How many [`Watchdog::expired`] calls between wall-clock checks in
/// single-stepping loops (reading the clock per instruction would dominate
/// the experiment).
const WALL_CHECK_INTERVAL: u32 = 64;

/// A running watchdog for one experiment.
///
/// Constructed at experiment start from the campaign's
/// [`WatchdogBudget`]; the run-control loops poll [`Watchdog::expired`]
/// and convert expiry into a `Timeout` termination.
#[derive(Debug)]
pub struct Watchdog {
    start_cycles: u64,
    max_cycles: Option<u64>,
    deadline: Option<Instant>,
    checks: u32,
    wall_expired: bool,
}

impl Watchdog {
    /// Arms a watchdog; `start_cycles` is the target's current cycle count.
    pub fn start(budget: &WatchdogBudget, start_cycles: u64) -> Self {
        Watchdog {
            start_cycles,
            max_cycles: budget.max_cycles,
            deadline: budget
                .max_wall_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            checks: 0,
            wall_expired: false,
        }
    }

    /// An unarmed watchdog (never expires).
    pub fn unbounded() -> Self {
        Watchdog::start(&WatchdogBudget::default(), 0)
    }

    /// Whether the budget is exhausted, given the target's current cycle
    /// count. The wall clock is only read every few calls — cheap enough
    /// for per-instruction polling.
    pub fn expired(&mut self, cycles_now: u64) -> bool {
        if let Some(max) = self.max_cycles {
            if cycles_now.saturating_sub(self.start_cycles) >= max {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if self.wall_expired {
                return true;
            }
            self.checks = self.checks.wrapping_add(1);
            if self.checks.is_multiple_of(WALL_CHECK_INTERVAL) && Instant::now() >= deadline {
                self.wall_expired = true;
                return true;
            }
        }
        false
    }

    /// Forces a wall-clock check on the next [`Watchdog::expired`] call —
    /// used by coarse-grained loops where calls are rare but each covers
    /// thousands of instructions.
    pub fn check_wall_now(&mut self) -> bool {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.wall_expired = true;
            }
        }
        self.wall_expired
    }

    /// Clamps a `run_workload` instruction budget so an armed watchdog is
    /// re-checked often enough.
    pub fn clamp_slice(&self, remaining: u64) -> u64 {
        if self.max_cycles.is_some() || self.deadline.is_some() {
            remaining.min(WATCHDOG_SLICE)
        } else {
            remaining
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_historical_behaviour() {
        let p = ExperimentPolicy::default();
        assert_eq!(p.on_error, FailureAction::FailFast);
        assert_eq!(p.retries(), 0);
        assert!(p.fails_campaign());
        assert!(!p.watchdog.is_bounded());
    }

    #[test]
    fn retries_only_count_for_retry_actions() {
        assert_eq!(ExperimentPolicy::skip_and_continue().retries(), 0);
        assert_eq!(ExperimentPolicy::retry_then_skip(3).retries(), 3);
        assert_eq!(ExperimentPolicy::retry_then_fail(2).retries(), 2);
        assert!(!ExperimentPolicy::retry_then_skip(3).fails_campaign());
        assert!(ExperimentPolicy::retry_then_fail(2).fails_campaign());
        assert!(!ExperimentPolicy::skip_and_continue().fails_campaign());
    }

    #[test]
    fn backoff_is_exponential_and_bounded() {
        let b = Backoff::exponential(10, 50);
        assert_eq!(b.delay(0), Duration::from_millis(10));
        assert_eq!(b.delay(1), Duration::from_millis(20));
        assert_eq!(b.delay(2), Duration::from_millis(40));
        assert_eq!(b.delay(3), Duration::from_millis(50));
        assert_eq!(b.delay(200), Duration::from_millis(50)); // shift overflow
        assert_eq!(Backoff::default().delay(5), Duration::ZERO);
    }

    #[test]
    fn policy_encodes_and_decodes() {
        let policies = [
            ExperimentPolicy::default(),
            ExperimentPolicy::skip_and_continue(),
            ExperimentPolicy::retry_then_skip(4).with_backoff(Backoff::exponential(5, 100)),
            ExperimentPolicy::retry_then_fail(1).with_watchdog(WatchdogBudget {
                max_cycles: Some(10_000),
                max_wall_ms: None,
            }),
            ExperimentPolicy::fail_fast().with_watchdog(WatchdogBudget {
                max_cycles: None,
                max_wall_ms: Some(250),
            }),
            ExperimentPolicy::retry_then_skip(2).with_revalidation(25),
            ExperimentPolicy::skip_and_continue().with_health_check(10),
            ExperimentPolicy::retry_then_skip(1)
                .with_revalidation(20)
                .with_health_check(5),
        ];
        for p in policies {
            assert_eq!(
                ExperimentPolicy::decode(&p.encode()),
                Some(p),
                "{}",
                p.encode()
            );
        }
        // Missing keys keep defaults; unknown keys are ignored.
        assert_eq!(
            ExperimentPolicy::decode("onerr=skip;future=1"),
            Some(ExperimentPolicy::skip_and_continue())
        );
        assert_eq!(
            ExperimentPolicy::decode(""),
            Some(ExperimentPolicy::default())
        );
        assert_eq!(ExperimentPolicy::decode("onerr=nope"), None);
    }

    #[test]
    fn watchdog_cycle_budget_expires() {
        let budget = WatchdogBudget {
            max_cycles: Some(100),
            max_wall_ms: None,
        };
        let mut wd = Watchdog::start(&budget, 1_000);
        assert!(!wd.expired(1_000));
        assert!(!wd.expired(1_099));
        assert!(wd.expired(1_100));
        assert!(wd.expired(5_000));
    }

    #[test]
    fn watchdog_wall_deadline_expires() {
        let budget = WatchdogBudget {
            max_cycles: None,
            max_wall_ms: Some(0),
        };
        let mut wd = Watchdog::start(&budget, 0);
        // The forced check observes the (immediately) elapsed deadline.
        assert!(wd.check_wall_now());
        assert!(wd.expired(0));
    }

    #[test]
    fn unbounded_watchdog_never_expires() {
        let mut wd = Watchdog::unbounded();
        assert!(!wd.expired(u64::MAX));
        assert!(!wd.check_wall_now());
        assert_eq!(wd.clamp_slice(1_000_000), 1_000_000);
    }

    #[test]
    fn armed_watchdog_clamps_slices() {
        let wd = Watchdog::start(
            &WatchdogBudget {
                max_cycles: Some(1),
                max_wall_ms: None,
            },
            0,
        );
        assert_eq!(wd.clamp_slice(1_000_000), WATCHDOG_SLICE);
        assert_eq!(wd.clamp_slice(10), 10);
    }

    #[test]
    fn failure_display_names_the_experiment() {
        let f = ExperimentFailure {
            index: 3,
            name: "c1/exp00003".into(),
            attempts: 2,
            error: "target system error: dead".into(),
        };
        let s = f.to_string();
        assert!(s.contains("c1/exp00003"));
        assert!(s.contains("2 attempt(s)"));
    }
}
