//! Pre-injection (liveness) analysis — the §4 efficiency extension.
//!
//! "The purpose of this analysis is to determine when registers and other
//! fault injection locations hold live data. Injecting a fault into a
//! location that does not hold live data serves no purpose, since the fault
//! will be overwritten." This module builds a per-location access timeline
//! from a traced reference run and prunes experiments whose (location, time)
//! pair is provably non-effective.

use crate::campaign::Campaign;
use crate::fault::{FaultLocation, FaultSpec};
use crate::target::{RunEvent, TargetAccess};
use crate::trigger::Trigger;
use crate::Result;
use std::collections::BTreeMap;

/// The architectural locations one instruction read and wrote, keyed by
/// [`location_key`]-format strings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepAccess {
    /// Locations read by the instruction.
    pub reads: Vec<String>,
    /// Locations written by the instruction.
    pub writes: Vec<String>,
}

/// The canonical liveness key of a fault location: bit indexes are dropped
/// (liveness is tracked per cell/word).
pub fn location_key(loc: &FaultLocation) -> String {
    match loc {
        FaultLocation::ScanCell { chain, cell, .. } => format!("{chain}:{cell}"),
        FaultLocation::Memory { addr, .. } => format!("mem:{addr}"),
    }
}

/// Liveness verdict for a (location, time) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// The next access after the injection time is a read: the fault can
    /// propagate.
    Live,
    /// The next access is a write: the fault is guaranteed overwritten.
    Dead,
    /// The location is never accessed again: the fault can only become a
    /// latent error.
    NeverUsed,
    /// The location is not covered by the trace (e.g. cache or pipeline
    /// state): unknown, treated as live.
    Unknown,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Access {
    Read,
    Write,
}

/// Per-location access timelines derived from a reference trace.
#[derive(Debug, Clone, Default)]
pub struct LivenessMap {
    timelines: BTreeMap<String, Vec<(u64, Access)>>,
    trace_len: u64,
}

impl LivenessMap {
    /// Builds the map from per-instruction access records; index `i` of the
    /// slice is instruction time `i`.
    pub fn from_trace(trace: &[StepAccess]) -> Self {
        let mut timelines: BTreeMap<String, Vec<(u64, Access)>> = BTreeMap::new();
        for (t, step) in trace.iter().enumerate() {
            // Reads precede writes within one instruction.
            for r in &step.reads {
                timelines
                    .entry(r.clone())
                    .or_default()
                    .push((t as u64, Access::Read));
            }
            for w in &step.writes {
                timelines
                    .entry(w.clone())
                    .or_default()
                    .push((t as u64, Access::Write));
            }
        }
        LivenessMap {
            timelines,
            trace_len: trace.len() as u64,
        }
    }

    /// Number of instructions in the underlying trace.
    pub fn trace_len(&self) -> u64 {
        self.trace_len
    }

    /// Locations with at least one recorded access.
    pub fn location_count(&self) -> usize {
        self.timelines.len()
    }

    /// Verdict for injecting into `key` after `time` instructions have
    /// retired (i.e. the fault lands before instruction `time` executes).
    pub fn liveness(&self, key: &str, time: u64) -> Liveness {
        let Some(timeline) = self.timelines.get(key) else {
            return Liveness::Unknown;
        };
        match timeline.iter().find(|(t, _)| *t >= time) {
            Some((_, Access::Read)) => Liveness::Live,
            Some((_, Access::Write)) => Liveness::Dead,
            None => Liveness::NeverUsed,
        }
    }

    /// Verdict for a whole fault spec: `Live`/`Unknown` if *any* location
    /// can propagate.
    pub fn spec_liveness(&self, spec: &FaultSpec) -> Liveness {
        let time = match spec.trigger {
            Trigger::AfterInstructions(n) => n,
            Trigger::PreRuntime => 0,
            // Event triggers fire at times the static analysis does not
            // model; treat as unknown.
            _ => return Liveness::Unknown,
        };
        let mut verdict = Liveness::Dead;
        for loc in &spec.locations {
            match self.liveness(&location_key(loc), time) {
                Liveness::Live => return Liveness::Live,
                Liveness::Unknown => verdict = Liveness::Unknown,
                Liveness::NeverUsed if verdict == Liveness::Dead => {
                    verdict = Liveness::NeverUsed;
                }
                _ => {}
            }
        }
        verdict
    }
}

/// Collects a traced reference run: init, load, then step with access
/// logging until the workload terminates or `max_steps` is reached.
///
/// Control-loop workloads exchange environment data at every iteration
/// boundary, exactly as the campaign runs will — the liveness map must be
/// built from the *same trajectory* the experiments follow, or pruning
/// would be unsound. Pass [`envsim::NullEnvironment`] for terminating
/// workloads.
///
/// # Errors
///
/// Propagates target errors; targets without trace support fail with
/// `Unimplemented("step_traced")`, which callers treat as "analysis
/// unavailable".
pub fn collect_trace<T: TargetAccess + ?Sized>(
    target: &mut T,
    campaign: &Campaign,
    max_steps: u64,
    env: &mut dyn envsim::Environment,
) -> Result<Vec<StepAccess>> {
    target.init_test_card()?;
    target.load_workload(&campaign.workload)?;
    env.reset();
    target.write_input_ports(&campaign.initial_inputs)?;
    let mut trace = Vec::new();
    for _ in 0..max_steps {
        let (event, access) = target.step_traced()?;
        trace.push(access);
        match event {
            None => {}
            Some(RunEvent::IterationBoundary { iteration }) => {
                if campaign
                    .termination
                    .max_iterations
                    .is_some_and(|max| iteration >= max)
                {
                    break;
                }
                let outputs = target.read_output_ports()?;
                let inputs = env.exchange(&outputs);
                target.write_input_ports(&inputs)?;
            }
            Some(_) => break,
        }
    }
    Ok(trace)
}

/// Splits a campaign into (kept, pruned) according to the liveness map.
///
/// Experiments whose verdict is [`Liveness::Dead`] — and, when
/// `prune_never_used` is set, [`Liveness::NeverUsed`] — are pruned;
/// everything else is kept. The paper's optimisation goal is exactly this:
/// skip injections that are certain to be overwritten.
pub fn filter_campaign(
    campaign: &Campaign,
    map: &LivenessMap,
    prune_never_used: bool,
) -> (Campaign, Vec<FaultSpec>) {
    let mut kept = Vec::new();
    let mut pruned = Vec::new();
    for spec in &campaign.faults {
        let verdict = map.spec_liveness(spec);
        let prune =
            verdict == Liveness::Dead || (prune_never_used && verdict == Liveness::NeverUsed);
        if prune {
            pruned.push(spec.clone());
        } else {
            kept.push(spec.clone());
        }
    }
    let mut filtered = campaign.clone();
    filtered.faults = kept;
    (filtered, pruned)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(reads: &[&str], writes: &[&str]) -> StepAccess {
        StepAccess {
            reads: reads.iter().map(|s| s.to_string()).collect(),
            writes: writes.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn map() -> LivenessMap {
        // t0: write R1; t1: read R1, write R2; t2: read R2; t3: write R1
        LivenessMap::from_trace(&[
            step(&[], &["internal:R1"]),
            step(&["internal:R1"], &["internal:R2"]),
            step(&["internal:R2"], &[]),
            step(&[], &["internal:R1"]),
        ])
    }

    #[test]
    fn live_when_next_access_is_read() {
        let m = map();
        assert_eq!(m.liveness("internal:R1", 1), Liveness::Live);
        assert_eq!(m.liveness("internal:R2", 2), Liveness::Live);
    }

    #[test]
    fn dead_when_next_access_is_write() {
        let m = map();
        // After t1, R1's next access is the write at t3.
        assert_eq!(m.liveness("internal:R1", 2), Liveness::Dead);
        assert_eq!(m.liveness("internal:R1", 0), Liveness::Dead);
    }

    #[test]
    fn never_used_and_unknown() {
        let m = map();
        assert_eq!(m.liveness("internal:R2", 3), Liveness::NeverUsed);
        assert_eq!(m.liveness("icache:L0.DATA", 0), Liveness::Unknown);
    }

    #[test]
    fn read_precedes_write_within_instruction() {
        // Instruction both reads and writes R1 (e.g. addi r1, r1, 1):
        // injecting right before it must be Live.
        let m = LivenessMap::from_trace(&[step(&["internal:R1"], &["internal:R1"])]);
        assert_eq!(m.liveness("internal:R1", 0), Liveness::Live);
    }

    #[test]
    fn spec_liveness_any_live_wins() {
        let m = map();
        let spec = FaultSpec {
            locations: vec![
                FaultLocation::ScanCell {
                    chain: "internal".into(),
                    cell: "R1".into(),
                    bit: 0,
                },
                FaultLocation::ScanCell {
                    chain: "internal".into(),
                    cell: "R2".into(),
                    bit: 0,
                },
            ],
            model: crate::fault::FaultModel::TransientBitFlip,
            trigger: Trigger::AfterInstructions(2),
        };
        // R1 dead at t2, but R2 live at t2.
        assert_eq!(m.spec_liveness(&spec), Liveness::Live);
    }

    #[test]
    fn event_triggers_are_unknown() {
        let m = map();
        let spec = FaultSpec::single(
            FaultLocation::ScanCell {
                chain: "internal".into(),
                cell: "R1".into(),
                bit: 0,
            },
            Trigger::BranchExecuted,
        );
        assert_eq!(m.spec_liveness(&spec), Liveness::Unknown);
    }

    #[test]
    fn location_keys_drop_bits() {
        assert_eq!(
            location_key(&FaultLocation::ScanCell {
                chain: "internal".into(),
                cell: "R7".into(),
                bit: 31
            }),
            "internal:R7"
        );
        assert_eq!(
            location_key(&FaultLocation::Memory { addr: 100, bit: 5 }),
            "mem:100"
        );
    }
}
