//! Parallel campaign execution.
//!
//! Fault-injection experiments are independent: each one reloads the
//! workload and resets the target, so a campaign shards perfectly across
//! worker threads, each owning a private target instance (a simulator
//! affords as many "test cards" as there are cores — the one place this
//! reproduction can go beyond the paper's single-target hardware setup).
//! Results are identical to the serial runner's, which the integration
//! tests assert.

use crate::algorithms::{self, CampaignResult};
use crate::campaign::Campaign;
use crate::logging::ExperimentRecord;
use crate::monitor::ProgressMonitor;
use crate::target::TargetAccess;
use crate::{GoofiError, Result};
use envsim::Environment;

/// Runs a campaign across `workers` threads.
///
/// `make_target` builds one target per worker; `make_env` (optional) builds
/// one environment simulator per worker. Records come back in experiment
/// order, preceded by the reference run — byte-for-byte what the serial
/// [`algorithms::run_campaign`] produces.
///
/// # Errors
///
/// The first worker error is returned; [`GoofiError::Stopped`] when the
/// monitor ends the campaign early.
pub fn run_campaign_parallel<T, FT, FE>(
    make_target: FT,
    make_env: Option<FE>,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    workers: usize,
) -> Result<CampaignResult>
where
    T: TargetAccess,
    FT: Fn() -> T + Sync,
    FE: Fn() -> Box<dyn Environment> + Sync,
{
    if workers == 0 {
        return Err(GoofiError::Config("worker count must be at least 1".into()));
    }
    campaign.validate()?;

    // Reference run on a dedicated target.
    let mut ref_target = make_target();
    let mut ref_env: Box<dyn Environment> = match &make_env {
        Some(f) => f(),
        None => Box::new(envsim::NullEnvironment),
    };
    let reference =
        algorithms::make_reference_run(&mut ref_target, campaign, ref_env.as_mut())?;

    let n = campaign.faults.len();
    let workers = workers.min(n.max(1));
    let mut slots: Vec<Option<Result<ExperimentRecord>>> = Vec::new();
    slots.resize_with(n, || None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slot_cells: Vec<parking_lot::Mutex<Option<Result<ExperimentRecord>>>> =
        slots.into_iter().map(parking_lot::Mutex::new).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let mut target = make_target();
                let mut env: Box<dyn Environment> = match &make_env {
                    Some(f) => f(),
                    None => Box::new(envsim::NullEnvironment),
                };
                loop {
                    if monitor.checkpoint().is_err() {
                        return;
                    }
                    let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if index >= n {
                        return;
                    }
                    let result =
                        algorithms::run_experiment(&mut target, campaign, index, env.as_mut());
                    if let Ok(record) = &result {
                        monitor.record(&record.termination);
                    }
                    let failed = result.is_err();
                    *slot_cells[index].lock() = Some(result);
                    if failed {
                        // Let other workers finish their current item, but
                        // claim no more work.
                        monitor.stop();
                        return;
                    }
                }
            });
        }
    })
    .expect("campaign worker panicked");

    if monitor.is_stopped() {
        // Distinguish user stop from worker failure: surface the first
        // worker error if any.
        for cell in &slot_cells {
            if let Some(Err(_)) = &*cell.lock() {
                let err = cell.lock().take().expect("checked Some");
                return Err(err.expect_err("checked Err"));
            }
        }
        return Err(GoofiError::Stopped);
    }

    let mut records = Vec::with_capacity(n);
    for cell in slot_cells {
        match cell.into_inner() {
            Some(Ok(record)) => records.push(record),
            Some(Err(e)) => return Err(e),
            None => return Err(GoofiError::Stopped),
        }
    }
    Ok(CampaignResult { reference, records })
}
