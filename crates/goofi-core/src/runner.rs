//! Parallel campaign execution, with crash-safe journaling and resume.
//!
//! Fault-injection experiments are independent: each one reloads the
//! workload and resets the target, so a campaign shards perfectly across
//! worker threads, each owning a private target instance (a simulator
//! affords as many "test cards" as there are cores — the one place this
//! reproduction can go beyond the paper's single-target hardware setup).
//! Results are identical to the serial runner's, which the integration
//! tests assert.
//!
//! Resilience guarantees of this module:
//!
//! - A failing experiment never discards completed records: the error is
//!   [`GoofiError::ExperimentFailed`] carrying the partial
//!   [`CampaignResult`], and when several workers fail concurrently the
//!   *lowest-index* failure is reported, deterministically.
//! - With a journal attached, every finished experiment is fsynced to an
//!   append-only log before the campaign moves on, and
//!   [`resume_campaign`] restarts an interrupted campaign by re-running
//!   only what is missing — previously *failed* experiments are re-run as
//!   new experiments linked to the original via `parentExperiment`
//!   (paper §2.3).

use crate::algorithms::{self, CampaignResult};
use crate::campaign::Campaign;
use crate::journal::ExperimentJournal;
use crate::logging::{ExperimentRecord, Validity};
use crate::monitor::ProgressMonitor;
use crate::policy::ExperimentFailure;
use crate::target::TargetAccess;
use crate::{GoofiError, Result};
use envsim::Environment;
use std::collections::BTreeMap;
use std::path::Path;

/// One unit of parallel work: a campaign experiment index plus, for
/// re-runs of previously failed experiments, the `(name, parent)` link of
/// the record to produce.
#[derive(Debug, Clone)]
struct WorkItem {
    index: usize,
    link: Option<(String, String)>,
}

/// What one worker left in a work item's slot.
enum Outcome {
    Completed(ExperimentRecord),
    /// Failed, policy says continue.
    Skipped(ExperimentFailure),
    /// Failed, policy says abort the campaign.
    Fatal(ExperimentFailure),
    /// Infrastructure error (journal I/O), aborts the campaign.
    Error(GoofiError),
}

/// Runs a campaign across `workers` threads.
///
/// `make_target` builds one target per worker; `make_env` (optional) builds
/// one environment simulator per worker. Records come back in experiment
/// order, preceded by the reference run — byte-for-byte what the serial
/// [`algorithms::run_campaign`] produces.
///
/// # Errors
///
/// [`GoofiError::Stopped`] when the monitor ends the campaign early;
/// [`GoofiError::ExperimentFailed`] (lowest failing index, completed
/// records preserved) when an experiment fails and the campaign's
/// [`ExperimentPolicy`](crate::policy::ExperimentPolicy) aborts on
/// failure.
pub fn run_campaign_parallel<T, FT, FE>(
    make_target: FT,
    make_env: Option<FE>,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    workers: usize,
) -> Result<CampaignResult>
where
    T: TargetAccess,
    FT: Fn() -> T + Sync,
    FE: Fn() -> Box<dyn Environment> + Sync,
{
    run_campaign_parallel_journaled(make_target, make_env, campaign, monitor, workers, None)
}

/// [`run_campaign_parallel`] with an optional crash-safe journal: the
/// reference run and every finished experiment are appended (and synced)
/// as they complete, so a crash loses at most the experiments in flight.
///
/// # Errors
///
/// As [`run_campaign_parallel`], plus journal I/O errors.
pub fn run_campaign_parallel_journaled<T, FT, FE>(
    make_target: FT,
    make_env: Option<FE>,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    workers: usize,
    journal: Option<&mut ExperimentJournal>,
) -> Result<CampaignResult>
where
    T: TargetAccess,
    FT: Fn() -> T + Sync,
    FE: Fn() -> Box<dyn Environment> + Sync,
{
    if workers == 0 {
        return Err(GoofiError::Config("worker count must be at least 1".into()));
    }
    campaign.validate()?;

    // Reference run on a dedicated target.
    let mut ref_target = make_target();
    let mut ref_env: Box<dyn Environment> = match &make_env {
        Some(f) => f(),
        None => Box::new(envsim::NullEnvironment),
    };
    let reference = algorithms::make_reference_run(&mut ref_target, campaign, ref_env.as_mut())?;
    // Workers share the journal through a mutex.
    let journal = journal.map(parking_lot::Mutex::new);
    if let Some(j) = &journal {
        j.lock().append_record(None, &reference)?;
    }

    let items: Vec<WorkItem> = (0..campaign.faults.len())
        .map(|index| WorkItem { index, link: None })
        .collect();
    execute_items(
        &make_target,
        &make_env,
        campaign,
        monitor,
        workers,
        &items,
        &BTreeMap::new(),
        reference,
        journal.as_ref(),
    )
}

/// Resumes (or starts) a journaled campaign.
///
/// When `journal_path` does not exist yet, this is exactly
/// [`run_campaign_parallel_journaled`] with a fresh journal. Otherwise the
/// journal is loaded and the campaign completed: journaled experiments are
/// skipped (their records are reused verbatim), missing experiments run
/// normally, and journaled *failures* are re-run as new experiments named
/// `<original>/rerun<k>` with `parentExperiment` linking them to the
/// original experiment — the paper's §2.3 re-run tracking. An uninterrupted
/// run and a crash-then-resume run of the same campaign produce identical
/// [`CampaignResult`]s (absent failures).
///
/// # Errors
///
/// As [`run_campaign_parallel`], plus journal I/O and header-mismatch
/// errors.
pub fn resume_campaign<T, FT, FE>(
    make_target: FT,
    make_env: Option<FE>,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    workers: usize,
    journal_path: impl AsRef<Path>,
) -> Result<CampaignResult>
where
    T: TargetAccess,
    FT: Fn() -> T + Sync,
    FE: Fn() -> Box<dyn Environment> + Sync,
{
    let path = journal_path.as_ref();
    if !path.exists() {
        let mut journal = ExperimentJournal::create(path, &campaign.name)?;
        return run_campaign_parallel_journaled(
            make_target,
            make_env,
            campaign,
            monitor,
            workers,
            Some(&mut journal),
        );
    }
    if workers == 0 {
        return Err(GoofiError::Config("worker count must be at least 1".into()));
    }
    campaign.validate()?;
    let state = ExperimentJournal::load(path, &campaign.name)?;
    let mut journal_file = ExperimentJournal::open_append(path)?;
    let journal = parking_lot::Mutex::new(&mut journal_file);

    // Reuse the journaled reference run, or make (and journal) one now.
    let reference = match state.reference {
        Some(reference) => reference,
        None => {
            let mut ref_target = make_target();
            let mut ref_env: Box<dyn Environment> = match &make_env {
                Some(f) => f(),
                None => Box::new(envsim::NullEnvironment),
            };
            let reference =
                algorithms::make_reference_run(&mut ref_target, campaign, ref_env.as_mut())?;
            journal.lock().append_record(None, &reference)?;
            reference
        }
    };

    // Journaled completions count as progress without re-running.
    for record in state.completed.values() {
        monitor.record(&record.termination);
    }

    let items: Vec<WorkItem> = (0..campaign.faults.len())
        .filter(|index| !state.completed.contains_key(index))
        .map(|index| {
            let link = state.failed.get(&index).map(|_| {
                let original = campaign.experiment_name(index);
                let round = state.failed_rounds.get(&index).copied().unwrap_or(1);
                (format!("{original}/rerun{round}"), original)
            });
            WorkItem { index, link }
        })
        .collect();

    execute_items(
        &make_target,
        &make_env,
        campaign,
        monitor,
        workers,
        &items,
        &state.completed,
        reference,
        Some(&journal),
    )
}

/// Shared parallel executor: runs `items` across `workers` threads,
/// merges the outcomes with `preloaded` records (from a resumed journal)
/// and assembles the campaign result.
#[allow(clippy::too_many_arguments)]
fn execute_items<T, FT, FE>(
    make_target: &FT,
    make_env: &Option<FE>,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    workers: usize,
    items: &[WorkItem],
    preloaded: &BTreeMap<usize, ExperimentRecord>,
    reference: ExperimentRecord,
    journal: Option<&parking_lot::Mutex<&mut ExperimentJournal>>,
) -> Result<CampaignResult>
where
    T: TargetAccess,
    FT: Fn() -> T + Sync,
    FE: Fn() -> Box<dyn Environment> + Sync,
{
    let workers = workers.min(items.len().max(1));
    let mut slots: Vec<parking_lot::Mutex<Option<Outcome>>> = Vec::new();
    slots.resize_with(items.len(), || parking_lot::Mutex::new(None));
    let next = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let mut target = make_target();
                let mut env: Box<dyn Environment> = match make_env {
                    Some(f) => f(),
                    None => Box::new(envsim::NullEnvironment),
                };
                loop {
                    if monitor.checkpoint().is_err() {
                        return;
                    }
                    let slot = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(item) = items.get(slot) else { return };
                    let outcome = match algorithms::run_linked_experiment_with_policy(
                        &mut target,
                        campaign,
                        item.index,
                        item.link.clone(),
                        monitor,
                        env.as_mut(),
                    ) {
                        Ok(Ok(record)) => {
                            monitor.record(&record.termination);
                            match journal
                                .map(|j| j.lock().append_record(Some(item.index), &record))
                                .unwrap_or(Ok(()))
                            {
                                Ok(()) => Outcome::Completed(record),
                                Err(e) => Outcome::Error(e),
                            }
                        }
                        Ok(Err(failure)) => {
                            monitor.record_failed();
                            match journal
                                .map(|j| j.lock().append_failure(&failure))
                                .unwrap_or(Ok(()))
                            {
                                Ok(()) if campaign.policy.fails_campaign() => {
                                    Outcome::Fatal(failure)
                                }
                                Ok(()) => Outcome::Skipped(failure),
                                Err(e) => Outcome::Error(e),
                            }
                        }
                        // User stop mid-experiment: claim no more work.
                        Err(_) => return,
                    };
                    let abort = matches!(outcome, Outcome::Fatal(_) | Outcome::Error(_));
                    *slots[slot].lock() = Some(outcome);
                    if abort {
                        // Let other workers finish their current item, but
                        // claim no more work.
                        monitor.stop();
                        return;
                    }
                }
            });
        }
    })
    .expect("campaign worker panicked");

    // Assemble in campaign-index order. `items` is index-sorted, so the
    // first Fatal/Error outcome is the lowest-index one — the error
    // reported is deterministic no matter which worker failed first.
    let mut completed: BTreeMap<usize, ExperimentRecord> = preloaded.clone();
    let mut failures: Vec<ExperimentFailure> = Vec::new();
    let mut first_abort: Option<Outcome> = None;
    let mut fresh: Vec<usize> = Vec::new();
    for (item, cell) in items.iter().zip(slots) {
        match cell.into_inner() {
            Some(Outcome::Completed(record)) => {
                completed.insert(item.index, record);
                fresh.push(item.index);
            }
            Some(Outcome::Skipped(failure)) => failures.push(failure),
            Some(outcome @ (Outcome::Fatal(_) | Outcome::Error(_))) => {
                if first_abort.is_none() {
                    first_abort = Some(outcome);
                }
            }
            // Unclaimed slot: the campaign stopped before this item ran.
            None => {}
        }
    }

    // End-of-run golden revalidation. The serial runner revalidates every
    // `revalidate_every` experiments; with workers interleaving, the
    // parallel runner makes one coarser check after the fan-in: re-run the
    // fault-free reference and, on drift, quarantine every experiment
    // completed *this run* (preloaded journal records were validated by the
    // run that produced them) and re-run each as a `parentExperiment`-linked
    // rerun on a fresh target.
    let mut quarantined: Vec<ExperimentRecord> = Vec::new();
    let revalidate = campaign.policy.revalidate_every.is_some_and(|n| n > 0);
    if revalidate && first_abort.is_none() && !monitor.is_stopped() && !fresh.is_empty() {
        let mut target = make_target();
        let mut env: Box<dyn Environment> = match make_env {
            Some(f) => f(),
            None => Box::new(envsim::NullEnvironment),
        };
        let golden = algorithms::make_reference_run(&mut target, campaign, env.as_mut())?;
        if !algorithms::golden_run_matches(&reference, &golden) {
            // Mark-first across the whole batch: every quarantine entry
            // reaches the journal before any rerun starts, so a crash at
            // any later point still reruns all suspects on resume.
            for &index in &fresh {
                let slot = completed.get_mut(&index).expect("fresh index is completed");
                slot.validity = Validity::Invalid;
                if let Some(j) = journal {
                    j.lock().append_record(Some(index), slot)?;
                }
                monitor.record_quarantined();
            }
            for index in fresh {
                let original = completed[&index].name.clone();
                let link = Some((format!("{original}/rerun1"), original));
                match algorithms::run_linked_experiment_with_policy(
                    &mut target,
                    campaign,
                    index,
                    link,
                    monitor,
                    env.as_mut(),
                ) {
                    // Reruns replace the quarantined record; they are not
                    // re-counted as completed progress (the original was).
                    Ok(Ok(rerun)) => {
                        if let Some(j) = journal {
                            j.lock().append_record(Some(index), &rerun)?;
                        }
                        let slot = completed.get_mut(&index).expect("fresh index is completed");
                        quarantined.push(std::mem::replace(slot, rerun));
                    }
                    Ok(Err(failure)) => {
                        if let Some(j) = journal {
                            j.lock().append_failure(&failure)?;
                        }
                        if campaign.policy.fails_campaign() {
                            first_abort = Some(Outcome::Fatal(failure));
                            break;
                        }
                        failures.push(failure);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }

    failures.sort_by_key(|f| f.index);
    let partial = CampaignResult {
        reference,
        records: completed.into_values().collect(),
        failures,
        quarantined,
    };
    match first_abort {
        Some(Outcome::Fatal(failure)) => Err(GoofiError::ExperimentFailed {
            failure,
            partial: Box::new(partial),
        }),
        Some(Outcome::Error(e)) => Err(e),
        _ if monitor.is_stopped() => Err(GoofiError::Stopped),
        _ if partial.records.len() + partial.failures.len() < preloaded.len() + items.len() => {
            // Unclaimed slots without a stop request should be impossible;
            // report rather than fabricate a partial result silently.
            Err(GoofiError::Stopped)
        }
        _ => Ok(partial),
    }
}
