//! Parallel campaign execution, with crash-safe journaling and resume.
//!
//! Fault-injection experiments are independent: each one reloads the
//! workload and resets the target, so a campaign shards perfectly across
//! worker threads, each owning a private target instance (a simulator
//! affords as many "test cards" as there are cores — the one place this
//! reproduction can go beyond the paper's single-target hardware setup).
//! Results are identical to the serial runner's, which the integration
//! tests assert.
//!
//! Resilience guarantees of this module:
//!
//! - A failing experiment never discards completed records: the error is
//!   [`GoofiError::ExperimentFailed`] carrying the partial
//!   [`CampaignResult`], and when several workers fail concurrently the
//!   *lowest-index* failure is reported, deterministically.
//! - With a journal attached, every finished experiment is fsynced to an
//!   append-only log before the campaign moves on, and
//!   [`resume_campaign`] restarts an interrupted campaign by re-running
//!   only what is missing — previously *failed* experiments are re-run as
//!   new experiments linked to the original via `parentExperiment`
//!   (paper §2.3).
//! - With supervision enabled (see [`crate::supervisor`]), each worker
//!   health-probes its own target, confirms watchdog timeouts as real
//!   hangs, and climbs the recovery ladder. A worker whose target
//!   escalates to offline *retires*: its in-flight experiment goes back on
//!   the queue for the surviving workers and the campaign degrades
//!   gracefully instead of failing — it only errors with
//!   [`GoofiError::TargetOffline`] when every worker's target has died.

use crate::algorithms::{self, CampaignResult, ExperimentSession};
use crate::campaign::Campaign;
use crate::golden::GoldenCache;
use crate::journal::ExperimentJournal;
use crate::logging::{ExperimentRecord, TerminationCause, Validity};
use crate::monitor::ProgressMonitor;
use crate::policy::ExperimentFailure;
use crate::supervisor::{RecoveryRecord, RecoveryTrigger, Supervisor};
use crate::target::TargetAccess;
use crate::telemetry::{Metric, Stage};
use crate::{GoofiError, Result};
use envsim::Environment;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One unit of parallel work: a campaign experiment index plus, for
/// re-runs of previously failed experiments, the `(name, parent)` link of
/// the record to produce.
#[derive(Debug, Clone)]
struct WorkItem {
    index: usize,
    link: Option<(String, String)>,
}

/// What one worker left in a work item's slot.
enum Outcome {
    Completed(ExperimentRecord),
    /// Failed, policy says continue.
    Skipped(ExperimentFailure),
    /// Failed, policy says abort the campaign.
    Fatal(ExperimentFailure),
    /// Infrastructure error (journal I/O), aborts the campaign.
    Error(GoofiError),
}

/// Runs a campaign across `workers` threads.
///
/// `make_target` builds one target per worker; `make_env` (optional) builds
/// one environment simulator per worker. Records come back in experiment
/// order, preceded by the reference run — byte-for-byte what the serial
/// [`algorithms::run_campaign`] produces.
///
/// # Errors
///
/// [`GoofiError::Stopped`] when the monitor ends the campaign early;
/// [`GoofiError::ExperimentFailed`] (lowest failing index, completed
/// records preserved) when an experiment fails and the campaign's
/// [`ExperimentPolicy`](crate::policy::ExperimentPolicy) aborts on
/// failure.
pub fn run_campaign_parallel<T, FT, FE>(
    make_target: FT,
    make_env: Option<FE>,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    workers: usize,
) -> Result<CampaignResult>
where
    T: TargetAccess,
    FT: Fn() -> T + Sync,
    FE: Fn() -> Box<dyn Environment> + Sync,
{
    run_campaign_parallel_journaled(make_target, make_env, campaign, monitor, workers, None)
}

/// [`run_campaign_parallel`] with an optional crash-safe journal: the
/// reference run and every finished experiment are appended (and synced)
/// as they complete, so a crash loses at most the experiments in flight.
///
/// # Errors
///
/// As [`run_campaign_parallel`], plus journal I/O errors.
pub fn run_campaign_parallel_journaled<T, FT, FE>(
    make_target: FT,
    make_env: Option<FE>,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    workers: usize,
    journal: Option<&mut ExperimentJournal>,
) -> Result<CampaignResult>
where
    T: TargetAccess,
    FT: Fn() -> T + Sync,
    FE: Fn() -> Box<dyn Environment> + Sync,
{
    run_campaign_parallel_journaled_opts(
        make_target,
        make_env,
        campaign,
        monitor,
        workers,
        journal,
        true,
    )
}

/// [`run_campaign_parallel_journaled`] with the snapshot/restore hot path
/// made explicit: `snapshots: false` forces every worker onto the slow
/// load-and-execute path (benchmark baselines, equivalence testing, or a
/// safety valve for a misbehaving target snapshot implementation).
///
/// # Errors
///
/// As [`run_campaign_parallel_journaled`].
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_parallel_journaled_opts<T, FT, FE>(
    make_target: FT,
    make_env: Option<FE>,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    workers: usize,
    journal: Option<&mut ExperimentJournal>,
    snapshots: bool,
) -> Result<CampaignResult>
where
    T: TargetAccess,
    FT: Fn() -> T + Sync,
    FE: Fn() -> Box<dyn Environment> + Sync,
{
    if workers == 0 {
        return Err(GoofiError::Config("worker count must be at least 1".into()));
    }
    campaign.validate()?;
    let tel = monitor.telemetry().clone();
    let _campaign_span = tel.campaign_span(&campaign.name);

    // Reference run on a dedicated target.
    let mut ref_target = make_target();
    let mut ref_env: Box<dyn Environment> = match &make_env {
        Some(f) => f(),
        None => Box::new(envsim::NullEnvironment),
    };
    let reference =
        algorithms::reference_run_traced(&mut ref_target, campaign, ref_env.as_mut(), &tel)?;
    // Workers share the journal through a mutex.
    let journal = journal.map(parking_lot::Mutex::new);
    if let Some(j) = &journal {
        tel.time(Stage::DbWrite, || j.lock().append_record(None, &reference))?;
    }

    let items: Vec<WorkItem> = (0..campaign.faults.len())
        .map(|index| WorkItem { index, link: None })
        .collect();
    execute_items(
        &make_target,
        &make_env,
        campaign,
        monitor,
        workers,
        &items,
        &BTreeMap::new(),
        reference,
        journal.as_ref(),
        snapshots,
    )
}

/// Resumes (or starts) a journaled campaign.
///
/// When `journal_path` does not exist yet, this is exactly
/// [`run_campaign_parallel_journaled`] with a fresh journal. Otherwise the
/// journal is loaded and the campaign completed: journaled experiments are
/// skipped (their records are reused verbatim), missing experiments run
/// normally, and journaled *failures* are re-run as new experiments named
/// `<original>/rerun<k>` with `parentExperiment` linking them to the
/// original experiment — the paper's §2.3 re-run tracking. An uninterrupted
/// run and a crash-then-resume run of the same campaign produce identical
/// [`CampaignResult`]s (absent failures).
///
/// # Errors
///
/// As [`run_campaign_parallel`], plus journal I/O and header-mismatch
/// errors.
pub fn resume_campaign<T, FT, FE>(
    make_target: FT,
    make_env: Option<FE>,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    workers: usize,
    journal_path: impl AsRef<Path>,
) -> Result<CampaignResult>
where
    T: TargetAccess,
    FT: Fn() -> T + Sync,
    FE: Fn() -> Box<dyn Environment> + Sync,
{
    let total = campaign.faults.len();
    resume_campaign_shard(
        make_target,
        make_env,
        campaign,
        monitor,
        workers,
        journal_path,
        0..total,
    )
}

/// [`resume_campaign`], restricted to the experiment indices in `range` —
/// the campaign-service shard primitive. A shard worker owns one contiguous
/// slice of the campaign's experiment index space and one private journal;
/// everything else (journaled experiments reused, failures re-run as
/// `parentExperiment`-linked children, crash-then-resume equivalence) works
/// exactly as in [`resume_campaign`]. Journal entries keep their *global*
/// campaign indices, so the scheduler can merge shard journals into one
/// database with simple per-experiment idempotence.
///
/// # Errors
///
/// As [`resume_campaign`].
pub fn resume_campaign_shard<T, FT, FE>(
    make_target: FT,
    make_env: Option<FE>,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    workers: usize,
    journal_path: impl AsRef<Path>,
    range: std::ops::Range<usize>,
) -> Result<CampaignResult>
where
    T: TargetAccess,
    FT: Fn() -> T + Sync,
    FE: Fn() -> Box<dyn Environment> + Sync,
{
    resume_campaign_shard_vfs(
        make_target,
        make_env,
        campaign,
        monitor,
        workers,
        &crate::vfs::RealFs,
        journal_path,
        range,
    )
}

/// [`resume_campaign_shard`] over an explicit [`crate::vfs::Vfs`] — the
/// seam the durability torture harness injects faults through.
///
/// # Errors
///
/// As [`resume_campaign`].
#[allow(clippy::too_many_arguments)]
pub fn resume_campaign_shard_vfs<T, FT, FE>(
    make_target: FT,
    make_env: Option<FE>,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    workers: usize,
    vfs: &dyn crate::vfs::Vfs,
    journal_path: impl AsRef<Path>,
    range: std::ops::Range<usize>,
) -> Result<CampaignResult>
where
    T: TargetAccess,
    FT: Fn() -> T + Sync,
    FE: Fn() -> Box<dyn Environment> + Sync,
{
    let path = journal_path.as_ref();
    if workers == 0 {
        return Err(GoofiError::Config("worker count must be at least 1".into()));
    }
    campaign.validate()?;
    let total = campaign.faults.len();
    let range = range.start.min(total)..range.end.min(total);
    let tel = monitor.telemetry().clone();
    let _campaign_span = tel.campaign_span(&campaign.name);
    if !vfs.exists(path) {
        ExperimentJournal::create_with(vfs, path, &campaign.name)?;
    } else {
        // Auto-fsck before appending: a crash can leave a torn or garbled
        // line mid-file, and anything appended after it would be invisible
        // to every later load. Salvage rewrites the journal down to its
        // valid entries; a file that is not recognisably a journal is
        // quarantined aside and a fresh journal started.
        crate::journal::salvage_with(vfs, path)?;
        if !vfs.exists(path) {
            ExperimentJournal::create_with(vfs, path, &campaign.name)?;
        }
    }
    let state = ExperimentJournal::load_with(vfs, path, &campaign.name)?;
    let mut journal_file = ExperimentJournal::open_append_with(vfs, path)?;
    let journal = parking_lot::Mutex::new(&mut journal_file);

    // Reuse the journaled reference run, the golden cache's copy from an
    // earlier run over the same configuration, or make (and journal) one
    // now. A resumed shard whose journal already holds the reference never
    // consults the cache — the journal is the more authoritative source.
    let reference = match state.reference {
        Some(reference) => reference,
        None => {
            let mut ref_env: Box<dyn Environment> = match &make_env {
                Some(f) => f(),
                None => Box::new(envsim::NullEnvironment),
            };
            let cache = GoldenCache::new(vfs, path, campaign, ref_env.name());
            let reference = match cache.load(campaign) {
                Some(cached) => {
                    tel.count(Metric::GoldenCacheHits, 1);
                    cached
                }
                None => {
                    tel.count(Metric::GoldenCacheMisses, 1);
                    let mut ref_target = make_target();
                    let fresh = algorithms::reference_run_traced(
                        &mut ref_target,
                        campaign,
                        ref_env.as_mut(),
                        &tel,
                    )?;
                    cache.store(campaign, &fresh);
                    fresh
                }
            };
            tel.time(Stage::DbWrite, || {
                journal.lock().append_record(None, &reference)
            })?;
            reference
        }
    };

    // Journaled completions within the shard count as progress without
    // re-running.
    let preloaded: BTreeMap<usize, ExperimentRecord> = state
        .completed
        .into_iter()
        .filter(|(index, _)| range.contains(index))
        .collect();
    for record in preloaded.values() {
        monitor.record(&record.termination);
    }

    let items: Vec<WorkItem> = range
        .clone()
        .filter(|index| !preloaded.contains_key(index))
        .map(|index| {
            let link = state.failed.get(&index).map(|_| {
                let original = campaign.experiment_name(index);
                let round = state.failed_rounds.get(&index).copied().unwrap_or(1);
                (format!("{original}/rerun{round}"), original)
            });
            WorkItem { index, link }
        })
        .collect();

    execute_items(
        &make_target,
        &make_env,
        campaign,
        monitor,
        workers,
        &items,
        &preloaded,
        reference,
        Some(&journal),
        true,
    )
}

/// Shared parallel executor: runs `items` across `workers` threads,
/// merges the outcomes with `preloaded` records (from a resumed journal)
/// and assembles the campaign result.
#[allow(clippy::too_many_arguments)]
fn execute_items<T, FT, FE>(
    make_target: &FT,
    make_env: &Option<FE>,
    campaign: &Campaign,
    monitor: &ProgressMonitor,
    workers: usize,
    items: &[WorkItem],
    preloaded: &BTreeMap<usize, ExperimentRecord>,
    reference: ExperimentRecord,
    journal: Option<&parking_lot::Mutex<&mut ExperimentJournal>>,
    snapshots: bool,
) -> Result<CampaignResult>
where
    T: TargetAccess,
    FT: Fn() -> T + Sync,
    FE: Fn() -> Box<dyn Environment> + Sync,
{
    // Snapshot mode executes in trigger order (stable sort, ties keep
    // campaign-index order): workers claim items off a shared counter, so
    // a sorted item list keeps every worker's claimed subsequence
    // monotonic in trigger time and its [`ExperimentSession`]
    // fast-forwarding instead of re-executing prefixes. Assembly below
    // keys records by campaign index, so results and journals are
    // unaffected by execution order.
    let mut trigger_sorted;
    let items = if snapshots {
        trigger_sorted = items.to_vec();
        trigger_sorted.sort_by_key(|item| {
            algorithms::trigger_order_key(&campaign.faults[item.index].trigger)
        });
        &trigger_sorted[..]
    } else {
        items
    };
    let workers = workers.min(items.len().max(1));
    let mut slots: Vec<parking_lot::Mutex<Option<Outcome>>> = Vec::new();
    slots.resize_with(items.len(), || parking_lot::Mutex::new(None));
    let next = AtomicUsize::new(0);
    // Graceful-degradation plumbing: a retiring worker (target offline)
    // hands its in-flight slot back through `requeue`; `in_flight` keeps
    // idle workers alive while a retirement could still requeue work;
    // `retired` counts dead targets so the fan-in can tell "campaign
    // degraded but completed" from "every target died".
    let requeue: parking_lot::Mutex<Vec<usize>> = parking_lot::Mutex::new(Vec::new());
    let in_flight = AtomicUsize::new(0);
    let retired = AtomicUsize::new(0);
    let supervisor = Supervisor::from_campaign(campaign, &reference);
    let sup_quarantined: parking_lot::Mutex<Vec<ExperimentRecord>> =
        parking_lot::Mutex::new(Vec::new());
    let recoveries: parking_lot::Mutex<Vec<RecoveryRecord>> = parking_lot::Mutex::new(Vec::new());

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let mut target = make_target();
                let mut env: Box<dyn Environment> = match make_env {
                    Some(f) => f(),
                    None => Box::new(envsim::NullEnvironment),
                };
                // Each worker owns its target, so it also owns the
                // snapshot session for that target's experiment prefixes.
                let mut session = snapshots.then(ExperimentSession::new);
                let mut done_here: usize = 0;
                loop {
                    if monitor.checkpoint().is_err() {
                        return;
                    }
                    let slot = match requeue.lock().pop() {
                        Some(slot) => slot,
                        None => {
                            let claim = next.fetch_add(1, Ordering::Relaxed);
                            if claim >= items.len() {
                                if in_flight.load(Ordering::Acquire) == 0 {
                                    return;
                                }
                                // A busy worker may yet retire and requeue
                                // its item; stay alive until all work is
                                // accounted for.
                                std::thread::sleep(std::time::Duration::from_millis(5));
                                continue;
                            }
                            claim
                        }
                    };
                    let item = &items[slot];
                    in_flight.fetch_add(1, Ordering::AcqRel);
                    let outcome = match algorithms::run_linked_experiment_with_policy(
                        &mut target,
                        campaign,
                        item.index,
                        item.link.clone(),
                        monitor,
                        env.as_mut(),
                        session.as_mut(),
                    ) {
                        Ok(Ok(record)) => {
                            let supervised = match &supervisor {
                                Some(sup) => supervise_worker_record(
                                    &mut target,
                                    campaign,
                                    sup,
                                    record,
                                    item,
                                    monitor,
                                    env.as_mut(),
                                    journal,
                                    &sup_quarantined,
                                    &recoveries,
                                ),
                                None => Ok(WorkerSupervise::Record(record)),
                            };
                            match supervised {
                                Ok(WorkerSupervise::Record(record)) => {
                                    monitor.record(&record.termination);
                                    match journal
                                        .map(|j| {
                                            monitor.telemetry().time(Stage::DbWrite, || {
                                                j.lock().append_record(Some(item.index), &record)
                                            })
                                        })
                                        .unwrap_or(Ok(()))
                                    {
                                        Ok(()) => Outcome::Completed(record),
                                        Err(e) => Outcome::Error(e),
                                    }
                                }
                                Ok(WorkerSupervise::Failure(failure)) => {
                                    monitor.record_failed();
                                    match journal
                                        .map(|j| {
                                            monitor.telemetry().time(Stage::DbWrite, || {
                                                j.lock().append_failure(&failure)
                                            })
                                        })
                                        .unwrap_or(Ok(()))
                                    {
                                        Ok(()) if campaign.policy.fails_campaign() => {
                                            Outcome::Fatal(failure)
                                        }
                                        Ok(()) => Outcome::Skipped(failure),
                                        Err(e) => Outcome::Error(e),
                                    }
                                }
                                Ok(WorkerSupervise::Offline) => {
                                    // Hand the experiment to the surviving
                                    // workers, then retire this one. Requeue
                                    // before the in-flight decrement so idle
                                    // workers never miss the hand-off.
                                    requeue.lock().push(slot);
                                    in_flight.fetch_sub(1, Ordering::AcqRel);
                                    retired.fetch_add(1, Ordering::AcqRel);
                                    return;
                                }
                                Err(GoofiError::Stopped) => {
                                    in_flight.fetch_sub(1, Ordering::AcqRel);
                                    return;
                                }
                                Err(e) => Outcome::Error(e),
                            }
                        }
                        Ok(Err(failure)) => {
                            monitor.record_failed();
                            match journal
                                .map(|j| {
                                    monitor
                                        .telemetry()
                                        .time(Stage::DbWrite, || j.lock().append_failure(&failure))
                                })
                                .unwrap_or(Ok(()))
                            {
                                Ok(()) if campaign.policy.fails_campaign() => {
                                    Outcome::Fatal(failure)
                                }
                                Ok(()) => Outcome::Skipped(failure),
                                Err(e) => Outcome::Error(e),
                            }
                        }
                        // User stop mid-experiment: claim no more work.
                        Err(_) => {
                            in_flight.fetch_sub(1, Ordering::AcqRel);
                            return;
                        }
                    };
                    let abort = matches!(outcome, Outcome::Fatal(_) | Outcome::Error(_));
                    *slots[slot].lock() = Some(outcome);
                    in_flight.fetch_sub(1, Ordering::AcqRel);
                    if abort {
                        // Let other workers finish their current item, but
                        // claim no more work.
                        monitor.stop();
                        return;
                    }
                    done_here += 1;
                    // Scheduled health probes, per worker: each target gets
                    // probed every `n` experiments it completed.
                    if let Some(sup) = &supervisor {
                        if sup.probe_due(done_here)
                            && !sup.probe(&mut target, env.as_mut(), monitor).passed()
                        {
                            let context = campaign.experiment_name(item.index);
                            let recovery = sup.recover(
                                &mut target,
                                env.as_mut(),
                                monitor,
                                &context,
                                RecoveryTrigger::ProbeFailure,
                            );
                            let recovered = recovery.recovered;
                            recoveries.lock().push(recovery);
                            if !recovered {
                                // Nothing in flight to requeue: the item
                                // already completed. Just retire.
                                retired.fetch_add(1, Ordering::AcqRel);
                                return;
                            }
                        }
                    }
                }
            });
        }
    })
    .expect("campaign worker panicked");
    let retired = retired.into_inner();
    let mut recoveries = recoveries.into_inner();
    let mut quarantined = sup_quarantined.into_inner();
    // Worker interleaving makes the raw push order nondeterministic; sort
    // for stable results and reports.
    recoveries.sort_by(|a, b| a.experiment.cmp(&b.experiment));
    quarantined.sort_by(|a, b| a.name.cmp(&b.name));

    // Assemble in campaign-index order. `items` is deterministically
    // ordered (index-sorted, or trigger-sorted with index tiebreak in
    // snapshot mode), so the first Fatal/Error outcome kept is the same
    // one no matter which worker failed first.
    let mut completed: BTreeMap<usize, ExperimentRecord> = preloaded.clone();
    let mut failures: Vec<ExperimentFailure> = Vec::new();
    let mut first_abort: Option<Outcome> = None;
    let mut fresh: Vec<usize> = Vec::new();
    for (item, cell) in items.iter().zip(slots) {
        match cell.into_inner() {
            Some(Outcome::Completed(record)) => {
                completed.insert(item.index, record);
                fresh.push(item.index);
            }
            Some(Outcome::Skipped(failure)) => failures.push(failure),
            Some(outcome @ (Outcome::Fatal(_) | Outcome::Error(_))) => {
                first_abort.get_or_insert(outcome);
            }
            // Unclaimed slot: the campaign stopped before this item ran.
            None => {}
        }
    }
    // Trigger-order execution must not leak into reported order.
    failures.sort_by_key(|failure| failure.index);
    fresh.sort_unstable();

    // End-of-run golden revalidation. The serial runner revalidates every
    // `revalidate_every` experiments; with workers interleaving, the
    // parallel runner makes one coarser check after the fan-in: re-run the
    // fault-free reference and, on drift, quarantine every experiment
    // completed *this run* (preloaded journal records were validated by the
    // run that produced them) and re-run each as a `parentExperiment`-linked
    // rerun on a fresh target.
    let revalidate = campaign.policy.revalidate_every.is_some_and(|n| n > 0);
    if revalidate && first_abort.is_none() && !monitor.is_stopped() && !fresh.is_empty() {
        let mut target = make_target();
        let mut env: Box<dyn Environment> = match make_env {
            Some(f) => f(),
            None => Box::new(envsim::NullEnvironment),
        };
        let golden = algorithms::reference_run_traced(
            &mut target,
            campaign,
            env.as_mut(),
            monitor.telemetry(),
        )?;
        if !algorithms::golden_run_matches(&reference, &golden) {
            // Mark-first across the whole batch: every quarantine entry
            // reaches the journal before any rerun starts, so a crash at
            // any later point still reruns all suspects on resume.
            for &index in &fresh {
                let slot = completed.get_mut(&index).expect("fresh index is completed");
                slot.validity = Validity::Invalid;
                if let Some(j) = journal {
                    monitor
                        .telemetry()
                        .time(Stage::DbWrite, || j.lock().append_record(Some(index), slot))?;
                }
                monitor.record_quarantined();
            }
            for index in fresh {
                let original = completed[&index].name.clone();
                let link = Some((format!("{original}/rerun1"), original));
                // Quarantine re-runs stay on the slow path: the whole point
                // of a revalidation rerun is a from-scratch execution.
                match algorithms::run_linked_experiment_with_policy(
                    &mut target,
                    campaign,
                    index,
                    link,
                    monitor,
                    env.as_mut(),
                    None,
                ) {
                    // Reruns replace the quarantined record; they are not
                    // re-counted as completed progress (the original was).
                    Ok(Ok(rerun)) => {
                        if let Some(j) = journal {
                            monitor.telemetry().time(Stage::DbWrite, || {
                                j.lock().append_record(Some(index), &rerun)
                            })?;
                        }
                        let slot = completed.get_mut(&index).expect("fresh index is completed");
                        quarantined.push(std::mem::replace(slot, rerun));
                    }
                    Ok(Err(failure)) => {
                        if let Some(j) = journal {
                            monitor
                                .telemetry()
                                .time(Stage::DbWrite, || j.lock().append_failure(&failure))?;
                        }
                        if campaign.policy.fails_campaign() {
                            first_abort = Some(Outcome::Fatal(failure));
                            break;
                        }
                        failures.push(failure);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }

    failures.sort_by_key(|f| f.index);
    let partial = CampaignResult {
        reference,
        records: completed.into_values().collect(),
        failures,
        quarantined,
        recoveries,
    };
    let incomplete = partial.records.len() + partial.failures.len() < preloaded.len() + items.len();
    match first_abort {
        Some(Outcome::Fatal(failure)) => Err(GoofiError::ExperimentFailed {
            failure,
            partial: Box::new(partial),
        }),
        Some(Outcome::Error(e)) => Err(e),
        _ if monitor.is_stopped() => Err(GoofiError::Stopped),
        _ if incomplete && retired >= workers => {
            // Every worker's target died: the campaign could not degrade
            // any further. The completed shard is preserved.
            Err(GoofiError::TargetOffline {
                context: format!("all {workers} worker target(s) retired"),
                partial: Box::new(partial),
            })
        }
        _ if incomplete => {
            // Unclaimed slots without a stop request should be impossible;
            // report rather than fabricate a partial result silently.
            Err(GoofiError::Stopped)
        }
        _ => Ok(partial),
    }
}

/// What worker-side supervision decided about a freshly-completed record.
#[allow(clippy::large_enum_variant)] // transient per-experiment value, never stored in bulk
enum WorkerSupervise {
    /// The record stands (possibly a linked re-run replacing a hang).
    Record(ExperimentRecord),
    /// The experiment kept hanging (or its re-run failed).
    Failure(ExperimentFailure),
    /// The ladder was exhausted: the worker must requeue its item and
    /// retire.
    Offline,
}

/// The worker-side twin of the serial runner's hang resolution: confirms a
/// `Timeout` with the probe suite, quarantines confirmed hangs (rewritten
/// to [`TerminationCause::TargetHang`]), climbs the recovery ladder and
/// re-runs the experiment as a `parentExperiment`-linked child, bounded by
/// the ladder's `max_hang_rounds`.
///
/// # Errors
///
/// [`GoofiError::Stopped`] or journal I/O errors.
#[allow(clippy::too_many_arguments)]
fn supervise_worker_record<T: TargetAccess>(
    target: &mut T,
    campaign: &Campaign,
    sup: &Supervisor<'_>,
    mut record: ExperimentRecord,
    item: &WorkItem,
    monitor: &ProgressMonitor,
    env: &mut dyn Environment,
    journal: Option<&parking_lot::Mutex<&mut ExperimentJournal>>,
    quarantined: &parking_lot::Mutex<Vec<ExperimentRecord>>,
    recoveries: &parking_lot::Mutex<Vec<RecoveryRecord>>,
) -> Result<WorkerSupervise> {
    let mut round: u32 = 0;
    loop {
        if record.termination != TerminationCause::Timeout {
            return Ok(WorkerSupervise::Record(record));
        }
        if sup.probe(target, &mut *env, monitor).passed() {
            // A slow workload, not a wedge: the Timeout stands.
            return Ok(WorkerSupervise::Record(record));
        }
        round += 1;
        monitor.record_hang();
        record.termination = TerminationCause::TargetHang;
        record.validity = Validity::Invalid;
        if let Some(j) = journal {
            monitor.telemetry().time(Stage::DbWrite, || {
                j.lock().append_record(Some(item.index), &record)
            })?;
        }
        monitor.record_quarantined();
        let parent = record.name.clone();
        quarantined.lock().push(record);
        let recovery = sup.recover(
            target,
            &mut *env,
            monitor,
            &parent,
            RecoveryTrigger::TargetHang,
        );
        let recovered = recovery.recovered;
        recoveries.lock().push(recovery);
        if !recovered {
            return Ok(WorkerSupervise::Offline);
        }
        if round > sup.ladder().max_hang_rounds {
            return Ok(WorkerSupervise::Failure(ExperimentFailure {
                index: item.index,
                name: parent,
                attempts: round,
                error: "target hang persisted across recovery re-runs".into(),
            }));
        }
        let base = match &item.link {
            Some((name, _)) => name.clone(),
            None => campaign.experiment_name(item.index),
        };
        let link = Some((format!("{base}/rerun{round}"), parent));
        // The target just climbed the recovery ladder; any snapshot taken
        // before the hang is stale, so this re-run executes from scratch.
        match algorithms::run_linked_experiment_with_policy(
            target, campaign, item.index, link, monitor, env, None,
        )? {
            Ok(rerun) => record = rerun,
            Err(failure) => return Ok(WorkerSupervise::Failure(failure)),
        }
    }
}
