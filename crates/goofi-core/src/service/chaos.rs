//! Seeded chaos drill for the campaign service.
//!
//! `goofi serve --chaos kill-after=<n>,seed=<s>` makes every spawned shard
//! worker *deterministically kill itself* mid-shard on its first lease
//! attempt(s): the worker counts the experiments it completes this lease
//! and exits abruptly (exit code [`CHAOS_EXIT_CODE`]) once it reaches a
//! seeded kill point within the first `kill-after` completions. The
//! scheduler then exercises exactly the machinery the drill is for —
//! lease revocation, backoff, reassignment, journal replay — and the
//! campaign must still complete with a merged database essence-equal to a
//! serial run.
//!
//! The spec uses the same `key=value` comma list as `--wedge`:
//!
//! ```text
//! kill-after=3,seed=7            kill within the first 3 completions, once
//! kill-after=5,seed=1,kills=2    first two lease attempts die
//! kill-after=4,seed=9,mode=stall stall (stop heartbeating) instead of exiting
//! ```
//!
//! `mode=stall` rehearses the *hang* half of the lease discipline: the
//! worker stops making progress without exiting, so the daemon must
//! revoke the lease on deadline and kill the process itself.

/// Exit code of a chaos-killed worker, distinct from ordinary failures.
pub const CHAOS_EXIT_CODE: i32 = 86;

/// What a chaos-struck worker does at its kill point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Exit abruptly with [`CHAOS_EXIT_CODE`] (simulates a crash).
    Exit,
    /// Keep running but stop completing experiments and heartbeating
    /// (simulates a hung worker; the lease deadline must catch it).
    Stall,
}

/// A seeded worker self-kill schedule. The whole drill is a pure function
/// of `(seed, shard, attempt)`, so re-running a chaos campaign reproduces
/// the same crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Kill within the first `kill_after` experiment completions of a
    /// lease (the exact point is seeded).
    pub kill_after: u64,
    /// Seed for the kill-point schedule.
    pub seed: u64,
    /// How many lease attempts per shard die before the worker is allowed
    /// to finish (default 1).
    pub kills: u32,
    /// Crash or stall at the kill point.
    pub mode: ChaosMode,
}

impl ChaosConfig {
    /// Whether lease `attempt` (1-based) of any shard is chaos-struck.
    pub fn active(&self, attempt: u32) -> bool {
        self.kill_after > 0 && attempt <= self.kills
    }

    /// The number of fresh completions after which this lease dies:
    /// `1..=kill_after`, seeded per `(shard, attempt)`.
    pub fn kill_point(&self, shard: usize, attempt: u32) -> u64 {
        let n = self.kill_after.max(1);
        1 + mix(self.seed, shard as u64, u64::from(attempt)) % n
    }

    /// Encodes to the `key=value` comma list accepted by [`ChaosConfig::decode`].
    pub fn encode(&self) -> String {
        let mut out = format!("kill-after={},seed={}", self.kill_after, self.seed);
        if self.kills != 1 {
            out.push_str(&format!(",kills={}", self.kills));
        }
        if self.mode == ChaosMode::Stall {
            out.push_str(",mode=stall");
        }
        out
    }

    /// Parses `kill-after=<n>,seed=<s>[,kills=<k>][,mode=exit|stall]`.
    /// Returns `None` on unknown keys or malformed values.
    pub fn decode(s: &str) -> Option<ChaosConfig> {
        let mut config = ChaosConfig {
            kill_after: 0,
            seed: 0,
            kills: 1,
            mode: ChaosMode::Exit,
        };
        let mut saw_kill_after = false;
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part.split_once('=')?;
            match key {
                "kill-after" => {
                    config.kill_after = value.parse().ok()?;
                    saw_kill_after = true;
                }
                "seed" => config.seed = value.parse().ok()?,
                "kills" => config.kills = value.parse().ok()?,
                "mode" => {
                    config.mode = match value {
                        "exit" => ChaosMode::Exit,
                        "stall" => ChaosMode::Stall,
                        _ => return None,
                    }
                }
                _ => return None,
            }
        }
        if !saw_kill_after || config.kill_after == 0 {
            return None;
        }
        Some(config)
    }
}

/// SplitMix64-style mixer over three words; the service's only source of
/// "randomness", so drills replay bit-for-bit. Shared with the network
/// fault plane ([`super::net`]), which seeds frame perturbations from it.
pub(crate) fn mix(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(c.wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrips() {
        let configs = [
            ChaosConfig {
                kill_after: 3,
                seed: 7,
                kills: 1,
                mode: ChaosMode::Exit,
            },
            ChaosConfig {
                kill_after: 5,
                seed: 1,
                kills: 2,
                mode: ChaosMode::Stall,
            },
        ];
        for config in configs {
            assert_eq!(ChaosConfig::decode(&config.encode()), Some(config));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(ChaosConfig::decode("seed=1"), None); // kill-after required
        assert_eq!(ChaosConfig::decode("kill-after=0,seed=1"), None);
        assert_eq!(ChaosConfig::decode("kill-after=x"), None);
        assert_eq!(ChaosConfig::decode("kill-after=2,bogus=1"), None);
        assert_eq!(ChaosConfig::decode("kill-after=2,mode=melt"), None);
    }

    #[test]
    fn kill_points_are_deterministic_and_in_range() {
        let config = ChaosConfig::decode("kill-after=4,seed=9").unwrap();
        for shard in 0..8 {
            for attempt in 1..4 {
                let p = config.kill_point(shard, attempt);
                assert_eq!(p, config.kill_point(shard, attempt));
                assert!((1..=4).contains(&p), "kill point {p} out of range");
            }
        }
        // Different seeds give different schedules somewhere.
        let other = ChaosConfig::decode("kill-after=4,seed=10").unwrap();
        assert!((0..32).any(|s| config.kill_point(s, 1) != other.kill_point(s, 1)));
    }

    #[test]
    fn only_early_attempts_are_struck() {
        let config = ChaosConfig::decode("kill-after=3,seed=7").unwrap();
        assert!(config.active(1));
        assert!(!config.active(2));
        let double = ChaosConfig::decode("kill-after=3,seed=7,kills=2").unwrap();
        assert!(double.active(2));
        assert!(!double.active(3));
    }
}
