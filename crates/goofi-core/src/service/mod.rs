//! The campaign service: a daemon that runs campaigns as *jobs* sharded
//! across worker OS processes.
//!
//! The paper runs one campaign on one workstation driving one test card.
//! This module generalises the parallel [`runner`](crate::runner) one
//! level up: a long-lived daemon (`goofi serve`) accepts campaign
//! submissions over a newline-delimited-JSON wire protocol ([`wire`]),
//! partitions each campaign's experiment index space into contiguous
//! *shards* ([`partition`]), and hands every shard to a spawned
//! `goofi worker` process under a lease-and-heartbeat discipline
//! ([`scheduler`]):
//!
//! - Each shard runs under its own [`ExperimentJournal`]
//!   (crate::journal::ExperimentJournal) via
//!   [`runner::resume_campaign_shard`](crate::runner::resume_campaign_shard),
//!   so journal entries keep their global campaign indices.
//! - A worker renews its lease by reporting progress on stdout. A worker
//!   that crashes, hangs past its lease deadline, or reports the target
//!   offline gets its shard revoked and reassigned with exponential
//!   backoff — the process-level twin of the parallel runner's
//!   worker-retirement.
//! - At-least-once execution is made idempotent by the journal: a
//!   reassigned shard replays its journal and re-runs only what is
//!   missing, so the merged database is essence-equal to a serial run.
//! - A shard failing its lease too many times in a row is quarantined as
//!   a *poison shard*: its unfinished experiments are recorded as
//!   `Validity::Invalid` stubs with `parentExperiment`-linked rerun stubs
//!   rather than wedging the whole job.
//! - The daemon persists a small manifest per job in a spool directory
//!   next to the database; a killed daemon resumes every in-flight job
//!   from manifest plus shard journals on restart.
//!
//! [`worker`] is the shard-side half, [`server`] the accept loop and
//! client, [`net`] the transport seam all service I/O goes through
//! (length-prefixed checksummed frames over a [`Transport`]; a seeded
//! `FaultNet` injects dropped/duplicated/reordered/corrupted frames,
//! resets, half-open peers and partitions under test), and [`chaos`] a
//! seeded self-kill drill used to rehearse all of the above.

pub mod chaos;
pub mod net;
pub mod scheduler;
pub mod server;
pub mod wire;
pub mod worker;

pub use chaos::ChaosConfig;
pub use net::{FaultNet, NetFaultConfig, NetFaultKind, RealNet, Transport};
pub use scheduler::{
    JobProgress, JobState, RecoverOutcome, Scheduler, ServiceConfig, WorkerCommand,
};
pub use server::{
    job_list, job_list_with, new_request_id, request_shutdown, request_shutdown_with, serve,
    submit_job, submit_job_targeted, submit_job_with, watch_to_end, watch_to_end_with, Client,
};
pub use wire::{Request, Response, WorkerEvent};
pub use worker::{run_worker, WorkerArgs};

/// Splits `0..total` into at most `shards` contiguous, near-equal,
/// non-empty ranges covering every index exactly once. Earlier ranges get
/// the remainder, so the split is deterministic.
pub fn partition(total: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let shards = shards.max(1).min(total.max(1));
    let base = total / shards;
    let remainder = total % shards;
    let mut ranges = Vec::new();
    let mut start = 0;
    for shard in 0..shards {
        let len = base + usize::from(shard < remainder);
        if len == 0 {
            continue;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::partition;

    #[test]
    fn partition_covers_every_index_once() {
        for total in 0..40 {
            for shards in 1..8 {
                let ranges = partition(total, shards);
                let mut covered = Vec::new();
                for range in &ranges {
                    assert!(!range.is_empty(), "empty shard for {total}/{shards}");
                    covered.extend(range.clone());
                }
                assert_eq!(covered, (0..total).collect::<Vec<_>>());
                assert!(ranges.len() <= shards);
            }
        }
    }

    #[test]
    fn partition_is_near_equal() {
        let ranges = partition(10, 3);
        let lens: Vec<usize> = ranges.iter().map(std::ops::Range::len).collect();
        assert_eq!(lens, vec![4, 3, 3]);
    }
}
