//! The network fault plane of the campaign service: framing, transports,
//! and seeded fault injection — the [`crate::vfs`] pattern one layer up.
//!
//! Every byte the service moves — client requests, daemon responses,
//! shard-worker events on stdout — crosses this module as a *frame*:
//!
//! ```text
//! GF1 <payload-len> <fnv1a-of-payload-hex>\n<payload>\n
//! ```
//!
//! The length prefix bounds what a receiver buffers ([`MAX_FRAME`]), the
//! checksum catches bit corruption, and the magic gives [`FrameReader`] a
//! resynchronisation point: a malformed, truncated or garbled frame is
//! reported as [`FrameRead::Malformed`] and the reader scans forward to
//! the next `GF1 ` line start — one bad frame never desyncs the stream.
//!
//! Above framing sit three seams:
//!
//! - [`Conn`]: one bidirectional frame channel (send / recv / timeouts);
//! - [`Listener`]: a polling acceptor producing [`Conn`]s;
//! - [`Transport`]: dials and binds — [`RealNet`] over TCP in
//!   production, [`FaultNet`] in the torture harness.
//!
//! [`FaultNet`] wraps real TCP but counts every network operation
//! (connect, accept, frame send) through one shared [`FaultInjector`] and
//! perturbs the N-th op — or a seeded fraction of all ops — with one of
//! [`NetFaultKind`]: dropped, duplicated, reordered, delayed, truncated
//! or bit-corrupted frames, mid-frame connection resets, half-open peers
//! that swallow writes forever, and accept-time partitions. The same
//! injector slots into a worker's stdout via [`FaultWriter`], so one
//! `--net-chaos` spec perturbs every hop of a job. Faults are seeded and
//! replayable; the op that a given schedule hits depends on thread
//! interleaving, but the *schedule itself* is a pure function of the
//! seed, which is what the torture harness sweeps.

use super::chaos::mix;
use crate::journal::fnv1a;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// Protocol version this build speaks (negotiated down on connect).
pub const PROTO_VERSION: u64 = 2;
/// Oldest protocol version this build still accepts.
pub const MIN_PROTO_VERSION: u64 = 2;

/// Hard cap on a frame's payload size. Service frames are one-line JSON
/// objects orders of magnitude smaller; anything larger is a garbage or
/// hostile peer and is rejected before it can balloon a receive buffer.
pub const MAX_FRAME: usize = 64 * 1024;

/// Longest accepted frame header line (`GF1 <len> <crc>`), newline
/// exclusive. Generously above the worst legitimate header.
const MAX_HEADER: usize = 64;

/// Encodes one payload as a wire frame: header line, payload, newline.
pub fn encode_frame(payload: &str) -> Vec<u8> {
    let bytes = payload.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() + 32);
    out.extend_from_slice(format!("GF1 {} {:08x}\n", bytes.len(), fnv1a(bytes)).as_bytes());
    out.extend_from_slice(bytes);
    out.push(b'\n');
    out
}

/// One attempt to read a frame from a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete, checksum-verified payload.
    Frame(String),
    /// A damaged frame was skipped; the reader has resynchronised on the
    /// next plausible frame boundary. The string says what was wrong.
    Malformed(String),
    /// Clean end of stream.
    Eof,
}

/// Incremental frame decoder over any byte stream. Total: garbage in
/// yields [`FrameRead::Malformed`] plus resynchronisation, never a panic
/// or an unbounded buffer (worst case ≈ header + [`MAX_FRAME`]).
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader {
            inner,
            buf: Vec::new(),
        }
    }

    fn fill(&mut self) -> io::Result<usize> {
        let mut chunk = [0u8; 4096];
        let n = self.inner.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Reads the next frame, skipping damage.
    ///
    /// # Errors
    ///
    /// Underlying I/O errors (including read timeouts) propagate; damaged
    /// bytes do not — they come back as [`FrameRead::Malformed`].
    pub fn read_frame(&mut self) -> io::Result<FrameRead> {
        loop {
            let newline = self.buf.iter().position(|&b| b == b'\n');
            match newline {
                Some(nl) if nl <= MAX_HEADER => {
                    return self.read_body(nl);
                }
                Some(_) => {
                    self.resync_after_line();
                    return Ok(FrameRead::Malformed("oversized frame header".into()));
                }
                None if self.buf.len() > MAX_HEADER => {
                    // Too long to be a header already; drop at least one
                    // byte so a pathological `GF1 …`-prefixed blob cannot
                    // pin the buffer in place, then rescan.
                    self.buf.drain(..1);
                    self.resync();
                    return Ok(FrameRead::Malformed(
                        "frame header missing its newline".into(),
                    ));
                }
                None => {
                    if self.fill()? == 0 {
                        if self.buf.is_empty() {
                            return Ok(FrameRead::Eof);
                        }
                        self.buf.clear();
                        return Ok(FrameRead::Malformed("torn frame tail at EOF".into()));
                    }
                }
            }
        }
    }

    /// Parses and validates the frame whose header line ends at `nl`.
    fn read_body(&mut self, nl: usize) -> io::Result<FrameRead> {
        let Some((len, crc)) = parse_header(&self.buf[..nl]) else {
            self.resync_after_line();
            return Ok(FrameRead::Malformed("malformed frame header".into()));
        };
        if len > MAX_FRAME {
            self.resync_after_line();
            return Ok(FrameRead::Malformed(format!(
                "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"
            )));
        }
        let need = nl + 1 + len + 1;
        while self.buf.len() < need {
            if self.fill()? == 0 {
                // The declared length outruns the stream; whatever did
                // arrive may still hold complete later frames, so rescan
                // instead of discarding.
                self.buf.drain(..nl + 1);
                self.resync();
                return Ok(FrameRead::Malformed("frame truncated by EOF".into()));
            }
        }
        let payload = &self.buf[nl + 1..need - 1];
        if self.buf[need - 1] != b'\n' || fnv1a(payload) != crc {
            let detail = if self.buf[need - 1] != b'\n' {
                "unterminated frame (truncated?)"
            } else {
                "frame checksum mismatch"
            };
            // The declared length may have swallowed the next frame's
            // header, so drop only the bad header line and rescan the
            // rest for the next `GF1 ` boundary.
            self.buf.drain(..nl + 1);
            self.resync();
            return Ok(FrameRead::Malformed(detail.into()));
        }
        let payload = payload.to_vec();
        self.buf.drain(..need);
        match String::from_utf8(payload) {
            Ok(s) => Ok(FrameRead::Frame(s)),
            Err(_) => Ok(FrameRead::Malformed("frame payload is not UTF-8".into())),
        }
    }

    /// Abandons the damaged line at the buffer head: jumps to a frame
    /// magic embedded inside it (a torn header glued onto the next
    /// frame's header, say), or failing that drops the line wholesale —
    /// one damage report per damaged line, not one per byte.
    fn resync_after_line(&mut self) {
        const MAGIC: &[u8] = b"GF1 ";
        let line_end = self
            .buf
            .iter()
            .position(|&b| b == b'\n')
            .map_or(self.buf.len(), |nl| nl + 1);
        for i in 1..line_end.saturating_sub(MAGIC.len() - 1) {
            if self.buf[i..].starts_with(MAGIC) {
                self.buf.drain(..i);
                return;
            }
        }
        self.buf.drain(..line_end);
        self.resync();
    }

    /// Skips buffered bytes up to the next plausible frame start: the
    /// next `GF1 ` magic anywhere in the buffer — a frame glued directly
    /// after torn payload bytes has no newline before it, and the
    /// checksum rejects payload bytes that merely look like a header.
    /// Keeps a short tail that could be a prefix of the magic split
    /// across reads.
    fn resync(&mut self) {
        const MAGIC: &[u8] = b"GF1 ";
        if self.buf.starts_with(MAGIC) {
            return;
        }
        let mut boundary = None;
        for i in 1..self.buf.len().saturating_sub(MAGIC.len() - 1) {
            if self.buf[i..].starts_with(MAGIC) {
                boundary = Some(i);
                break;
            }
        }
        match boundary {
            Some(at) => {
                self.buf.drain(..at);
            }
            None => {
                let keep = self.buf.len().min(MAGIC.len());
                self.buf.drain(..self.buf.len() - keep);
            }
        }
    }
}

/// Parses `GF1 <len> <8-hex-crc>`.
fn parse_header(line: &[u8]) -> Option<(usize, u32)> {
    let text = std::str::from_utf8(line).ok()?;
    let rest = text.strip_prefix("GF1 ")?;
    let (len, crc) = rest.split_once(' ')?;
    if crc.len() != 8 {
        return None;
    }
    Some((len.parse().ok()?, u32::from_str_radix(crc, 16).ok()?))
}

/// One established frame channel.
pub trait Conn: Send {
    /// Sends one frame.
    fn send(&mut self, payload: &str) -> io::Result<()>;
    /// Sends raw bytes verbatim, bypassing framing — the hook tests use
    /// to speak garbage at a server.
    fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Reads the next frame (or damage report, or EOF).
    fn recv(&mut self) -> io::Result<FrameRead>;
    /// Bounds how long [`Conn::recv`] may block — the heartbeat deadline
    /// that turns a half-open peer into a clean timeout.
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()>;
    /// Peer address, for error messages.
    fn peer(&self) -> String;
}

/// A polling acceptor. `Ok(None)` means no connection is waiting (the
/// daemon's accept loop sleeps briefly and re-polls, so a `stop` flag is
/// always honoured).
pub trait Listener: Send {
    /// Polls for one pending connection.
    ///
    /// # Errors
    ///
    /// Fatal listener errors; transient per-connection failures surface
    /// as `Ok(None)`.
    fn accept(&self) -> io::Result<Option<Box<dyn Conn>>>;
    /// The bound address, e.g. `127.0.0.1:4711`.
    ///
    /// # Errors
    ///
    /// Socket introspection errors.
    fn local_addr(&self) -> io::Result<String>;
}

/// Dials and binds frame channels. Object-safe so the daemon, the client
/// and the harness all take `&dyn Transport`.
pub trait Transport: Send + Sync + fmt::Debug {
    /// Connects to `addr` within `timeout`.
    ///
    /// # Errors
    ///
    /// Resolution and connection errors.
    fn connect(&self, addr: &str, timeout: Duration) -> io::Result<Box<dyn Conn>>;
    /// Binds a listener on `addr` (port 0 picks a free port).
    ///
    /// # Errors
    ///
    /// Bind errors.
    fn listen(&self, addr: &str) -> io::Result<Box<dyn Listener>>;
}

/// Resolves `addr` and opens a TCP connection within `timeout`.
fn tcp_connect(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let sockets: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    let mut last = io::Error::new(io::ErrorKind::NotFound, format!("no addresses for {addr}"));
    for socket in sockets {
        match TcpStream::connect_timeout(&socket, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// The production transport: plain TCP, no perturbation.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealNet;

impl Transport for RealNet {
    fn connect(&self, addr: &str, timeout: Duration) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(NetConn::new(tcp_connect(addr, timeout)?, None)?))
    }

    fn listen(&self, addr: &str) -> io::Result<Box<dyn Listener>> {
        Ok(Box::new(NetListener {
            inner: bind(addr)?,
            injector: None,
        }))
    }
}

fn bind(addr: &str) -> io::Result<TcpListener> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    Ok(listener)
}

/// A TCP [`Conn`], optionally perturbed by a [`FaultInjector`] on the
/// send side. Both [`RealNet`] and [`FaultNet`] produce these.
struct NetConn {
    writer: FaultWriter<TcpStream>,
    reader: FrameReader<TcpStream>,
    stream: TcpStream,
    peer: String,
}

impl NetConn {
    fn new(stream: TcpStream, injector: Option<FaultInjector>) -> io::Result<NetConn> {
        let _ = stream.set_nodelay(true);
        let peer = stream
            .peer_addr()
            .map_or_else(|_| "<unknown>".to_string(), |a| a.to_string());
        let reader = FrameReader::new(stream.try_clone()?);
        let writer_stream = stream.try_clone()?;
        Ok(NetConn {
            writer: FaultWriter::new(writer_stream, injector),
            reader,
            stream,
            peer,
        })
    }
}

impl Conn for NetConn {
    fn send(&mut self, payload: &str) -> io::Result<()> {
        self.writer.send_frame(&encode_frame(payload))
    }

    fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.send_frame(bytes)
    }

    fn recv(&mut self) -> io::Result<FrameRead> {
        self.reader.read_frame()
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        // Socket options live on the shared file description, so setting
        // them through any clone affects the reader's handle too.
        self.stream.set_read_timeout(timeout)
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

struct NetListener {
    inner: TcpListener,
    injector: Option<FaultInjector>,
}

impl Listener for NetListener {
    fn accept(&self) -> io::Result<Option<Box<dyn Conn>>> {
        let (stream, _addr) = match self.inner.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
            Err(e) => return Err(e),
        };
        if let Some(injector) = &self.injector {
            if injector.partitioned_accept() {
                // Accept-time partition: the TCP handshake succeeded but
                // the daemon is unreachable — close without a byte, like
                // a dropped link behind a SYN proxy.
                let _ = stream.shutdown(Shutdown::Both);
                return Ok(None);
            }
        }
        match NetConn::new(stream, self.injector.clone()) {
            Ok(conn) => Ok(Some(Box::new(conn))),
            Err(_) => Ok(None),
        }
    }

    fn local_addr(&self) -> io::Result<String> {
        self.inner.local_addr().map(|a| a.to_string())
    }
}

/// What a [`NetFaultConfig`] does to its chosen network operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultKind {
    /// Swallow the frame; the sender believes it was delivered.
    Drop,
    /// Deliver the frame twice.
    Dup,
    /// Hold the frame back and deliver it after the next one.
    Reorder,
    /// Deliver the frame after a fixed delay.
    Delay,
    /// Deliver a seeded prefix of the frame, then continue normally.
    Truncate,
    /// Flip one seeded bit in the frame.
    Corrupt,
    /// Deliver a partial frame, then hard-close the connection.
    Reset,
    /// Go half-open: from here on, every write on this channel vanishes
    /// silently. The peer's heartbeat deadline must notice.
    HalfOpen,
    /// Accept-time partition: the next few inbound connections are
    /// accepted and immediately severed.
    Partition,
}

impl NetFaultKind {
    /// All kinds, in codec order.
    pub const ALL: [NetFaultKind; 9] = [
        NetFaultKind::Drop,
        NetFaultKind::Dup,
        NetFaultKind::Reorder,
        NetFaultKind::Delay,
        NetFaultKind::Truncate,
        NetFaultKind::Corrupt,
        NetFaultKind::Reset,
        NetFaultKind::HalfOpen,
        NetFaultKind::Partition,
    ];

    /// Codec keyword (`drop`, `dup`, …).
    pub fn encode(self) -> &'static str {
        match self {
            NetFaultKind::Drop => "drop",
            NetFaultKind::Dup => "dup",
            NetFaultKind::Reorder => "reorder",
            NetFaultKind::Delay => "delay",
            NetFaultKind::Truncate => "truncate",
            NetFaultKind::Corrupt => "corrupt",
            NetFaultKind::Reset => "reset",
            NetFaultKind::HalfOpen => "half-open",
            NetFaultKind::Partition => "partition",
        }
    }

    /// Parses a codec keyword.
    pub fn decode(s: &str) -> Option<NetFaultKind> {
        NetFaultKind::ALL.into_iter().find(|k| k.encode() == s)
    }

    /// Which operation class this fault can strike.
    fn applies_to(self, class: OpClass) -> bool {
        match self {
            NetFaultKind::Partition => class == OpClass::Accept,
            _ => class == OpClass::Send,
        }
    }
}

/// The class of a counted network operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// An outbound connection attempt.
    Connect,
    /// An inbound connection accepted.
    Accept,
    /// One frame handed to a send path.
    Send,
}

/// A seeded network fault plan, in one of two modes:
///
/// - **Deterministic** (`at=N,kind=K,seed=S`): arm at the N-th network op
///   and fire once, at the first op the kind applies to — the torture
///   harness walks `at` over a campaign's whole op count, the
///   [`crate::vfs::FaultPlan`] discipline applied to the wire.
/// - **Rate** (`drop=0.05,corrupt=0.01,seed=S[,delay-ms=M]`): every send
///   op rolls a seeded die per listed kind; `goofi serve --net-chaos`
///   uses this for standing chaos drills. Rates are stored as integer
///   parts-per-million so configs compare and roundtrip exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetFaultConfig {
    /// Seed for every perturbation decision.
    pub seed: u64,
    /// Deterministic mode: arm at this op count (0 = rate mode;
    /// `u64::MAX` = counting mode, never fires).
    pub at: u64,
    /// Deterministic mode: what to do.
    pub kind: Option<NetFaultKind>,
    /// Rate mode: `(kind, parts-per-million)` dice, rolled in order.
    pub rates: Vec<(NetFaultKind, u32)>,
    /// How long a [`NetFaultKind::Delay`] holds its frame.
    pub delay_ms: u64,
}

impl NetFaultConfig {
    /// The deterministic single-fault plan `at=N,kind=K,seed=S`.
    pub fn plan(at: u64, kind: NetFaultKind, seed: u64) -> NetFaultConfig {
        NetFaultConfig {
            seed,
            at,
            kind: Some(kind),
            rates: Vec::new(),
            delay_ms: 25,
        }
    }

    /// A plan that never fires — used to count a run's network ops.
    pub fn counting() -> NetFaultConfig {
        NetFaultConfig::plan(u64::MAX, NetFaultKind::Drop, 0)
    }

    /// Encodes to the `key=value` comma list accepted by
    /// [`NetFaultConfig::decode`].
    pub fn encode(&self) -> String {
        let mut out = String::new();
        if self.at > 0 {
            out.push_str(&format!(
                "at={},kind={}",
                self.at,
                self.kind.map_or("none", NetFaultKind::encode)
            ));
        } else {
            for (kind, ppm) in &self.rates {
                if !out.is_empty() {
                    out.push(',');
                }
                out.push_str(&format!("{}={}", kind.encode(), ppm_encode(*ppm)));
            }
        }
        if !out.is_empty() {
            out.push(',');
        }
        out.push_str(&format!("seed={}", self.seed));
        if self.delay_ms != 25 {
            out.push_str(&format!(",delay-ms={}", self.delay_ms));
        }
        out
    }

    /// Parses `at=N,kind=K,seed=S` or `drop=0.05,…,seed=S[,delay-ms=M]`.
    /// Returns `None` on unknown keys, malformed values, rates outside
    /// `[0, 1]`, or a plan that mixes the two modes.
    pub fn decode(s: &str) -> Option<NetFaultConfig> {
        let mut config = NetFaultConfig {
            seed: 0,
            at: 0,
            kind: None,
            rates: Vec::new(),
            delay_ms: 25,
        };
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part.split_once('=')?;
            match key {
                "at" => config.at = value.parse().ok()?,
                "kind" => config.kind = Some(NetFaultKind::decode(value)?),
                "seed" => config.seed = value.parse().ok()?,
                "delay-ms" => config.delay_ms = value.parse().ok()?,
                rate_kind => {
                    let kind = NetFaultKind::decode(rate_kind)?;
                    let rate: f64 = value.parse().ok()?;
                    if !(0.0..=1.0).contains(&rate) {
                        return None;
                    }
                    config
                        .rates
                        .push((kind, (rate * 1_000_000.0).round() as u32));
                }
            }
        }
        let deterministic = config.at > 0 || config.kind.is_some();
        if deterministic && (!config.rates.is_empty() || config.at == 0 || config.kind.is_none()) {
            return None;
        }
        if !deterministic && config.rates.is_empty() {
            return None;
        }
        Some(config)
    }
}

/// Renders parts-per-million back as the decimal fraction users write.
fn ppm_encode(ppm: u32) -> String {
    let text = format!("{}", f64::from(ppm) / 1_000_000.0);
    if text.contains('.') {
        text
    } else {
        format!("{text}.0")
    }
}

struct InjectorState {
    ops: u64,
    /// Deterministic mode: armed and waiting for an applicable op.
    armed: bool,
    fired: bool,
    /// Remaining accepts to sever after a partition fired.
    partition_left: u32,
}

/// Counts network operations across every channel of a [`FaultNet`] and
/// decides which op a fault strikes. Cloning shares the counter, so one
/// injector can cover a daemon, its clients, and its workers at once.
#[derive(Clone)]
pub struct FaultInjector {
    cfg: Arc<NetFaultConfig>,
    state: Arc<parking_lot::Mutex<InjectorState>>,
}

impl FaultInjector {
    /// A fresh injector over `cfg`, op counter at zero.
    pub fn new(cfg: NetFaultConfig) -> FaultInjector {
        FaultInjector {
            cfg: Arc::new(cfg),
            state: Arc::new(parking_lot::Mutex::new(InjectorState {
                ops: 0,
                armed: false,
                fired: false,
                partition_left: 0,
            })),
        }
    }

    /// Network operations counted so far (counting mode reads this after
    /// a fault-free run to learn the walk range).
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Whether the deterministic fault has fired.
    pub fn fired(&self) -> bool {
        self.state.lock().fired
    }

    /// Counts one op of `class` and returns the fault striking it, if
    /// any. In deterministic mode the plan arms at op `at` and fires at
    /// the first op its kind applies to, so a `partition` plan armed on a
    /// send op still strikes the next accept.
    fn decide(&self, class: OpClass) -> Option<NetFaultKind> {
        let mut state = self.state.lock();
        state.ops += 1;
        let op = state.ops;
        if self.cfg.at > 0 {
            let kind = self.cfg.kind?;
            if state.fired {
                return None;
            }
            if op >= self.cfg.at {
                state.armed = true;
            }
            if state.armed && kind.applies_to(class) {
                state.fired = true;
                state.armed = false;
                if kind == NetFaultKind::Partition {
                    state.partition_left = (mix(self.cfg.seed, op, 11) % 3) as u32;
                }
                return Some(kind);
            }
            return None;
        }
        for (index, (kind, ppm)) in self.cfg.rates.iter().enumerate() {
            if !kind.applies_to(class) {
                continue;
            }
            if mix(self.cfg.seed, op, index as u64) % 1_000_000 < u64::from(*ppm) {
                if *kind == NetFaultKind::Partition {
                    state.partition_left = (mix(self.cfg.seed, op, 11) % 3) as u32;
                }
                return Some(*kind);
            }
        }
        None
    }

    /// Accept-path check: counts the accept op and says whether this
    /// connection is severed by a partition (either the partition fault
    /// striking now, or the tail of one that just fired).
    fn partitioned_accept(&self) -> bool {
        if self.decide(OpClass::Accept) == Some(NetFaultKind::Partition) {
            return true;
        }
        let mut state = self.state.lock();
        if state.partition_left > 0 {
            state.partition_left -= 1;
            return true;
        }
        false
    }

    /// Counts a connect op (no fault kinds strike connects directly; the
    /// op still advances the deterministic walk).
    fn note_connect(&self) {
        let _ = self.decide(OpClass::Connect);
    }

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn delay(&self) -> Duration {
        Duration::from_millis(self.cfg.delay_ms)
    }
}

/// Where [`FaultWriter`] writes frames, with an optional hard-close hook
/// for [`NetFaultKind::Reset`].
pub trait FrameSink: Send {
    /// Writes and flushes `bytes`.
    ///
    /// # Errors
    ///
    /// Underlying I/O errors.
    fn write_frame_bytes(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Abruptly closes the channel, where the medium supports it.
    ///
    /// # Errors
    ///
    /// Underlying I/O errors.
    fn reset(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl FrameSink for TcpStream {
    fn write_frame_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.write_all(bytes)?;
        self.flush()
    }

    fn reset(&mut self) -> io::Result<()> {
        self.shutdown(Shutdown::Both)
    }
}

impl FrameSink for Box<dyn Write + Send> {
    fn write_frame_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.write_all(bytes)?;
        self.flush()
    }
}

/// Lifecycle of a perturbed send channel.
enum SendState {
    Healthy,
    /// Every further write is silently swallowed.
    HalfOpen,
    /// The channel was hard-closed; further writes error.
    Reset,
}

/// A frame writer that optionally routes every send through a
/// [`FaultInjector`]. With no injector it is a plain write-and-flush —
/// the production path pays one `Option` check.
pub struct FaultWriter<S: FrameSink> {
    sink: S,
    injector: Option<FaultInjector>,
    /// A reordered frame waiting to follow its successor out.
    pending: Option<Vec<u8>>,
    state: SendState,
}

impl<S: FrameSink> FaultWriter<S> {
    /// Wraps `sink`; `injector` of `None` means no perturbation.
    pub fn new(sink: S, injector: Option<FaultInjector>) -> FaultWriter<S> {
        FaultWriter {
            sink,
            injector,
            pending: None,
            state: SendState::Healthy,
        }
    }

    /// Sends one already-encoded frame, applying whatever fault the
    /// injector assigns this op.
    ///
    /// # Errors
    ///
    /// Underlying I/O errors, and [`io::ErrorKind::ConnectionReset`]
    /// after a reset fault.
    pub fn send_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        match self.state {
            SendState::Healthy => {}
            SendState::HalfOpen => return Ok(()),
            SendState::Reset => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "netfault: connection reset",
                ))
            }
        }
        let Some(injector) = self.injector.clone() else {
            return self.write_through(frame);
        };
        let Some(kind) = injector.decide(OpClass::Send) else {
            return self.write_through(frame);
        };
        let op = injector.ops();
        let seed = injector.seed();
        match kind {
            NetFaultKind::Drop => Ok(()),
            NetFaultKind::Dup => {
                self.write_through(frame)?;
                self.write_through(frame)
            }
            NetFaultKind::Reorder => {
                let displaced = self.pending.replace(frame.to_vec());
                match displaced {
                    Some(bytes) => self.sink.write_frame_bytes(&bytes),
                    None => Ok(()),
                }
            }
            NetFaultKind::Delay => {
                std::thread::sleep(injector.delay());
                self.write_through(frame)
            }
            NetFaultKind::Truncate => {
                let cut = cut_point(seed, op, frame.len());
                self.sink.write_frame_bytes(&frame[..cut])
            }
            NetFaultKind::Corrupt => {
                let mut bytes = frame.to_vec();
                if bytes.len() > 1 {
                    // Never the trailing newline: a merged frame boundary
                    // is the truncate fault's job, not corruption's.
                    let pos = (mix(seed, op, 5) as usize) % (bytes.len() - 1);
                    bytes[pos] ^= 1 << (mix(seed, op, 6) % 8);
                }
                self.write_through(&bytes)
            }
            NetFaultKind::Reset => {
                let cut = cut_point(seed, op, frame.len());
                let _ = self.sink.write_frame_bytes(&frame[..cut]);
                let _ = self.sink.reset();
                self.state = SendState::Reset;
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "netfault: connection reset mid-frame",
                ))
            }
            NetFaultKind::HalfOpen => {
                self.state = SendState::HalfOpen;
                Ok(())
            }
            // Partition never applies to sends; deliver normally.
            NetFaultKind::Partition => self.write_through(frame),
        }
    }

    /// Writes `frame`, then flushes out any frame a reorder displaced.
    fn write_through(&mut self, frame: &[u8]) -> io::Result<()> {
        self.sink.write_frame_bytes(frame)?;
        if let Some(held) = self.pending.take() {
            self.sink.write_frame_bytes(&held)?;
        }
        Ok(())
    }
}

impl<S: FrameSink> Drop for FaultWriter<S> {
    fn drop(&mut self) {
        // A frame still held by a reorder leaves with the channel — the
        // fault delays frames, it does not invent frame loss.
        if let (Some(held), SendState::Healthy) = (self.pending.take(), &self.state) {
            let _ = self.sink.write_frame_bytes(&held);
        }
    }
}

/// A seeded partial-write point: at least one byte short of `len`.
fn cut_point(seed: u64, op: u64, len: usize) -> usize {
    if len <= 1 {
        return 0;
    }
    (mix(seed, op, 7) as usize) % (len - 1)
}

/// The fault-injecting transport: real TCP with every channel's ops
/// counted through one shared [`FaultInjector`]. Clones share the
/// injector, so the harness hands the same `FaultNet` to the daemon and
/// its clients and gets one global op ordering.
#[derive(Clone)]
pub struct FaultNet {
    injector: FaultInjector,
}

impl fmt::Debug for FaultNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultNet")
            .field("cfg", &self.injector.cfg)
            .field("ops", &self.injector.ops())
            .finish()
    }
}

impl FaultNet {
    /// A fault net over `cfg`.
    pub fn new(cfg: NetFaultConfig) -> FaultNet {
        FaultNet {
            injector: FaultInjector::new(cfg),
        }
    }

    /// The shared injector (for op counts and worker-side wiring).
    pub fn injector(&self) -> FaultInjector {
        self.injector.clone()
    }
}

impl Transport for FaultNet {
    fn connect(&self, addr: &str, timeout: Duration) -> io::Result<Box<dyn Conn>> {
        self.injector.note_connect();
        Ok(Box::new(NetConn::new(
            tcp_connect(addr, timeout)?,
            Some(self.injector.clone()),
        )?))
    }

    fn listen(&self, addr: &str) -> io::Result<Box<dyn Listener>> {
        Ok(Box::new(NetListener {
            inner: bind(addr)?,
            injector: Some(self.injector.clone()),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read_all(bytes: Vec<u8>) -> Vec<FrameRead> {
        let mut reader = FrameReader::new(Cursor::new(bytes));
        let mut out = Vec::new();
        loop {
            let read = reader.read_frame().unwrap();
            if read == FrameRead::Eof {
                return out;
            }
            out.push(read);
        }
    }

    #[test]
    fn frames_roundtrip() {
        let payloads = ["", "{\"op\":\"status\"}", "newline \\n escape", "unicode ✓"];
        let mut stream = Vec::new();
        for p in payloads {
            stream.extend_from_slice(&encode_frame(p));
        }
        let reads = read_all(stream);
        assert_eq!(
            reads,
            payloads
                .iter()
                .map(|p| FrameRead::Frame((*p).to_string()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn corrupt_frame_reports_and_resyncs() {
        let mut stream = encode_frame("first");
        let mut bad = encode_frame("second");
        let len = bad.len();
        bad[len / 2] ^= 0x40; // flip a payload bit
        stream.extend_from_slice(&bad);
        stream.extend_from_slice(&encode_frame("third"));
        let reads = read_all(stream);
        assert_eq!(reads[0], FrameRead::Frame("first".into()));
        assert!(matches!(reads[1], FrameRead::Malformed(_)), "{reads:?}");
        assert!(
            reads.contains(&FrameRead::Frame("third".into())),
            "{reads:?}"
        );
    }

    #[test]
    fn truncated_frame_resyncs_on_next_magic() {
        let mut stream = encode_frame("whole frame");
        let torn = encode_frame("torn frame payload");
        stream.extend_from_slice(&torn[..torn.len() / 2]);
        stream.extend_from_slice(&encode_frame("after the tear"));
        let reads = read_all(stream);
        assert_eq!(reads[0], FrameRead::Frame("whole frame".into()));
        assert!(
            reads.contains(&FrameRead::Frame("after the tear".into())),
            "{reads:?}"
        );
        assert!(reads.iter().any(|r| matches!(r, FrameRead::Malformed(_))));
    }

    #[test]
    fn garbage_lines_do_not_desync() {
        let mut stream = Vec::new();
        stream.extend_from_slice(b"this is not a frame at all\n");
        stream.extend_from_slice(&encode_frame("real"));
        stream.extend_from_slice(b"{\"op\":\"status\"}\n"); // legacy NDJSON
        stream.extend_from_slice(&encode_frame("also real"));
        let reads = read_all(stream);
        let frames: Vec<_> = reads
            .iter()
            .filter(|r| matches!(r, FrameRead::Frame(_)))
            .collect();
        assert_eq!(
            frames,
            [
                &FrameRead::Frame("real".into()),
                &FrameRead::Frame("also real".into())
            ]
        );
    }

    #[test]
    fn oversized_frames_are_rejected_with_bounded_memory() {
        let stream = format!("GF1 {} 00000000\n", MAX_FRAME + 1);
        let reads = read_all(stream.into_bytes());
        match &reads[0] {
            FrameRead::Malformed(detail) => {
                assert!(detail.contains("65536"), "{detail}");
            }
            other => panic!("expected malformed, got {other:?}"),
        }
        // Endless headerless garbage stays bounded too (no newline ever).
        struct Garbage(u64);
        impl Read for Garbage {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    return Ok(0);
                }
                self.0 -= 1;
                buf.fill(b'x');
                Ok(buf.len())
            }
        }
        let mut reader = FrameReader::new(Garbage(64));
        let mut malformed = 0;
        loop {
            match reader.read_frame().unwrap() {
                FrameRead::Eof => break,
                FrameRead::Malformed(_) => malformed += 1,
                FrameRead::Frame(f) => panic!("garbage produced a frame: {f}"),
            }
            assert!(reader.buf.len() <= MAX_FRAME + MAX_HEADER + 4096);
        }
        assert!(malformed > 0);
    }

    #[test]
    fn net_fault_config_roundtrips() {
        let specs = [
            "at=12,kind=reset,seed=3",
            "at=1,kind=half-open,seed=0",
            "drop=0.05,seed=7",
            "drop=0.2,dup=0.1,corrupt=0.01,seed=9",
            "delay=1.0,seed=2,delay-ms=10",
        ];
        for spec in specs {
            let config = NetFaultConfig::decode(spec).unwrap_or_else(|| panic!("decode {spec}"));
            assert_eq!(
                NetFaultConfig::decode(&config.encode()),
                Some(config.clone()),
                "roundtrip {spec}"
            );
        }
    }

    #[test]
    fn net_fault_config_rejects_garbage() {
        for bad in [
            "",
            "seed=1",                 // neither mode
            "at=3,seed=1",            // deterministic without kind
            "kind=drop,seed=1",       // kind without at
            "at=3,kind=melt,seed=1",  // unknown kind
            "drop=1.5,seed=1",        // rate out of range
            "drop=0.1,at=3,kind=dup", // mixed modes
            "bogus=1,seed=2",         // unknown key
            "drop=x,seed=1",          // malformed rate
        ] {
            assert_eq!(NetFaultConfig::decode(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn deterministic_injector_fires_once_at_first_applicable_op() {
        let injector = FaultInjector::new(NetFaultConfig::plan(3, NetFaultKind::Drop, 1));
        assert_eq!(injector.decide(OpClass::Send), None);
        // Op 3 is an accept: the plan arms there but `drop` cannot fire
        // on an accept, so it stays armed until the next send.
        assert_eq!(injector.decide(OpClass::Send), None);
        assert_eq!(injector.decide(OpClass::Accept), None);
        assert_eq!(injector.decide(OpClass::Send), Some(NetFaultKind::Drop));
        assert_eq!(injector.decide(OpClass::Send), None);
        assert!(injector.fired());
        assert_eq!(injector.ops(), 5);
    }

    #[test]
    fn counting_mode_never_fires() {
        let injector = FaultInjector::new(NetFaultConfig::counting());
        for _ in 0..100 {
            assert_eq!(injector.decide(OpClass::Send), None);
        }
        assert_eq!(injector.ops(), 100);
        assert!(!injector.fired());
    }

    #[test]
    fn rate_mode_is_seeded_and_plausible() {
        let cfg = NetFaultConfig::decode("drop=0.5,seed=4").unwrap();
        let roll = |seed_cfg: &NetFaultConfig| {
            let injector = FaultInjector::new(seed_cfg.clone());
            (0..200)
                .map(|_| injector.decide(OpClass::Send))
                .filter(Option::is_some)
                .count()
        };
        let hits = roll(&cfg);
        assert!((50..150).contains(&hits), "drop=0.5 hit {hits}/200");
        assert_eq!(hits, roll(&cfg), "same seed, same schedule");
        let other = NetFaultConfig::decode("drop=0.5,seed=5").unwrap();
        assert_ne!(hits, roll(&other), "different seed, different schedule");
    }

    /// In-memory sink recording writes, for fault-writer semantics.
    #[derive(Default)]
    struct MemSink {
        writes: Vec<Vec<u8>>,
        resets: usize,
    }
    impl FrameSink for &mut MemSink {
        fn write_frame_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
            self.writes.push(bytes.to_vec());
            Ok(())
        }
        fn reset(&mut self) -> io::Result<()> {
            self.resets += 1;
            Ok(())
        }
    }

    fn perturbed(kind: NetFaultKind, at: u64, frames: &[&str]) -> MemSink {
        let mut sink = MemSink::default();
        {
            let injector = FaultInjector::new(NetFaultConfig::plan(at, kind, 3));
            let mut writer = FaultWriter::new(&mut sink, Some(injector));
            for frame in frames {
                let _ = writer.send_frame(&encode_frame(frame));
            }
        }
        sink
    }

    #[test]
    fn fault_writer_drop_dup_reorder_semantics() {
        let sink = perturbed(NetFaultKind::Drop, 2, &["a", "b", "c"]);
        assert_eq!(sink.writes.len(), 2, "one frame swallowed");

        let sink = perturbed(NetFaultKind::Dup, 2, &["a", "b", "c"]);
        assert_eq!(sink.writes.len(), 4, "one frame doubled");
        assert_eq!(sink.writes[1], sink.writes[2]);

        let sink = perturbed(NetFaultKind::Reorder, 2, &["a", "b", "c"]);
        assert_eq!(sink.writes.len(), 3);
        assert_eq!(sink.writes[0], encode_frame("a"));
        assert_eq!(sink.writes[1], encode_frame("c"), "b held back past c");
        assert_eq!(sink.writes[2], encode_frame("b"));

        // A reordered frame still leaves when the channel closes.
        let sink = perturbed(NetFaultKind::Reorder, 2, &["a", "b"]);
        assert_eq!(sink.writes.len(), 2);
        assert_eq!(sink.writes[1], encode_frame("b"));
    }

    #[test]
    fn fault_writer_reset_and_half_open_semantics() {
        let mut sink = MemSink::default();
        {
            let injector = FaultInjector::new(NetFaultConfig::plan(2, NetFaultKind::Reset, 3));
            let mut writer = FaultWriter::new(&mut sink, Some(injector));
            assert!(writer.send_frame(&encode_frame("a")).is_ok());
            let err = writer.send_frame(&encode_frame("b")).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
            let err = writer.send_frame(&encode_frame("c")).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        }
        assert_eq!(sink.resets, 1);
        let partial = &sink.writes[1];
        assert!(partial.len() < encode_frame("b").len(), "mid-frame cut");

        let sink = perturbed(NetFaultKind::HalfOpen, 2, &["a", "b", "c", "d"]);
        assert_eq!(sink.writes.len(), 1, "half-open swallows silently");
    }

    #[test]
    fn fault_writer_corrupt_and_truncate_are_caught_by_reader() {
        for kind in [NetFaultKind::Corrupt, NetFaultKind::Truncate] {
            let sink = perturbed(kind, 2, &["alpha", "beta", "gamma"]);
            let stream: Vec<u8> = sink.writes.concat();
            let reads = read_all(stream);
            assert!(
                reads.iter().any(|r| matches!(r, FrameRead::Malformed(_))),
                "{kind:?}: {reads:?}"
            );
            assert!(
                reads.contains(&FrameRead::Frame("alpha".into())),
                "{kind:?}"
            );
            assert!(
                reads.contains(&FrameRead::Frame("gamma".into())),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn real_net_roundtrips_over_tcp() {
        let net = RealNet;
        let listener = net.listen("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let conn = loop {
                if let Some(conn) = listener.accept().unwrap() {
                    break conn;
                }
                std::thread::sleep(Duration::from_millis(5));
            };
            let mut conn = conn;
            match conn.recv().unwrap() {
                FrameRead::Frame(payload) => {
                    conn.send(&format!("echo {payload}")).unwrap();
                }
                other => panic!("server got {other:?}"),
            }
        });
        let mut conn = net.connect(&addr, Duration::from_secs(2)).unwrap();
        conn.send("ping").unwrap();
        assert_eq!(conn.recv().unwrap(), FrameRead::Frame("echo ping".into()));
        server.join().unwrap();
    }

    #[test]
    fn half_open_peer_turns_into_a_read_timeout() {
        let fault = FaultNet::new(NetFaultConfig::plan(1, NetFaultKind::HalfOpen, 3));
        let listener = fault.listen("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut conn = loop {
                if let Some(conn) = listener.accept().unwrap() {
                    break conn;
                }
                std::thread::sleep(Duration::from_millis(5));
            };
            // Both sends vanish into the half-open channel.
            let _ = conn.send("one");
            let _ = conn.send("two");
            std::thread::sleep(Duration::from_millis(400));
        });
        let mut conn = RealNet.connect(&addr, Duration::from_secs(2)).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(150)))
            .unwrap();
        let err = conn.recv().unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "{err:?}"
        );
        server.join().unwrap();
    }
}
