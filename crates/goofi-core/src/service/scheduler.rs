//! Job scheduling: shard leases, heartbeats, poison quarantine, journal
//! merge, and daemon-restart recovery.
//!
//! One [`Scheduler`] owns one database and a spool directory next to it.
//! Each submitted campaign becomes a *job* with a durable manifest in
//! `<spool>/job-<n>/`; a runner thread partitions the campaign's
//! experiment index space into shards ([`super::partition`]) and drives
//! one worker OS process per shard:
//!
//! - **Lease + heartbeat.** A running shard holds a lease that is renewed
//!   whenever its worker reports *changed* counters on stdout. A worker
//!   that exits without finishing, hangs past the lease deadline, or
//!   reports `target-offline` has its lease revoked: the process is
//!   killed (if still alive) and the shard goes back to pending with
//!   exponential backoff ([`crate::policy::Backoff`]) — the process-level
//!   generalisation of the parallel runner's worker retirement.
//! - **Poison shards.** A shard failing [`ServiceConfig::poison_after`]
//!   consecutive leases is quarantined instead of wedging the job: every
//!   experiment it still owes is recorded in its journal as a
//!   `Validity::Invalid` stub plus a `parentExperiment`-linked
//!   `…/rerun1` stub, and the job completes around it.
//! - **Merge.** When every shard is done or poisoned, the shard journals
//!   are folded into the database in shard order through the idempotent
//!   [`dbio::import_journal`] path. Journals carry global experiment
//!   indices and each contains its own (identical, deduplicated)
//!   reference run, so at-least-once execution still merges to a
//!   database essence-equal to a serial run.
//! - **Restart recovery.** [`Scheduler::recover`] re-runs every spooled
//!   job without a `done` marker; shard journals make the replay
//!   idempotent, so a killed daemon resumes mid-flight jobs where they
//!   stopped.

use super::chaos::ChaosConfig;
use super::net::{FrameRead, FrameReader, NetFaultConfig};
use super::wire::WorkerEvent;
use crate::campaign::Campaign;
use crate::dbio;
use crate::journal::ExperimentJournal;
use crate::logging::{ExperimentRecord, StateSnapshot, TerminationCause, Validity};
use crate::policy::Backoff;
use crate::vfs::{self, Vfs, VfsHandle};
use crate::{GoofiError, Result};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a spawned worker process is invoked: a program plus fixed argument
/// prefix, to which the scheduler appends the per-shard `--db/--shard/…`
/// flags. The daemon uses its own executable with a `worker` prefix; the
/// test suite points this at a `goofi-mock-worker` binary instead.
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    /// Program to spawn.
    pub program: PathBuf,
    /// Arguments placed before the worker flags (e.g. `["worker"]`).
    pub args: Vec<String>,
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The shared campaign database.
    pub db_path: PathBuf,
    /// Spool directory for job manifests and shard journals; created on
    /// [`Scheduler::new`]. Defaults to `<db>.spool`.
    pub spool_dir: PathBuf,
    /// How shard workers are spawned.
    pub worker_cmd: WorkerCommand,
    /// Default shard count for jobs that do not specify one.
    pub default_workers: usize,
    /// Lease duration: a running shard whose counters have not changed
    /// for this long is considered hung and its lease revoked.
    pub lease: Duration,
    /// Consecutive lease failures after which a shard is quarantined as
    /// poison.
    pub poison_after: u32,
    /// Delay schedule between lease reassignments of a failing shard.
    pub backoff: Backoff,
    /// Seeded chaos drill passed to every spawned worker.
    pub chaos: Option<ChaosConfig>,
    /// Seeded network-fault drill passed to every spawned worker: the
    /// worker perturbs its own event frames, exercising the daemon's
    /// frame resync and sequence dedup (`goofi serve --net-chaos`).
    pub net_chaos: Option<NetFaultConfig>,
    /// Filesystem all scheduler persistence goes through — [`vfs::real`]
    /// in production, a fault-injecting [`crate::vfs::FaultFs`] in the
    /// durability torture harness.
    pub vfs: VfsHandle,
}

impl ServiceConfig {
    /// A config with service defaults: `<db>.spool` spool directory,
    /// 2 workers, 5 s leases, poison after 3 failures, 50→2000 ms
    /// exponential backoff, no chaos.
    pub fn new(db_path: impl Into<PathBuf>, worker_cmd: WorkerCommand) -> Self {
        let db_path = db_path.into();
        let spool_dir = PathBuf::from(format!("{}.spool", db_path.display()));
        ServiceConfig {
            db_path,
            spool_dir,
            worker_cmd,
            default_workers: 2,
            lease: Duration::from_secs(5),
            poison_after: 3,
            backoff: Backoff::exponential(50, 2_000),
            chaos: None,
            net_chaos: None,
            vfs: vfs::real(),
        }
    }
}

/// What [`Scheduler::recover`] did with the spool.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoverOutcome {
    /// Jobs restarted from their manifests.
    pub resumed: Vec<String>,
    /// Job directories with damaged manifests, renamed aside to
    /// `quarantined-<id>` instead of failing startup.
    pub quarantined: Vec<String>,
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, runner not started yet.
    Queued,
    /// Shards in flight.
    Running,
    /// All shards done or poisoned; journals merged into the database.
    Done,
    /// The job itself failed (bad campaign, database I/O, …).
    Failed,
}

impl JobState {
    /// Wire encoding (`queued`/`running`/`done`/`failed`).
    pub fn encode(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// Whether the job has finished (successfully or not).
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }
}

/// Aggregated live progress of a job across its shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobProgress {
    /// Lifecycle state.
    pub state: JobState,
    /// Experiments in the campaign.
    pub total: usize,
    /// Experiments completed across all shards (journal replays count).
    pub completed: usize,
    /// Experiments failed.
    pub failed: usize,
    /// Experiments skipped.
    pub skipped: usize,
    /// Records quarantined (workers' own plus poison-shard stubs).
    pub quarantined: usize,
    /// Shards finished.
    pub shards_done: usize,
    /// Shards total.
    pub shards_total: usize,
    /// Shards quarantined as poison.
    pub shards_poisoned: usize,
    /// Failure detail when `state` is [`JobState::Failed`], else empty.
    pub detail: String,
}

impl JobProgress {
    fn new() -> Self {
        JobProgress {
            state: JobState::Queued,
            total: 0,
            completed: 0,
            failed: 0,
            skipped: 0,
            quarantined: 0,
            shards_done: 0,
            shards_total: 0,
            shards_poisoned: 0,
            detail: String::new(),
        }
    }
}

/// Watch handle on one job: current progress, blocking change waits, and
/// the sequence-numbered update history that makes watch streams
/// resumable after a lost connection.
#[derive(Clone)]
pub struct JobWatcher {
    shared: Arc<JobShared>,
}

impl JobWatcher {
    /// The job's current aggregated progress.
    pub fn current(&self) -> JobProgress {
        self.shared.inner.lock().current.clone()
    }

    /// The current progress with its sequence number (0 until the first
    /// update).
    pub fn snapshot(&self) -> (u64, JobProgress) {
        let h = self.shared.inner.lock();
        (h.seq, h.current.clone())
    }

    /// Every retained update with a sequence number greater than `after`,
    /// oldest first. Updates are cumulative snapshots, so even if the
    /// history ring has trimmed entries past `after`, replaying what is
    /// returned converges the watcher on the current state.
    pub fn since(&self, after: u64) -> Vec<(u64, JobProgress)> {
        self.shared
            .inner
            .lock()
            .ring
            .iter()
            .filter(|(seq, _)| *seq > after)
            .cloned()
            .collect()
    }

    /// Blocks until an update with a sequence number greater than
    /// `last_seq` exists or `timeout` elapses; returns the current
    /// snapshot either way.
    pub fn wait_newer(&self, last_seq: u64, timeout: Duration) -> (u64, JobProgress) {
        let deadline = Instant::now() + timeout;
        let mut h = self.shared.inner.lock();
        while h.seq <= last_seq {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if self
                .shared
                .changed
                .wait_for(&mut h, deadline - now)
                .timed_out()
            {
                break;
            }
        }
        (h.seq, h.current.clone())
    }

    /// Blocks until the progress differs from `last` or `timeout`
    /// elapses; returns the current progress either way.
    pub fn wait_changed(&self, last: &JobProgress, timeout: Duration) -> JobProgress {
        let deadline = Instant::now() + timeout;
        let mut h = self.shared.inner.lock();
        while h.current == *last {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if self
                .shared
                .changed
                .wait_for(&mut h, deadline - now)
                .timed_out()
            {
                break;
            }
        }
        h.current.clone()
    }

    /// Blocks until the job reaches a terminal state.
    pub fn wait(&self) -> JobProgress {
        let mut last = JobProgress::new();
        loop {
            let p = self.wait_changed(&last, Duration::from_millis(500));
            if p.state.is_terminal() {
                return p;
            }
            last = p;
        }
    }
}

/// Updates retained for watch-stream resume. Jobs emit one update per
/// aggregate change, so this comfortably covers any realistic
/// reconnect window; beyond it, cumulative snapshots still converge.
const HISTORY_RING: usize = 1024;

struct JobHistory {
    /// Sequence number of the latest update; 0 means "no update yet".
    seq: u64,
    current: JobProgress,
    ring: VecDeque<(u64, JobProgress)>,
}

struct JobShared {
    inner: Mutex<JobHistory>,
    changed: Condvar,
}

impl JobShared {
    fn new() -> Self {
        JobShared {
            inner: Mutex::new(JobHistory {
                seq: 0,
                current: JobProgress::new(),
                ring: VecDeque::new(),
            }),
            changed: Condvar::new(),
        }
    }

    /// Applies `mutate`; if it actually changed the progress, assigns the
    /// next sequence number and records the update in the history ring.
    /// No-op mutations do not bump the sequence, so keepalive resends
    /// stay deduplicable by seq.
    fn set(&self, mutate: impl FnOnce(&mut JobProgress)) {
        let mut h = self.inner.lock();
        let before = h.current.clone();
        mutate(&mut h.current);
        if h.current == before {
            return;
        }
        h.seq += 1;
        let entry = (h.seq, h.current.clone());
        h.ring.push_back(entry);
        if h.ring.len() > HISTORY_RING {
            h.ring.pop_front();
        }
        self.changed.notify_all();
    }
}

struct JobEntry {
    campaign: String,
    workers: usize,
    shared: Arc<JobShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

struct SchedShared {
    cfg: ServiceConfig,
    jobs: Mutex<BTreeMap<String, JobEntry>>,
    /// Request id → job id, the server-side half of idempotent submits:
    /// a client retrying a submission whose `accepted` response was lost
    /// gets the original job back instead of a duplicate. Persisted in
    /// each job's manifest and repopulated by [`Scheduler::recover`].
    requests: Mutex<BTreeMap<String, String>>,
    /// Serialises read-modify-write cycles on the shared database file.
    db_lock: Mutex<()>,
    /// Set by [`Scheduler::shutdown`]: runner threads kill their workers
    /// and return without completing (manifests stay, so a later
    /// [`Scheduler::recover`] resumes the jobs).
    aborted: AtomicBool,
    next_job: AtomicU64,
}

/// The campaign-service scheduler. See the module docs for the protocol.
pub struct Scheduler {
    shared: Arc<SchedShared>,
}

impl Scheduler {
    /// Creates a scheduler over `cfg`, creating the spool directory and
    /// seeding the job-id counter past any spooled jobs.
    ///
    /// # Errors
    ///
    /// Spool directory I/O errors.
    pub fn new(cfg: ServiceConfig) -> Result<Scheduler> {
        cfg.vfs
            .create_dir_all(&cfg.spool_dir)
            .map_err(|e| GoofiError::io("creating spool dir", &cfg.spool_dir, &e))?;
        let mut max_id = 0;
        for id in spooled_job_ids(cfg.vfs.as_ref(), &cfg.spool_dir)? {
            if let Some(n) = id.strip_prefix("job-").and_then(|n| n.parse::<u64>().ok()) {
                max_id = max_id.max(n);
            }
        }
        Ok(Scheduler {
            shared: Arc::new(SchedShared {
                cfg,
                jobs: Mutex::new(BTreeMap::new()),
                requests: Mutex::new(BTreeMap::new()),
                db_lock: Mutex::new(()),
                aborted: AtomicBool::new(false),
                next_job: AtomicU64::new(max_id + 1),
            }),
        })
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.cfg
    }

    /// Submits the named campaign as a new job over `workers` shards
    /// (0 = the config default). Validates the campaign against the
    /// database, writes the job manifest, and starts the runner thread.
    ///
    /// # Errors
    ///
    /// Unknown campaign, database, or spool I/O errors.
    pub fn submit(&self, campaign: &str, workers: usize) -> Result<String> {
        self.submit_request(None, campaign, workers)
    }

    /// [`Scheduler::submit`] with an optional client request id, the
    /// idempotency token of the wire protocol: resubmitting an id this
    /// scheduler has already accepted returns the existing job instead of
    /// starting a duplicate, so clients may blindly retry a submit whose
    /// acknowledgement was lost in flight. Accepted ids survive daemon
    /// restarts via the job manifest.
    ///
    /// # Errors
    ///
    /// Unknown campaign, malformed request id, database, or spool I/O
    /// errors.
    pub fn submit_request(
        &self,
        request_id: Option<&str>,
        campaign: &str,
        workers: usize,
    ) -> Result<String> {
        self.submit_request_for_target(request_id, campaign, workers, None)
    }

    /// [`Scheduler::submit_request`] with an expected target system: the
    /// submission is rejected when the stored campaign names a different
    /// one, so a client's `--target` flag acts as a cross-check rather
    /// than an override — the campaign, not the submitter, owns the
    /// choice of CPU.
    ///
    /// # Errors
    ///
    /// As [`Scheduler::submit_request`], plus [`GoofiError::Config`] on a
    /// target-system mismatch.
    pub fn submit_request_for_target(
        &self,
        request_id: Option<&str>,
        campaign: &str,
        workers: usize,
        target: Option<&str>,
    ) -> Result<String> {
        // Held across the whole submit so two racing retries of the same
        // request id cannot both miss the map and double-submit.
        let mut requests = self.shared.requests.lock();
        if let Some(rid) = request_id {
            if rid.contains(|c: char| c.is_whitespace() || c.is_control()) {
                return Err(GoofiError::Wire(format!(
                    "request id `{}` contains whitespace or control characters",
                    rid.escape_default()
                )));
            }
            if let Some(job) = requests.get(rid) {
                return Ok(job.clone());
            }
        }
        let cfg = &self.shared.cfg;
        // Fail fast on bad submissions, before anything durable exists.
        let db = dbio::load_database(cfg.vfs.as_ref(), &cfg.db_path)?;
        let stored = dbio::load_campaign(&db, campaign)?;
        if let Some(want) = target {
            if stored.target_system != want {
                return Err(GoofiError::Config(format!(
                    "campaign `{campaign}` targets `{}`, not `{want}`",
                    stored.target_system
                )));
            }
        }
        drop(db);

        let id = format!(
            "job-{}",
            self.shared.next_job.fetch_add(1, Ordering::Relaxed)
        );
        let dir = cfg.spool_dir.join(&id);
        cfg.vfs
            .create_dir_all(&dir)
            .map_err(|e| GoofiError::io("creating job dir", &dir, &e))?;
        let workers = if workers == 0 {
            cfg.default_workers
        } else {
            workers
        };
        write_manifest(cfg.vfs.as_ref(), &dir, campaign, workers, request_id)?;
        self.start_job(&id, campaign, workers);
        if let Some(rid) = request_id {
            requests.insert(rid.to_string(), id.clone());
        }
        Ok(id)
    }

    /// Re-runs every spooled job without a `done` marker — the daemon's
    /// restart path. Shard journals make the replay idempotent.
    ///
    /// A job directory whose manifest is damaged does not fail the whole
    /// startup: the directory is renamed to `quarantined-<id>` (which this
    /// scan skips forever after) and reported in
    /// [`RecoverOutcome::quarantined`] — the salvage-and-quarantine
    /// discipline of `goofi fsck`, applied at the one place a daemon
    /// restart meets damaged state.
    ///
    /// # Errors
    ///
    /// Spool I/O errors.
    pub fn recover(&self) -> Result<RecoverOutcome> {
        let cfg = &self.shared.cfg;
        let mut outcome = RecoverOutcome::default();
        for id in spooled_job_ids(cfg.vfs.as_ref(), &cfg.spool_dir)? {
            let dir = cfg.spool_dir.join(&id);
            if self.shared.jobs.lock().contains_key(&id) {
                continue;
            }
            let done = cfg.vfs.exists(&dir.join("done"));
            match read_manifest(cfg.vfs.as_ref(), &dir) {
                Ok((campaign, workers, request_id)) => {
                    if let Some(rid) = request_id {
                        // Re-arm submit dedup across the restart, so a
                        // client still retrying an old submission does
                        // not fork a second job — completed jobs
                        // included, since retries outlive completions.
                        self.shared.requests.lock().insert(rid, id.clone());
                    }
                    if done {
                        // Finished before the restart: register it as a
                        // terminal entry so status listings, watches and
                        // dedup'd resubmits resolve, but run nothing.
                        self.register_done_job(&id, &campaign, workers);
                    } else {
                        self.start_job(&id, &campaign, workers);
                        outcome.resumed.push(id);
                    }
                }
                // A finished job's manifest no longer matters; damage to
                // it is fsck's concern, not a reason to quarantine.
                Err(_) if done => {}
                Err(_) => {
                    let aside = cfg.spool_dir.join(format!("quarantined-{id}"));
                    cfg.vfs
                        .rename(&dir, &aside)
                        .map_err(|e| GoofiError::io("quarantining job dir", &dir, &e))?;
                    outcome.quarantined.push(id);
                }
            }
        }
        Ok(outcome)
    }

    /// Registers a job that completed before a restart: terminal state,
    /// no runner thread. Counters are left at zero — the merged database,
    /// not this summary, is the record of what happened.
    fn register_done_job(&self, id: &str, campaign: &str, workers: usize) {
        let shared = Arc::new(JobShared::new());
        shared.set(|p| {
            p.state = JobState::Done;
            p.detail = "completed before daemon restart".into();
        });
        self.shared.jobs.lock().insert(
            id.to_string(),
            JobEntry {
                campaign: campaign.to_string(),
                workers,
                shared,
                thread: None,
            },
        );
    }

    fn start_job(&self, id: &str, campaign: &str, workers: usize) {
        let shared = Arc::new(JobShared::new());
        let thread = {
            let sched = Arc::clone(&self.shared);
            let job_shared = Arc::clone(&shared);
            let id = id.to_string();
            let campaign = campaign.to_string();
            std::thread::spawn(move || {
                if let Err(e) = run_job(&sched, &id, &campaign, workers, &job_shared) {
                    job_shared.set(|p| {
                        p.state = JobState::Failed;
                        p.detail = e.to_string();
                    });
                }
            })
        };
        self.shared.jobs.lock().insert(
            id.to_string(),
            JobEntry {
                campaign: campaign.to_string(),
                workers,
                shared,
                thread: Some(thread),
            },
        );
    }

    /// A watch handle on a job, or `None` for unknown ids.
    pub fn watch(&self, id: &str) -> Option<JobWatcher> {
        self.shared.jobs.lock().get(id).map(|entry| JobWatcher {
            shared: Arc::clone(&entry.shared),
        })
    }

    /// `(id, campaign, progress)` of every job this scheduler knows.
    pub fn jobs(&self) -> Vec<(String, String, JobProgress)> {
        self.shared
            .jobs
            .lock()
            .iter()
            .map(|(id, entry)| {
                (
                    id.clone(),
                    entry.campaign.clone(),
                    entry.shared.inner.lock().current.clone(),
                )
            })
            .collect()
    }

    /// Declared shard count of a job (for reporting).
    pub fn job_workers(&self, id: &str) -> Option<usize> {
        self.shared.jobs.lock().get(id).map(|entry| entry.workers)
    }

    /// Stops the scheduler: runner threads kill their worker processes
    /// and return without writing completion markers, so the spool state
    /// is exactly what a crashed daemon would leave behind —
    /// [`Scheduler::recover`] on a fresh scheduler resumes the jobs.
    pub fn shutdown(&self) {
        self.shared.aborted.store(true, Ordering::Release);
        let handles: Vec<_> = self
            .shared
            .jobs
            .lock()
            .values_mut()
            .filter_map(|entry| entry.thread.take())
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Per-shard bookkeeping of the job runner loop.
enum ShardState {
    Pending {
        attempt: u32,
        not_before: Instant,
    },
    Running {
        attempt: u32,
        child: Child,
        comm: Arc<ShardComm>,
        reader: std::thread::JoinHandle<()>,
    },
    Done,
    Poisoned,
}

/// What the stdout reader thread shares with the runner loop.
struct ShardComm {
    /// Last instant the worker's counters *changed* (or hello/done/error
    /// arrived) — the lease renewal clock.
    renewed: Mutex<Instant>,
    /// Latest reported counters and terminal flags.
    stats: Mutex<ShardStats>,
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct ShardStats {
    completed: u64,
    failed: u64,
    skipped: u64,
    quarantined: u64,
    done: bool,
    error: Option<String>,
}

/// The job runner: drives all shards of one job to done-or-poisoned,
/// then merges the shard journals into the database.
fn run_job(
    sched: &SchedShared,
    id: &str,
    campaign_name: &str,
    workers: usize,
    job: &JobShared,
) -> Result<()> {
    let vfs = sched.cfg.vfs.as_ref();
    let campaign: Campaign = {
        let db = dbio::load_database(vfs, &sched.cfg.db_path)?;
        dbio::load_campaign(&db, campaign_name)?
    };
    let total = campaign.experiment_count();
    let ranges = super::partition(total, workers);
    let dir = sched.cfg.spool_dir.join(id);
    let journal_path = |shard: usize| dir.join(format!("shard-{shard}.gjl"));

    job.set(|p| {
        p.state = JobState::Running;
        p.total = total;
        p.shards_total = ranges.len();
    });

    let mut shards: Vec<ShardState> = Vec::new();
    let mut last_stats: Vec<ShardStats> = vec![ShardStats::default(); ranges.len()];
    let mut consecutive_failures: Vec<u32> = vec![0; ranges.len()];
    let mut poison_quarantined: usize = 0;
    for (shard, range) in ranges.iter().enumerate() {
        // A journal that already covers its whole range (daemon restarted
        // after the shard finished but before the merge) is done as-is.
        if shard_journal_complete(vfs, &journal_path(shard), campaign_name, range)? {
            last_stats[shard].completed = range.len() as u64;
            last_stats[shard].done = true;
            shards.push(ShardState::Done);
        } else {
            shards.push(ShardState::Pending {
                attempt: 1,
                not_before: Instant::now(),
            });
        }
    }

    loop {
        if sched.aborted.load(Ordering::Acquire) {
            for state in &mut shards {
                if let ShardState::Running { child, reader, .. } =
                    std::mem::replace(state, ShardState::Poisoned)
                {
                    kill_child(child);
                    let _ = reader.join();
                }
            }
            return Err(GoofiError::Stopped);
        }

        let mut all_settled = true;
        for shard in 0..shards.len() {
            match &mut shards[shard] {
                ShardState::Done | ShardState::Poisoned => {}
                ShardState::Pending {
                    attempt,
                    not_before,
                } => {
                    all_settled = false;
                    if Instant::now() < *not_before {
                        continue;
                    }
                    let attempt = *attempt;
                    match spawn_worker(
                        &sched.cfg,
                        campaign_name,
                        &campaign.target_system,
                        shard,
                        &ranges[shard],
                        &journal_path(shard),
                        attempt,
                    ) {
                        Ok((child, comm, reader)) => {
                            shards[shard] = ShardState::Running {
                                attempt,
                                child,
                                comm,
                                reader,
                            };
                        }
                        Err(e) => {
                            // Spawn failure counts as a failed lease.
                            shard_lease_failed(
                                sched,
                                &campaign,
                                shard,
                                &ranges[shard],
                                &journal_path(shard),
                                attempt,
                                &e.to_string(),
                                &mut shards[shard],
                                &mut consecutive_failures[shard],
                                &mut poison_quarantined,
                            )?;
                        }
                    }
                }
                ShardState::Running {
                    attempt,
                    child,
                    comm,
                    ..
                } => {
                    all_settled = false;
                    let attempt = *attempt;
                    let comm = Arc::clone(comm);
                    last_stats[shard] = comm.stats.lock().clone();
                    let exited = child.try_wait().ok().flatten();
                    let lease_expired =
                        exited.is_none() && comm.renewed.lock().elapsed() > sched.cfg.lease;
                    if exited.is_none() && !lease_expired {
                        continue;
                    }
                    // The worker exited or its lease expired: settle it.
                    let state = std::mem::replace(&mut shards[shard], ShardState::Poisoned);
                    let (child, reader) = match state {
                        ShardState::Running { child, reader, .. } => (child, reader),
                        _ => unreachable!("shard was running"),
                    };
                    let status = if lease_expired {
                        kill_child(child);
                        None
                    } else {
                        Some(child).and_then(|mut c| c.wait().ok())
                    };
                    // Join the reader before judging: the worker's final
                    // `done` frame may still be in the pipe at exit time.
                    let _ = reader.join();
                    let stats = comm.stats.lock().clone();
                    last_stats[shard] = stats.clone();
                    // The journal is the ground truth for completion; the
                    // exit status guards against a worker that "finished"
                    // while dying.
                    let finished = status
                        .as_ref()
                        .is_some_and(std::process::ExitStatus::success)
                        && shard_journal_complete(
                            vfs,
                            &journal_path(shard),
                            campaign_name,
                            &ranges[shard],
                        )?;
                    if finished {
                        consecutive_failures[shard] = 0;
                        shards[shard] = ShardState::Done;
                    } else {
                        let why = if lease_expired {
                            format!("lease expired after {:?}", sched.cfg.lease)
                        } else if let Some(e) = &stats.error {
                            e.clone()
                        } else {
                            match status {
                                Some(s) => format!("worker exited early: {s}"),
                                None => "worker vanished".into(),
                            }
                        };
                        shard_lease_failed(
                            sched,
                            &campaign,
                            shard,
                            &ranges[shard],
                            &journal_path(shard),
                            attempt,
                            &why,
                            &mut shards[shard],
                            &mut consecutive_failures[shard],
                            &mut poison_quarantined,
                        )?;
                    }
                }
            }
        }

        // Aggregate progress across shards and notify watchers on change.
        let mut agg = JobProgress::new();
        agg.state = JobState::Running;
        agg.total = total;
        agg.shards_total = ranges.len();
        for (shard, stats) in last_stats.iter().enumerate() {
            agg.completed += stats.completed as usize;
            agg.failed += stats.failed as usize;
            agg.skipped += stats.skipped as usize;
            agg.quarantined += stats.quarantined as usize;
            match shards[shard] {
                ShardState::Done => agg.shards_done += 1,
                ShardState::Poisoned => agg.shards_poisoned += 1,
                _ => {}
            }
        }
        agg.quarantined += poison_quarantined;
        // JobShared::set dedups no-op updates, so this only bumps the
        // watch sequence (and wakes watchers) on real change.
        job.set(|p| *p = agg.clone());

        if all_settled {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // Merge: fold every shard journal into the database, in shard order
    // (deterministic), through the idempotent import path.
    {
        let _db_guard = sched.db_lock.lock();
        let mut db = dbio::load_database(vfs, &sched.cfg.db_path)?;
        for shard in 0..ranges.len() {
            let path = journal_path(shard);
            if vfs.exists(&path) {
                dbio::import_journal_with(&mut db, vfs, &path, campaign_name)?;
            }
        }
        dbio::save_database(vfs, &sched.cfg.db_path, &db)?;
    }
    let done = dir.join("done");
    vfs::write_file(vfs, &done, b"done\n")
        .map_err(|e| GoofiError::io("writing done marker", &done, &e))?;
    job.set(|p| p.state = JobState::Done);
    Ok(())
}

/// Handles one failed lease: backoff-requeue, or poison the shard once it
/// has failed `poison_after` consecutive leases.
#[allow(clippy::too_many_arguments)]
fn shard_lease_failed(
    sched: &SchedShared,
    campaign: &Campaign,
    shard: usize,
    range: &std::ops::Range<usize>,
    journal: &Path,
    attempt: u32,
    why: &str,
    state: &mut ShardState,
    consecutive: &mut u32,
    poison_quarantined: &mut usize,
) -> Result<()> {
    *consecutive += 1;
    if *consecutive >= sched.cfg.poison_after {
        *poison_quarantined +=
            poison_shard(sched.cfg.vfs.as_ref(), campaign, shard, range, journal)?;
        *state = ShardState::Poisoned;
    } else {
        *state = ShardState::Pending {
            attempt: attempt + 1,
            not_before: Instant::now() + sched.cfg.backoff.delay(*consecutive),
        };
    }
    let _ = why; // recorded via poison stubs / job detail, not per-lease
    Ok(())
}

/// Quarantines a poison shard: every experiment the shard still owes gets
/// a `Validity::Invalid` stub record plus an invalid
/// `parentExperiment`-linked `…/rerun1` stub appended to its journal, so
/// the merged database documents the loss (and the rerun hook) instead of
/// the job wedging forever. Returns the number of stub records written.
fn poison_shard(
    vfs: &dyn Vfs,
    campaign: &Campaign,
    _shard: usize,
    range: &std::ops::Range<usize>,
    journal_path: &Path,
) -> Result<usize> {
    if !vfs.exists(journal_path) {
        ExperimentJournal::create_with(vfs, journal_path, &campaign.name)?;
    }
    let state = ExperimentJournal::load_with(vfs, journal_path, &campaign.name)?;
    let mut journal = ExperimentJournal::open_append_with(vfs, journal_path)?;
    let mut stubs = 0;
    for index in range.clone() {
        if state.completed.contains_key(&index) {
            continue;
        }
        let original = campaign.experiment_name(index);
        let stub = |name: String, parent: Option<String>| ExperimentRecord {
            name,
            parent,
            campaign: campaign.name.clone(),
            fault: campaign.faults.get(index).cloned(),
            termination: TerminationCause::TargetHang,
            state: StateSnapshot::default(),
            trace: Vec::new(),
            validity: Validity::Invalid,
        };
        journal.append_record(Some(index), &stub(original.clone(), None))?;
        journal.append_record(
            Some(index),
            &stub(format!("{original}/rerun1"), Some(original)),
        )?;
        stubs += 2;
    }
    Ok(stubs)
}

/// Whether a shard journal exists and covers every index in `range` with
/// a completed record. A journal that does not load — torn mid-file,
/// garbled, or not a journal at all — is salvaged (and, failing that,
/// quarantined aside) rather than failing the job: the shard simply
/// counts as incomplete and re-runs.
fn shard_journal_complete(
    vfs: &dyn Vfs,
    path: &Path,
    campaign: &str,
    range: &std::ops::Range<usize>,
) -> Result<bool> {
    if !vfs.exists(path) {
        return Ok(false);
    }
    let state = match ExperimentJournal::load_with(vfs, path, campaign) {
        Ok(state) => state,
        Err(_) => {
            crate::journal::salvage_with(vfs, path)?;
            if !vfs.exists(path) {
                // Not recognisably a journal; salvage renamed it aside.
                return Ok(false);
            }
            match ExperimentJournal::load_with(vfs, path, campaign) {
                Ok(state) => state,
                Err(_) => {
                    // Valid journal for a *different* campaign: rename it
                    // aside (never delete) and start over.
                    let mut aside = path.as_os_str().to_owned();
                    aside.push(".corrupt");
                    let aside = std::path::PathBuf::from(aside);
                    vfs.rename(path, &aside)
                        .map_err(|e| GoofiError::io("quarantining journal", path, &e))?;
                    return Ok(false);
                }
            }
        }
    };
    Ok(range
        .clone()
        .all(|index| state.completed.contains_key(&index)))
}

/// Spawns one worker process for a shard and a reader thread draining its
/// stdout into a [`ShardComm`].
fn spawn_worker(
    cfg: &ServiceConfig,
    campaign: &str,
    target_system: &str,
    shard: usize,
    range: &std::ops::Range<usize>,
    journal: &Path,
    attempt: u32,
) -> Result<(Child, Arc<ShardComm>, std::thread::JoinHandle<()>)> {
    let worker_args = super::worker::WorkerArgs {
        db: cfg.db_path.clone(),
        campaign: campaign.to_string(),
        shard,
        range: range.clone(),
        journal: journal.to_path_buf(),
        attempt,
        chaos: cfg.chaos,
        net_chaos: cfg.net_chaos.clone(),
        // The campaign's stored target system rides the spawn line so a
        // multi-target worker binary ports the job to the right CPU.
        target: if target_system.is_empty() {
            None
        } else {
            Some(target_system.to_string())
        },
    };
    let mut child = Command::new(&cfg.worker_cmd.program)
        .args(&cfg.worker_cmd.args)
        .args(worker_args.to_args())
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| {
            GoofiError::Config(format!(
                "spawning worker {}: {e}",
                cfg.worker_cmd.program.display()
            ))
        })?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| GoofiError::Config("worker stdout not captured".into()))?;
    let comm = Arc::new(ShardComm {
        renewed: Mutex::new(Instant::now()),
        stats: Mutex::new(ShardStats::default()),
    });
    let reader = {
        let comm = Arc::clone(&comm);
        std::thread::spawn(move || {
            let mut reader = FrameReader::new(stdout);
            // Highest event sequence number seen from *this* spawn; a
            // fresh attempt starts its own numbering at 1. Duplicated
            // or reordered-stale frames (worker-side net chaos) drop
            // here — stats are cumulative, so newest wins.
            let mut last_seq = 0u64;
            loop {
                let line = match reader.read_frame() {
                    Ok(FrameRead::Frame(line)) => line,
                    // A damaged frame from a half-dead worker is
                    // skipped, not fatal; the reader has already
                    // resynced and the lease deadline judges silence.
                    Ok(FrameRead::Malformed(_)) => continue,
                    Ok(FrameRead::Eof) | Err(_) => break,
                };
                let Ok((seq, event)) = WorkerEvent::decode_with_seq(&line) else {
                    continue;
                };
                if seq != 0 && seq <= last_seq {
                    continue;
                }
                last_seq = last_seq.max(seq);
                let mut stats = comm.stats.lock();
                let before = stats.clone();
                match event {
                    WorkerEvent::Hello { .. } => {}
                    WorkerEvent::Progress {
                        completed,
                        failed,
                        skipped,
                        quarantined,
                        ..
                    } => {
                        stats.completed = completed;
                        stats.failed = failed;
                        stats.skipped = skipped;
                        stats.quarantined = quarantined;
                    }
                    WorkerEvent::Done {
                        completed, failed, ..
                    } => {
                        stats.completed = completed;
                        stats.failed = failed;
                        stats.done = true;
                    }
                    WorkerEvent::Error { kind, detail, .. } => {
                        stats.error = Some(format!("{kind}: {detail}"));
                    }
                }
                // Hello/done/error always renew; progress renews only on
                // change — an idle heartbeat must not keep a hung worker
                // alive past its lease.
                if *stats != before || stats.done || stats.error.is_some() {
                    *comm.renewed.lock() = Instant::now();
                }
            }
        })
    };
    Ok((child, comm, reader))
}

fn kill_child(mut child: Child) {
    let _ = child.kill();
    let _ = child.wait();
}

/// Writes `<dir>/manifest`: the durable record from which a restarted
/// daemon resumes the job. Same `key value` line discipline as the
/// journal header; written with the full atomic temp-file, `fsync`,
/// rename discipline so a crash mid-submit leaves either no manifest or
/// a complete one — never a torn one. The optional `request <id>` line
/// keeps submit dedup working across a daemon restart; older manifests
/// without it (and older daemons reading newer manifests) parse fine,
/// since `parse_manifest` ignores unknown lines.
fn write_manifest(
    vfs: &dyn Vfs,
    dir: &Path,
    campaign: &str,
    workers: usize,
    request_id: Option<&str>,
) -> Result<()> {
    let path = dir.join("manifest");
    let mut body = format!("#goofi-job v1\ncampaign {campaign}\nworkers {workers}\n");
    if let Some(rid) = request_id {
        body.push_str(&format!("request {rid}\n"));
    }
    vfs::atomic_write(vfs, &path, body.as_bytes())
        .map_err(|e| GoofiError::io("writing manifest", &path, &e))
}

fn read_manifest(vfs: &dyn Vfs, dir: &Path) -> Result<(String, usize, Option<String>)> {
    let path = dir.join("manifest");
    // Lossy read so a bit-rotted manifest classifies as "bad manifest"
    // (recover quarantines the job dir) rather than an unreadable file.
    let text =
        vfs::read_lossy(vfs, &path).map_err(|e| GoofiError::io("reading manifest", &path, &e))?;
    let (campaign, workers) = crate::fsck::parse_manifest(&text)
        .ok_or_else(|| GoofiError::Config(format!("bad manifest in {}", path.display())))?;
    let request_id = text
        .lines()
        .find_map(|line| line.strip_prefix("request "))
        .map(str::to_string);
    Ok((campaign, workers, request_id))
}

/// Job ids (directory names) present in the spool directory, sorted.
/// `quarantined-*` directories (fsck/recover damage quarantine) never
/// match the `job-` prefix, so they are skipped forever.
fn spooled_job_ids(vfs: &dyn Vfs, spool: &Path) -> Result<Vec<String>> {
    let mut ids = Vec::new();
    let entries = match vfs.read_dir(spool) {
        Ok(entries) => entries,
        Err(_) => return Ok(ids),
    };
    for entry in entries {
        let Some(name) = entry.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with("job-") && vfs.exists(&entry.join("manifest")) {
            ids.push(name.to_string());
        }
    }
    ids.sort();
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrips() {
        let dir = std::env::temp_dir().join(format!("goofi-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fs = crate::vfs::RealFs;
        write_manifest(&fs, &dir, "c one", 3, None).unwrap();
        assert_eq!(
            read_manifest(&fs, &dir).unwrap(),
            ("c one".to_string(), 3, None)
        );
        write_manifest(&fs, &dir, "c one", 3, Some("req-1-ab")).unwrap();
        assert_eq!(
            read_manifest(&fs, &dir).unwrap(),
            ("c one".to_string(), 3, Some("req-1-ab".to_string()))
        );
        assert!(!dir.join("manifest.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn job_history_sequences_and_dedups_updates() {
        let shared = Arc::new(JobShared::new());
        let watcher = JobWatcher {
            shared: Arc::clone(&shared),
        };
        assert_eq!(watcher.snapshot().0, 0);
        shared.set(|p| p.state = JobState::Running);
        shared.set(|p| p.state = JobState::Running); // no-op: no new seq
        shared.set(|p| p.completed = 2);
        let (seq, current) = watcher.snapshot();
        assert_eq!(seq, 2);
        assert_eq!(current.completed, 2);
        let all = watcher.since(0);
        assert_eq!(
            all.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![1, 2],
            "history replays every real update in order"
        );
        assert_eq!(watcher.since(1).len(), 1);
        assert!(watcher.since(2).is_empty());
        let (seq, _) = watcher.wait_newer(1, Duration::from_millis(10));
        assert_eq!(seq, 2);
    }

    #[test]
    fn job_state_encodes() {
        assert_eq!(JobState::Running.encode(), "running");
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(!JobState::Queued.is_terminal());
    }
}
