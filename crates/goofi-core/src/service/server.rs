//! TCP framing of the campaign service: the daemon's accept loop and the
//! client used by `goofi submit`.
//!
//! One connection carries one request line and its response lines, all
//! newline-delimited JSON ([`super::wire`]). Watched submissions keep the
//! connection open and stream [`Response::Progress`] lines until the job
//! reaches a terminal state. The daemon binds loopback by default — the
//! service is a local campaign coordinator, not a network product.

use super::scheduler::{JobProgress, Scheduler};
use super::wire::{Request, Response};
use crate::{GoofiError, Result};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Runs the daemon's accept loop on `listener` until a `shutdown` request
/// arrives or `stop` is set (e.g. by a signal handler). Each connection is
/// served on its own thread; returns after in-flight jobs are stopped via
/// [`Scheduler::shutdown`] (their spool state stays resumable).
///
/// # Errors
///
/// Listener configuration errors; per-connection I/O errors are contained
/// to their connection.
pub fn serve(
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    stop: Arc<AtomicBool>,
) -> Result<()> {
    listener
        .set_nonblocking(true)
        .map_err(|e| GoofiError::Wire(format!("listener nonblocking: {e}")))?;
    let mut handlers = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let scheduler = Arc::clone(&scheduler);
                let stop = Arc::clone(&stop);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(stream, &scheduler, &stop);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(GoofiError::Wire(format!("accept failed: {e}"))),
        }
    }
    scheduler.shutdown();
    for handler in handlers {
        let _ = handler.join();
    }
    Ok(())
}

/// Serves one connection: one request line, then its response lines.
fn handle_connection(stream: TcpStream, scheduler: &Scheduler, stop: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut line = String::new();
    if reader.read_line(&mut line).unwrap_or(0) == 0 {
        return;
    }
    let request = match Request::decode(line.trim_end()) {
        Ok(request) => request,
        Err(e) => {
            send(
                &mut writer,
                &Response::Error {
                    detail: e.to_string(),
                },
            );
            return;
        }
    };
    match request {
        Request::Submit {
            campaign,
            workers,
            watch,
        } => match scheduler.submit(&campaign, workers) {
            Ok(job) => {
                send(&mut writer, &Response::Accepted { job: job.clone() });
                if watch {
                    stream_progress(&mut writer, scheduler, &job, stop);
                }
            }
            Err(e) => {
                send(
                    &mut writer,
                    &Response::Error {
                        detail: e.to_string(),
                    },
                );
            }
        },
        Request::Watch { job } => {
            if scheduler.watch(&job).is_some() {
                stream_progress(&mut writer, scheduler, &job, stop);
            } else {
                send(
                    &mut writer,
                    &Response::Error {
                        detail: format!("no such job `{job}`"),
                    },
                );
            }
        }
        Request::Status => {
            for (job, campaign, progress) in scheduler.jobs() {
                send(
                    &mut writer,
                    &Response::Job {
                        job,
                        campaign,
                        state: progress.state.encode().to_string(),
                    },
                );
            }
            send(&mut writer, &Response::End);
        }
        Request::Shutdown => {
            stop.store(true, Ordering::Release);
            send(&mut writer, &Response::End);
        }
    }
}

/// How long a watch stream may stay silent before the daemon resends the
/// current (unchanged) progress line. Kept well under the client's read
/// timeout so a healthy-but-quiet job never looks like a dead daemon.
const WATCH_KEEPALIVE: Duration = Duration::from_secs(5);

/// Streams progress lines for `job` until it reaches a terminal state or
/// the daemon is stopping; the final line carries the terminal state.
/// Unchanged progress is resent every [`WATCH_KEEPALIVE`] as a keepalive.
fn stream_progress(writer: &mut TcpStream, scheduler: &Scheduler, job: &str, stop: &AtomicBool) {
    let Some(watcher) = scheduler.watch(job) else {
        return;
    };
    let mut last: Option<JobProgress> = None;
    let mut last_sent = std::time::Instant::now();
    loop {
        let progress = match &last {
            Some(prev) => watcher.wait_changed(prev, Duration::from_millis(250)),
            None => watcher.current(),
        };
        if last.as_ref() != Some(&progress) || last_sent.elapsed() >= WATCH_KEEPALIVE {
            if !send(writer, &progress_response(job, &progress)) {
                return; // client hung up
            }
            last_sent = std::time::Instant::now();
            if progress.state.is_terminal() {
                return;
            }
            last = Some(progress);
        }
        if stop.load(Ordering::Acquire) {
            return;
        }
    }
}

fn progress_response(job: &str, p: &JobProgress) -> Response {
    Response::Progress {
        job: job.to_string(),
        state: p.state.encode().to_string(),
        total: p.total as u64,
        completed: p.completed as u64,
        failed: p.failed as u64,
        quarantined: p.quarantined as u64,
        shards_done: p.shards_done as u64,
        shards_total: p.shards_total as u64,
        shards_poisoned: p.shards_poisoned as u64,
        detail: p.detail.clone(),
    }
}

fn send(writer: &mut TcpStream, response: &Response) -> bool {
    writeln!(writer, "{}", response.encode()).is_ok() && writer.flush().is_ok()
}

/// Per-attempt connect timeout for [`Client::connect`].
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);
/// How long [`Client::recv`] may wait for a line before concluding the
/// daemon is gone. The daemon's [`WATCH_KEEPALIVE`] resend keeps healthy
/// watch streams well inside this.
const READ_TIMEOUT: Duration = Duration::from_secs(30);
/// Connection attempts before [`Client::connect`] gives up.
const CONNECT_ATTEMPTS: u32 = 4;
/// First retry delay; doubles per attempt up to [`MAX_RETRY_DELAY`].
const INITIAL_RETRY_DELAY: Duration = Duration::from_millis(50);
const MAX_RETRY_DELAY: Duration = Duration::from_secs(2);

/// A blocking client connection to the daemon, used by `goofi submit`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: String,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `127.0.0.1:4711`), retrying
    /// with bounded exponential backoff. Each attempt is capped at
    /// [`CONNECT_TIMEOUT`] and the resulting stream gets a read timeout so
    /// a wedged daemon cannot hang the client forever.
    ///
    /// # Errors
    ///
    /// [`GoofiError::Wire`] naming `addr` when no attempt succeeds.
    pub fn connect(addr: &str) -> Result<Client> {
        Client::connect_with(addr, CONNECT_ATTEMPTS)
    }

    /// [`Client::connect`] with an explicit attempt budget (minimum 1).
    ///
    /// # Errors
    ///
    /// [`GoofiError::Wire`] naming `addr` when no attempt succeeds.
    pub fn connect_with(addr: &str, attempts: u32) -> Result<Client> {
        use std::net::ToSocketAddrs;
        let attempts = attempts.max(1);
        let mut delay = INITIAL_RETRY_DELAY;
        let mut last = format!("connecting to {addr}: no attempt made");
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = (delay * 2).min(MAX_RETRY_DELAY);
            }
            let sockets = match addr.to_socket_addrs() {
                Ok(sockets) => sockets.collect::<Vec<_>>(),
                Err(e) => {
                    last = format!("resolving {addr}: {e}");
                    continue;
                }
            };
            if sockets.is_empty() {
                last = format!("resolving {addr}: no addresses");
                continue;
            }
            for socket in sockets {
                match TcpStream::connect_timeout(&socket, CONNECT_TIMEOUT) {
                    Ok(stream) => return Client::from_stream(stream, addr),
                    Err(e) => last = format!("connecting to {addr} ({socket}): {e}"),
                }
            }
        }
        Err(GoofiError::Wire(format!(
            "{last} (gave up after {attempts} attempt(s))"
        )))
    }

    fn from_stream(stream: TcpStream, addr: &str) -> Result<Client> {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| GoofiError::Wire(format!("cloning stream for {addr}: {e}")))?,
        );
        Ok(Client {
            reader,
            writer: stream,
            addr: addr.to_string(),
        })
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// [`GoofiError::Wire`] naming the daemon address on I/O failure.
    pub fn send(&mut self, request: &Request) -> Result<()> {
        let addr = &self.addr;
        writeln!(self.writer, "{}", request.encode())
            .and_then(|()| self.writer.flush())
            .map_err(|e| GoofiError::Wire(format!("sending request to {addr}: {e}")))
    }

    /// Sends raw text verbatim — exercises the daemon's handling of
    /// malformed frames.
    ///
    /// # Errors
    ///
    /// [`GoofiError::Wire`] naming the daemon address on I/O failure.
    pub fn send_raw(&mut self, text: &str) -> Result<()> {
        let addr = &self.addr;
        self.writer
            .write_all(text.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| GoofiError::Wire(format!("sending raw frame to {addr}: {e}")))
    }

    /// Receives the next response line; `None` when the daemon closed the
    /// connection. A read blocking past [`READ_TIMEOUT`] is an error — the
    /// daemon keepalives watch streams, so silence means it is gone.
    ///
    /// # Errors
    ///
    /// [`GoofiError::Wire`] naming the daemon address on I/O failure,
    /// timeout, or malformed frames.
    pub fn recv(&mut self) -> Result<Option<Response>> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(|e| {
            let verb = match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => "timed out",
                _ => "failed",
            };
            GoofiError::Wire(format!("reading response from {}: {verb}: {e}", self.addr))
        })?;
        if n == 0 {
            return Ok(None);
        }
        Response::decode(line.trim_end()).map(Some)
    }
}
