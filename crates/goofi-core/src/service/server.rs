//! The daemon's accept loop and the client used by `goofi submit`, both
//! speaking the hardened frame protocol over a [`Transport`] seam.
//!
//! All service I/O goes through [`super::net`]: length-prefixed,
//! checksummed frames over a [`Conn`], dialled/bound by a [`Transport`]
//! ([`RealNet`] in production, `FaultNet` under torture). The protocol
//! survives a faulty network by construction:
//!
//! - every connection opens with a version handshake
//!   ([`Request::Hello`] → [`Response::Hello`]);
//! - a malformed or corrupted frame is answered with a typed
//!   `bad frame:` error and the stream resynchronises — the daemon never
//!   desyncs or hangs up on damage alone;
//! - submissions carry request ids the scheduler deduplicates, so
//!   [`submit_job`] can blindly retry;
//! - progress streams are sequence-numbered and resumable: a watcher
//!   that loses its connection reconnects with `after=<last seq>` and
//!   [`watch_to_end`] replays exactly the updates it missed;
//! - read deadlines on both sides turn half-open peers into clean
//!   [`GoofiError::Wire`] timeouts;
//! - client retry delays are exponential *with seeded jitter*, so a
//!   daemon restart does not synchronise its clients into a retry storm.
//!
//! The daemon binds loopback by default — the service is a local
//! campaign coordinator, not a network product.

use super::net::{Conn, FrameRead, Listener, RealNet, Transport, MIN_PROTO_VERSION, PROTO_VERSION};
use super::scheduler::{JobProgress, Scheduler};
use super::wire::{Request, Response};
use crate::policy::Backoff;
use crate::{GoofiError, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Runs the daemon's accept loop on `listener` until a `shutdown` request
/// arrives or `stop` is set (e.g. by a signal handler). Each connection is
/// served on its own thread; returns after in-flight jobs are stopped via
/// [`Scheduler::shutdown`] (their spool state stays resumable).
///
/// # Errors
///
/// Fatal listener errors; per-connection I/O errors are contained to
/// their connection.
pub fn serve(
    listener: Box<dyn Listener>,
    scheduler: Arc<Scheduler>,
    stop: Arc<AtomicBool>,
) -> Result<()> {
    let mut handlers = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok(Some(conn)) => {
                let scheduler = Arc::clone(&scheduler);
                let stop = Arc::clone(&stop);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(conn, &scheduler, &stop);
                }));
            }
            Ok(None) => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(GoofiError::Wire(format!("accept failed: {e}"))),
        }
    }
    scheduler.shutdown();
    for handler in handlers {
        let _ = handler.join();
    }
    Ok(())
}

/// How long the daemon waits for a client's next request frame before
/// concluding the peer is half-open and dropping the connection.
const SERVER_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Socket-level poll interval of the daemon's request reads: short, so a
/// stopping daemon unblocks its handler threads promptly while
/// [`SERVER_READ_TIMEOUT`] still bounds a half-open peer.
const SERVER_POLL: Duration = Duration::from_millis(250);

/// Damaged frames tolerated per connection before hanging up — each one
/// is answered with a typed error first, so a retrying client learns why.
const MAX_BAD_FRAMES: u32 = 16;

/// Serves one connection: hello handshake, one request, its responses.
fn handle_connection(mut conn: Box<dyn Conn>, scheduler: &Scheduler, stop: &AtomicBool) {
    let _ = conn.set_read_timeout(Some(SERVER_POLL));
    let Some(request) = read_request(&mut conn, stop) else {
        return;
    };
    let Request::Hello { version } = request else {
        send(
            &mut conn,
            &Response::Error {
                detail: "protocol error: expected hello".into(),
            },
        );
        return;
    };
    let negotiated = version.min(PROTO_VERSION);
    if negotiated < MIN_PROTO_VERSION {
        send(
            &mut conn,
            &Response::Error {
                detail: format!(
                    "unsupported protocol version {version} \
                     (daemon speaks {MIN_PROTO_VERSION}..={PROTO_VERSION})"
                ),
            },
        );
        return;
    }
    if !send(
        &mut conn,
        &Response::Hello {
            version: negotiated,
        },
    ) {
        return;
    }
    // A repeated hello after the handshake is a duplicated frame, not a
    // confused client — answer it as transport damage (transient, so a
    // retrying client does not treat it as a rejection) and keep waiting
    // for the real request on the same connection.
    let mut dups = 0;
    let request = loop {
        let Some(request) = read_request(&mut conn, stop) else {
            return;
        };
        if !matches!(request, Request::Hello { .. }) {
            break request;
        }
        dups += 1;
        if dups > MAX_BAD_FRAMES
            || !send(
                &mut conn,
                &Response::Error {
                    detail: "bad frame: duplicate hello (dropped as damage)".into(),
                },
            )
        {
            return;
        }
    };
    match request {
        Request::Hello { .. } => unreachable!("hello loop drains duplicates"),
        Request::Submit {
            id,
            campaign,
            workers,
            watch,
            target,
        } => {
            let request_id = if id.is_empty() {
                None
            } else {
                Some(id.as_str())
            };
            let target = if target.is_empty() {
                None
            } else {
                Some(target.as_str())
            };
            match scheduler.submit_request_for_target(request_id, &campaign, workers, target) {
                Ok(job) => {
                    send(&mut conn, &Response::Accepted { job: job.clone() });
                    if watch {
                        stream_progress(&mut conn, scheduler, &job, 0, stop);
                    }
                }
                Err(e) => {
                    send(
                        &mut conn,
                        &Response::Error {
                            detail: e.to_string(),
                        },
                    );
                }
            }
        }
        Request::Watch { job, after } => {
            if scheduler.watch(&job).is_some() {
                stream_progress(&mut conn, scheduler, &job, after, stop);
            } else {
                send(
                    &mut conn,
                    &Response::Error {
                        detail: format!("no such job `{job}`"),
                    },
                );
            }
        }
        Request::Status => {
            let jobs = scheduler.jobs();
            // The header's count lets the client detect rows lost or
            // duplicated in flight and retry the whole listing.
            send(
                &mut conn,
                &Response::Listing {
                    jobs: jobs.len() as u64,
                },
            );
            for (job, campaign, progress) in jobs {
                send(
                    &mut conn,
                    &Response::Job {
                        job,
                        campaign,
                        state: progress.state.encode().to_string(),
                    },
                );
            }
            send(&mut conn, &Response::End);
        }
        Request::Shutdown => {
            stop.store(true, Ordering::Release);
            send(&mut conn, &Response::End);
        }
    }
}

/// Reads frames until one decodes as a [`Request`]. Damage — a torn,
/// corrupted or non-JSON frame, or a frame that is not a request — is
/// answered with a typed `bad frame:` error and reading continues, up to
/// [`MAX_BAD_FRAMES`]; the stream itself stays in sync throughout.
/// `None` means the connection is unusable: EOF, error, the daemon is
/// stopping, or the peer stayed silent past [`SERVER_READ_TIMEOUT`]
/// (half-open).
fn read_request(conn: &mut Box<dyn Conn>, stop: &AtomicBool) -> Option<Request> {
    let mut bad = 0;
    let deadline = Instant::now() + SERVER_READ_TIMEOUT;
    loop {
        let problem = match conn.recv() {
            Ok(FrameRead::Frame(line)) => match Request::decode(&line) {
                Ok(request) => return Some(request),
                Err(e) => e.to_string(),
            },
            Ok(FrameRead::Malformed(detail)) => detail,
            Ok(FrameRead::Eof) => return None,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::Acquire) || Instant::now() >= deadline {
                    return None;
                }
                continue;
            }
            Err(_) => return None,
        };
        bad += 1;
        let ok = send(
            conn,
            &Response::Error {
                detail: format!("bad frame: {problem}"),
            },
        );
        if !ok || bad >= MAX_BAD_FRAMES {
            return None;
        }
    }
}

/// How long a watch stream may stay silent before the daemon resends the
/// latest (already-sequenced) progress frame. Clients drop the repeat by
/// its `seq`; its only job is to keep the stream visibly alive, well
/// under the client's read timeout.
const WATCH_KEEPALIVE: Duration = Duration::from_secs(5);

/// Streams progress frames for `job` with sequence numbers greater than
/// `after`, until the job reaches a terminal state or the daemon stops.
/// The final frame carries the terminal state. Every update between
/// `after` and now is replayed from the job's progress history, which is
/// what makes a watch resumable after a lost connection.
fn stream_progress(
    conn: &mut Box<dyn Conn>,
    scheduler: &Scheduler,
    job: &str,
    after: u64,
    stop: &AtomicBool,
) {
    let Some(watcher) = scheduler.watch(job) else {
        return;
    };
    let mut last_seq = after;
    let mut last_sent = Instant::now();
    // Prompt snapshot so an attaching client sees the stream is live even
    // if nothing changed since `after` (repeats dedup by seq). Sent only
    // when there is nothing newer to replay: a fresher snapshot first
    // would advance the client's ack past the replay below, and the
    // client would then drop the missed updates as already-seen.
    {
        let (seq, progress) = watcher.snapshot();
        if seq <= after {
            if !send(conn, &progress_response(job, seq, &progress)) {
                return;
            }
            if progress.state.is_terminal() {
                return;
            }
        }
    }
    loop {
        for (seq, progress) in watcher.since(last_seq) {
            if !send(conn, &progress_response(job, seq, &progress)) {
                return;
            }
            last_seq = seq;
            last_sent = Instant::now();
            if progress.state.is_terminal() {
                return;
            }
        }
        if last_sent.elapsed() >= WATCH_KEEPALIVE {
            let (seq, progress) = watcher.snapshot();
            if !send(conn, &progress_response(job, seq, &progress)) {
                return;
            }
            last_sent = Instant::now();
            if progress.state.is_terminal() {
                return;
            }
        }
        if stop.load(Ordering::Acquire) {
            return;
        }
        watcher.wait_newer(last_seq, Duration::from_millis(250));
    }
}

fn progress_response(job: &str, seq: u64, p: &JobProgress) -> Response {
    Response::Progress {
        seq,
        job: job.to_string(),
        state: p.state.encode().to_string(),
        total: p.total as u64,
        completed: p.completed as u64,
        failed: p.failed as u64,
        quarantined: p.quarantined as u64,
        shards_done: p.shards_done as u64,
        shards_total: p.shards_total as u64,
        shards_poisoned: p.shards_poisoned as u64,
        detail: p.detail.clone(),
    }
}

fn send(conn: &mut Box<dyn Conn>, response: &Response) -> bool {
    conn.send(&response.encode()).is_ok()
}

/// Per-attempt connect timeout for [`Client::connect`].
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);
/// How long the handshake waits for the daemon's hello. A healthy daemon
/// answers immediately, so silence here means the frame was lost or the
/// peer is half-open — failing fast and redialling is the right move.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(2);
/// How long [`Client::recv`] may wait for a frame before concluding the
/// daemon is gone. The daemon's [`WATCH_KEEPALIVE`] resend keeps healthy
/// watch streams well inside this.
const READ_TIMEOUT: Duration = Duration::from_secs(30);
/// Connection attempts before [`Client::connect`] gives up.
const CONNECT_ATTEMPTS: u32 = 4;
/// Whole-session retries for [`submit_job`] and consecutive reconnects
/// for [`watch_to_end`].
const SESSION_RETRIES: u32 = 8;
/// Retry backoff bounds (milliseconds); each delay gets seeded jitter on
/// top via [`jittered`].
const RETRY_BACKOFF: Backoff = Backoff {
    initial_ms: 50,
    max_ms: 2_000,
};

/// Adds up to +50% seeded jitter to a retry delay. Pure exponential
/// backoff synchronises every client that observed the same daemon
/// restart into lock-step retry storms; the jitter source mixes the
/// process id and clock so distinct clients spread out.
fn jittered(delay: Duration) -> Duration {
    static SALT: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u64::from(d.subsec_nanos()));
    let roll = super::chaos::mix(
        u64::from(std::process::id()),
        SALT.fetch_add(1, Ordering::Relaxed),
        nanos,
    );
    delay + delay.mul_f64((roll % 1_000) as f64 / 2_000.0)
}

/// A fresh, process-unique request id for [`submit_job`]: the token the
/// daemon deduplicates retried submissions by.
pub fn new_request_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    format!(
        "req-{}-{:x}-{}",
        std::process::id(),
        nanos,
        COUNTER.fetch_add(1, Ordering::Relaxed)
    )
}

/// A blocking client connection to the daemon, used by `goofi submit`.
/// Construction includes the protocol handshake, so a connected client
/// has already negotiated a version.
pub struct Client {
    conn: Box<dyn Conn>,
    addr: String,
    version: u64,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `127.0.0.1:4711`) over plain
    /// TCP, retrying with jittered bounded exponential backoff, and
    /// performs the hello handshake. Each attempt is capped at
    /// [`CONNECT_TIMEOUT`] and the connection gets a read timeout so a
    /// wedged daemon cannot hang the client forever.
    ///
    /// # Errors
    ///
    /// [`GoofiError::Wire`] naming `addr` when no attempt succeeds.
    pub fn connect(addr: &str) -> Result<Client> {
        Client::connect_via(&RealNet, addr, CONNECT_ATTEMPTS)
    }

    /// [`Client::connect`] with an explicit attempt budget (minimum 1).
    ///
    /// # Errors
    ///
    /// [`GoofiError::Wire`] naming `addr` when no attempt succeeds.
    pub fn connect_with(addr: &str, attempts: u32) -> Result<Client> {
        Client::connect_via(&RealNet, addr, attempts)
    }

    /// [`Client::connect`] over an explicit transport — the seam the
    /// torture harness uses to dial through a `FaultNet`.
    ///
    /// # Errors
    ///
    /// [`GoofiError::Wire`] naming `addr` when no attempt succeeds.
    pub fn connect_via(transport: &dyn Transport, addr: &str, attempts: u32) -> Result<Client> {
        let attempts = attempts.max(1);
        let mut last = format!("connecting to {addr}: no attempt made");
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(jittered(RETRY_BACKOFF.delay(attempt)));
            }
            match transport.connect(addr, CONNECT_TIMEOUT) {
                Ok(conn) => match Client::handshake(conn, addr) {
                    Ok(client) => return Ok(client),
                    Err(e) => last = e.to_string(),
                },
                Err(e) => last = format!("connecting to {addr}: {e}"),
            }
        }
        Err(GoofiError::Wire(format!(
            "{last} (gave up after {attempts} attempt(s))"
        )))
    }

    /// Sends our hello, requires the daemon's hello back.
    fn handshake(mut conn: Box<dyn Conn>, addr: &str) -> Result<Client> {
        let _ = conn.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
        let mut client = Client {
            conn,
            addr: addr.to_string(),
            version: PROTO_VERSION,
        };
        client.send(&Request::Hello {
            version: PROTO_VERSION,
        })?;
        match client.recv()? {
            Some(Response::Hello { version }) if version >= MIN_PROTO_VERSION => {
                client.version = version;
                client.set_read_timeout(READ_TIMEOUT);
                Ok(client)
            }
            Some(Response::Hello { version }) => Err(GoofiError::Wire(format!(
                "daemon at {addr} negotiated unsupported protocol version {version}"
            ))),
            Some(Response::Error { detail }) => Err(GoofiError::Wire(format!(
                "handshake with {addr} refused: {detail}"
            ))),
            Some(other) => Err(GoofiError::Wire(format!(
                "handshake with {addr} got unexpected {other:?}"
            ))),
            None => Err(GoofiError::Wire(format!(
                "handshake with {addr}: connection closed"
            ))),
        }
    }

    /// The protocol version negotiated on connect.
    pub fn negotiated_version(&self) -> u64 {
        self.version
    }

    /// Overrides how long [`Client::recv`] may block — tests shrink this
    /// to catch half-open daemons quickly.
    pub fn set_read_timeout(&mut self, timeout: Duration) {
        let _ = self.conn.set_read_timeout(Some(timeout));
    }

    /// Sends one request frame.
    ///
    /// # Errors
    ///
    /// [`GoofiError::Wire`] naming the daemon address on I/O failure.
    pub fn send(&mut self, request: &Request) -> Result<()> {
        let addr = &self.addr;
        self.conn
            .send(&request.encode())
            .map_err(|e| GoofiError::Wire(format!("sending request to {addr}: {e}")))
    }

    /// Sends raw bytes verbatim, bypassing framing — exercises the
    /// daemon's handling of malformed frames.
    ///
    /// # Errors
    ///
    /// [`GoofiError::Wire`] naming the daemon address on I/O failure.
    pub fn send_raw(&mut self, text: &str) -> Result<()> {
        let addr = &self.addr;
        self.conn
            .send_bytes(text.as_bytes())
            .map_err(|e| GoofiError::Wire(format!("sending raw frame to {addr}: {e}")))
    }

    /// Receives the next response frame; `None` when the daemon closed
    /// the connection. A read blocking past the read timeout is an
    /// error — the daemon keepalives watch streams, so silence means it
    /// is gone (or the connection is half-open).
    ///
    /// # Errors
    ///
    /// [`GoofiError::Wire`] naming the daemon address on I/O failure,
    /// timeout, or damaged frames.
    pub fn recv(&mut self) -> Result<Option<Response>> {
        let addr = &self.addr;
        match self.conn.recv() {
            Ok(FrameRead::Frame(line)) => Response::decode(&line).map(Some),
            Ok(FrameRead::Malformed(detail)) => Err(GoofiError::Wire(format!(
                "damaged frame from {addr}: {detail}"
            ))),
            Ok(FrameRead::Eof) => Ok(None),
            Err(e) => {
                let verb = match e.kind() {
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => "timed out",
                    _ => "failed",
                };
                Err(GoofiError::Wire(format!(
                    "reading response from {addr}: {verb}: {e}"
                )))
            }
        }
    }
}

/// Whether a daemon error response reports transport damage (retryable)
/// rather than an application decision (definitive).
fn transient_error(detail: &str) -> bool {
    detail.starts_with("bad frame:")
}

/// Submits `campaign` under `request_id`, retrying across fresh
/// connections until the daemon acknowledges. Safe to retry because the
/// daemon deduplicates by request id: if an earlier attempt's `accepted`
/// was lost in flight, the retry returns the same job instead of
/// submitting twice.
///
/// # Errors
///
/// [`GoofiError::Wire`] when the daemon rejects the submission or the
/// retry budget is exhausted.
pub fn submit_job(
    transport: &dyn Transport,
    addr: &str,
    request_id: &str,
    campaign: &str,
    workers: usize,
) -> Result<String> {
    submit_job_with(
        transport,
        addr,
        request_id,
        campaign,
        workers,
        Duration::from_secs(10),
    )
}

/// [`submit_job`] with an explicit per-attempt acknowledgement deadline —
/// the torture harness shrinks it so lost frames fail over quickly.
///
/// # Errors
///
/// See [`submit_job`].
pub fn submit_job_with(
    transport: &dyn Transport,
    addr: &str,
    request_id: &str,
    campaign: &str,
    workers: usize,
    read_timeout: Duration,
) -> Result<String> {
    submit_job_targeted(
        transport,
        addr,
        request_id,
        campaign,
        workers,
        None,
        read_timeout,
    )
}

/// [`submit_job_with`] carrying an expected target system: the daemon
/// rejects the submission when the stored campaign targets a different
/// CPU, so `goofi submit --target` fails loudly instead of running a
/// campaign on the wrong core.
///
/// # Errors
///
/// See [`submit_job`].
pub fn submit_job_targeted(
    transport: &dyn Transport,
    addr: &str,
    request_id: &str,
    campaign: &str,
    workers: usize,
    target: Option<&str>,
    read_timeout: Duration,
) -> Result<String> {
    let mut last = String::new();
    for attempt in 0..SESSION_RETRIES {
        if attempt > 0 {
            std::thread::sleep(jittered(RETRY_BACKOFF.delay(attempt)));
        }
        let mut client = match Client::connect_via(transport, addr, 1) {
            Ok(client) => client,
            Err(e) => {
                last = e.to_string();
                continue;
            }
        };
        client.set_read_timeout(read_timeout);
        if let Err(e) = client.send(&Request::Submit {
            id: request_id.to_string(),
            campaign: campaign.to_string(),
            workers,
            watch: false,
            target: target.unwrap_or("").to_string(),
        }) {
            last = e.to_string();
            continue;
        }
        match client.recv() {
            Ok(Some(Response::Accepted { job })) => return Ok(job),
            Ok(Some(Response::Error { detail })) if !transient_error(&detail) => {
                return Err(GoofiError::Wire(format!(
                    "daemon at {addr} rejected submit: {detail}"
                )));
            }
            Ok(Some(Response::Error { detail })) => last = detail,
            Ok(Some(other)) => last = format!("unexpected response {other:?}"),
            Ok(None) => last = "connection closed before accept".into(),
            Err(e) => last = e.to_string(),
        }
    }
    Err(GoofiError::Wire(format!(
        "submitting `{campaign}` to {addr}: {last} (gave up after {SESSION_RETRIES} attempt(s))"
    )))
}

/// Lists the daemon's jobs as `(job, state, campaign)` rows, retrying
/// across fresh connections on transport damage. Safe to retry because
/// the listing is a read-only snapshot: a damaged attempt is thrown away
/// and the next one starts over.
///
/// # Errors
///
/// [`GoofiError::Wire`] when the daemon refuses the request or the retry
/// budget is exhausted.
pub fn job_list(transport: &dyn Transport, addr: &str) -> Result<Vec<(String, String, String)>> {
    job_list_with(transport, addr, Duration::from_secs(10))
}

/// [`job_list`] with an explicit per-attempt read deadline — the torture
/// harness shrinks it so lost frames fail over quickly.
///
/// # Errors
///
/// See [`job_list`].
pub fn job_list_with(
    transport: &dyn Transport,
    addr: &str,
    read_timeout: Duration,
) -> Result<Vec<(String, String, String)>> {
    let mut last = String::new();
    'attempts: for attempt in 0..SESSION_RETRIES {
        if attempt > 0 {
            std::thread::sleep(jittered(RETRY_BACKOFF.delay(attempt)));
        }
        let mut client = match Client::connect_via(transport, addr, 1) {
            Ok(client) => client,
            Err(e) => {
                last = e.to_string();
                continue;
            }
        };
        client.set_read_timeout(read_timeout);
        if let Err(e) = client.send(&Request::Status) {
            last = e.to_string();
            continue;
        }
        // The listing header announces how many rows follow; any other
        // count on `End` means rows were lost, duplicated or reordered
        // past the end marker in flight — throw the attempt away.
        let expected = match client.recv() {
            Ok(Some(Response::Listing { jobs })) => jobs,
            Ok(Some(Response::Error { detail })) if !transient_error(&detail) => {
                return Err(GoofiError::Wire(format!(
                    "daemon at {addr} refused status: {detail}"
                )));
            }
            Ok(other) => {
                last = format!("expected listing header, got {other:?}");
                continue;
            }
            Err(e) => {
                last = e.to_string();
                continue;
            }
        };
        let mut rows = Vec::new();
        loop {
            match client.recv() {
                Ok(Some(Response::Job {
                    job,
                    campaign,
                    state,
                })) => rows.push((job, state, campaign)),
                Ok(Some(Response::End)) => {
                    if rows.len() as u64 == expected {
                        return Ok(rows);
                    }
                    last = format!(
                        "listing damaged in flight: {} of {expected} row(s) arrived",
                        rows.len()
                    );
                    continue 'attempts;
                }
                Ok(Some(Response::Error { detail })) if !transient_error(&detail) => {
                    return Err(GoofiError::Wire(format!(
                        "daemon at {addr} refused status: {detail}"
                    )));
                }
                Ok(Some(Response::Error { detail })) => {
                    last = detail;
                    continue 'attempts;
                }
                Ok(Some(other)) => {
                    last = format!("unexpected response {other:?}");
                    continue 'attempts;
                }
                Ok(None) => {
                    last = "connection closed mid-listing".into();
                    continue 'attempts;
                }
                Err(e) => {
                    last = e.to_string();
                    continue 'attempts;
                }
            }
        }
    }
    Err(GoofiError::Wire(format!(
        "listing jobs at {addr}: {last} (gave up after {SESSION_RETRIES} attempt(s))"
    )))
}

/// Asks the daemon to stop, retrying until its acknowledgement arrives.
/// Safe to retry because repeated shutdown requests are idempotent. If a
/// retry cannot even connect after an earlier attempt delivered the
/// request, the daemon most likely acted on it and closed its listener —
/// that counts as success.
///
/// # Errors
///
/// [`GoofiError::Wire`] when the daemon refuses the request or the retry
/// budget is exhausted.
pub fn request_shutdown(transport: &dyn Transport, addr: &str) -> Result<()> {
    request_shutdown_with(transport, addr, Duration::from_secs(10))
}

/// [`request_shutdown`] with an explicit per-attempt read deadline.
///
/// # Errors
///
/// See [`request_shutdown`].
pub fn request_shutdown_with(
    transport: &dyn Transport,
    addr: &str,
    read_timeout: Duration,
) -> Result<()> {
    let mut last = String::new();
    let mut sent = false;
    for attempt in 0..SESSION_RETRIES {
        if attempt > 0 {
            std::thread::sleep(jittered(RETRY_BACKOFF.delay(attempt)));
        }
        let mut client = match Client::connect_via(transport, addr, 1) {
            Ok(client) => client,
            Err(e) if sent => {
                let _ = e;
                return Ok(());
            }
            Err(e) => {
                last = e.to_string();
                continue;
            }
        };
        client.set_read_timeout(read_timeout);
        if let Err(e) = client.send(&Request::Shutdown) {
            last = e.to_string();
            continue;
        }
        sent = true;
        match client.recv() {
            Ok(Some(Response::End)) => return Ok(()),
            Ok(Some(Response::Error { detail })) if !transient_error(&detail) => {
                return Err(GoofiError::Wire(format!(
                    "daemon at {addr} refused shutdown: {detail}"
                )));
            }
            Ok(Some(Response::Error { detail })) => last = detail,
            Ok(Some(other)) => last = format!("unexpected response {other:?}"),
            Ok(None) => last = "connection closed before acknowledgement".into(),
            Err(e) => last = e.to_string(),
        }
    }
    Err(GoofiError::Wire(format!(
        "shutting down daemon at {addr}: {last} (gave up after {SESSION_RETRIES} attempt(s))"
    )))
}

/// Watches `job` to its terminal state with session resume: every lost
/// connection is re-dialled and the stream re-requested with
/// `after=<last acknowledged seq>`, so `on_progress` sees every update
/// exactly once, in order, with no duplicates across reconnects. Returns
/// the terminal [`Response::Progress`].
///
/// # Errors
///
/// [`GoofiError::Wire`] when the daemon does not know the job or
/// [`SESSION_RETRIES`] consecutive reconnects fail.
pub fn watch_to_end(
    transport: &dyn Transport,
    addr: &str,
    job: &str,
    on_progress: impl FnMut(&Response),
) -> Result<Response> {
    watch_to_end_with(transport, addr, job, 0, READ_TIMEOUT, on_progress)
}

/// [`watch_to_end`] resuming after sequence number `after`, with an
/// explicit read timeout (the heartbeat deadline that flushes out
/// half-open daemons).
///
/// # Errors
///
/// See [`watch_to_end`].
pub fn watch_to_end_with(
    transport: &dyn Transport,
    addr: &str,
    job: &str,
    after: u64,
    read_timeout: Duration,
    mut on_progress: impl FnMut(&Response),
) -> Result<Response> {
    let mut last_seq = after;
    let mut stale = 0u32;
    let mut last = String::new();
    loop {
        if stale >= SESSION_RETRIES {
            return Err(GoofiError::Wire(format!(
                "watching {job} on {addr}: {last} \
                 (gave up after {SESSION_RETRIES} consecutive reconnect(s))"
            )));
        }
        if stale > 0 {
            std::thread::sleep(jittered(RETRY_BACKOFF.delay(stale)));
        }
        let mut client = match Client::connect_via(transport, addr, 1) {
            Ok(client) => client,
            Err(e) => {
                stale += 1;
                last = e.to_string();
                continue;
            }
        };
        client.set_read_timeout(read_timeout);
        if let Err(e) = client.send(&Request::Watch {
            job: job.to_string(),
            after: last_seq,
        }) {
            stale += 1;
            last = e.to_string();
            continue;
        }
        let failure = loop {
            match client.recv() {
                Ok(Some(response @ Response::Progress { .. })) => {
                    let (seq, terminal) = match &response {
                        Response::Progress { seq, state, .. } => {
                            (*seq, state == "done" || state == "failed")
                        }
                        _ => unreachable!("matched progress"),
                    };
                    if seq <= last_seq {
                        if terminal {
                            // A repeat of an already-acked terminal state
                            // (keepalive, or a resume that had already
                            // seen the end) — done is done.
                            return Ok(response);
                        }
                        continue; // keepalive repeat or replay overlap
                    }
                    stale = 0;
                    last_seq = seq;
                    on_progress(&response);
                    if terminal {
                        return Ok(response);
                    }
                }
                Ok(Some(Response::Error { detail })) if !transient_error(&detail) => {
                    return Err(GoofiError::Wire(format!(
                        "watching {job} on {addr}: {detail}"
                    )));
                }
                Ok(Some(Response::Error { detail })) => break detail,
                Ok(Some(other)) => break format!("unexpected response {other:?}"),
                Ok(None) => break "connection closed mid-stream".into(),
                Err(e) => break e.to_string(),
            }
        };
        stale += 1;
        last = failure;
    }
}
