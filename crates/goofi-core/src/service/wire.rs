//! Flat-JSON wire protocol of the campaign service.
//!
//! Three message families share one flat-JSON line codec (the same
//! hand-rolled string/number/null object grammar the telemetry sinks
//! use — no nested values, one object per line):
//!
//! - [`Request`]: client → daemon (`goofi submit` → `goofi serve`);
//! - [`Response`]: daemon → client, including streamed progress lines;
//! - [`WorkerEvent`]: shard worker → daemon, on the worker's stdout.
//!
//! On the wire each encoded message rides inside a length-prefixed,
//! checksummed frame ([`super::net`]); this module is the payload
//! grammar. Every decoder is total: malformed or truncated frames come
//! back as [`GoofiError::Wire`], never a panic — a hostile or half-dead
//! peer must not take the daemon down — and payloads past
//! [`net::MAX_FRAME`](super::net::MAX_FRAME) are rejected outright so a
//! garbage peer cannot balloon a receive buffer.
//!
//! Protocol hardening against a faulty network lives in three fields:
//! connections open with a [`Request::Hello`]/[`Response::Hello`] version
//! negotiation, submissions carry a client-chosen request `id` the
//! daemon deduplicates (so a retried submit never double-runs a
//! campaign), and progress/worker-event streams are sequence-numbered so
//! a resumed watch replays from the last acknowledged `seq` and dropped
//! or duplicated frames are detectable.

use super::net::MAX_FRAME;
use crate::telemetry::{parse_flat_json, push_json_str, JsonVal};
use crate::{GoofiError, Result};

/// A client request to the daemon, one JSON object per line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Version negotiation; must be the first frame on a connection.
    Hello {
        /// Highest protocol version the client speaks.
        version: u64,
    },
    /// Submit the named campaign (already stored in the daemon's
    /// database) as a job sharded over `workers` worker processes.
    Submit {
        /// Client-chosen request id. A daemon that already accepted this
        /// id returns the same job instead of submitting again, making
        /// client retries idempotent. Empty disables deduplication.
        id: String,
        /// Campaign name in the daemon's database.
        campaign: String,
        /// Requested shard/worker count (the daemon caps it at the
        /// campaign's experiment count).
        workers: usize,
        /// Stream progress lines on this connection after `accepted`.
        watch: bool,
        /// Expected target system of the campaign (empty = don't care).
        /// The daemon rejects the submission when the stored campaign
        /// targets a different CPU — a guard against driving a campaign
        /// sampled for one chain layout into another core. Optional on
        /// the wire for compatibility with older clients.
        target: String,
    },
    /// Attach to an existing job and stream its progress.
    Watch {
        /// Job id, e.g. `job-3`.
        job: String,
        /// Replay progress with sequence numbers greater than this
        /// (0 = from the start) — how a reconnecting client resumes a
        /// stream without losing or repeating updates.
        after: u64,
    },
    /// List all jobs the daemon knows about.
    Status,
    /// Ask the daemon to shut down cleanly.
    Shutdown,
}

impl Request {
    /// Encodes to one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Hello { version } => {
                format!("{{\"op\":\"hello\",\"version\":{version}}}")
            }
            Request::Submit {
                id,
                campaign,
                workers,
                watch,
                target,
            } => {
                let mut out = String::from("{\"op\":\"submit\",\"campaign\":");
                push_json_str(&mut out, campaign);
                out.push_str(&format!(",\"workers\":{workers}"));
                out.push_str(&format!(",\"watch\":{}", u8::from(*watch)));
                if !id.is_empty() {
                    out.push_str(",\"id\":");
                    push_json_str(&mut out, id);
                }
                if !target.is_empty() {
                    out.push_str(",\"target\":");
                    push_json_str(&mut out, target);
                }
                out.push('}');
                out
            }
            Request::Watch { job, after } => {
                let mut out = String::from("{\"op\":\"watch\",\"job\":");
                push_json_str(&mut out, job);
                out.push_str(&format!(",\"after\":{after}"));
                out.push('}');
                out
            }
            Request::Status => "{\"op\":\"status\"}".into(),
            Request::Shutdown => "{\"op\":\"shutdown\"}".into(),
        }
    }

    /// Decodes one line.
    ///
    /// # Errors
    ///
    /// [`GoofiError::Wire`] on malformed frames or unknown operations.
    pub fn decode(line: &str) -> Result<Request> {
        let fields = Fields::parse(line)?;
        match fields.str("op")? {
            "hello" => Ok(Request::Hello {
                version: fields.num("version")?,
            }),
            "submit" => Ok(Request::Submit {
                id: fields.str_or("id", ""),
                campaign: fields.str("campaign")?.to_string(),
                workers: fields.num("workers")?.max(1) as usize,
                watch: fields.num_or("watch", 0) != 0,
                target: fields.str_or("target", ""),
            }),
            "watch" => Ok(Request::Watch {
                job: fields.str("job")?.to_string(),
                after: fields.num_or("after", 0),
            }),
            "status" => Ok(Request::Status),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(GoofiError::Wire(format!("unknown request op `{other}`"))),
        }
    }
}

/// A daemon response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Version negotiation reply: the daemon's side of the handshake.
    Hello {
        /// Protocol version the connection will speak (the minimum of
        /// both peers' versions).
        version: u64,
    },
    /// A submission was accepted and assigned a job id.
    Accepted {
        /// The new job's id.
        job: String,
    },
    /// One live progress update of a watched job. The final progress line
    /// of a stream has a terminal `state` (`done` or `failed`).
    Progress {
        /// Monotonic per-job sequence number; a resumed watch replays
        /// from here, and clients drop frames whose `seq` they already
        /// acknowledged (keepalives repeat the latest `seq` on purpose).
        seq: u64,
        /// Job id.
        job: String,
        /// Job state: `queued`, `running`, `done` or `failed`.
        state: String,
        /// Experiments in the campaign.
        total: u64,
        /// Experiments completed across all shards.
        completed: u64,
        /// Experiments that failed despite per-experiment policy.
        failed: u64,
        /// Records quarantined (including poison-shard stubs).
        quarantined: u64,
        /// Shards finished.
        shards_done: u64,
        /// Shards total.
        shards_total: u64,
        /// Shards quarantined as poison.
        shards_poisoned: u64,
        /// Failure detail when `state` is `failed`, else empty.
        detail: String,
    },
    /// Header of a `status` listing: how many [`Response::Job`] rows
    /// follow before [`Response::End`]. Lets a client detect a listing
    /// damaged in flight (a dropped, duplicated or reordered-past-`End`
    /// row changes the count) and retry instead of trusting it.
    Listing {
        /// Number of job rows that follow.
        jobs: u64,
    },
    /// One job summary line of a `status` listing.
    Job {
        /// Job id.
        job: String,
        /// Campaign name.
        campaign: String,
        /// Job state.
        state: String,
    },
    /// End of a `status` listing or shutdown acknowledgement.
    End,
    /// The request failed.
    Error {
        /// What went wrong.
        detail: String,
    },
}

impl Response {
    /// Encodes to one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Response::Hello { version } => {
                format!("{{\"ok\":\"hello\",\"version\":{version}}}")
            }
            Response::Accepted { job } => {
                let mut out = String::from("{\"ok\":\"accepted\",\"job\":");
                push_json_str(&mut out, job);
                out.push('}');
                out
            }
            Response::Progress {
                seq,
                job,
                state,
                total,
                completed,
                failed,
                quarantined,
                shards_done,
                shards_total,
                shards_poisoned,
                detail,
            } => {
                let mut out = format!("{{\"ok\":\"progress\",\"seq\":{seq},\"job\":");
                push_json_str(&mut out, job);
                out.push_str(",\"state\":");
                push_json_str(&mut out, state);
                out.push_str(&format!(
                    ",\"total\":{total},\"completed\":{completed},\"failed\":{failed},\
                     \"quarantined\":{quarantined},\"shards_done\":{shards_done},\
                     \"shards_total\":{shards_total},\"shards_poisoned\":{shards_poisoned},\
                     \"detail\":"
                ));
                push_json_str(&mut out, detail);
                out.push('}');
                out
            }
            Response::Listing { jobs } => {
                format!("{{\"ok\":\"listing\",\"jobs\":{jobs}}}")
            }
            Response::Job {
                job,
                campaign,
                state,
            } => {
                let mut out = String::from("{\"ok\":\"job\",\"job\":");
                push_json_str(&mut out, job);
                out.push_str(",\"campaign\":");
                push_json_str(&mut out, campaign);
                out.push_str(",\"state\":");
                push_json_str(&mut out, state);
                out.push('}');
                out
            }
            Response::End => "{\"ok\":\"end\"}".into(),
            Response::Error { detail } => {
                let mut out = String::from("{\"ok\":\"error\",\"detail\":");
                push_json_str(&mut out, detail);
                out.push('}');
                out
            }
        }
    }

    /// Decodes one line.
    ///
    /// # Errors
    ///
    /// [`GoofiError::Wire`] on malformed frames or unknown kinds.
    pub fn decode(line: &str) -> Result<Response> {
        let fields = Fields::parse(line)?;
        match fields.str("ok")? {
            "hello" => Ok(Response::Hello {
                version: fields.num("version")?,
            }),
            "accepted" => Ok(Response::Accepted {
                job: fields.str("job")?.to_string(),
            }),
            "progress" => Ok(Response::Progress {
                seq: fields.num_or("seq", 0),
                job: fields.str("job")?.to_string(),
                state: fields.str("state")?.to_string(),
                total: fields.num("total")?,
                completed: fields.num("completed")?,
                failed: fields.num("failed")?,
                quarantined: fields.num("quarantined")?,
                shards_done: fields.num("shards_done")?,
                shards_total: fields.num("shards_total")?,
                shards_poisoned: fields.num("shards_poisoned")?,
                detail: fields.str_or("detail", ""),
            }),
            "listing" => Ok(Response::Listing {
                jobs: fields.num("jobs")?,
            }),
            "job" => Ok(Response::Job {
                job: fields.str("job")?.to_string(),
                campaign: fields.str("campaign")?.to_string(),
                state: fields.str("state")?.to_string(),
            }),
            "end" => Ok(Response::End),
            "error" => Ok(Response::Error {
                detail: fields.str_or("detail", ""),
            }),
            other => Err(GoofiError::Wire(format!("unknown response kind `{other}`"))),
        }
    }
}

/// An event a shard worker writes on its own stdout for the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerEvent {
    /// The worker came up and claimed its shard.
    Hello {
        /// Shard index.
        shard: usize,
        /// Lease attempt (1-based).
        attempt: u32,
    },
    /// Live counters; a change of counters renews the shard lease.
    Progress {
        /// Shard index.
        shard: usize,
        /// Experiments completed in this shard (journal replays included).
        completed: u64,
        /// Experiments failed.
        failed: u64,
        /// Experiments skipped.
        skipped: u64,
        /// Records quarantined.
        quarantined: u64,
    },
    /// The shard finished.
    Done {
        /// Shard index.
        shard: usize,
        /// Final completed count.
        completed: u64,
        /// Final failed count.
        failed: u64,
    },
    /// The shard cannot continue on this worker.
    Error {
        /// Shard index.
        shard: usize,
        /// Error class, e.g. `target-offline`.
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
}

impl WorkerEvent {
    /// Encodes to one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            WorkerEvent::Hello { shard, attempt } => {
                format!("{{\"ev\":\"hello\",\"shard\":{shard},\"attempt\":{attempt}}}")
            }
            WorkerEvent::Progress {
                shard,
                completed,
                failed,
                skipped,
                quarantined,
            } => format!(
                "{{\"ev\":\"progress\",\"shard\":{shard},\"completed\":{completed},\
                 \"failed\":{failed},\"skipped\":{skipped},\"quarantined\":{quarantined}}}"
            ),
            WorkerEvent::Done {
                shard,
                completed,
                failed,
            } => format!(
                "{{\"ev\":\"done\",\"shard\":{shard},\"completed\":{completed},\
                 \"failed\":{failed}}}"
            ),
            WorkerEvent::Error {
                shard,
                kind,
                detail,
            } => {
                let mut out = format!("{{\"ev\":\"error\",\"shard\":{shard},\"kind\":");
                push_json_str(&mut out, kind);
                out.push_str(",\"detail\":");
                push_json_str(&mut out, detail);
                out.push('}');
                out
            }
        }
    }

    /// [`WorkerEvent::encode`] with a sequence number appended: what a
    /// worker actually emits. The daemon drops events whose `seq` it has
    /// already seen, which makes duplicated or reordered stdout frames
    /// (a `--net-chaos` drill, or a pipe replay) harmless.
    pub fn encode_with_seq(&self, seq: u64) -> String {
        let encoded = self.encode();
        format!("{},\"seq\":{seq}}}", &encoded[..encoded.len() - 1])
    }

    /// Decodes one line plus its sequence number (0 when absent — legacy
    /// frames sort before any sequenced one).
    ///
    /// # Errors
    ///
    /// [`GoofiError::Wire`] on malformed frames or unknown kinds.
    pub fn decode_with_seq(line: &str) -> Result<(u64, WorkerEvent)> {
        let seq = Fields::parse(line)?.num_or("seq", 0);
        Ok((seq, WorkerEvent::decode(line)?))
    }

    /// Decodes one line.
    ///
    /// # Errors
    ///
    /// [`GoofiError::Wire`] on malformed frames or unknown kinds.
    pub fn decode(line: &str) -> Result<WorkerEvent> {
        let fields = Fields::parse(line)?;
        let shard = fields.num("shard")? as usize;
        match fields.str("ev")? {
            "hello" => Ok(WorkerEvent::Hello {
                shard,
                attempt: fields.num("attempt")? as u32,
            }),
            "progress" => Ok(WorkerEvent::Progress {
                shard,
                completed: fields.num("completed")?,
                failed: fields.num("failed")?,
                skipped: fields.num("skipped")?,
                quarantined: fields.num("quarantined")?,
            }),
            "done" => Ok(WorkerEvent::Done {
                shard,
                completed: fields.num("completed")?,
                failed: fields.num("failed")?,
            }),
            "error" => Ok(WorkerEvent::Error {
                shard,
                kind: fields.str("kind")?.to_string(),
                detail: fields.str_or("detail", ""),
            }),
            other => Err(GoofiError::Wire(format!("unknown worker event `{other}`"))),
        }
    }
}

/// Decoded flat-JSON fields with typed, error-mapped accessors.
struct Fields(Vec<(String, JsonVal)>);

impl Fields {
    fn parse(line: &str) -> Result<Fields> {
        if line.len() > MAX_FRAME {
            return Err(GoofiError::Wire(format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
                line.len()
            )));
        }
        parse_flat_json(line).map(Fields).ok_or_else(|| {
            let mut shown: String = line.chars().take(120).collect();
            if shown.len() < line.len() {
                shown.push('…');
            }
            GoofiError::Wire(format!("malformed frame: {shown}"))
        })
    }

    fn get(&self, key: &str) -> Option<&JsonVal> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn str(&self, key: &str) -> Result<&str> {
        match self.get(key) {
            Some(JsonVal::Str(s)) => Ok(s),
            _ => Err(GoofiError::Wire(format!("missing string field `{key}`"))),
        }
    }

    fn str_or(&self, key: &str, default: &str) -> String {
        match self.get(key) {
            Some(JsonVal::Str(s)) => s.clone(),
            _ => default.to_string(),
        }
    }

    fn num(&self, key: &str) -> Result<u64> {
        match self.get(key) {
            Some(JsonVal::Num(n)) => Ok(*n),
            _ => Err(GoofiError::Wire(format!("missing numeric field `{key}`"))),
        }
    }

    fn num_or(&self, key: &str, default: u64) -> u64 {
        match self.get(key) {
            Some(JsonVal::Num(n)) => *n,
            _ => default,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Hello { version: 2 },
            Request::Submit {
                id: String::new(),
                campaign: "c one \"quoted\"".into(),
                workers: 4,
                watch: true,
                target: String::new(),
            },
            Request::Submit {
                id: "host-17-42".into(),
                campaign: "c2".into(),
                workers: 1,
                watch: false,
                target: "rv32i".into(),
            },
            Request::Watch {
                job: "job-7".into(),
                after: 0,
            },
            Request::Watch {
                job: "job-7".into(),
                after: 31,
            },
            Request::Status,
            Request::Shutdown,
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let resps = [
            Response::Hello { version: 2 },
            Response::Accepted {
                job: "job-1".into(),
            },
            Response::Progress {
                seq: 17,
                job: "job-1".into(),
                state: "running".into(),
                total: 30,
                completed: 12,
                failed: 1,
                quarantined: 2,
                shards_done: 1,
                shards_total: 3,
                shards_poisoned: 0,
                detail: String::new(),
            },
            Response::Job {
                job: "job-2".into(),
                campaign: "c1".into(),
                state: "done".into(),
            },
            Response::End,
            Response::Error {
                detail: "no such campaign".into(),
            },
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn worker_events_roundtrip() {
        let events = [
            WorkerEvent::Hello {
                shard: 2,
                attempt: 3,
            },
            WorkerEvent::Progress {
                shard: 0,
                completed: 5,
                failed: 0,
                skipped: 1,
                quarantined: 0,
            },
            WorkerEvent::Done {
                shard: 1,
                completed: 10,
                failed: 2,
            },
            WorkerEvent::Error {
                shard: 0,
                kind: "target-offline".into(),
                detail: "ladder exhausted\nmid \"probe\"".into(),
            },
        ];
        for event in events {
            assert_eq!(WorkerEvent::decode(&event.encode()).unwrap(), event);
        }
    }

    #[test]
    fn worker_events_roundtrip_with_sequence_numbers() {
        let event = WorkerEvent::Progress {
            shard: 1,
            completed: 4,
            failed: 0,
            skipped: 0,
            quarantined: 1,
        };
        let line = event.encode_with_seq(9);
        assert_eq!(WorkerEvent::decode_with_seq(&line).unwrap(), (9, event));
        // Legacy frames without a seq decode as seq 0.
        let legacy = WorkerEvent::Done {
            shard: 0,
            completed: 3,
            failed: 1,
        };
        assert_eq!(
            WorkerEvent::decode_with_seq(&legacy.encode()).unwrap(),
            (0, legacy)
        );
    }

    #[test]
    fn oversized_frames_are_rejected_naming_the_cap() {
        let mut line = String::from("{\"op\":\"submit\",\"campaign\":\"");
        line.push_str(&"x".repeat(MAX_FRAME));
        line.push_str("\"}");
        for err in [
            Request::decode(&line).unwrap_err(),
            Response::decode(&line).unwrap_err(),
            WorkerEvent::decode(&line).unwrap_err(),
        ] {
            let text = err.to_string();
            assert!(text.contains("65536-byte cap"), "{text}");
        }
    }

    #[test]
    fn malformed_frames_error_without_panicking() {
        let bad = [
            "",
            "{",
            "{\"op\":\"submit\"", // truncated
            "not json at all",
            "{\"op\":\"submit\"}",     // missing fields
            "{\"op\":\"explode\"}",    // unknown op
            "{\"ok\":\"progress\"}",   // missing counters
            "{\"ev\":\"hello\"}",      // missing shard
            "{\"ev\":42,\"shard\":0}", // wrong type
        ];
        for line in bad {
            assert!(Request::decode(line).is_err(), "request: {line}");
            assert!(Response::decode(line).is_err(), "response: {line}");
            assert!(WorkerEvent::decode(line).is_err(), "event: {line}");
        }
    }

    #[test]
    fn wire_errors_truncate_long_frames() {
        let long = "x".repeat(1000);
        let err = Request::decode(&long).unwrap_err();
        assert!(err.to_string().len() < 300);
        assert!(err.to_string().contains('…'));
    }
}
