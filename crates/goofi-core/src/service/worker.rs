//! The shard-worker half of the campaign service.
//!
//! A worker is one OS process owning one shard of a campaign's experiment
//! index space. It loads the campaign from the shared database, runs its
//! shard via [`runner::resume_campaign_shard`] under a private journal,
//! and streams [`WorkerEvent`] lines on stdout — the daemon reads them to
//! renew the shard lease and aggregate job progress. The binary wrapping
//! [`run_worker`] chooses the target system (`goofi worker` builds the
//! Thor simulator; the test binary builds
//! [`SimTarget`](crate::framework::SimTarget)), which is all that differs
//! between production and test workers.
//!
//! [`runner::resume_campaign_shard`]: crate::runner::resume_campaign_shard

use super::chaos::{ChaosConfig, ChaosMode, CHAOS_EXIT_CODE};
use super::net::{encode_frame, FaultInjector, FaultWriter, NetFaultConfig};
use super::wire::WorkerEvent;
use crate::campaign::Campaign;
use crate::dbio;
use crate::journal::ExperimentJournal;
use crate::monitor::{Progress, ProgressMonitor};
use crate::runner;
use crate::target::TargetAccess;
use crate::{GoofiError, Result};
use parking_lot::Mutex;
use std::io::Write;
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Parsed `goofi worker` command line. The grammar is shared by every
/// worker binary so the scheduler can spawn any of them interchangeably.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerArgs {
    /// Database file holding the campaign.
    pub db: PathBuf,
    /// Campaign name.
    pub campaign: String,
    /// Shard index (for event attribution).
    pub shard: usize,
    /// Global experiment index range of this shard.
    pub range: Range<usize>,
    /// Private shard journal path.
    pub journal: PathBuf,
    /// Lease attempt, 1-based.
    pub attempt: u32,
    /// Seeded self-kill drill, when the daemon runs with `--chaos`.
    pub chaos: Option<ChaosConfig>,
    /// Seeded perturbation of our own event frames, when the daemon runs
    /// with `--net-chaos` — the worker-side half of the network drill.
    pub net_chaos: Option<NetFaultConfig>,
    /// The campaign's `target_system` name, recorded by the spawning
    /// daemon so a multi-target worker binary builds the right port
    /// (`None` = the binary's default target). The framework never
    /// interprets the string — only the binary's registry does.
    pub target: Option<String>,
}

impl WorkerArgs {
    /// Parses `--db P --campaign C --shard K --range A:B --journal P
    /// [--attempt N] [--chaos SPEC] [--net-chaos SPEC] [--target NAME]`.
    ///
    /// # Errors
    ///
    /// [`GoofiError::Config`] on unknown flags, missing values, or
    /// malformed numbers — never a panic, since the daemon's spawn line
    /// is still an external input.
    pub fn parse(args: &[String]) -> Result<WorkerArgs> {
        let mut db = None;
        let mut campaign = None;
        let mut shard = None;
        let mut range = None;
        let mut journal = None;
        let mut attempt: u32 = 1;
        let mut chaos = None;
        let mut net_chaos = None;
        let mut target = None;
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let value = it
                .next()
                .ok_or_else(|| GoofiError::Config(format!("missing value for `{flag}`")))?;
            match flag.as_str() {
                "--db" => db = Some(PathBuf::from(value)),
                "--campaign" => campaign = Some(value.clone()),
                "--shard" => {
                    shard = Some(
                        value
                            .parse()
                            .map_err(|_| GoofiError::Config(format!("bad --shard `{value}`")))?,
                    );
                }
                "--range" => {
                    let (a, b) = value.split_once(':').ok_or_else(|| {
                        GoofiError::Config(format!("bad --range `{value}` (want A:B)"))
                    })?;
                    let a: usize = a
                        .parse()
                        .map_err(|_| GoofiError::Config(format!("bad --range start `{a}`")))?;
                    let b: usize = b
                        .parse()
                        .map_err(|_| GoofiError::Config(format!("bad --range end `{b}`")))?;
                    if b < a {
                        return Err(GoofiError::Config(format!("backwards --range `{value}`")));
                    }
                    range = Some(a..b);
                }
                "--journal" => journal = Some(PathBuf::from(value)),
                "--attempt" => {
                    attempt = value
                        .parse()
                        .map_err(|_| GoofiError::Config(format!("bad --attempt `{value}`")))?;
                }
                "--chaos" => {
                    chaos = Some(
                        ChaosConfig::decode(value)
                            .ok_or_else(|| GoofiError::Config(format!("bad --chaos `{value}`")))?,
                    );
                }
                "--net-chaos" => {
                    net_chaos =
                        Some(NetFaultConfig::decode(value).ok_or_else(|| {
                            GoofiError::Config(format!("bad --net-chaos `{value}`"))
                        })?);
                }
                "--target" => target = Some(value.clone()),
                other => return Err(GoofiError::Config(format!("unknown worker flag `{other}`"))),
            }
        }
        let missing = |name: &str| GoofiError::Config(format!("worker needs `{name}`"));
        Ok(WorkerArgs {
            db: db.ok_or_else(|| missing("--db"))?,
            campaign: campaign.ok_or_else(|| missing("--campaign"))?,
            shard: shard.ok_or_else(|| missing("--shard"))?,
            range: range.ok_or_else(|| missing("--range"))?,
            journal: journal.ok_or_else(|| missing("--journal"))?,
            attempt: attempt.max(1),
            chaos,
            net_chaos,
            target,
        })
    }

    /// The argument vector [`WorkerArgs::parse`] reads — what the
    /// scheduler appends to the worker command line.
    pub fn to_args(&self) -> Vec<String> {
        let mut args = vec![
            "--db".into(),
            self.db.display().to_string(),
            "--campaign".into(),
            self.campaign.clone(),
            "--shard".into(),
            self.shard.to_string(),
            "--range".into(),
            format!("{}:{}", self.range.start, self.range.end),
            "--journal".into(),
            self.journal.display().to_string(),
            "--attempt".into(),
            self.attempt.to_string(),
        ];
        if let Some(chaos) = &self.chaos {
            args.push("--chaos".into());
            args.push(chaos.encode());
        }
        if let Some(net_chaos) = &self.net_chaos {
            args.push("--net-chaos".into());
            args.push(net_chaos.encode());
        }
        if let Some(target) = &self.target {
            args.push("--target".into());
            args.push(target.clone());
        }
        args
    }
}

/// The worker's event channel to the daemon: sequence-numbered
/// [`WorkerEvent`] frames on stdout. Sequence numbers start at 1 per
/// process, so the daemon's per-spawn reader can drop duplicated or
/// reordered-stale frames; the frame codec (length prefix + checksum)
/// lets it skip corrupted ones without desyncing. Under `--net-chaos`
/// the writer itself perturbs outgoing frames — the drill's worker half.
struct EventSender {
    writer: Mutex<FaultWriter<Box<dyn Write + Send>>>,
    seq: AtomicU64,
}

impl EventSender {
    fn new(net_chaos: Option<NetFaultConfig>) -> EventSender {
        let sink: Box<dyn Write + Send> = Box::new(std::io::stdout());
        EventSender {
            writer: Mutex::new(FaultWriter::new(sink, net_chaos.map(FaultInjector::new))),
            seq: AtomicU64::new(0),
        }
    }

    /// Emits one event frame; delivery failures are deliberately ignored
    /// (a daemon that stopped listening judges us by lease, not by I/O).
    fn emit(&self, event: &WorkerEvent) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let frame = encode_frame(&event.encode_with_seq(seq));
        let _ = self.writer.lock().send_frame(&frame);
    }
}

/// Runs one shard to completion: the body of every worker binary.
///
/// Loads the campaign from `args.db`, replays/extends the shard journal
/// over `args.range`, and streams [`WorkerEvent`]s on stdout. With a
/// chaos config active for this attempt, the process deterministically
/// kills itself (or stalls) after a seeded number of fresh completions —
/// see [`super::chaos`].
///
/// # Errors
///
/// Any campaign, journal, or database error; the caller should exit
/// nonzero so the daemon counts the lease as failed.
pub fn run_worker<T, FT>(args: &WorkerArgs, make_target: FT) -> Result<()>
where
    T: TargetAccess,
    FT: Fn() -> T + Sync,
{
    let db = dbio::load_database(&crate::vfs::RealFs, &args.db)?;
    let campaign: Campaign = dbio::load_campaign(&db, &args.campaign)?;
    let range =
        args.range.start.min(campaign.faults.len())..args.range.end.min(campaign.faults.len());

    let monitor = ProgressMonitor::new(range.len());
    let events = Arc::new(EventSender::new(args.net_chaos.clone()));
    events.emit(&WorkerEvent::Hello {
        shard: args.shard,
        attempt: args.attempt,
    });

    // Experiments already journaled count as "replayed", not "fresh":
    // both the chaos kill point and nothing else depend on the split, but
    // the distinction is what makes drills re-kill only on new work.
    let baseline = if args.journal.exists() {
        ExperimentJournal::load(&args.journal, &args.campaign)?
            .completed
            .keys()
            .filter(|index| range.contains(index))
            .count()
    } else {
        0
    };

    // Progress streamer: one event per counter change.
    let finished = Arc::new(AtomicBool::new(false));
    let streamer = {
        let monitor = monitor.clone();
        let finished = Arc::clone(&finished);
        let shard = args.shard;
        let events = Arc::clone(&events);
        std::thread::spawn(move || {
            let mut last = Progress::default();
            loop {
                let p = monitor.wait_for_change(&last, Duration::from_millis(100));
                if p != last {
                    events.emit(&WorkerEvent::Progress {
                        shard,
                        completed: p.completed as u64,
                        failed: p.failed as u64,
                        skipped: p.skipped as u64,
                        quarantined: p.quarantined as u64,
                    });
                    last = p;
                }
                if finished.load(Ordering::Acquire) {
                    return;
                }
            }
        })
    };

    // Chaos drill: self-kill (or stall) after a seeded number of *fresh*
    // completions this lease.
    if let Some(chaos) = args.chaos.filter(|c| c.active(args.attempt)) {
        let kill_point = chaos.kill_point(args.shard, args.attempt);
        let monitor = monitor.clone();
        std::thread::spawn(move || {
            let mut last = Progress::default();
            loop {
                let p = monitor.wait_for_change(&last, Duration::from_millis(50));
                if p.completed.saturating_sub(baseline) as u64 >= kill_point {
                    match chaos.mode {
                        ChaosMode::Exit => std::process::exit(CHAOS_EXIT_CODE),
                        ChaosMode::Stall => {
                            // Freeze the campaign without exiting: the
                            // lease deadline must catch us.
                            monitor.pause();
                            loop {
                                std::thread::sleep(Duration::from_secs(3600));
                            }
                        }
                    }
                }
                last = p;
            }
        });
    }

    let result = runner::resume_campaign_shard(
        &make_target,
        None::<fn() -> Box<dyn envsim::Environment>>,
        &campaign,
        &monitor,
        1,
        &args.journal,
        range,
    );
    finished.store(true, Ordering::Release);
    let _ = streamer.join();

    let snapshot = monitor.snapshot();
    match result {
        Ok(_) => {
            events.emit(&WorkerEvent::Done {
                shard: args.shard,
                completed: snapshot.completed as u64,
                failed: snapshot.failed as u64,
            });
            Ok(())
        }
        Err(e) => {
            let kind = match &e {
                GoofiError::TargetOffline { .. } => "target-offline",
                GoofiError::Stopped => "stopped",
                _ => "error",
            };
            events.emit(&WorkerEvent::Error {
                shard: args.shard,
                kind: kind.into(),
                detail: e.to_string(),
            });
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(spec: &[&str]) -> Result<WorkerArgs> {
        WorkerArgs::parse(&spec.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn args_roundtrip_through_to_args() {
        let args = WorkerArgs {
            db: "/tmp/db.gdb".into(),
            campaign: "c1".into(),
            shard: 2,
            range: 10..20,
            journal: "/tmp/shard-2.gjl".into(),
            attempt: 3,
            chaos: Some(ChaosConfig::decode("kill-after=3,seed=7").unwrap()),
            net_chaos: Some(NetFaultConfig::decode("drop=0.05,seed=7").unwrap()),
            target: Some("rv32i".into()),
        };
        assert_eq!(WorkerArgs::parse(&args.to_args()).unwrap(), args);
    }

    #[test]
    fn target_flag_is_optional() {
        let args = parse(&[
            "--db",
            "d",
            "--campaign",
            "c",
            "--shard",
            "0",
            "--range",
            "0:4",
            "--journal",
            "j",
        ])
        .unwrap();
        assert_eq!(args.target, None);
        // A spawn line without `--target` stays parseable by old workers.
        assert!(!args.to_args().contains(&"--target".to_string()));
    }

    #[test]
    fn parse_rejects_malformed_args() {
        assert!(parse(&["--db"]).is_err()); // missing value
        assert!(parse(&["--bogus", "1"]).is_err());
        assert!(parse(&["--shard", "x"]).is_err());
        assert!(parse(&["--range", "5"]).is_err());
        assert!(parse(&["--range", "9:3"]).is_err());
        assert!(parse(&["--chaos", "nope"]).is_err());
        assert!(parse(&["--net-chaos", "nope"]).is_err());
        // All mandatory flags must be present.
        assert!(parse(&["--db", "d", "--campaign", "c"]).is_err());
    }
}
