//! Target supervision: health probes, a staged recovery ladder, and the
//! wedgeable-target test decorator.
//!
//! GOOFI's campaign loop assumes the target stays controllable, but an
//! injected fault can wedge the target itself: the breakpoint never fires,
//! the TAP stops responding, or the core lands in an illegal state that
//! outlives `reset_target`. This module closes that gap:
//!
//! * a [`Supervisor`] runs a [`HealthProbe`] suite between experiments
//!   (every `n` experiments, per
//!   [`ExperimentPolicy::health_check_every`](crate::policy::ExperimentPolicy))
//!   — scan-chain signature check, memory pattern write/readback, and a
//!   golden smoke-workload run compared against the reference log;
//! * a [`RecoveryLadder`] applies bounded, escalating recovery stages
//!   `SoftReset → ReinitTestCard → PowerCycle`, re-probing after each
//!   attempt, and reports [`RecoveryStage::Offline`] when nothing helps;
//! * a watchdog `Timeout` that a failing probe suite *confirms* is a wedged
//!   target is logged as
//!   [`TerminationCause::TargetHang`](crate::logging::TerminationCause) —
//!   distinct from a merely slow workload, whose probes pass — quarantined,
//!   and re-run via a `parentExperiment` link after recovery;
//! * a [`WedgeableTarget`] decorator drives all of the above in tests: a
//!   seeded [`scanchain::WedgeModel`] deterministically wedges the target
//!   into hangs, stuck TAPs or garbage scan reads, clearing only when the
//!   recovery action reaches the modelled depth.
//!
//! The campaign service ([`crate::service`]) applies the same supervision
//! philosophy one level up the process tree: where this module watches a
//! *target* and recovers it through a ladder, the service's scheduler
//! watches *worker processes* through leases, kills and reassigns the
//! hung ones with backoff, and quarantines shards that keep failing —
//! poison-shard stubs reuse the `parentExperiment` re-run link that
//! quarantined hangs get here.

use crate::algorithms::{golden_run_matches, make_reference_run};
use crate::campaign::{Campaign, WorkloadImage};
use crate::logging::ExperimentRecord;
use crate::monitor::ProgressMonitor;
use crate::policy::ExperimentPolicy;
use crate::target::{RunBudget, RunEvent, TargetAccess, TargetSnapshot};
use crate::trigger::Trigger;
use crate::{GoofiError, Result};
use envsim::Environment;
use scanchain::{
    BitVec, ChainLayout, RecoveryDepth, ScanError, WedgeConfig, WedgeKind, WedgeModel,
};
use std::fmt;

// ---------------------------------------------------------------------------
// Health probes.

/// The individual checks of the between-experiment health suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthProbe {
    /// Each scan chain reads back the same, correctly-sized image twice.
    ScanSignature,
    /// A scratch memory word accepts and returns two test patterns.
    MemoryPattern,
    /// A fresh fault-free workload run reproduces the golden reference log.
    SmokeWorkload,
}

impl fmt::Display for HealthProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthProbe::ScanSignature => f.write_str("scan-signature"),
            HealthProbe::MemoryPattern => f.write_str("memory-pattern"),
            HealthProbe::SmokeWorkload => f.write_str("smoke-workload"),
        }
    }
}

/// One probe's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeReport {
    /// Which probe ran.
    pub probe: HealthProbe,
    /// Whether it passed.
    pub passed: bool,
    /// Failure detail (empty on success).
    pub detail: String,
}

/// The verdict of one full probe suite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeSuite {
    /// Per-probe reports, in execution order.
    pub reports: Vec<ProbeReport>,
}

impl ProbeSuite {
    /// Whether every probe passed.
    pub fn passed(&self) -> bool {
        self.reports.iter().all(|r| r.passed)
    }

    /// A one-line summary of the failing probes (empty when healthy).
    pub fn failure_summary(&self) -> String {
        self.reports
            .iter()
            .filter(|r| !r.passed)
            .map(|r| format!("{}: {}", r.probe, r.detail))
            .collect::<Vec<_>>()
            .join("; ")
    }
}

// ---------------------------------------------------------------------------
// Recovery ladder.

/// The escalating recovery stages, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryStage {
    /// Reset the core ([`TargetAccess::reset_target`]).
    SoftReset,
    /// Re-initialise the test card ([`TargetAccess::init_test_card`]).
    ReinitTestCard,
    /// Cold-restart the target ([`TargetAccess::power_cycle`]).
    PowerCycle,
    /// Every stage exhausted: the target is unrecoverable.
    Offline,
}

impl RecoveryStage {
    /// Database string form.
    pub fn encode(self) -> &'static str {
        match self {
            RecoveryStage::SoftReset => "soft-reset",
            RecoveryStage::ReinitTestCard => "reinit-test-card",
            RecoveryStage::PowerCycle => "power-cycle",
            RecoveryStage::Offline => "offline",
        }
    }

    /// Parses [`RecoveryStage::encode`] output.
    pub fn decode(s: &str) -> Option<RecoveryStage> {
        match s {
            "soft-reset" => Some(RecoveryStage::SoftReset),
            "reinit-test-card" => Some(RecoveryStage::ReinitTestCard),
            "power-cycle" => Some(RecoveryStage::PowerCycle),
            "offline" => Some(RecoveryStage::Offline),
            _ => None,
        }
    }
}

impl fmt::Display for RecoveryStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.encode())
    }
}

/// One applied recovery action and its outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryAction {
    /// Stage applied.
    pub stage: RecoveryStage,
    /// 1-based attempt number within the stage.
    pub attempt: u32,
    /// Whether the post-action probe suite passed.
    pub recovered: bool,
    /// Probe failure summary or action error (empty when recovered).
    pub detail: String,
}

/// What triggered a recovery episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryTrigger {
    /// A watchdog timeout that a probe suite confirmed as a wedged target.
    TargetHang,
    /// A scheduled health-probe suite failed between experiments.
    ProbeFailure,
}

impl RecoveryTrigger {
    /// Database string form.
    pub fn encode(self) -> &'static str {
        match self {
            RecoveryTrigger::TargetHang => "target-hang",
            RecoveryTrigger::ProbeFailure => "probe-failure",
        }
    }

    /// Parses [`RecoveryTrigger::encode`] output.
    pub fn decode(s: &str) -> Option<RecoveryTrigger> {
        match s {
            "target-hang" => Some(RecoveryTrigger::TargetHang),
            "probe-failure" => Some(RecoveryTrigger::ProbeFailure),
            _ => None,
        }
    }
}

impl fmt::Display for RecoveryTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.encode())
    }
}

/// One full recovery episode: the ladder climb for one sick target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Experiment around which the episode ran (the quarantined experiment
    /// for hangs, the last completed one for scheduled-probe failures).
    pub experiment: String,
    /// What started the episode.
    pub trigger: RecoveryTrigger,
    /// Every action applied, in order.
    pub actions: Vec<RecoveryAction>,
    /// Whether the target came back; `false` means [`RecoveryStage::Offline`].
    pub recovered: bool,
}

/// Bounded attempt counts for the ladder's stages, plus the supervision
/// cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryLadder {
    /// Soft-reset attempts before escalating.
    pub soft_resets: u32,
    /// Test-card re-init attempts before escalating.
    pub reinits: u32,
    /// Power-cycle attempts before declaring the target offline.
    pub power_cycles: u32,
    /// How many times one experiment may hang-and-recover before its
    /// failure is handed to the campaign's experiment policy.
    pub max_hang_rounds: u32,
}

impl Default for RecoveryLadder {
    fn default() -> Self {
        RecoveryLadder {
            soft_resets: 2,
            reinits: 2,
            power_cycles: 1,
            max_hang_rounds: 3,
        }
    }
}

impl RecoveryLadder {
    fn stages(&self) -> [(RecoveryStage, u32); 3] {
        [
            (RecoveryStage::SoftReset, self.soft_resets),
            (RecoveryStage::ReinitTestCard, self.reinits),
            (RecoveryStage::PowerCycle, self.power_cycles),
        ]
    }
}

// ---------------------------------------------------------------------------
// Supervisor.

/// Runs health probes and the recovery ladder for one campaign.
///
/// Supervision is enabled by
/// [`ExperimentPolicy::with_health_check`](crate::policy::ExperimentPolicy):
/// both runners construct a `Supervisor` whenever the campaign's policy
/// carries a probe cadence, and additionally use it to confirm watchdog
/// timeouts as real target hangs.
#[derive(Debug, Clone)]
pub struct Supervisor<'a> {
    campaign: &'a Campaign,
    reference: &'a ExperimentRecord,
    cadence: u32,
    ladder: RecoveryLadder,
}

/// Memory-pattern probe test words.
const PATTERNS: [u32; 2] = [0xA5A5_5A5A, 0x5A5A_A5A5];

impl<'a> Supervisor<'a> {
    /// Creates the supervisor when the campaign's policy enables
    /// supervision (a health-check cadence is set).
    pub fn from_campaign(
        campaign: &'a Campaign,
        reference: &'a ExperimentRecord,
    ) -> Option<Supervisor<'a>> {
        Self::from_policy(&campaign.policy, campaign, reference)
    }

    /// [`Supervisor::from_campaign`] with an explicit policy (the resume
    /// path overrides the stored policy from the command line).
    pub fn from_policy(
        policy: &ExperimentPolicy,
        campaign: &'a Campaign,
        reference: &'a ExperimentRecord,
    ) -> Option<Supervisor<'a>> {
        policy.health_check_every.map(|cadence| Supervisor {
            campaign,
            reference,
            cadence: cadence.max(1),
            ladder: RecoveryLadder::default(),
        })
    }

    /// Overrides the default ladder bounds.
    pub fn with_ladder(mut self, ladder: RecoveryLadder) -> Self {
        self.ladder = ladder;
        self
    }

    /// The ladder bounds in use.
    pub fn ladder(&self) -> &RecoveryLadder {
        &self.ladder
    }

    /// Whether a scheduled probe suite is due after `completed` experiments.
    pub fn probe_due(&self, completed: usize) -> bool {
        completed > 0 && completed.is_multiple_of(self.cadence as usize)
    }

    /// Runs the full probe suite. Target errors during probing are probe
    /// *failures*, not campaign errors — a target that cannot answer a
    /// probe is exactly what the suite exists to detect.
    pub fn probe<T: TargetAccess + ?Sized>(
        &self,
        target: &mut T,
        env: &mut dyn Environment,
        monitor: &ProgressMonitor,
    ) -> ProbeSuite {
        let mut span = monitor
            .telemetry()
            .stage_span(crate::telemetry::Stage::Probe, 0);
        let reports = vec![
            self.probe_scan_signature(target),
            self.probe_memory_pattern(target),
            self.probe_smoke_workload(target, env),
        ];
        let suite = ProbeSuite { reports };
        monitor.record_probe(suite.passed());
        if !suite.passed() {
            span.set_detail(&suite.failure_summary());
        }
        suite
    }

    fn probe_scan_signature<T: TargetAccess + ?Sized>(&self, target: &mut T) -> ProbeReport {
        let mut detail = String::new();
        for layout in target.chain_layouts() {
            let chain = layout.name().to_string();
            let (first, second) = match (
                target.read_scan_chain(&chain),
                target.read_scan_chain(&chain),
            ) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => {
                    detail = format!("chain `{chain}`: {e}");
                    break;
                }
            };
            if first.len() != layout.total_bits() {
                detail = format!(
                    "chain `{chain}`: captured {} bits, layout has {}",
                    first.len(),
                    layout.total_bits()
                );
                break;
            }
            if first != second {
                detail = format!("chain `{chain}`: two idle captures disagree");
                break;
            }
        }
        ProbeReport {
            probe: HealthProbe::ScanSignature,
            passed: detail.is_empty(),
            detail,
        }
    }

    fn probe_memory_pattern<T: TargetAccess + ?Sized>(&self, target: &mut T) -> ProbeReport {
        let size = target.memory_size();
        if size == 0 {
            return ProbeReport {
                probe: HealthProbe::MemoryPattern,
                passed: true,
                detail: String::new(),
            };
        }
        // The last word is scratch: the next experiment reloads the
        // workload anyway, but restore it so probing is state-neutral.
        let addr = size - 1;
        let run = |target: &mut T| -> Result<Option<String>> {
            let original = target.read_memory(addr, 1)?[0];
            let mut mismatch = None;
            for pattern in PATTERNS {
                target.write_memory(addr, &[pattern])?;
                let read = target.read_memory(addr, 1)?[0];
                if read != pattern {
                    mismatch = Some(format!(
                        "word {addr:#x}: wrote {pattern:#010x}, read {read:#010x}"
                    ));
                    break;
                }
            }
            target.write_memory(addr, &[original])?;
            Ok(mismatch)
        };
        let detail = match run(target) {
            Ok(None) => String::new(),
            Ok(Some(mismatch)) => mismatch,
            Err(e) => e.to_string(),
        };
        ProbeReport {
            probe: HealthProbe::MemoryPattern,
            passed: detail.is_empty(),
            detail,
        }
    }

    fn probe_smoke_workload<T: TargetAccess + ?Sized>(
        &self,
        target: &mut T,
        env: &mut dyn Environment,
    ) -> ProbeReport {
        let detail = match make_reference_run(target, self.campaign, env) {
            Ok(golden) if golden_run_matches(self.reference, &golden) => String::new(),
            Ok(golden) => format!(
                "golden run diverged (termination {} vs reference {})",
                golden.termination, self.reference.termination
            ),
            Err(e) => e.to_string(),
        };
        ProbeReport {
            probe: HealthProbe::SmokeWorkload,
            passed: detail.is_empty(),
            detail,
        }
    }

    /// Climbs the recovery ladder: applies each stage up to its bound,
    /// re-probing after every attempt, until the probes pass or every stage
    /// is exhausted ([`RecoveryStage::Offline`]).
    pub fn recover<T: TargetAccess + ?Sized>(
        &self,
        target: &mut T,
        env: &mut dyn Environment,
        monitor: &ProgressMonitor,
        experiment: &str,
        trigger: RecoveryTrigger,
    ) -> RecoveryRecord {
        let mut span = monitor.telemetry().stage_span_detailed(
            crate::telemetry::Stage::Recover,
            0,
            &format!("{}: {}", experiment, trigger.encode()),
        );
        let mut actions = Vec::new();
        for (stage, attempts) in self.ladder.stages() {
            for attempt in 1..=attempts {
                let applied = match stage {
                    RecoveryStage::SoftReset => {
                        monitor.record_soft_reset();
                        target.reset_target()
                    }
                    RecoveryStage::ReinitTestCard => {
                        monitor.record_card_reinit();
                        target.init_test_card()
                    }
                    RecoveryStage::PowerCycle => {
                        monitor.record_power_cycle();
                        target.power_cycle()
                    }
                    RecoveryStage::Offline => unreachable!("Offline is not applied"),
                };
                if let Err(e) = applied {
                    actions.push(RecoveryAction {
                        stage,
                        attempt,
                        recovered: false,
                        detail: format!("action failed: {e}"),
                    });
                    continue;
                }
                let suite = self.probe(target, env, monitor);
                let recovered = suite.passed();
                actions.push(RecoveryAction {
                    stage,
                    attempt,
                    recovered,
                    detail: suite.failure_summary(),
                });
                if recovered {
                    span.set_detail(&format!(
                        "{}: {}: recovered at {}",
                        experiment,
                        trigger.encode(),
                        stage.encode()
                    ));
                    return RecoveryRecord {
                        experiment: experiment.to_string(),
                        trigger,
                        actions,
                        recovered: true,
                    };
                }
            }
        }
        monitor.record_target_offline();
        span.set_detail(&format!(
            "{}: {}: ladder exhausted, target offline",
            experiment,
            trigger.encode()
        ));
        actions.push(RecoveryAction {
            stage: RecoveryStage::Offline,
            attempt: 1,
            recovered: false,
            detail: "every recovery stage exhausted".into(),
        });
        RecoveryRecord {
            experiment: experiment.to_string(),
            trigger,
            actions,
            recovered: false,
        }
    }
}

// ---------------------------------------------------------------------------
// The wedgeable test decorator.

/// A [`TargetAccess`] decorator that deterministically wedges the inner
/// target, driven by a seeded [`scanchain::WedgeModel`].
///
/// One model draw is consumed per `run_workload` call and, for campaigns
/// that single-step instead (detail logging, persistent fault models), one
/// per workload launch — the first `step_instruction` after a
/// `load_workload`. A triggered wedge is sticky until a recovery action of
/// the configured depth is applied through the decorator:
///
/// * [`WedgeKind::Hang`] — every run burns its whole budget (and the
///   equivalent cycles) without real progress, so the harness sees a
///   watchdog timeout;
/// * [`WedgeKind::StuckTap`] — scan accesses fail with
///   [`ScanError::ShiftStall`];
/// * [`WedgeKind::GarbageScan`] — scan reads return seeded garbage.
#[derive(Debug, Clone)]
pub struct WedgeableTarget<T> {
    inner: T,
    model: WedgeModel,
    /// Budget burned while hanging, added to the inner counters so the
    /// campaign's instruction/cycle budgets genuinely run out.
    hang_burn: u64,
    /// Set by `load_workload`, cleared by the next execution op. Lets the
    /// stepping paths (which never call `run_workload`) still draw once
    /// per workload launch without double-drawing on the run path.
    pending_launch: bool,
}

impl<T: TargetAccess> WedgeableTarget<T> {
    /// Wraps `inner` with a wedge model built from `config`.
    pub fn new(inner: T, config: WedgeConfig) -> Self {
        WedgeableTarget {
            inner,
            model: WedgeModel::new(config),
            hang_burn: 0,
            pending_launch: false,
        }
    }

    /// The inner target.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The wedge model (current wedge, counts, operation count).
    pub fn model(&self) -> &WedgeModel {
        &self.model
    }

    fn recover_model(&mut self, depth: RecoveryDepth) {
        if self.model.recover(depth) {
            self.hang_burn = 0;
        }
    }

    fn stall(&self, operation: &str) -> GoofiError {
        GoofiError::Scan(ScanError::ShiftStall {
            operation: operation.to_string(),
        })
    }
}

/// Cycles burned per `step_instruction` while hung. A hung target never
/// completes a single-step command — the host's step op times out after a
/// slice's worth of cycles — so stepping campaigns reach their watchdog
/// budget in a bounded number of step calls instead of one cycle at a time.
const HANG_STEP_BURN: u64 = 4096;

impl<T: TargetAccess> TargetAccess for WedgeableTarget<T> {
    fn target_name(&self) -> &str {
        self.inner.target_name()
    }

    fn init_test_card(&mut self) -> Result<()> {
        let result = self.inner.init_test_card();
        if result.is_ok() {
            self.recover_model(RecoveryDepth::Reinit);
        }
        result
    }

    fn load_workload(&mut self, image: &WorkloadImage) -> Result<()> {
        // A fresh download resets the inner counters; the burn restarts
        // too (the wedge itself persists — reloading code does not unstick
        // a latched-up core).
        self.hang_burn = 0;
        self.pending_launch = true;
        self.inner.load_workload(image)
    }

    fn reset_target(&mut self) -> Result<()> {
        self.hang_burn = 0;
        let result = self.inner.reset_target();
        if result.is_ok() {
            self.recover_model(RecoveryDepth::SoftReset);
        }
        result
    }

    fn write_memory(&mut self, addr: u32, data: &[u32]) -> Result<()> {
        self.inner.write_memory(addr, data)
    }

    fn read_memory(&mut self, addr: u32, len: usize) -> Result<Vec<u32>> {
        self.inner.read_memory(addr, len)
    }

    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> Result<()> {
        self.inner.flip_memory_bit(addr, bit)
    }

    fn memory_size(&self) -> u32 {
        self.inner.memory_size()
    }

    fn set_breakpoint(&mut self, trigger: Trigger) -> Result<()> {
        self.inner.set_breakpoint(trigger)
    }

    fn clear_breakpoints(&mut self) -> Result<()> {
        self.inner.clear_breakpoints()
    }

    fn run_workload(&mut self, budget: RunBudget) -> Result<RunEvent> {
        self.pending_launch = false;
        match self.model.advance() {
            Some(WedgeKind::Hang) => {
                self.hang_burn = self.hang_burn.saturating_add(budget.max_instructions);
                Ok(RunEvent::BudgetExhausted)
            }
            _ => self.inner.run_workload(budget),
        }
    }

    fn step_instruction(&mut self) -> Result<Option<RunEvent>> {
        if self.pending_launch {
            self.pending_launch = false;
            self.model.advance();
        }
        if self.model.wedged() == Some(WedgeKind::Hang) {
            self.hang_burn = self.hang_burn.saturating_add(HANG_STEP_BURN);
            return Ok(None);
        }
        self.inner.step_instruction()
    }

    fn chain_layouts(&self) -> Vec<ChainLayout> {
        self.inner.chain_layouts()
    }

    fn read_scan_chain(&mut self, chain: &str) -> Result<BitVec> {
        match self.model.wedged() {
            Some(WedgeKind::StuckTap) => Err(self.stall(&format!("read {chain}"))),
            Some(WedgeKind::GarbageScan) => {
                let len = self.inner.read_scan_chain(chain)?.len();
                Ok(self.model.garbage_bits(len))
            }
            _ => self.inner.read_scan_chain(chain),
        }
    }

    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> Result<()> {
        if self.model.wedged() == Some(WedgeKind::StuckTap) {
            return Err(self.stall(&format!("write {chain}")));
        }
        self.inner.write_scan_chain(chain, bits)
    }

    fn write_input_ports(&mut self, inputs: &[u32]) -> Result<()> {
        self.inner.write_input_ports(inputs)
    }

    fn read_output_ports(&mut self) -> Result<Vec<u32>> {
        self.inner.read_output_ports()
    }

    fn instructions_executed(&self) -> u64 {
        self.inner.instructions_executed() + self.hang_burn
    }

    fn cycles_executed(&self) -> u64 {
        self.inner.cycles_executed() + self.hang_burn
    }

    fn iterations_completed(&self) -> u64 {
        self.inner.iterations_completed()
    }

    fn step_traced(&mut self) -> Result<(Option<RunEvent>, crate::preinject::StepAccess)> {
        self.inner.step_traced()
    }

    fn power_cycle(&mut self) -> Result<()> {
        self.hang_burn = 0;
        let result = self.inner.power_cycle();
        if result.is_ok() {
            self.recover_model(RecoveryDepth::PowerCycle);
        }
        result
    }

    // A capture holds the inner target's snapshot plus this wrapper's
    // bookkeeping — but NOT the wedge model. The model is the drill's
    // seeded draw stream; it stays live across restores exactly as a real
    // flaky target keeps degrading regardless of what state the tool
    // rewinds the device to.
    fn snapshot(&mut self) -> Result<TargetSnapshot> {
        Ok(TargetSnapshot::new(WedgeableSnapshot {
            inner: self.inner.snapshot()?,
            hang_burn: self.hang_burn,
            pending_launch: self.pending_launch,
        }))
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) -> Result<()> {
        let snap = snapshot
            .downcast_ref::<WedgeableSnapshot>()
            .ok_or_else(|| GoofiError::Target("snapshot is not a wedge-drill capture".into()))?;
        self.inner.restore(&snap.inner)?;
        self.hang_burn = snap.hang_burn;
        self.pending_launch = snap.pending_launch;
        Ok(())
    }

    fn supports_snapshot(&self) -> bool {
        self.inner.supports_snapshot()
    }

    // The drill's observable behaviour is tied to the slow path's exact
    // call sequence: the per-experiment `init_test_card` recovers
    // reinit-depth wedges, and the model draws once per workload launch.
    // A restore that replaces that prefix skips both, so campaigns under
    // the drill would stop being essence-equal to the slow path. Declare
    // the fast path unsafe; the runner falls back to the real sequence.
    fn prefix_restore_safe(&self) -> bool {
        false
    }
}

/// The opaque payload behind [`WedgeableTarget::snapshot`].
#[derive(Debug)]
struct WedgeableSnapshot {
    inner: TargetSnapshot,
    hang_burn: u64,
    pending_launch: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_and_trigger_codecs_roundtrip() {
        for stage in [
            RecoveryStage::SoftReset,
            RecoveryStage::ReinitTestCard,
            RecoveryStage::PowerCycle,
            RecoveryStage::Offline,
        ] {
            assert_eq!(RecoveryStage::decode(stage.encode()), Some(stage));
        }
        assert_eq!(RecoveryStage::decode("bogus"), None);
        for trigger in [RecoveryTrigger::TargetHang, RecoveryTrigger::ProbeFailure] {
            assert_eq!(RecoveryTrigger::decode(trigger.encode()), Some(trigger));
        }
        assert_eq!(RecoveryTrigger::decode("bogus"), None);
    }

    #[test]
    fn ladder_stage_order_is_escalating() {
        assert!(RecoveryStage::SoftReset < RecoveryStage::ReinitTestCard);
        assert!(RecoveryStage::ReinitTestCard < RecoveryStage::PowerCycle);
        assert!(RecoveryStage::PowerCycle < RecoveryStage::Offline);
        let ladder = RecoveryLadder::default();
        let stages: Vec<_> = ladder.stages().iter().map(|(s, _)| *s).collect();
        let mut sorted = stages.clone();
        sorted.sort();
        assert_eq!(stages, sorted);
    }

    #[test]
    fn probe_suite_summarises_failures() {
        let suite = ProbeSuite {
            reports: vec![
                ProbeReport {
                    probe: HealthProbe::ScanSignature,
                    passed: true,
                    detail: String::new(),
                },
                ProbeReport {
                    probe: HealthProbe::SmokeWorkload,
                    passed: false,
                    detail: "diverged".into(),
                },
            ],
        };
        assert!(!suite.passed());
        assert_eq!(suite.failure_summary(), "smoke-workload: diverged");
    }
}
