//! The target-system interface: GOOFI's abstract building blocks.
//!
//! The paper's `FaultInjectionAlgorithms` class declares abstract methods —
//! `initTestCard()`, `loadWorkload()`, `runWorkload()`,
//! `waitForBreakpoint()`, `writeMemory()`, `readMemory()`,
//! `readScanChain()`, `injectFault()`, `writeScanChain()`,
//! `waitForTermination()` — that each `TargetSystemInterface` implements
//! (Figure 2). [`TargetAccess`] is the Rust rendering of that contract: the
//! generic algorithms in [`crate::algorithms`] are written purely against
//! this trait, and porting GOOFI to a new target system means implementing
//! it (see [`crate::framework::NullTarget`] for the template).
//!
//! `injectFault()` and `waitForBreakpoint()`/`waitForTermination()` are not
//! trait methods: they are *compositions* of building blocks (read chain →
//! flip bits → write chain; run until event), provided once, generically, in
//! [`crate::algorithms`].

use crate::campaign::WorkloadImage;
use crate::trigger::Trigger;
use crate::Result;
use scanchain::{BitVec, ChainLayout};

/// Execution budget for one [`TargetAccess::run_workload`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunBudget {
    /// Maximum instructions to retire before returning
    /// [`RunEvent::BudgetExhausted`].
    pub max_instructions: u64,
}

impl Default for RunBudget {
    fn default() -> Self {
        RunBudget {
            max_instructions: 10_000_000,
        }
    }
}

/// A detection reported by the target's error detection mechanisms,
/// identified by the target-specific mechanism name (the analysis phase
/// classifies "errors detected by each of the various mechanisms", §3.4).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DetectionInfo {
    /// Mechanism name, e.g. `"parity_icache"`.
    pub mechanism: String,
    /// Target-specific detection code (stored in the log).
    pub code: u32,
}

/// Why a [`TargetAccess::run_workload`] call returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunEvent {
    /// The workload ran to completion.
    Halted,
    /// An armed breakpoint (fault trigger) fired.
    Breakpoint {
        /// Instructions retired when it fired.
        at_instruction: u64,
        /// Cycles elapsed when it fired.
        at_cycle: u64,
    },
    /// An error detection mechanism fired.
    Detected(DetectionInfo),
    /// The workload reached a loop-iteration boundary; the framework
    /// exchanges data with the environment simulator and resumes.
    IterationBoundary {
        /// Completed iterations so far.
        iteration: u64,
    },
    /// The target's watchdog/time-out termination condition fired.
    Timeout,
    /// The per-call instruction budget ran out.
    BudgetExhausted,
}

/// The abstract methods a target system implements to join GOOFI.
///
/// Implementations wrap whatever reaches the real target — for the Thor
/// simulator that is a [`scanchain::TestCard`] plus direct memory download.
/// All methods return [`crate::GoofiError::Unimplemented`]-style errors when
/// the port has not filled them in; see [`crate::framework::NullTarget`].
pub trait TargetAccess {
    /// Stable target-system name (keys the `TargetSystemData` table).
    fn target_name(&self) -> &str;

    /// Initialises the test card / debug link (paper: `initTestCard()`).
    fn init_test_card(&mut self) -> Result<()>;

    /// Downloads the workload image and resets the core
    /// (paper: `loadWorkload()`).
    fn load_workload(&mut self, image: &WorkloadImage) -> Result<()>;

    /// Resets the core without reloading memory.
    fn reset_target(&mut self) -> Result<()>;

    /// Writes words into target memory (paper: `writeMemory()`).
    fn write_memory(&mut self, addr: u32, data: &[u32]) -> Result<()>;

    /// Reads words from target memory (paper: `readMemory()`).
    fn read_memory(&mut self, addr: u32, len: usize) -> Result<Vec<u32>>;

    /// Inverts one bit of one memory word (the SWIFI primitive).
    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> Result<()>;

    /// Total memory size in words.
    fn memory_size(&self) -> u32;

    /// Arms a breakpoint for the given trigger (set via the scan chains on
    /// scan-instrumented targets).
    ///
    /// # Errors
    ///
    /// Fails for [`Trigger::PreRuntime`], which needs no breakpoint.
    fn set_breakpoint(&mut self, trigger: Trigger) -> Result<()>;

    /// Disarms all breakpoints.
    fn clear_breakpoints(&mut self) -> Result<()>;

    /// Runs the workload until an event occurs (paper: `runWorkload()` +
    /// `waitForBreakpoint()`/`waitForTermination()`).
    fn run_workload(&mut self, budget: RunBudget) -> Result<RunEvent>;

    /// Executes a single instruction; `None` means execution continues.
    /// Used by detail-mode logging ("the system state is logged … typically
    /// after the execution of each machine instruction", §3.3).
    fn step_instruction(&mut self) -> Result<Option<RunEvent>>;

    /// The target's scan-chain layouts (configuration phase, Figure 5).
    fn chain_layouts(&self) -> Vec<ChainLayout>;

    /// Captures a full chain image (paper: `readScanChain()`).
    fn read_scan_chain(&mut self, chain: &str) -> Result<BitVec>;

    /// Updates a chain's writable cells (paper: `writeScanChain()`).
    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> Result<()>;

    /// Drives the target's input ports (environment simulator data).
    fn write_input_ports(&mut self, inputs: &[u32]) -> Result<()>;

    /// Reads the target's output-port latches.
    fn read_output_ports(&mut self) -> Result<Vec<u32>>;

    /// Instructions retired since the last reset.
    fn instructions_executed(&self) -> u64;

    /// Cycles elapsed since the last reset.
    fn cycles_executed(&self) -> u64;

    /// Workload loop iterations completed since the last reset.
    fn iterations_completed(&self) -> u64;

    /// Executes one instruction while recording which architectural
    /// locations it read and wrote — the input to the pre-injection
    /// (liveness) analysis. Targets without trace support may return
    /// `Err(GoofiError::Unimplemented)`, which disables the optimisation.
    fn step_traced(&mut self) -> Result<(Option<RunEvent>, crate::preinject::StepAccess)>;

    /// Cold-restarts the target — the strongest recovery action short of
    /// taking the target offline (see [`crate::supervisor::RecoveryLadder`]).
    ///
    /// The default body re-initialises the test card and resets the core,
    /// which is the best a port without power control can do. Ports with
    /// real cold-reset semantics (the Thor simulator, hardware with a
    /// switchable supply) should override this to wipe *all* target state —
    /// registers, caches, detection latches — and reload the current
    /// workload, so that state a warm reset cannot reach is cleared too.
    fn power_cycle(&mut self) -> Result<()> {
        self.init_test_card()?;
        self.reset_target()
    }
}

/// Boxed targets are targets too, so callers can assemble decorator stacks
/// (e.g. [`crate::link::VerifiedTarget`] over
/// [`crate::link::UnreliableTarget`]) behind a single `Box<dyn
/// TargetAccess>` and still use the generic algorithms and the parallel
/// runner.
impl<T: TargetAccess + ?Sized> TargetAccess for Box<T> {
    fn target_name(&self) -> &str {
        (**self).target_name()
    }

    fn init_test_card(&mut self) -> Result<()> {
        (**self).init_test_card()
    }

    fn load_workload(&mut self, image: &WorkloadImage) -> Result<()> {
        (**self).load_workload(image)
    }

    fn reset_target(&mut self) -> Result<()> {
        (**self).reset_target()
    }

    fn write_memory(&mut self, addr: u32, data: &[u32]) -> Result<()> {
        (**self).write_memory(addr, data)
    }

    fn read_memory(&mut self, addr: u32, len: usize) -> Result<Vec<u32>> {
        (**self).read_memory(addr, len)
    }

    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> Result<()> {
        (**self).flip_memory_bit(addr, bit)
    }

    fn memory_size(&self) -> u32 {
        (**self).memory_size()
    }

    fn set_breakpoint(&mut self, trigger: Trigger) -> Result<()> {
        (**self).set_breakpoint(trigger)
    }

    fn clear_breakpoints(&mut self) -> Result<()> {
        (**self).clear_breakpoints()
    }

    fn run_workload(&mut self, budget: RunBudget) -> Result<RunEvent> {
        (**self).run_workload(budget)
    }

    fn step_instruction(&mut self) -> Result<Option<RunEvent>> {
        (**self).step_instruction()
    }

    fn chain_layouts(&self) -> Vec<ChainLayout> {
        (**self).chain_layouts()
    }

    fn read_scan_chain(&mut self, chain: &str) -> Result<BitVec> {
        (**self).read_scan_chain(chain)
    }

    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> Result<()> {
        (**self).write_scan_chain(chain, bits)
    }

    fn write_input_ports(&mut self, inputs: &[u32]) -> Result<()> {
        (**self).write_input_ports(inputs)
    }

    fn read_output_ports(&mut self) -> Result<Vec<u32>> {
        (**self).read_output_ports()
    }

    fn instructions_executed(&self) -> u64 {
        (**self).instructions_executed()
    }

    fn cycles_executed(&self) -> u64 {
        (**self).cycles_executed()
    }

    fn iterations_completed(&self) -> u64 {
        (**self).iterations_completed()
    }

    fn step_traced(&mut self) -> Result<(Option<RunEvent>, crate::preinject::StepAccess)> {
        (**self).step_traced()
    }

    // Must forward explicitly: falling back to the trait default would
    // re-init through the *box* and silently skip any override the inner
    // target (or a decorator below it) provides.
    fn power_cycle(&mut self) -> Result<()> {
        (**self).power_cycle()
    }
}
