//! The target-system interface: GOOFI's abstract building blocks.
//!
//! The paper's `FaultInjectionAlgorithms` class declares abstract methods —
//! `initTestCard()`, `loadWorkload()`, `runWorkload()`,
//! `waitForBreakpoint()`, `writeMemory()`, `readMemory()`,
//! `readScanChain()`, `injectFault()`, `writeScanChain()`,
//! `waitForTermination()` — that each `TargetSystemInterface` implements
//! (Figure 2). [`TargetAccess`] is the Rust rendering of that contract: the
//! generic algorithms in [`crate::algorithms`] are written purely against
//! this trait, and porting GOOFI to a new target system means implementing
//! it (see [`crate::framework::NullTarget`] for the template).
//!
//! `injectFault()` and `waitForBreakpoint()`/`waitForTermination()` are not
//! trait methods: they are *compositions* of building blocks (read chain →
//! flip bits → write chain; run until event), provided once, generically, in
//! [`crate::algorithms`].

use crate::campaign::WorkloadImage;
use crate::trigger::Trigger;
use crate::{GoofiError, Result};
use scanchain::{BitVec, ChainLayout};
use std::any::Any;

/// An opaque capture of a target's full state — CPU registers, memory,
/// scan-visible latches and counters — taken by [`TargetAccess::snapshot`]
/// and replayed by [`TargetAccess::restore`].
///
/// The payload is target-specific: the Thor port stores a clone of its
/// whole test card, the generic fallback stores a scan-chain readout
/// ([`ReadoutSnapshot`]). Decorators forward snapshots unchanged (or wrap
/// them, like the wedge drill), so a snapshot taken through a decorator
/// stack restores through the same stack.
#[derive(Debug)]
pub struct TargetSnapshot {
    state: Box<dyn Any + Send>,
}

impl TargetSnapshot {
    /// Wraps a target-specific state capture.
    pub fn new<S: Any + Send>(state: S) -> Self {
        TargetSnapshot {
            state: Box::new(state),
        }
    }

    /// The captured state, if it is of type `S` — how a target's `restore`
    /// recovers what its `snapshot` stored. `None` means the snapshot was
    /// taken by a different target (or decorator layer); restoring from it
    /// would be meaningless, so treat that as an error.
    pub fn downcast_ref<S: Any + Send>(&self) -> Option<&S> {
        self.state.downcast_ref::<S>()
    }
}

/// Execution budget for one [`TargetAccess::run_workload`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunBudget {
    /// Maximum instructions to retire before returning
    /// [`RunEvent::BudgetExhausted`].
    pub max_instructions: u64,
}

impl Default for RunBudget {
    fn default() -> Self {
        RunBudget {
            max_instructions: 10_000_000,
        }
    }
}

/// A detection reported by the target's error detection mechanisms,
/// identified by the target-specific mechanism name (the analysis phase
/// classifies "errors detected by each of the various mechanisms", §3.4).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DetectionInfo {
    /// Mechanism name, e.g. `"parity_icache"`.
    pub mechanism: String,
    /// Target-specific detection code (stored in the log).
    pub code: u32,
}

/// Why a [`TargetAccess::run_workload`] call returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunEvent {
    /// The workload ran to completion.
    Halted,
    /// An armed breakpoint (fault trigger) fired.
    Breakpoint {
        /// Instructions retired when it fired.
        at_instruction: u64,
        /// Cycles elapsed when it fired.
        at_cycle: u64,
    },
    /// An error detection mechanism fired.
    Detected(DetectionInfo),
    /// The workload reached a loop-iteration boundary; the framework
    /// exchanges data with the environment simulator and resumes.
    IterationBoundary {
        /// Completed iterations so far.
        iteration: u64,
    },
    /// The target's watchdog/time-out termination condition fired.
    Timeout,
    /// The per-call instruction budget ran out.
    BudgetExhausted,
}

/// The abstract methods a target system implements to join GOOFI.
///
/// Implementations wrap whatever reaches the real target — for the Thor
/// simulator that is a [`scanchain::TestCard`] plus direct memory download.
/// All methods return [`crate::GoofiError::Unimplemented`]-style errors when
/// the port has not filled them in; see [`crate::framework::NullTarget`].
pub trait TargetAccess {
    /// Stable target-system name (keys the `TargetSystemData` table).
    fn target_name(&self) -> &str;

    /// Initialises the test card / debug link (paper: `initTestCard()`).
    fn init_test_card(&mut self) -> Result<()>;

    /// Downloads the workload image and resets the core
    /// (paper: `loadWorkload()`).
    fn load_workload(&mut self, image: &WorkloadImage) -> Result<()>;

    /// Resets the core without reloading memory.
    fn reset_target(&mut self) -> Result<()>;

    /// Writes words into target memory (paper: `writeMemory()`).
    fn write_memory(&mut self, addr: u32, data: &[u32]) -> Result<()>;

    /// Reads words from target memory (paper: `readMemory()`).
    fn read_memory(&mut self, addr: u32, len: usize) -> Result<Vec<u32>>;

    /// Inverts one bit of one memory word (the SWIFI primitive).
    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> Result<()>;

    /// Total memory size in words.
    fn memory_size(&self) -> u32;

    /// Arms a breakpoint for the given trigger (set via the scan chains on
    /// scan-instrumented targets).
    ///
    /// # Errors
    ///
    /// Fails for [`Trigger::PreRuntime`], which needs no breakpoint.
    fn set_breakpoint(&mut self, trigger: Trigger) -> Result<()>;

    /// Disarms all breakpoints.
    fn clear_breakpoints(&mut self) -> Result<()>;

    /// Runs the workload until an event occurs (paper: `runWorkload()` +
    /// `waitForBreakpoint()`/`waitForTermination()`).
    fn run_workload(&mut self, budget: RunBudget) -> Result<RunEvent>;

    /// Executes a single instruction; `None` means execution continues.
    /// Used by detail-mode logging ("the system state is logged … typically
    /// after the execution of each machine instruction", §3.3).
    fn step_instruction(&mut self) -> Result<Option<RunEvent>>;

    /// The target's scan-chain layouts (configuration phase, Figure 5).
    fn chain_layouts(&self) -> Vec<ChainLayout>;

    /// Captures a full chain image (paper: `readScanChain()`).
    fn read_scan_chain(&mut self, chain: &str) -> Result<BitVec>;

    /// Updates a chain's writable cells (paper: `writeScanChain()`).
    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> Result<()>;

    /// Drives the target's input ports (environment simulator data).
    fn write_input_ports(&mut self, inputs: &[u32]) -> Result<()>;

    /// Reads the target's output-port latches.
    fn read_output_ports(&mut self) -> Result<Vec<u32>>;

    /// Instructions retired since the last reset.
    fn instructions_executed(&self) -> u64;

    /// Cycles elapsed since the last reset.
    fn cycles_executed(&self) -> u64;

    /// Workload loop iterations completed since the last reset.
    fn iterations_completed(&self) -> u64;

    /// Executes one instruction while recording which architectural
    /// locations it read and wrote — the input to the pre-injection
    /// (liveness) analysis. Targets without trace support may return
    /// `Err(GoofiError::Unimplemented)`, which disables the optimisation.
    fn step_traced(&mut self) -> Result<(Option<RunEvent>, crate::preinject::StepAccess)>;

    /// Cold-restarts the target — the strongest recovery action short of
    /// taking the target offline (see [`crate::supervisor::RecoveryLadder`]).
    ///
    /// The default body re-initialises the test card and resets the core,
    /// which is the best a port without power control can do. Ports with
    /// real cold-reset semantics (the Thor simulator, hardware with a
    /// switchable supply) should override this to wipe *all* target state —
    /// registers, caches, detection latches — and reload the current
    /// workload, so that state a warm reset cannot reach is cleared too.
    fn power_cycle(&mut self) -> Result<()> {
        self.init_test_card()?;
        self.reset_target()
    }

    /// Captures the target's complete state — everything
    /// [`TargetAccess::load_workload`] plus subsequent execution can have
    /// changed — so a later [`TargetAccess::restore`] resumes from exactly
    /// this point (paper-era tools re-ran the prefix instead; see
    /// [`crate::algorithms::ExperimentSession`]).
    ///
    /// # Errors
    ///
    /// [`crate::GoofiError::Unimplemented`] by default; ports opt in by
    /// overriding this together with `restore` and `supports_snapshot`.
    /// Ports without cheap state cloning can build the capture with
    /// [`readout_snapshot`] (scan-chain + memory readout).
    fn snapshot(&mut self) -> Result<TargetSnapshot> {
        Err(GoofiError::Unimplemented("snapshot"))
    }

    /// Restores state captured by [`TargetAccess::snapshot`] on this same
    /// target. One snapshot may be restored any number of times.
    ///
    /// # Errors
    ///
    /// [`crate::GoofiError::Unimplemented`] by default; a snapshot from a
    /// different target type is a [`crate::GoofiError::Target`] error.
    fn restore(&mut self, snapshot: &TargetSnapshot) -> Result<()> {
        let _ = snapshot;
        Err(GoofiError::Unimplemented("restore"))
    }

    /// Whether [`TargetAccess::snapshot`]/[`TargetAccess::restore`] are
    /// implemented — the capability probe the experiment drivers use to
    /// pick the hot path. Defaults to `false` so unported targets keep the
    /// (correct, slow) reload-and-replay behaviour.
    fn supports_snapshot(&self) -> bool {
        false
    }

    /// Whether skipping an already-executed run prefix (by restoring a
    /// snapshot taken at its end) leaves every later observable draw
    /// unchanged. True for plain targets: running a deterministic prefix
    /// twice is a no-op. Fault-model decorators that consume seeded draws
    /// *per run call* (the wedge drill) must return `false`, otherwise
    /// skipping the prefix would shift their stream and the campaign would
    /// no longer be essence-equal to the slow path.
    fn prefix_restore_safe(&self) -> bool {
        true
    }

    /// Digest of the first `len` words of memory, exactly
    /// [`crate::logging::digest_words`] of a
    /// [`TargetAccess::read_memory`]`(0, len)` readout.
    ///
    /// The default does just that. Targets with structured memory may
    /// override it to skip the flat copy — the thor driver memoizes
    /// per-page block digests across copy-on-write snapshots — but any
    /// override MUST return the same value as the default, since digests
    /// are compared across records regardless of which path produced
    /// them. Decorators should NOT forward this method: the default
    /// routes through the decorator's own `read_memory`, which is what
    /// keeps verified/lossy read semantics intact.
    ///
    /// # Errors
    ///
    /// As [`TargetAccess::read_memory`].
    fn memory_digest(&mut self, len: usize) -> Result<u64> {
        Ok(crate::logging::digest_words(&self.read_memory(0, len)?))
    }
}

/// The generic snapshot payload for ports without native state cloning:
/// whatever the scan chains and memory bus can see, captured with
/// [`readout_snapshot`] and written back with [`readout_restore`].
///
/// This is a *readout*, not a full capture — state invisible to the scan
/// chains (write-only latches, private counters) is not included, which is
/// exactly the paper's observability boundary. Ports using it should
/// restore any such private state themselves after calling
/// [`readout_restore`] (see `examples/port_a_target.rs`).
#[derive(Debug, Clone)]
pub struct ReadoutSnapshot {
    /// Full image of every scan chain (name → bits).
    pub chains: Vec<(String, BitVec)>,
    /// Full memory image.
    pub memory: Vec<u32>,
    /// Counter values at capture time, for ports whose counters are
    /// architecturally visible.
    pub instructions: u64,
    /// Cycle counter at capture time.
    pub cycles: u64,
    /// Iteration counter at capture time.
    pub iterations: u64,
}

/// Captures everything reachable through the [`TargetAccess`] readout
/// methods: every scan chain plus all of memory. The building block for
/// `snapshot` on ports that lack cheap native state cloning.
///
/// # Errors
///
/// Any chain or memory read error from the target.
pub fn readout_snapshot<T: TargetAccess + ?Sized>(target: &mut T) -> Result<ReadoutSnapshot> {
    let mut chains = Vec::new();
    for layout in target.chain_layouts() {
        let bits = target.read_scan_chain(layout.name())?;
        chains.push((layout.name().to_string(), bits));
    }
    let memory = target.read_memory(0, target.memory_size() as usize)?;
    Ok(ReadoutSnapshot {
        chains,
        memory,
        instructions: target.instructions_executed(),
        cycles: target.cycles_executed(),
        iterations: target.iterations_completed(),
    })
}

/// Writes a [`readout_snapshot`] capture back: all of memory, then every
/// chain's writable cells. Memory goes first because memory writes may
/// have architectural side effects (cache-coherence invalidation on a
/// write-through port, for instance) that would clobber freshly scanned-in
/// state; scanning in last leaves the chains exactly as captured.
/// Read-only cells keep whatever the target holds — the same limitation
/// any scan-based state control has.
///
/// # Errors
///
/// Any chain or memory write error from the target.
pub fn readout_restore<T: TargetAccess + ?Sized>(
    target: &mut T,
    snapshot: &ReadoutSnapshot,
) -> Result<()> {
    target.write_memory(0, &snapshot.memory)?;
    for (chain, bits) in &snapshot.chains {
        target.write_scan_chain(chain, bits)?;
    }
    Ok(())
}

/// Boxed targets are targets too, so callers can assemble decorator stacks
/// (e.g. [`crate::link::VerifiedTarget`] over
/// [`crate::link::UnreliableTarget`]) behind a single `Box<dyn
/// TargetAccess>` and still use the generic algorithms and the parallel
/// runner.
impl<T: TargetAccess + ?Sized> TargetAccess for Box<T> {
    fn target_name(&self) -> &str {
        (**self).target_name()
    }

    fn init_test_card(&mut self) -> Result<()> {
        (**self).init_test_card()
    }

    fn load_workload(&mut self, image: &WorkloadImage) -> Result<()> {
        (**self).load_workload(image)
    }

    fn reset_target(&mut self) -> Result<()> {
        (**self).reset_target()
    }

    fn write_memory(&mut self, addr: u32, data: &[u32]) -> Result<()> {
        (**self).write_memory(addr, data)
    }

    fn read_memory(&mut self, addr: u32, len: usize) -> Result<Vec<u32>> {
        (**self).read_memory(addr, len)
    }

    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> Result<()> {
        (**self).flip_memory_bit(addr, bit)
    }

    fn memory_size(&self) -> u32 {
        (**self).memory_size()
    }

    fn set_breakpoint(&mut self, trigger: Trigger) -> Result<()> {
        (**self).set_breakpoint(trigger)
    }

    fn clear_breakpoints(&mut self) -> Result<()> {
        (**self).clear_breakpoints()
    }

    fn run_workload(&mut self, budget: RunBudget) -> Result<RunEvent> {
        (**self).run_workload(budget)
    }

    fn step_instruction(&mut self) -> Result<Option<RunEvent>> {
        (**self).step_instruction()
    }

    fn chain_layouts(&self) -> Vec<ChainLayout> {
        (**self).chain_layouts()
    }

    fn read_scan_chain(&mut self, chain: &str) -> Result<BitVec> {
        (**self).read_scan_chain(chain)
    }

    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> Result<()> {
        (**self).write_scan_chain(chain, bits)
    }

    fn write_input_ports(&mut self, inputs: &[u32]) -> Result<()> {
        (**self).write_input_ports(inputs)
    }

    fn read_output_ports(&mut self) -> Result<Vec<u32>> {
        (**self).read_output_ports()
    }

    fn instructions_executed(&self) -> u64 {
        (**self).instructions_executed()
    }

    fn cycles_executed(&self) -> u64 {
        (**self).cycles_executed()
    }

    fn iterations_completed(&self) -> u64 {
        (**self).iterations_completed()
    }

    fn step_traced(&mut self) -> Result<(Option<RunEvent>, crate::preinject::StepAccess)> {
        (**self).step_traced()
    }

    // Must forward explicitly: falling back to the trait default would
    // re-init through the *box* and silently skip any override the inner
    // target (or a decorator below it) provides.
    fn power_cycle(&mut self) -> Result<()> {
        (**self).power_cycle()
    }

    // Same reasoning as power_cycle: the trait defaults would report the
    // *box* as snapshot-incapable even when the boxed target supports it.
    fn snapshot(&mut self) -> Result<TargetSnapshot> {
        (**self).snapshot()
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) -> Result<()> {
        (**self).restore(snapshot)
    }

    fn supports_snapshot(&self) -> bool {
        (**self).supports_snapshot()
    }

    fn prefix_restore_safe(&self) -> bool {
        (**self).prefix_restore_safe()
    }

    fn memory_digest(&mut self, len: usize) -> Result<u64> {
        (**self).memory_digest(len)
    }
}
