//! Campaign observability: tracing spans, metrics, and a flight recorder.
//!
//! The paper's only window into a running campaign is the §3.3 progress
//! window; this module is its production-scale counterpart. Three pieces:
//!
//! 1. **Tracing facade** — a [`Telemetry`] handle hands out [`Span`] guards
//!    arranged in a campaign → experiment → stage hierarchy. Completed spans
//!    become [`SpanRecord`]s and fan out to pluggable [`TraceSink`]s: an
//!    in-memory ring ([`RingSink`]), a JSONL writer ([`JsonlSink`]), or
//!    nothing at all. A disabled handle (the default) costs one branch per
//!    call site — no clock reads, no allocation, no locks.
//! 2. **Metrics** — a [`MetricsRegistry`] of atomic [`Metric`] counters
//!    (mirroring every `ProgressMonitor` counter) and log-scale latency
//!    [`Histogram`]s per workflow [`Stage`]
//!    (load/run/inject/scan/classify/db-write/probe/recover).
//! 3. **Flight recorder** — a [`RingSink`] keeps the last-N spans; on a
//!    campaign-fatal `GoofiError` the CLI dumps it next to the journal so
//!    failed campaigns are post-mortem debuggable without re-running.
//!
//! Everything encodes to plain text (JSON lines for spans, the repo's usual
//! `encode`/`decode` pairs for enums) so traces survive the same unreliable
//! links the experiments do.

use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of log₂ buckets in a latency [`Histogram`]. Bucket `i` holds
/// durations in `[2^(i-1), 2^i)` microseconds; bucket 39 tops out above
/// six days, far beyond any watchdog budget.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Default flight-recorder capacity (last-N spans kept for the crash dump).
pub const FLIGHT_RECORDER_SPANS: usize = 256;

// ---------------------------------------------------------------------------
// Stage and Metric vocabularies
// ---------------------------------------------------------------------------

/// A timed stage of the four-phase experiment workflow (§2.1), refined to
/// the points where a campaign actually spends wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Set-up: test-card init, workload download, input ports.
    Load,
    /// Workload execution on the target (to breakpoint or termination).
    Run,
    /// Fault injection proper: scan-chain/memory manipulation.
    Inject,
    /// State readout: scan-chain capture, memory digest, outputs.
    Scan,
    /// Analysis-phase outcome classification (`goofi report`).
    Classify,
    /// Database and journal writes.
    DbWrite,
    /// Inter-experiment health-probe suites.
    Probe,
    /// Recovery-ladder actions after a hang or failed probe.
    Recover,
    /// Persistence integrity checks and repairs (`goofi fsck`, the
    /// auto-fsck on resume, and shard-journal salvage).
    Fsck,
    /// Snapshot captures and restores on the hot path (replacing workload
    /// reload plus prefix re-execution between experiments).
    SnapshotRestore,
}

impl Stage {
    /// Every stage, in workflow order.
    pub const ALL: [Stage; 10] = [
        Stage::Load,
        Stage::Run,
        Stage::Inject,
        Stage::Scan,
        Stage::Classify,
        Stage::DbWrite,
        Stage::Probe,
        Stage::Recover,
        Stage::Fsck,
        Stage::SnapshotRestore,
    ];

    /// Stable text form used in traces and reports.
    pub fn encode(self) -> &'static str {
        match self {
            Stage::Load => "load",
            Stage::Run => "run",
            Stage::Inject => "inject",
            Stage::Scan => "scan",
            Stage::Classify => "classify",
            Stage::DbWrite => "db-write",
            Stage::Probe => "probe",
            Stage::Recover => "recover",
            Stage::Fsck => "fsck",
            Stage::SnapshotRestore => "snapshot-restore",
        }
    }

    /// Inverse of [`Stage::encode`].
    pub fn decode(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|t| t.encode() == s)
    }

    fn index(self) -> usize {
        Stage::ALL.iter().position(|s| *s == self).unwrap_or(0)
    }
}

/// A monotonically increasing campaign counter. The first fourteen mirror
/// the `ProgressMonitor` counters one-for-one so a metrics snapshot can be
/// reconciled against the progress window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Metric {
    /// Experiments completed.
    Completed,
    /// Experiments skipped by pre-injection analysis.
    Skipped,
    /// Experiments failed despite the retry policy.
    Failed,
    /// Retry attempts.
    Retried,
    /// Link faults detected and recovered.
    LinkRecovered,
    /// Link faults that exhausted the recovery budget.
    LinkUnrecovered,
    /// Records quarantined by golden-run revalidation.
    Quarantined,
    /// Health-probe suites run.
    ProbesRun,
    /// Health-probe suites that failed.
    ProbesFailed,
    /// Watchdog timeouts confirmed as hangs.
    Hangs,
    /// Soft-reset recovery actions.
    SoftResets,
    /// Test-card re-init recovery actions.
    CardReinits,
    /// Power-cycle recovery actions.
    PowerCycles,
    /// Targets that went offline.
    TargetsOffline,
    /// Trace records dropped because a sink failed (e.g. disk full).
    TraceDropped,
    /// Corruption findings reported by `goofi fsck` and resume salvage.
    FsckFindings,
    /// Findings repaired (salvaged, stubbed, or quarantined aside).
    FsckRepaired,
    /// Target snapshots captured on the hot path.
    SnapshotsTaken,
    /// Target restores replacing a workload reload / prefix re-execution.
    Restores,
    /// Golden-run cache hits (reference recomputation skipped).
    GoldenCacheHits,
    /// Golden-run cache misses (reference computed and stored).
    GoldenCacheMisses,
}

impl Metric {
    /// Every counter, in declaration order.
    pub const ALL: [Metric; 21] = [
        Metric::Completed,
        Metric::Skipped,
        Metric::Failed,
        Metric::Retried,
        Metric::LinkRecovered,
        Metric::LinkUnrecovered,
        Metric::Quarantined,
        Metric::ProbesRun,
        Metric::ProbesFailed,
        Metric::Hangs,
        Metric::SoftResets,
        Metric::CardReinits,
        Metric::PowerCycles,
        Metric::TargetsOffline,
        Metric::TraceDropped,
        Metric::FsckFindings,
        Metric::FsckRepaired,
        Metric::SnapshotsTaken,
        Metric::Restores,
        Metric::GoldenCacheHits,
        Metric::GoldenCacheMisses,
    ];

    /// Stable text form used in snapshots and reports.
    pub fn encode(self) -> &'static str {
        match self {
            Metric::Completed => "completed",
            Metric::Skipped => "skipped",
            Metric::Failed => "failed",
            Metric::Retried => "retried",
            Metric::LinkRecovered => "link-recovered",
            Metric::LinkUnrecovered => "link-unrecovered",
            Metric::Quarantined => "quarantined",
            Metric::ProbesRun => "probes-run",
            Metric::ProbesFailed => "probes-failed",
            Metric::Hangs => "hangs",
            Metric::SoftResets => "soft-resets",
            Metric::CardReinits => "card-reinits",
            Metric::PowerCycles => "power-cycles",
            Metric::TargetsOffline => "targets-offline",
            Metric::TraceDropped => "trace-dropped",
            Metric::FsckFindings => "fsck-findings",
            Metric::FsckRepaired => "fsck-repaired",
            Metric::SnapshotsTaken => "snapshots-taken",
            Metric::Restores => "restores",
            Metric::GoldenCacheHits => "golden-cache-hits",
            Metric::GoldenCacheMisses => "golden-cache-misses",
        }
    }

    /// Inverse of [`Metric::encode`].
    pub fn decode(s: &str) -> Option<Metric> {
        Metric::ALL.into_iter().find(|m| m.encode() == s)
    }

    fn index(self) -> usize {
        Metric::ALL.iter().position(|m| *m == self).unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Span records and their JSONL codec
// ---------------------------------------------------------------------------

/// What a span represents in the campaign hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The whole campaign (one per run/resume).
    Campaign,
    /// One experiment (or the reference run).
    Experiment,
    /// A timed workflow stage within an experiment or campaign.
    Stage(Stage),
    /// A point-in-time event (duration zero unless timed explicitly).
    Event,
}

impl SpanKind {
    /// Stable text form ("campaign", "experiment", "stage", "event").
    pub fn encode(self) -> &'static str {
        match self {
            SpanKind::Campaign => "campaign",
            SpanKind::Experiment => "experiment",
            SpanKind::Stage(_) => "stage",
            SpanKind::Event => "event",
        }
    }
}

/// A completed span, as delivered to sinks and serialised to JSONL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the trace (1-based; 0 is "no span").
    pub id: u64,
    /// Parent span id, or `None` for roots.
    pub parent: Option<u64>,
    /// Hierarchy level and, for stages, which stage.
    pub kind: SpanKind,
    /// Human-readable name (campaign name, experiment name, event label).
    pub name: String,
    /// Start offset in microseconds since the telemetry epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
    /// Free-form detail (recovery trigger, link operation, …).
    pub detail: String,
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Minimal value space for the hand-rolled JSON line codec.
pub(crate) enum JsonVal {
    Null,
    Num(u64),
    Str(String),
}

/// Parses one flat JSON object of string/number/null values. Returns the
/// key/value pairs, or `None` on any syntax error (torn trace tails are
/// skipped, mirroring the journal's torn-line tolerance).
pub(crate) fn parse_flat_json(line: &str) -> Option<Vec<(String, JsonVal)>> {
    let mut chars = line.trim().char_indices().peekable();
    let s = line.trim();
    let mut out = Vec::new();
    match chars.next() {
        Some((_, '{')) => {}
        _ => return None,
    }
    loop {
        // Skip whitespace.
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
        match chars.peek() {
            Some((_, '}')) => return Some(out),
            Some((_, '"')) => {}
            _ => return None,
        }
        let key = parse_json_string(s, &mut chars)?;
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
        match chars.next() {
            Some((_, ':')) => {}
            _ => return None,
        }
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
        let val = match chars.peek() {
            Some((_, '"')) => JsonVal::Str(parse_json_string(s, &mut chars)?),
            Some((_, 'n')) => {
                for expect in "null".chars() {
                    if chars.next().map(|(_, c)| c) != Some(expect) {
                        return None;
                    }
                }
                JsonVal::Null
            }
            Some((_, c)) if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some((_, c)) = chars.peek() {
                    if let Some(d) = c.to_digit(10) {
                        n = n.checked_mul(10)?.checked_add(d as u64)?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                JsonVal::Num(n)
            }
            _ => return None,
        };
        out.push((key, val));
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
        match chars.next() {
            Some((_, ',')) => {}
            Some((_, '}')) => return Some(out),
            _ => return None,
        }
    }
}

fn parse_json_string(
    _src: &str,
    chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
) -> Option<String> {
    match chars.next() {
        Some((_, '"')) => {}
        _ => return None,
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            (_, '"') => return Some(out),
            (_, '\\') => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            (_, c) => out.push(c),
        }
    }
}

impl SpanRecord {
    /// Serialises to one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(96 + self.name.len() + self.detail.len());
        out.push_str("{\"id\":");
        out.push_str(&self.id.to_string());
        out.push_str(",\"parent\":");
        match self.parent {
            Some(p) => out.push_str(&p.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.encode());
        out.push_str("\",\"stage\":");
        match self.kind {
            SpanKind::Stage(stage) => {
                out.push('"');
                out.push_str(stage.encode());
                out.push('"');
            }
            _ => out.push_str("null"),
        }
        out.push_str(",\"name\":");
        push_json_str(&mut out, &self.name);
        out.push_str(",\"start_us\":");
        out.push_str(&self.start_us.to_string());
        out.push_str(",\"dur_us\":");
        out.push_str(&self.duration_us.to_string());
        out.push_str(",\"detail\":");
        push_json_str(&mut out, &self.detail);
        out.push('}');
        out
    }

    /// Parses one JSON line produced by [`SpanRecord::encode`]. Returns
    /// `None` on malformed input (e.g. a torn final line after a crash).
    pub fn decode(line: &str) -> Option<SpanRecord> {
        let fields = parse_flat_json(line)?;
        let mut id = None;
        let mut parent = None;
        let mut kind = None;
        let mut stage = None;
        let mut name = None;
        let mut start_us = None;
        let mut duration_us = None;
        let mut detail = String::new();
        for (key, val) in fields {
            match (key.as_str(), val) {
                ("id", JsonVal::Num(n)) => id = Some(n),
                ("parent", JsonVal::Num(n)) => parent = Some(Some(n)),
                ("parent", JsonVal::Null) => parent = Some(None),
                ("kind", JsonVal::Str(s)) => kind = Some(s),
                ("stage", JsonVal::Str(s)) => stage = Stage::decode(&s),
                ("stage", JsonVal::Null) => {}
                ("name", JsonVal::Str(s)) => name = Some(s),
                ("start_us", JsonVal::Num(n)) => start_us = Some(n),
                ("dur_us", JsonVal::Num(n)) => duration_us = Some(n),
                ("detail", JsonVal::Str(s)) => detail = s,
                _ => return None,
            }
        }
        let kind = match kind?.as_str() {
            "campaign" => SpanKind::Campaign,
            "experiment" => SpanKind::Experiment,
            "stage" => SpanKind::Stage(stage?),
            "event" => SpanKind::Event,
            _ => return None,
        };
        Some(SpanRecord {
            id: id?,
            parent: parent?,
            kind,
            name: name?,
            start_us: start_us?,
            duration_us: duration_us?,
            detail,
        })
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Receives completed spans. Implementations must be cheap and internally
/// synchronised: parallel campaign workers record concurrently.
pub trait TraceSink: Send + Sync {
    /// Delivers one completed span. Returns `false` if the record was
    /// dropped (the registry counts drops under [`Metric::TraceDropped`]).
    fn record(&self, span: &SpanRecord) -> bool;
    /// Flushes buffered output to its destination.
    fn flush(&self);
    /// Spans currently buffered in memory (used for the flight dump).
    /// Streaming sinks return an empty vec.
    fn buffered(&self) -> Vec<SpanRecord> {
        Vec::new()
    }
}

/// Bounded in-memory ring of the most recent spans — the flight recorder.
pub struct RingSink {
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
}

impl RingSink {
    /// Creates a ring keeping at most `capacity` spans (oldest evicted).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Writes the buffered spans as JSONL to `path`, returning how many
    /// were written. Creates or truncates the file.
    pub fn dump_to(&self, path: &Path) -> std::io::Result<usize> {
        let spans = self.buffered();
        let mut w = BufWriter::new(File::create(path)?);
        for s in &spans {
            writeln!(w, "{}", s.encode())?;
        }
        w.flush()?;
        Ok(spans.len())
    }
}

impl TraceSink for RingSink {
    fn record(&self, span: &SpanRecord) -> bool {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(span.clone());
        true
    }

    fn flush(&self) {}

    fn buffered(&self) -> Vec<SpanRecord> {
        self.ring.lock().iter().cloned().collect()
    }
}

/// Streams spans to a JSONL file, one record per line.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (or truncates) `path` and streams spans into it.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    /// Opens `path` for append so a later phase (e.g. `goofi report
    /// --trace`) can extend a campaign's trace in place.
    pub fn append(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, span: &SpanRecord) -> bool {
        let mut w = self.writer.lock();
        writeln!(w, "{}", span.encode()).is_ok()
    }

    fn flush(&self) {
        let mut w = self.writer.lock();
        let _ = w.flush();
    }
}

// ---------------------------------------------------------------------------
// Histograms and the metrics registry
// ---------------------------------------------------------------------------

/// Lock-free log₂-bucketed latency histogram over microsecond durations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_us: AtomicU64,
}

/// Bucket index for a duration: 0 for 0µs, else the bit length of the
/// value, clamped to the last bucket.
fn bucket_index(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound (µs) of bucket `i`.
fn bucket_upper_us(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one duration.
    pub fn record(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`Histogram`]; merge is elementwise, so it is
/// associative and commutative — shard histograms can be combined in any
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Count per log₂ bucket (length [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Sum of all recorded durations, µs.
    pub sum_us: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            sum_us: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Records one duration into the snapshot (used when rebuilding
    /// histograms from a JSONL trace).
    pub fn record(&mut self, us: u64) {
        if self.buckets.len() != HISTOGRAM_BUCKETS {
            self.buckets.resize(HISTOGRAM_BUCKETS, 0);
        }
        self.buckets[bucket_index(us)] += 1;
        self.sum_us = self.sum_us.saturating_add(us);
    }

    /// Total recorded durations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean duration in µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count()).unwrap_or(0)
    }

    /// Upper bound (µs) of the bucket containing quantile `q` (0.0..=1.0).
    pub fn quantile_upper_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return bucket_upper_us(i);
            }
        }
        bucket_upper_us(HISTOGRAM_BUCKETS - 1)
    }

    /// Elementwise sum of two snapshots.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for i in 0..HISTOGRAM_BUCKETS {
            out.buckets[i] = self.buckets.get(i).copied().unwrap_or(0)
                + other.buckets.get(i).copied().unwrap_or(0);
        }
        out.sum_us = self.sum_us.saturating_add(other.sum_us);
        out
    }
}

/// Atomic counters plus per-stage latency histograms. Shared by all
/// campaign workers through the [`Telemetry`] handle.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    stages: [Histogram; Stage::ALL.len()],
    counters: [AtomicU64; Metric::ALL.len()],
}

impl MetricsRegistry {
    /// Records one stage duration.
    pub fn record_stage(&self, stage: Stage, us: u64) {
        self.stages[stage.index()].record(us);
    }

    /// Adds `n` to a counter.
    pub fn add(&self, metric: Metric, n: u64) {
        self.counters[metric.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of one counter.
    pub fn counter(&self, metric: Metric) -> u64 {
        self.counters[metric.index()].load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        for m in Metric::ALL {
            counters.insert(m.encode().to_string(), self.counter(m));
        }
        let mut stages = BTreeMap::new();
        for s in Stage::ALL {
            stages.insert(s.encode().to_string(), self.stages[s.index()].snapshot());
        }
        MetricsSnapshot { counters, stages }
    }
}

/// Immutable copy of a [`MetricsRegistry`], keyed by the stable encoded
/// names so it survives serialisation and cross-version comparison.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by [`Metric::encode`] name.
    pub counters: BTreeMap<String, u64>,
    /// Stage histograms by [`Stage::encode`] name.
    pub stages: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Stage histogram by name.
    pub fn stage(&self, stage: Stage) -> HistogramSnapshot {
        self.stages.get(stage.encode()).cloned().unwrap_or_default()
    }

    /// Merges two snapshots: counters sum, histograms merge elementwise.
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (k, v) in &other.counters {
            *out.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.stages {
            let merged = match out.stages.get(k) {
                Some(mine) => mine.merge(h),
                None => h.clone(),
            };
            out.stages.insert(k.clone(), merged);
        }
        out
    }

    /// Rebuilds per-stage histograms from a JSONL trace (the text of a file
    /// written by a [`JsonlSink`] or a flight dump). Malformed lines — e.g.
    /// a torn tail after a crash — are skipped, matching the journal's
    /// tolerance. Counters are left empty: traces carry timings, the
    /// journal carries outcomes.
    pub fn from_trace(text: &str) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            if let Some(rec) = SpanRecord::decode(line) {
                if let SpanKind::Stage(stage) = rec.kind {
                    out.stages
                        .entry(stage.encode().to_string())
                        .or_default()
                        .record(rec.duration_us);
                }
            }
        }
        out
    }

    /// Renders the per-stage timing table shown by `goofi report
    /// --timings` and the CLI `--metrics` summary. One row per stage, in
    /// workflow order, including empty stages so the shape is stable.
    pub fn render_timings(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>8} {:>14} {:>10} {:>10} {:>10}\n",
            "stage", "spans", "total_us", "mean_us", "p50<=us", "p99<=us"
        ));
        for s in Stage::ALL {
            let h = self.stage(s);
            out.push_str(&format!(
                "{:<10} {:>8} {:>14} {:>10} {:>10} {:>10}\n",
                s.encode(),
                h.count(),
                h.sum_us,
                h.mean_us(),
                h.quantile_upper_us(0.50),
                h.quantile_upper_us(0.99),
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The Telemetry handle and span guards
// ---------------------------------------------------------------------------

struct TelemetryInner {
    epoch: Instant,
    next_id: AtomicU64,
    /// Id of the currently open campaign span (0 when none) — lets worker
    /// threads parent their experiment spans without plumbing an id through
    /// every signature.
    campaign_span: AtomicU64,
    sinks: Vec<Arc<dyn TraceSink>>,
    metrics: MetricsRegistry,
}

impl TelemetryInner {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn emit(&self, record: &SpanRecord) {
        for sink in &self.sinks {
            if !sink.record(record) {
                self.metrics.add(Metric::TraceDropped, 1);
            }
        }
    }
}

/// Cloneable handle to a campaign's telemetry. The default handle is
/// **disabled**: every call is a single `Option` branch — no clock reads,
/// no allocation, no locking — so instrumented code paths cost nothing in
/// ordinary runs.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "Telemetry(disabled)"),
            Some(i) => write!(f, "Telemetry(enabled, {} sinks)", i.sinks.len()),
        }
    }
}

impl Telemetry {
    /// The no-op handle (same as `Telemetry::default()`).
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Metrics-only telemetry: counters and histograms, no trace sinks.
    pub fn enabled() -> Self {
        Telemetry::with_sinks(Vec::new())
    }

    /// Telemetry with the given trace sinks (metrics always included).
    pub fn with_sinks(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        Telemetry {
            inner: Some(Arc::new(TelemetryInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                campaign_span: AtomicU64::new(0),
                sinks,
                metrics: MetricsRegistry::default(),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A snapshot of the metrics registry, or `None` when disabled.
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|i| i.metrics.snapshot())
    }

    /// Adds `n` to a counter (no-op when disabled).
    pub fn count(&self, metric: Metric, n: u64) {
        if let Some(i) = &self.inner {
            i.metrics.add(metric, n);
        }
    }

    /// Records a stage duration directly (no span emitted).
    pub fn record_stage(&self, stage: Stage, us: u64) {
        if let Some(i) = &self.inner {
            i.metrics.record_stage(stage, us);
        }
    }

    fn open(&self, kind: SpanKind, parent: u64, name: &str, detail: &str) -> Span {
        match &self.inner {
            None => Span::disabled(),
            Some(inner) => {
                let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
                let parent = if parent != 0 {
                    parent
                } else {
                    inner.campaign_span.load(Ordering::Relaxed)
                };
                Span {
                    tel: Some(inner.clone()),
                    id,
                    parent,
                    kind,
                    name: name.to_string(),
                    detail: detail.to_string(),
                    start_us: inner.now_us(),
                }
            }
        }
    }

    /// Opens the campaign root span. Stage and experiment spans opened
    /// while it lives parent to it by default.
    pub fn campaign_span(&self, name: &str) -> Span {
        let span = self.open(SpanKind::Campaign, 0, name, "");
        if let Some(inner) = &self.inner {
            inner.campaign_span.store(span.id, Ordering::Relaxed);
        }
        span
    }

    /// Opens an experiment span, parented to the current campaign span.
    pub fn experiment_span(&self, name: &str) -> Span {
        self.open(SpanKind::Experiment, 0, name, "")
    }

    /// [`Telemetry::experiment_span`] with a lazily-built name, so hot call
    /// sites skip the name allocation entirely when disabled.
    pub fn experiment_span_with(&self, name: impl FnOnce() -> String) -> Span {
        if self.inner.is_some() {
            self.open(SpanKind::Experiment, 0, &name(), "")
        } else {
            Span::disabled()
        }
    }

    /// Opens a stage span under `parent` (a span id; 0 means "the current
    /// campaign span").
    pub fn stage_span(&self, stage: Stage, parent: u64) -> Span {
        self.open(SpanKind::Stage(stage), parent, stage.encode(), "")
    }

    /// Like [`Telemetry::stage_span`] with a free-form detail string.
    pub fn stage_span_detailed(&self, stage: Stage, parent: u64, detail: &str) -> Span {
        self.open(SpanKind::Stage(stage), parent, stage.encode(), detail)
    }

    /// Emits a point-in-time event (zero duration), parented to the
    /// current campaign span.
    pub fn event(&self, name: &str, detail: &str) {
        if let Some(inner) = &self.inner {
            let record = SpanRecord {
                id: inner.next_id.fetch_add(1, Ordering::Relaxed),
                parent: match inner.campaign_span.load(Ordering::Relaxed) {
                    0 => None,
                    p => Some(p),
                },
                kind: SpanKind::Event,
                name: name.to_string(),
                start_us: inner.now_us(),
                duration_us: 0,
                detail: detail.to_string(),
            };
            inner.emit(&record);
        }
    }

    /// Times a closure as a stage span parented to the campaign span.
    pub fn time<T>(&self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let _span = self.stage_span(stage, 0);
        f()
    }

    /// Flushes every sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            for sink in &inner.sinks {
                sink.flush();
            }
        }
    }

    /// Dumps the union of all sinks' buffered spans (the flight recorder
    /// contents) as JSONL to `path`. Returns the number of spans written,
    /// or 0 (and writes nothing) when disabled or nothing is buffered.
    pub fn dump_flight(&self, path: &Path) -> std::io::Result<usize> {
        let Some(inner) = &self.inner else {
            return Ok(0);
        };
        let mut spans: Vec<SpanRecord> = Vec::new();
        for sink in &inner.sinks {
            spans.extend(sink.buffered());
        }
        if spans.is_empty() {
            return Ok(0);
        }
        spans.sort_by_key(|s| s.id);
        spans.dedup_by_key(|s| s.id);
        let mut w = BufWriter::new(File::create(path)?);
        for s in &spans {
            writeln!(w, "{}", s.encode())?;
        }
        w.flush()?;
        Ok(spans.len())
    }
}

/// RAII span guard: created by [`Telemetry`], records a [`SpanRecord`] (and
/// for stages, a histogram sample) when dropped. A disabled guard is inert.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct Span {
    tel: Option<Arc<TelemetryInner>>,
    id: u64,
    parent: u64,
    kind: SpanKind,
    name: String,
    detail: String,
    start_us: u64,
}

impl Span {
    fn disabled() -> Span {
        Span {
            tel: None,
            id: 0,
            parent: 0,
            kind: SpanKind::Event,
            name: String::new(),
            detail: String::new(),
            start_us: 0,
        }
    }

    /// This span's id (0 when telemetry is disabled), for parenting
    /// child stage spans.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Replaces the span's detail string (e.g. recording an outcome
    /// discovered mid-span).
    pub fn set_detail(&mut self, detail: &str) {
        if self.tel.is_some() {
            self.detail = detail.to_string();
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.tel.take() else {
            return;
        };
        let end_us = inner.now_us();
        let duration_us = end_us.saturating_sub(self.start_us);
        if let SpanKind::Stage(stage) = self.kind {
            inner.metrics.record_stage(stage, duration_us);
        }
        if self.kind == SpanKind::Campaign {
            // Only clear the current-campaign pointer if it is still us.
            let _ = inner.campaign_span.compare_exchange(
                self.id,
                0,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
        }
        let record = SpanRecord {
            id: self.id,
            parent: match self.parent {
                0 => None,
                p => Some(p),
            },
            kind: self.kind,
            name: std::mem::take(&mut self.name),
            start_us: self.start_us,
            duration_us,
            detail: std::mem::take(&mut self.detail),
        };
        inner.emit(&record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_and_metric_roundtrip() {
        for s in Stage::ALL {
            assert_eq!(Stage::decode(s.encode()), Some(s));
        }
        for m in Metric::ALL {
            assert_eq!(Metric::decode(m.encode()), Some(m));
        }
        assert_eq!(Stage::decode("bogus"), None);
        assert_eq!(Metric::decode("bogus"), None);
    }

    #[test]
    fn span_record_json_roundtrip() {
        let rec = SpanRecord {
            id: 7,
            parent: Some(3),
            kind: SpanKind::Stage(Stage::Inject),
            name: "c1/exp00002 \"quoted\"\npath\\x".into(),
            start_us: 123,
            duration_us: 456,
            detail: "tab\there".into(),
        };
        assert_eq!(SpanRecord::decode(&rec.encode()), Some(rec));
        let root = SpanRecord {
            id: 1,
            parent: None,
            kind: SpanKind::Campaign,
            name: "c1".into(),
            start_us: 0,
            duration_us: 9,
            detail: String::new(),
        };
        assert_eq!(SpanRecord::decode(&root.encode()), Some(root));
    }

    #[test]
    fn torn_or_malformed_lines_decode_to_none() {
        let rec = SpanRecord {
            id: 1,
            parent: None,
            kind: SpanKind::Event,
            name: "e".into(),
            start_us: 5,
            duration_us: 0,
            detail: String::new(),
        };
        let line = rec.encode();
        for cut in [1, line.len() / 2, line.len() - 1] {
            assert_eq!(SpanRecord::decode(&line[..cut]), None, "cut at {cut}");
        }
        assert_eq!(SpanRecord::decode("not json"), None);
        assert_eq!(SpanRecord::decode("{\"id\":1}"), None);
    }

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_us(0), 0);
        assert_eq!(bucket_upper_us(10), 1023);
    }

    #[test]
    fn histogram_stats() {
        let h = Histogram::default();
        for us in [0, 1, 100, 100, 5000] {
            h.record(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum_us, 5201);
        assert_eq!(s.mean_us(), 1040);
        // p50 falls in the 100µs bucket: [64,128) → upper bound 127.
        assert_eq!(s.quantile_upper_us(0.5), 127);
        assert_eq!(s.quantile_upper_us(1.0), 8191);
        assert_eq!(HistogramSnapshot::default().quantile_upper_us(0.5), 0);
    }

    #[test]
    fn snapshot_merge_matches_combined_recording() {
        let mut a = HistogramSnapshot::default();
        let mut b = HistogramSnapshot::default();
        let mut both = HistogramSnapshot::default();
        for us in [3, 70, 900] {
            a.record(us);
            both.record(us);
        }
        for us in [0, 70, 1_000_000] {
            b.record(us);
            both.record(us);
        }
        assert_eq!(a.merge(&b), both);
        assert_eq!(b.merge(&a), both);
    }

    #[test]
    fn disabled_telemetry_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert_eq!(tel.metrics(), None);
        let span = tel.campaign_span("c");
        assert_eq!(span.id(), 0);
        drop(span);
        tel.event("x", "");
        tel.count(Metric::Completed, 3);
        assert_eq!(tel.time(Stage::Run, || 42), 42);
        assert_eq!(tel.dump_flight(Path::new("/nonexistent/x")).unwrap(), 0);
    }

    #[test]
    fn span_hierarchy_parents_to_campaign() {
        let ring = Arc::new(RingSink::new(16));
        let tel = Telemetry::with_sinks(vec![ring.clone()]);
        {
            let campaign = tel.campaign_span("c1");
            let exp = tel.experiment_span("c1/exp00000");
            assert_ne!(exp.id(), 0);
            let stage = tel.stage_span(Stage::Load, exp.id());
            drop(stage);
            drop(exp);
            tel.time(Stage::DbWrite, || ());
            drop(campaign);
        }
        let spans = ring.buffered();
        assert_eq!(spans.len(), 4);
        let campaign = spans.iter().find(|s| s.kind == SpanKind::Campaign).unwrap();
        let exp = spans
            .iter()
            .find(|s| s.kind == SpanKind::Experiment)
            .unwrap();
        let load = spans
            .iter()
            .find(|s| s.kind == SpanKind::Stage(Stage::Load))
            .unwrap();
        let db = spans
            .iter()
            .find(|s| s.kind == SpanKind::Stage(Stage::DbWrite))
            .unwrap();
        assert_eq!(campaign.parent, None);
        assert_eq!(exp.parent, Some(campaign.id));
        assert_eq!(load.parent, Some(exp.id));
        assert_eq!(db.parent, Some(campaign.id));
        // After the campaign span closes, new spans are roots again.
        drop(tel.experiment_span("orphan"));
        assert_eq!(ring.buffered().last().unwrap().parent, None);
    }

    #[test]
    fn stage_spans_feed_histograms_and_counters_accumulate() {
        let tel = Telemetry::enabled();
        tel.time(Stage::Inject, || ());
        tel.time(Stage::Inject, || ());
        tel.record_stage(Stage::Scan, 250);
        tel.count(Metric::Retried, 2);
        tel.count(Metric::Retried, 1);
        let m = tel.metrics().unwrap();
        assert_eq!(m.stage(Stage::Inject).count(), 2);
        assert_eq!(m.stage(Stage::Scan).count(), 1);
        assert_eq!(m.stage(Stage::Scan).sum_us, 250);
        assert_eq!(m.counter("retried"), 3);
        assert_eq!(m.counter("completed"), 0);
    }

    #[test]
    fn ring_sink_evicts_oldest() {
        let ring = RingSink::new(3);
        let tel = Telemetry::with_sinks(vec![]);
        let _ = tel; // capacity test drives the sink directly
        for i in 1..=5u64 {
            let rec = SpanRecord {
                id: i,
                parent: None,
                kind: SpanKind::Event,
                name: format!("e{i}"),
                start_us: i,
                duration_us: 0,
                detail: String::new(),
            };
            ring.record(&rec);
        }
        let ids: Vec<u64> = ring.buffered().iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![3, 4, 5]);
    }

    #[test]
    fn from_trace_rebuilds_stage_histograms() {
        let ring = Arc::new(RingSink::new(64));
        let tel = Telemetry::with_sinks(vec![ring.clone()]);
        {
            let _c = tel.campaign_span("c");
            tel.time(Stage::Load, || ());
            tel.time(Stage::Run, || ());
            tel.time(Stage::Run, || ());
            tel.event("note", "not a stage");
        }
        let text: String = ring.buffered().iter().map(|s| s.encode() + "\n").collect();
        let rebuilt = MetricsSnapshot::from_trace(&text);
        let live = tel.metrics().unwrap();
        for s in Stage::ALL {
            assert_eq!(
                rebuilt.stage(s).count(),
                live.stage(s).count(),
                "stage {}",
                s.encode()
            );
            assert_eq!(rebuilt.stage(s), live.stage(s), "stage {}", s.encode());
        }
        // Torn tail and junk lines are skipped, not fatal.
        let torn = format!("{}{}", text, "{\"id\":99,\"par");
        assert_eq!(
            MetricsSnapshot::from_trace(&torn).stage(Stage::Run).count(),
            2
        );
    }

    #[test]
    fn metrics_snapshot_merge_sums_counters_and_histograms() {
        let a_reg = Telemetry::enabled();
        a_reg.count(Metric::Completed, 2);
        a_reg.record_stage(Stage::Run, 10);
        let b_reg = Telemetry::enabled();
        b_reg.count(Metric::Completed, 3);
        b_reg.count(Metric::Hangs, 1);
        b_reg.record_stage(Stage::Run, 2000);
        let a = a_reg.metrics().unwrap();
        let b = b_reg.metrics().unwrap();
        let m = a.merge(&b);
        assert_eq!(m.counter("completed"), 5);
        assert_eq!(m.counter("hangs"), 1);
        assert_eq!(m.stage(Stage::Run).count(), 2);
        assert_eq!(m.stage(Stage::Run).sum_us, 2010);
        assert_eq!(a.merge(&b), b.merge(&a));
    }

    #[test]
    fn render_timings_has_one_row_per_stage() {
        let tel = Telemetry::enabled();
        tel.record_stage(Stage::Load, 100);
        let table = tel.metrics().unwrap().render_timings();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 1 + Stage::ALL.len());
        assert!(lines[0].starts_with("stage"));
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert!(
                lines[1 + i].starts_with(s.encode()),
                "row {i}: {}",
                lines[1 + i]
            );
        }
    }

    #[test]
    fn jsonl_sink_and_flight_dump_roundtrip() {
        let dir = std::env::temp_dir().join(format!("goofi-tel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl");
        let flight = dir.join("trace.flight");
        {
            let jsonl = Arc::new(JsonlSink::create(&trace).unwrap());
            let ring = Arc::new(RingSink::new(8));
            let tel = Telemetry::with_sinks(vec![jsonl, ring]);
            let _c = tel.campaign_span("c");
            tel.time(Stage::Scan, || ());
            tel.event("boom", "injected failure");
            drop(_c);
            tel.flush();
            let n = tel.dump_flight(&flight).unwrap();
            assert_eq!(n, 3);
        }
        let text = std::fs::read_to_string(&trace).unwrap();
        let decoded: Vec<SpanRecord> = text
            .lines()
            .map(|l| SpanRecord::decode(l).unwrap())
            .collect();
        assert_eq!(decoded.len(), 3);
        let flight_text = std::fs::read_to_string(&flight).unwrap();
        let flight_decoded: Vec<SpanRecord> = flight_text
            .lines()
            .map(|l| SpanRecord::decode(l).unwrap())
            .collect();
        assert_eq!(flight_decoded.len(), 3);
        // Appending extends the same trace.
        {
            let jsonl = Arc::new(JsonlSink::append(&trace).unwrap());
            let tel = Telemetry::with_sinks(vec![jsonl]);
            tel.time(Stage::Classify, || ());
            tel.flush();
        }
        let text2 = std::fs::read_to_string(&trace).unwrap();
        assert_eq!(text2.lines().count(), 4);
        assert_eq!(
            MetricsSnapshot::from_trace(&text2)
                .stage(Stage::Classify)
                .count(),
            1
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
