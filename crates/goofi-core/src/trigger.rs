//! Fault triggers: *when* a fault is injected.
//!
//! The base tool injects at breakpoints "set according to the points in time
//! when the fault should be injected" (paper §3.3); §4 lists the planned
//! additional triggers — "access of certain data values, execution of branch
//! instructions or subprogram calls … or at specific times determined by a
//! real-time clock" — all of which are implemented here.

use scanchain::DebugCondition;
use std::fmt;

/// When to inject a fault during an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trigger {
    /// Inject into the memory image before execution starts — pre-runtime
    /// SWIFI (paper §1).
    PreRuntime,
    /// Inject when the program counter reaches an address.
    Breakpoint(u32),
    /// Inject after N instructions have executed.
    AfterInstructions(u64),
    /// Inject when a data address is read or written (§4 extension).
    DataAccess(u32),
    /// Inject when a data address is written (§4 extension).
    DataWrite(u32),
    /// Inject at the next taken branch (§4 extension).
    BranchExecuted,
    /// Inject at the next subprogram call (§4 extension).
    CallExecuted,
    /// Inject after N cycles — the "real-time clock" trigger (§4 extension).
    AfterCycles(u64),
}

impl Trigger {
    /// The debug-unit condition implementing this trigger, or `None` for
    /// [`Trigger::PreRuntime`] (which needs no breakpoint).
    pub fn to_debug_condition(self) -> Option<DebugCondition> {
        match self {
            Trigger::PreRuntime => None,
            Trigger::Breakpoint(pc) => Some(DebugCondition::PcEquals(pc)),
            Trigger::AfterInstructions(n) => Some(DebugCondition::InstructionCount(n)),
            Trigger::DataAccess(a) => Some(DebugCondition::DataAccess(a)),
            Trigger::DataWrite(a) => Some(DebugCondition::DataWrite(a)),
            Trigger::BranchExecuted => Some(DebugCondition::BranchExecuted),
            Trigger::CallExecuted => Some(DebugCondition::CallExecuted),
            Trigger::AfterCycles(n) => Some(DebugCondition::CycleCount(n)),
        }
    }

    /// Whether injection happens before the workload starts.
    pub fn is_pre_runtime(self) -> bool {
        self == Trigger::PreRuntime
    }

    /// Compact string form for the `experimentData` database attribute.
    pub fn encode(self) -> String {
        match self {
            Trigger::PreRuntime => "pre".to_string(),
            Trigger::Breakpoint(pc) => format!("pc:{pc}"),
            Trigger::AfterInstructions(n) => format!("instr:{n}"),
            Trigger::DataAccess(a) => format!("daccess:{a}"),
            Trigger::DataWrite(a) => format!("dwrite:{a}"),
            Trigger::BranchExecuted => "branch".to_string(),
            Trigger::CallExecuted => "call".to_string(),
            Trigger::AfterCycles(n) => format!("cycles:{n}"),
        }
    }

    /// Parses [`Trigger::encode`] output.
    pub fn decode(s: &str) -> Option<Trigger> {
        match s {
            "pre" => return Some(Trigger::PreRuntime),
            "branch" => return Some(Trigger::BranchExecuted),
            "call" => return Some(Trigger::CallExecuted),
            _ => {}
        }
        let (kind, arg) = s.split_once(':')?;
        match kind {
            "pc" => arg.parse().ok().map(Trigger::Breakpoint),
            "instr" => arg.parse().ok().map(Trigger::AfterInstructions),
            "daccess" => arg.parse().ok().map(Trigger::DataAccess),
            "dwrite" => arg.parse().ok().map(Trigger::DataWrite),
            "cycles" => arg.parse().ok().map(Trigger::AfterCycles),
            _ => None,
        }
    }
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trigger::PreRuntime => f.write_str("pre-runtime"),
            Trigger::Breakpoint(pc) => write!(f, "breakpoint at pc={pc:#x}"),
            Trigger::AfterInstructions(n) => write!(f, "after {n} instructions"),
            Trigger::DataAccess(a) => write!(f, "on access of address {a:#x}"),
            Trigger::DataWrite(a) => write!(f, "on write of address {a:#x}"),
            Trigger::BranchExecuted => f.write_str("on branch execution"),
            Trigger::CallExecuted => f.write_str("on subprogram call"),
            Trigger::AfterCycles(n) => write!(f, "after {n} cycles"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_triggers() -> Vec<Trigger> {
        vec![
            Trigger::PreRuntime,
            Trigger::Breakpoint(0x40),
            Trigger::AfterInstructions(1000),
            Trigger::DataAccess(0x100),
            Trigger::DataWrite(0x200),
            Trigger::BranchExecuted,
            Trigger::CallExecuted,
            Trigger::AfterCycles(5_000),
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for t in all_triggers() {
            assert_eq!(Trigger::decode(&t.encode()), Some(t), "{t}");
        }
        assert_eq!(Trigger::decode("bogus"), None);
        assert_eq!(Trigger::decode("pc:notanumber"), None);
    }

    #[test]
    fn only_pre_runtime_lacks_a_debug_condition() {
        for t in all_triggers() {
            assert_eq!(t.to_debug_condition().is_none(), t.is_pre_runtime(), "{t}");
        }
    }

    #[test]
    fn debug_condition_mapping() {
        assert_eq!(
            Trigger::Breakpoint(7).to_debug_condition(),
            Some(DebugCondition::PcEquals(7))
        );
        assert_eq!(
            Trigger::AfterCycles(9).to_debug_condition(),
            Some(DebugCondition::CycleCount(9))
        );
    }
}
