//! Virtual filesystem: every durable artifact goes through here, so the
//! torture harness can inject faults into *us*.
//!
//! GOOFI's value rests on durable state surviving crashes — database,
//! experiment journal, spool manifests, shard journals. This module is the
//! single seam between that persistence code and the operating system: a
//! [`Vfs`] trait with a passthrough [`RealFs`] for production and a seeded
//! [`FaultFs`] that deterministically injects torn writes, garbled writes,
//! dropped fsyncs, `ENOSPC`, `EIO`, and crash-points at any file
//! operation. The same philosophy the paper applies to target systems —
//! prove behaviour by injecting faults, not by hoping — applied to the
//! framework's own storage layer.
//!
//! A [`FaultPlan`] uses the service's `key=value` drill codec (see
//! [`crate::service::chaos`]):
//!
//! ```text
//! at=12,kind=torn,seed=7     crash at mutating op 12, tearing the write
//! at=3,kind=garble,seed=9    crash at op 3, corrupting the write's tail
//! at=5,kind=lost-sync,seed=1 drop all fsyncs; at op 5 the power fails
//! at=4,kind=enospc           op 4 fails with ENOSPC (transient, no crash)
//! at=4,kind=eio              op 4 fails with EIO (transient, no crash)
//! ```
//!
//! Mutating operations (file create, data write, fsync, rename, unlink)
//! are counted from 1; reads are free. After a crash-kind fault fires, the
//! [`FaultFs`] refuses every further operation — the process is "dead" and
//! the test harness switches to a fresh [`RealFs`] to play the part of the
//! rebooted machine running `goofi fsck`.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An open file handle obtained from a [`Vfs`].
pub trait VfsFile: Send {
    /// Writes the whole buffer.
    ///
    /// # Errors
    ///
    /// Propagated (or injected) I/O errors.
    fn write_all(&mut self, data: &[u8]) -> io::Result<()>;

    /// Syncs file data to stable storage (`fsync`).
    ///
    /// # Errors
    ///
    /// Propagated (or injected) I/O errors.
    fn sync(&mut self) -> io::Result<()>;
}

/// The filesystem operations the framework's persistence layer needs.
///
/// Deliberately small: whole-file reads, create/append writes, rename,
/// unlink, directory listing. Everything `dbio`, the journal, and the
/// service spool do is expressible in these, which is what makes the
/// fault matrix exhaustive.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Reads a whole file as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Propagated (or injected) I/O errors.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;

    /// Reads a whole file as raw bytes — the recovery path's read: a
    /// garbled sector is rarely valid UTF-8, and fsck must still be able
    /// to look at it.
    ///
    /// # Errors
    ///
    /// Propagated (or injected) I/O errors.
    fn read_bytes(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates (or truncates) a file for writing.
    ///
    /// # Errors
    ///
    /// Propagated (or injected) I/O errors.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Opens an existing file for appending.
    ///
    /// # Errors
    ///
    /// Propagated (or injected) I/O errors.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Renames `from` to `to` (atomic on POSIX when same-directory).
    ///
    /// # Errors
    ///
    /// Propagated (or injected) I/O errors.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// Propagated (or injected) I/O errors.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Creates a directory and its parents (idempotent).
    ///
    /// # Errors
    ///
    /// Propagated I/O errors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Lists a directory's entries (full paths, unsorted).
    ///
    /// # Errors
    ///
    /// Propagated I/O errors.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;

    /// Whether the path exists.
    fn exists(&self, path: &Path) -> bool;

    /// Syncs a directory so a rename within it is durable. Callers treat
    /// failure as best-effort (not every filesystem supports it).
    ///
    /// # Errors
    ///
    /// Propagated (or injected) I/O errors.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
}

/// Shared, cloneable handle to a [`Vfs`] implementation.
pub type VfsHandle = Arc<dyn Vfs>;

/// The production filesystem: [`RealFs`] behind a [`VfsHandle`].
pub fn real() -> VfsHandle {
    Arc::new(RealFs)
}

/// Reads a file as text, replacing invalid UTF-8 with `U+FFFD` — the read
/// used by fsck and journal salvage, which must be able to inspect files
/// whose garbled bytes are no longer valid UTF-8.
///
/// # Errors
///
/// Propagated (or injected) I/O errors.
pub fn read_lossy(vfs: &dyn Vfs, path: &Path) -> io::Result<String> {
    Ok(String::from_utf8_lossy(&vfs.read_bytes(path)?).into_owned())
}

/// Writes `data` to `path` and syncs it — *not* atomic; use
/// [`atomic_write`] for files whose old content must survive a crash.
///
/// # Errors
///
/// Propagated (or injected) I/O errors.
pub fn write_file(vfs: &dyn Vfs, path: &Path, data: &[u8]) -> io::Result<()> {
    let mut file = vfs.create(path)?;
    file.write_all(data)?;
    file.sync()
}

/// Atomically replaces `path` with `data`: write a sibling `<path>.tmp`,
/// `fsync` it, rename it over `path`, and best-effort sync the directory.
/// A crash at any point leaves either the old file or the new file. The
/// temporary file is removed on failure.
///
/// # Errors
///
/// Propagated (or injected) I/O errors from any step but the directory
/// sync.
pub fn atomic_write(vfs: &dyn Vfs, path: &Path, data: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let write = (|| {
        let mut file = vfs.create(&tmp)?;
        file.write_all(data)?;
        file.sync()
    })();
    if let Err(e) = write {
        let _ = vfs.remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = vfs.rename(&tmp, path) {
        let _ = vfs.remove_file(&tmp);
        return Err(e);
    }
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        let _ = vfs.sync_dir(dir);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// RealFs
// ---------------------------------------------------------------------------

/// Passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

struct RealFile(File);

impl VfsFile for RealFile {
    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        self.0.write_all(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl Vfs for RealFs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn read_bytes(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(File::create(path)?)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }
}

// ---------------------------------------------------------------------------
// FaultFs
// ---------------------------------------------------------------------------

/// What happens at the planned operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The write at the crash point is torn: a seeded prefix of the buffer
    /// reaches the file, then the "machine" dies. Non-write operations at
    /// the crash point simply never happen.
    Torn,
    /// Like [`FaultKind::Torn`], but the surviving prefix is followed by
    /// seeded garbage bytes — a misdirected or bit-rotted sector.
    Garble,
    /// Every `fsync` is silently dropped from the start; at the crash
    /// point the power fails and every file rolls back to its last
    /// *acknowledged-synced* length. Exposes any consumer that relies on
    /// unsynced data surviving a rename.
    LostSync,
    /// The operation fails with `ENOSPC` (disk full). Transient: the
    /// process survives and later operations succeed.
    Enospc,
    /// The operation fails with `EIO`. Transient, like
    /// [`FaultKind::Enospc`].
    Eio,
}

impl FaultKind {
    /// Stable text form used in the plan codec.
    pub fn encode(self) -> &'static str {
        match self {
            FaultKind::Torn => "torn",
            FaultKind::Garble => "garble",
            FaultKind::LostSync => "lost-sync",
            FaultKind::Enospc => "enospc",
            FaultKind::Eio => "eio",
        }
    }

    /// Inverse of [`FaultKind::encode`].
    pub fn decode(s: &str) -> Option<FaultKind> {
        [
            FaultKind::Torn,
            FaultKind::Garble,
            FaultKind::LostSync,
            FaultKind::Enospc,
            FaultKind::Eio,
        ]
        .into_iter()
        .find(|k| k.encode() == s)
    }

    /// Whether this fault kills the process (vs. a transient error).
    pub fn is_crash(self) -> bool {
        matches!(
            self,
            FaultKind::Torn | FaultKind::Garble | FaultKind::LostSync
        )
    }
}

/// A seeded single-fault schedule for a [`FaultFs`]. The whole drill is a
/// pure function of the plan, so every torture run replays bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The 1-based mutating-operation ordinal at which the fault fires.
    pub at: u64,
    /// What the fault does.
    pub kind: FaultKind,
    /// Seed for torn-write cut points and garbage bytes.
    pub seed: u64,
}

impl FaultPlan {
    /// Encodes to the `key=value` comma list accepted by
    /// [`FaultPlan::decode`].
    pub fn encode(&self) -> String {
        format!(
            "at={},kind={},seed={}",
            self.at,
            self.kind.encode(),
            self.seed
        )
    }

    /// Parses `at=<n>,kind=<kind>[,seed=<s>]`. Returns `None` on unknown
    /// keys, malformed values, or `at=0`.
    pub fn decode(s: &str) -> Option<FaultPlan> {
        let mut at = None;
        let mut kind = None;
        let mut seed = 0;
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part.split_once('=')?;
            match key {
                "at" => at = Some(value.parse().ok()?),
                "kind" => kind = Some(FaultKind::decode(value)?),
                "seed" => seed = value.parse().ok()?,
                _ => return None,
            }
        }
        let plan = FaultPlan {
            at: at?,
            kind: kind?,
            seed,
        };
        (plan.at > 0).then_some(plan)
    }
}

#[derive(Default)]
struct FaultState {
    ops: u64,
    crashed: bool,
    /// Last synced length per path, tracked only for
    /// [`FaultKind::LostSync`] rollback.
    synced: HashMap<PathBuf, u64>,
}

/// A filesystem that injects exactly one planned fault, deterministically.
///
/// All I/O goes to the real filesystem until the plan's operation count is
/// reached; the handle is cloneable and thread-safe, so it can be threaded
/// through journal, database, and spool code alike.
#[derive(Clone)]
pub struct FaultFs {
    plan: FaultPlan,
    state: Arc<parking_lot::Mutex<FaultState>>,
}

impl fmt::Debug for FaultFs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock();
        f.debug_struct("FaultFs")
            .field("plan", &self.plan)
            .field("ops", &state.ops)
            .field("crashed", &state.crashed)
            .finish()
    }
}

impl FaultFs {
    /// A fault filesystem executing `plan`.
    pub fn new(plan: FaultPlan) -> FaultFs {
        FaultFs {
            plan,
            state: Arc::new(parking_lot::Mutex::new(FaultState::default())),
        }
    }

    /// A counting filesystem that never faults: run a workload through it
    /// once to learn how many mutating operations a crash-point walk must
    /// cover.
    pub fn counting() -> FaultFs {
        FaultFs::new(FaultPlan {
            at: u64::MAX,
            kind: FaultKind::Torn,
            seed: 0,
        })
    }

    /// Mutating operations performed so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Whether the planned crash has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    fn crashed_err() -> io::Error {
        io::Error::other("faultfs: machine crashed at planned fault point")
    }

    fn injected_err(kind: FaultKind) -> io::Error {
        match kind {
            // ENOSPC / EIO by raw errno, so callers see realistic kinds.
            FaultKind::Enospc => io::Error::from_raw_os_error(28),
            FaultKind::Eio => io::Error::from_raw_os_error(5),
            _ => FaultFs::crashed_err(),
        }
    }

    /// Rolls every tracked file back to its last synced length — the
    /// power-cut semantics of [`FaultKind::LostSync`].
    fn roll_back_unsynced(state: &FaultState) {
        for (path, len) in &state.synced {
            if let Ok(file) = OpenOptions::new().write(true).open(path) {
                let _ = file.set_len(*len);
            }
        }
    }

    /// Counts one mutating operation. `Ok(None)`: proceed normally.
    /// `Ok(Some(op))`: this is the fault point (op number returned for
    /// seeding). `Err`: refuse (already crashed, or transient error).
    fn account(&self, kind_is_write: bool) -> io::Result<Option<u64>> {
        let mut state = self.state.lock();
        if state.crashed {
            return Err(FaultFs::crashed_err());
        }
        state.ops += 1;
        if state.ops != self.plan.at {
            return Ok(None);
        }
        match self.plan.kind {
            FaultKind::Enospc | FaultKind::Eio => Err(FaultFs::injected_err(self.plan.kind)),
            FaultKind::Torn | FaultKind::Garble if kind_is_write => Ok(Some(state.ops)),
            // A non-write op at a torn/garble crash point simply never
            // happens; lost-sync rolls the world back first.
            kind => {
                state.crashed = true;
                if kind == FaultKind::LostSync {
                    FaultFs::roll_back_unsynced(&state);
                }
                Err(FaultFs::crashed_err())
            }
        }
    }

    /// Marks the machine dead after a torn/garbled write landed.
    fn crash_after_write(&self) {
        self.state.lock().crashed = true;
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.state.lock().crashed {
            Err(FaultFs::crashed_err())
        } else {
            Ok(())
        }
    }

    /// The seeded prefix length for a torn write of `len` bytes.
    fn cut_point(&self, op: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (mix(self.plan.seed, op, len as u64) % len as u64) as usize
    }
}

struct FaultFile {
    fs: FaultFs,
    file: File,
    path: PathBuf,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        match self.fs.account(true)? {
            None => self.file.write_all(data),
            Some(op) => {
                // Torn or garbled write: a prefix lands, then the crash.
                let cut = self.fs.cut_point(op, data.len());
                let mut surviving = data[..cut].to_vec();
                if self.fs.plan.kind == FaultKind::Garble {
                    let n = 1 + (mix(self.fs.plan.seed, op, 1) % 16) as usize;
                    for i in 0..n {
                        surviving.push((mix(self.fs.plan.seed, op, 2 + i as u64) % 256) as u8);
                    }
                }
                let _ = self.file.write_all(&surviving);
                let _ = self.file.sync_data();
                self.fs.crash_after_write();
                Err(FaultFs::crashed_err())
            }
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        self.fs.account(false)?;
        if self.fs.plan.kind == FaultKind::LostSync {
            // The fsync is acknowledged but silently dropped: the synced
            // length is *not* advanced.
            return Ok(());
        }
        let result = self.file.sync_data();
        if result.is_ok() {
            let len = self.file.metadata().map(|m| m.len()).unwrap_or(0);
            self.fs.state.lock().synced.insert(self.path.clone(), len);
        }
        result
    }
}

impl Vfs for FaultFs {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        self.check_alive()?;
        let mut out = String::new();
        File::open(path)?.read_to_string(&mut out)?;
        Ok(out)
    }

    fn read_bytes(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.check_alive()?;
        std::fs::read(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.account(false)?;
        let file = File::create(path)?;
        self.state.lock().synced.insert(path.to_path_buf(), 0);
        Ok(Box::new(FaultFile {
            fs: self.clone(),
            file,
            path: path.to_path_buf(),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.check_alive()?;
        let file = OpenOptions::new().append(true).open(path)?;
        let len = file.metadata().map(|m| m.len()).unwrap_or(0);
        self.state
            .lock()
            .synced
            .entry(path.to_path_buf())
            .or_insert(len);
        Ok(Box::new(FaultFile {
            fs: self.clone(),
            file,
            path: path.to_path_buf(),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.account(false)?;
        std::fs::rename(from, to)?;
        let mut state = self.state.lock();
        if let Some(len) = state.synced.remove(from) {
            state.synced.insert(to.to_path_buf(), len);
        }
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.account(false)?;
        std::fs::remove_file(path)?;
        self.state.lock().synced.remove(path);
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.check_alive()?;
        std::fs::create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.check_alive()?;
        RealFs.read_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.account(false)?;
        if self.plan.kind == FaultKind::LostSync {
            return Ok(());
        }
        File::open(path)?.sync_all()
    }
}

/// SplitMix64-style mixer over three words — the same construction as the
/// service chaos drill, so fault schedules replay bit-for-bit.
fn mix(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(c.wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("goofi-vfs-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn plan_codec_roundtrips() {
        let plans = [
            FaultPlan {
                at: 12,
                kind: FaultKind::Torn,
                seed: 7,
            },
            FaultPlan {
                at: 1,
                kind: FaultKind::LostSync,
                seed: 0,
            },
            FaultPlan {
                at: 3,
                kind: FaultKind::Enospc,
                seed: 99,
            },
        ];
        for plan in plans {
            assert_eq!(FaultPlan::decode(&plan.encode()), Some(plan));
        }
        assert_eq!(FaultPlan::decode("at=0,kind=torn"), None);
        assert_eq!(FaultPlan::decode("kind=torn"), None);
        assert_eq!(FaultPlan::decode("at=2,kind=melt"), None);
        assert_eq!(FaultPlan::decode("at=2,kind=eio,bogus=1"), None);
    }

    #[test]
    fn real_fs_atomic_write_roundtrips() {
        let path = temp_path("atomic");
        let vfs = real();
        atomic_write(vfs.as_ref(), &path, b"hello\n").unwrap();
        assert_eq!(vfs.read_to_string(&path).unwrap(), "hello\n");
        atomic_write(vfs.as_ref(), &path, b"world\n").unwrap();
        assert_eq!(vfs.read_to_string(&path).unwrap(), "world\n");
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_write_leaves_prefix_then_refuses_everything() {
        let dir = temp_path("torn-dir");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f");
        // Counting pass: one create + one write + one sync.
        let fs = FaultFs::counting();
        write_file(&fs, &path, b"0123456789").unwrap();
        assert_eq!(fs.ops(), 3);

        // Crash on the write (op 2).
        let fs = FaultFs::new(FaultPlan {
            at: 2,
            kind: FaultKind::Torn,
            seed: 11,
        });
        let err = write_file(&fs, &path, b"0123456789").unwrap_err();
        assert!(err.to_string().contains("crashed"), "{err}");
        assert!(fs.crashed());
        let left = std::fs::read(&path).unwrap();
        assert!(left.len() < 10, "torn write kept {} bytes", left.len());
        assert!(b"0123456789".starts_with(&left[..]));
        // Everything after the crash is refused, reads included.
        assert!(fs.read_to_string(&path).is_err());
        assert!(fs.create(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_is_transient() {
        let dir = temp_path("enospc-dir");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f");
        let fs = FaultFs::new(FaultPlan {
            at: 2,
            kind: FaultKind::Enospc,
            seed: 0,
        });
        let err = write_file(&fs, &path, b"data").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        assert!(!fs.crashed());
        // The next attempt succeeds: the disk "freed up".
        write_file(&fs, &path, b"data").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "data");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lost_sync_rolls_back_to_synced_length() {
        let dir = temp_path("lostsync-dir");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f");
        // Ops: create(1) write(2) sync(3, dropped) write(4) sync(5,
        // dropped) write(6) → crash at 7 rolls back to length 0.
        let fs = FaultFs::new(FaultPlan {
            at: 7,
            kind: FaultKind::LostSync,
            seed: 3,
        });
        let mut f = fs.create(&path).unwrap();
        f.write_all(b"aaa").unwrap();
        f.sync().unwrap();
        f.write_all(b"bbb").unwrap();
        f.sync().unwrap();
        f.write_all(b"ccc").unwrap();
        assert!(f.sync().is_err()); // op 7: power cut
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap().len(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garble_appends_seeded_garbage() {
        let dir = temp_path("garble-dir");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f");
        let fs = FaultFs::new(FaultPlan {
            at: 2,
            kind: FaultKind::Garble,
            seed: 5,
        });
        assert!(write_file(&fs, &path, b"0123456789").is_err());
        let a = std::fs::read(&path).unwrap();
        // Deterministic: the same plan garbles the same way.
        let fs = FaultFs::new(FaultPlan {
            at: 2,
            kind: FaultKind::Garble,
            seed: 5,
        });
        assert!(write_file(&fs, &path, b"0123456789").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), a);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
