//! Run-control tests of the generic algorithms against a scripted mock
//! target — verifying the paper's Figure 2 call sequence and the
//! termination/fault-model edge cases independently of any real CPU.

use goofi_core::algorithms::{self, CampaignResult};
use goofi_core::campaign::{Campaign, OutputRegion, Termination, WorkloadImage};
use goofi_core::fault::{FaultLocation, FaultModel, FaultSpec};
use goofi_core::logging::{LoggingMode, TerminationCause};
use goofi_core::monitor::ProgressMonitor;
use goofi_core::preinject::StepAccess;
use goofi_core::trigger::Trigger;
use goofi_core::{DetectionInfo, GoofiError, RunBudget, RunEvent, TargetAccess};
use scanchain::{BitVec, CellAccess, ChainLayout};
use std::cell::RefCell;
use std::rc::Rc;

/// A deterministic scripted target.
///
/// The "workload" runs for `workload_len` instructions and halts. A `sync`
/// boundary fires every `iteration_every` instructions (if set). A
/// detection fires at instruction `detect_at` (if set). Each instruction
/// zeroes cell `A` of the scan chain — simulating hardware that overwrites
/// the location every cycle, so persistent fault models must keep
/// re-asserting.
struct MockTarget {
    layout: ChainLayout,
    chain: BitVec,
    memory: Vec<u32>,
    instructions: u64,
    iterations: u64,
    workload_len: u64,
    iteration_every: Option<u64>,
    detect_at: Option<u64>,
    breakpoint: Option<u64>,
    halted: bool,
    calls: Rc<RefCell<Vec<String>>>,
    chain_writes: u64,
}

impl MockTarget {
    fn new(workload_len: u64) -> Self {
        let layout = ChainLayout::builder("internal")
            .cell("A", 8, CellAccess::ReadWrite)
            .cell("S", 4, CellAccess::ReadOnly)
            .build();
        MockTarget {
            chain: BitVec::zeros(layout.total_bits()),
            layout,
            memory: vec![0; 64],
            instructions: 0,
            iterations: 0,
            workload_len,
            iteration_every: None,
            detect_at: None,
            breakpoint: None,
            halted: false,
            calls: Rc::new(RefCell::new(Vec::new())),
            chain_writes: 0,
        }
    }

    fn log(&self, call: &str) {
        self.calls.borrow_mut().push(call.to_string());
    }

    fn exec_one(&mut self) -> Option<RunEvent> {
        if self.halted {
            return Some(RunEvent::Halted);
        }
        if self.breakpoint == Some(self.instructions) {
            return Some(RunEvent::Breakpoint {
                at_instruction: self.instructions,
                at_cycle: self.instructions,
            });
        }
        self.instructions += 1;
        // The hardware rewrites cell A every instruction.
        self.layout.write_cell(&mut self.chain, "A", 0).unwrap();
        if self.detect_at == Some(self.instructions) {
            return Some(RunEvent::Detected(DetectionInfo {
                mechanism: "mock".into(),
                code: 9,
            }));
        }
        if self.instructions >= self.workload_len {
            self.halted = true;
            return Some(RunEvent::Halted);
        }
        if let Some(every) = self.iteration_every {
            if self.instructions.is_multiple_of(every) {
                self.iterations += 1;
                return Some(RunEvent::IterationBoundary {
                    iteration: self.iterations,
                });
            }
        }
        None
    }
}

impl TargetAccess for MockTarget {
    fn target_name(&self) -> &str {
        "mock"
    }
    fn init_test_card(&mut self) -> goofi_core::Result<()> {
        self.log("init_test_card");
        Ok(())
    }
    fn load_workload(&mut self, _image: &WorkloadImage) -> goofi_core::Result<()> {
        self.log("load_workload");
        self.instructions = 0;
        self.iterations = 0;
        self.halted = false;
        self.chain = BitVec::zeros(self.layout.total_bits());
        Ok(())
    }
    fn reset_target(&mut self) -> goofi_core::Result<()> {
        self.log("reset_target");
        Ok(())
    }
    fn write_memory(&mut self, addr: u32, data: &[u32]) -> goofi_core::Result<()> {
        self.log("write_memory");
        for (i, w) in data.iter().enumerate() {
            self.memory[addr as usize + i] = *w;
        }
        Ok(())
    }
    fn read_memory(&mut self, addr: u32, len: usize) -> goofi_core::Result<Vec<u32>> {
        Ok(self.memory[addr as usize..addr as usize + len].to_vec())
    }
    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> goofi_core::Result<()> {
        self.log("flip_memory_bit");
        self.memory[addr as usize] ^= 1 << bit;
        Ok(())
    }
    fn memory_size(&self) -> u32 {
        self.memory.len() as u32
    }
    fn set_breakpoint(&mut self, trigger: Trigger) -> goofi_core::Result<()> {
        self.log("set_breakpoint");
        match trigger {
            Trigger::AfterInstructions(n) => {
                self.breakpoint = Some(n);
                Ok(())
            }
            other => Err(GoofiError::Config(format!(
                "mock target only supports instruction-count triggers, got {other}"
            ))),
        }
    }
    fn clear_breakpoints(&mut self) -> goofi_core::Result<()> {
        self.log("clear_breakpoints");
        self.breakpoint = None;
        Ok(())
    }
    fn run_workload(&mut self, budget: RunBudget) -> goofi_core::Result<RunEvent> {
        self.log("run_workload");
        for _ in 0..budget.max_instructions {
            if let Some(ev) = self.exec_one() {
                return Ok(ev);
            }
        }
        Ok(RunEvent::BudgetExhausted)
    }
    fn step_instruction(&mut self) -> goofi_core::Result<Option<RunEvent>> {
        Ok(self.exec_one())
    }
    fn chain_layouts(&self) -> Vec<ChainLayout> {
        vec![self.layout.clone()]
    }
    fn read_scan_chain(&mut self, chain: &str) -> goofi_core::Result<BitVec> {
        self.log("read_scan_chain");
        assert_eq!(chain, "internal");
        Ok(self.chain.clone())
    }
    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> goofi_core::Result<()> {
        self.log("write_scan_chain");
        assert_eq!(chain, "internal");
        self.chain = self.layout.masked_update(&self.chain, bits).unwrap();
        self.chain_writes += 1;
        Ok(())
    }
    fn write_input_ports(&mut self, _inputs: &[u32]) -> goofi_core::Result<()> {
        self.log("write_input_ports");
        Ok(())
    }
    fn read_output_ports(&mut self) -> goofi_core::Result<Vec<u32>> {
        Ok(vec![self.instructions as u32])
    }
    fn instructions_executed(&self) -> u64 {
        self.instructions
    }
    fn cycles_executed(&self) -> u64 {
        self.instructions
    }
    fn iterations_completed(&self) -> u64 {
        self.iterations
    }
    fn step_traced(&mut self) -> goofi_core::Result<(Option<RunEvent>, StepAccess)> {
        let ev = self.exec_one();
        Ok((
            ev,
            StepAccess {
                reads: vec![],
                writes: vec!["internal:A".into()],
            },
        ))
    }
}

fn scan_fault(trigger: Trigger, model: FaultModel) -> FaultSpec {
    FaultSpec {
        locations: vec![FaultLocation::ScanCell {
            chain: "internal".into(),
            cell: "A".into(),
            bit: 2,
        }],
        model,
        trigger,
    }
}

fn campaign(faults: Vec<FaultSpec>, max_instructions: u64) -> Campaign {
    Campaign::builder("mock")
        .workload(WorkloadImage {
            name: "mock-wl".into(),
            words: vec![0],
            code_words: 1,
            entry: 0,
        })
        .observe_chains(["internal"])
        .output(OutputRegion::Ports)
        .termination(Termination {
            max_instructions,
            max_iterations: None,
        })
        .faults(faults)
        .build()
        .unwrap()
}

fn run_one(target: &mut MockTarget, c: &Campaign) -> CampaignResult {
    algorithms::run_campaign(
        target,
        c,
        &ProgressMonitor::new(c.experiment_count()),
        &mut envsim::NullEnvironment,
    )
    .unwrap()
}

#[test]
fn scifi_experiment_follows_figure_2_sequence() {
    let mut target = MockTarget::new(100);
    let c = campaign(
        vec![scan_fault(
            Trigger::AfterInstructions(10),
            FaultModel::TransientBitFlip,
        )],
        1_000,
    );
    let calls = Rc::clone(&target.calls);
    let result = run_one(&mut target, &c);
    assert_eq!(result.records[0].termination, TerminationCause::WorkloadEnd);

    let calls = calls.borrow();
    // Find where the experiment (after the reference run) begins.
    let exp_start = calls
        .iter()
        .rposition(|c| c == "init_test_card")
        .expect("experiment init");
    let tail: Vec<&str> = calls[exp_start..].iter().map(String::as_str).collect();
    // initTestCard; loadWorkload; (inputs); set_breakpoint; runWorkload;
    // readScanChain; injectFault=write; clear; waitForTermination; logging.
    let expect_order = [
        "init_test_card",
        "load_workload",
        "write_input_ports",
        "set_breakpoint",
        "run_workload",
        "clear_breakpoints",
        "read_scan_chain",  // injectFault: read ...
        "write_scan_chain", // ... invert, write back
        "run_workload",     // waitForTermination
        "read_scan_chain",  // final state logging
    ];
    let mut pos = 0;
    for want in expect_order {
        pos = tail[pos..]
            .iter()
            .position(|c| *c == want)
            .unwrap_or_else(|| panic!("missing `{want}` after position {pos} in {tail:?}"))
            + pos
            + 1;
    }
}

#[test]
fn budget_exhaustion_is_a_timeout() {
    let mut target = MockTarget::new(1_000_000);
    let c = campaign(
        vec![scan_fault(
            Trigger::AfterInstructions(10),
            FaultModel::TransientBitFlip,
        )],
        50, // tiny budget
    );
    let result = run_one(&mut target, &c);
    assert_eq!(result.reference.termination, TerminationCause::Timeout);
    assert_eq!(result.records[0].termination, TerminationCause::Timeout);
}

#[test]
fn detection_during_wait_logs_detected_without_injection() {
    let mut target = MockTarget::new(100);
    target.detect_at = Some(5);
    let c = campaign(
        vec![scan_fault(
            Trigger::AfterInstructions(50),
            FaultModel::TransientBitFlip,
        )],
        1_000,
    );
    let calls = Rc::clone(&target.calls);
    let result = run_one(&mut target, &c);
    match &result.records[0].termination {
        TerminationCause::Detected(d) => assert_eq!(d.mechanism, "mock"),
        other => panic!("expected detection, got {other:?}"),
    }
    // The fault was never injected: no chain write in the experiment.
    let calls = calls.borrow();
    let exp_start = calls.iter().rposition(|c| c == "init_test_card").unwrap();
    assert!(!calls[exp_start..].iter().any(|c| c == "write_scan_chain"));
}

#[test]
fn iteration_limit_terminates_before_trigger() {
    let mut target = MockTarget::new(1_000_000);
    target.iteration_every = Some(10);
    let mut c = campaign(
        vec![scan_fault(
            Trigger::AfterInstructions(500),
            FaultModel::TransientBitFlip,
        )],
        10_000,
    );
    c.termination.max_iterations = Some(3);
    let result = run_one(&mut target, &c);
    assert_eq!(
        result.records[0].termination,
        TerminationCause::IterationLimit
    );
    assert_eq!(result.records[0].state.iterations, 3);
}

#[test]
fn environment_exchanged_once_per_iteration() {
    let mut target = MockTarget::new(1_000_000);
    target.iteration_every = Some(10);
    let mut c = campaign(
        vec![scan_fault(
            Trigger::AfterInstructions(15),
            FaultModel::TransientBitFlip,
        )],
        10_000,
    );
    c.termination.max_iterations = Some(5);
    let mut env = envsim::ScriptedEnvironment::new(vec![vec![1], vec![2]]);
    algorithms::run_experiment(&mut target, &c, 0, &mut env).unwrap();
    // 5 iterations, the last one terminates the run: 4 exchanges.
    assert_eq!(env.observed().len(), 4);
    // The environment saw the target's outputs (instruction counts).
    assert_eq!(env.observed()[0], vec![10]);
    assert_eq!(env.observed()[1], vec![20]);
}

#[test]
fn memory_based_environment_exchange() {
    // §3.2: data may be exchanged through "the memory locations holding
    // output and input data within the target system".
    let mut target = MockTarget::new(1_000);
    target.iteration_every = Some(10);
    target.memory[5] = 77; // the workload's output location
    let mut c = campaign(
        vec![scan_fault(
            Trigger::AfterInstructions(999),
            FaultModel::TransientBitFlip,
        )],
        10_000,
    );
    c.termination.max_iterations = Some(3);
    c.env_exchange = goofi_core::campaign::EnvExchange::Memory {
        outputs: vec![5],
        inputs: vec![6],
    };
    let mut env = envsim::ScriptedEnvironment::new(vec![vec![111], vec![222]]);
    algorithms::run_experiment(&mut target, &c, 0, &mut env).unwrap();
    // The environment saw the memory output location...
    assert_eq!(env.observed(), [[77], [77]]);
    // ...and its inputs landed in the designated input word.
    assert_eq!(target.memory[6], 222);
}

#[test]
fn transient_fault_writes_chain_exactly_once() {
    let mut target = MockTarget::new(100);
    let c = campaign(
        vec![scan_fault(
            Trigger::AfterInstructions(10),
            FaultModel::TransientBitFlip,
        )],
        1_000,
    );
    run_one(&mut target, &c);
    assert_eq!(target.chain_writes, 1);
}

#[test]
fn stuck_at_fault_reasserts_every_instruction() {
    let mut target = MockTarget::new(50);
    let c = campaign(
        vec![scan_fault(
            Trigger::AfterInstructions(10),
            FaultModel::StuckAtOne,
        )],
        1_000,
    );
    run_one(&mut target, &c);
    // The mock zeroes cell A every instruction, so stuck-at-1 must
    // re-write the chain after (almost) every one of the ~40 remaining
    // instructions.
    assert!(
        target.chain_writes >= 35,
        "only {} chain writes",
        target.chain_writes
    );
    // And the bit is still forced at the end.
    let layout = target.layout.clone();
    assert_eq!(layout.read_cell(&target.chain, "A").unwrap() & 0b100, 0b100);
}

#[test]
fn intermittent_fault_bursts_count() {
    let mut target = MockTarget::new(200);
    let c = campaign(
        vec![scan_fault(
            Trigger::AfterInstructions(10),
            FaultModel::Intermittent {
                period: 20,
                bursts: 4,
            },
        )],
        1_000,
    );
    run_one(&mut target, &c);
    // One initial injection plus three re-injections.
    assert_eq!(target.chain_writes, 4);
}

#[test]
fn detail_mode_reference_and_experiment_traces_align() {
    let mut target = MockTarget::new(30);
    let mut c = campaign(
        vec![scan_fault(
            Trigger::AfterInstructions(10),
            FaultModel::TransientBitFlip,
        )],
        1_000,
    );
    c.logging = LoggingMode::Detail;
    let result = run_one(&mut target, &c);
    assert_eq!(result.reference.trace.len(), 30);
    assert_eq!(result.records[0].trace.len(), 30);
    // Pre-injection prefix identical, post-injection state reflects the
    // (immediately overwritten) flip only in cycle counters.
    for step in 0..10 {
        assert_eq!(
            result.reference.trace[step], result.records[0].trace[step],
            "step {step}"
        );
    }
}

#[test]
fn swifi_runtime_uses_memory_primitive() {
    let mut target = MockTarget::new(100);
    let mut c = campaign(
        vec![FaultSpec {
            locations: vec![FaultLocation::Memory { addr: 7, bit: 3 }],
            model: FaultModel::TransientBitFlip,
            trigger: Trigger::AfterInstructions(10),
        }],
        1_000,
    );
    c.technique = goofi_core::campaign::Technique::SwifiRuntime;
    let calls = Rc::clone(&target.calls);
    let result = algorithms::faultinjector_swifi(
        &mut target,
        &c,
        &ProgressMonitor::new(1),
        &mut envsim::NullEnvironment,
    )
    .unwrap();
    assert_eq!(result.records.len(), 1);
    assert!(calls.borrow().iter().any(|c| c == "flip_memory_bit"));
    assert_eq!(target.memory[7], 1 << 3);
}
