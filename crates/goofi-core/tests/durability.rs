//! Durability torture harness: the framework injecting faults into
//! *itself*.
//!
//! Every persistence artifact — run journal, database file, service spool —
//! is written through the [`goofi_core::vfs`] seam, so a seeded
//! [`FaultFs`] can tear a write, garble a sector, drop every fsync, or
//! fail with `ENOSPC`/`EIO` at *any* chosen operation. The torture
//! discipline is always the same:
//!
//! 1. count the mutating operations of an uninterrupted run,
//! 2. crash (or fault) the run at every single one of them,
//! 3. run `fsck --repair` over the wreckage,
//! 4. resume on the clean filesystem,
//! 5. assert the final database is essence-equal to a run that was never
//!    interrupted — and that a second fsck pass finds nothing.
//!
//! Plus a corruption-class matrix (every [`CorruptionClass`] is detected
//! without `--repair` and repaired to convergence with it), scheduler
//! spool-recovery quarantine, and proptests over randomly truncated and
//! bit-flipped journal tails and spool manifests.

use goofi_core::algorithms;
use goofi_core::campaign::{Campaign, OutputRegion, Termination, WorkloadImage};
use goofi_core::dbio;
use goofi_core::fault::{FaultLocation, FaultSpec};
use goofi_core::framework::SimTarget;
use goofi_core::fsck::{self, CorruptionClass};
use goofi_core::journal;
use goofi_core::logging::{ExperimentRecord, TerminationCause, Validity};
use goofi_core::monitor::ProgressMonitor;
use goofi_core::runner;
use goofi_core::vfs::{FaultFs, FaultKind, FaultPlan, RealFs, Vfs};
use goofi_core::GoofiError;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

const CAMPAIGN: &str = "torture";

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("goofi-durability-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sim_campaign(name: &str, faults: usize) -> Campaign {
    Campaign::builder(name)
        .workload(WorkloadImage {
            name: "sim-wl".into(),
            words: vec![60],
            code_words: 1,
            entry: 0,
        })
        .observe_chains(["internal"])
        .output(OutputRegion::Ports)
        .termination(Termination {
            max_instructions: 1_000,
            max_iterations: None,
        })
        .faults(
            (0..faults)
                .map(|i| {
                    FaultSpec::single(
                        FaultLocation::ScanCell {
                            chain: "internal".into(),
                            cell: "A".into(),
                            bit: i % 8,
                        },
                        goofi_core::trigger::Trigger::AfterInstructions(5 + i as u64),
                    )
                })
                .collect::<Vec<_>>(),
        )
        .build()
        .unwrap()
}

/// The serial in-process ground truth over the same simulated target.
fn serial_records(campaign: &Campaign) -> Vec<ExperimentRecord> {
    let mut target = SimTarget::new();
    let monitor = ProgressMonitor::new(campaign.experiment_count());
    algorithms::run_campaign(
        &mut target,
        campaign,
        &monitor,
        &mut envsim::NullEnvironment,
    )
    .unwrap()
    .records
}

/// The part of a record a crash must not change.
fn essence(r: &ExperimentRecord) -> (Option<&FaultSpec>, &TerminationCause, String, Validity) {
    (
        r.fault.as_ref(),
        &r.termination,
        r.state.encode(),
        r.validity,
    )
}

/// Asserts the database's records for `campaign` are essence-equal to
/// `want`: every serial record present exactly once with the same outcome.
fn assert_essence_equal(db_path: &Path, campaign: &str, want: &[ExperimentRecord]) {
    let db = dbio::load_database(&RealFs, db_path).unwrap();
    let got = dbio::load_experiments(&db, campaign).unwrap();
    let by_name: BTreeMap<&str, &ExperimentRecord> =
        got.iter().map(|r| (r.name.as_str(), r)).collect();
    assert_eq!(
        got.len(),
        by_name.len(),
        "duplicate experiments after recovery"
    );
    for record in want {
        let merged = by_name
            .get(record.name.as_str())
            .unwrap_or_else(|| panic!("experiment `{}` missing after recovery", record.name));
        assert_eq!(
            essence(merged),
            essence(record),
            "experiment `{}` diverged from the uninterrupted run",
            record.name
        );
    }
}

/// One full persistence cycle over `vfs`: a journaled (resuming) run, then
/// merge the journal into the database file with an atomic checksummed
/// save. Exactly the sequence every crash in this harness interrupts.
fn run_and_persist(
    vfs: &dyn Vfs,
    campaign: &Campaign,
    db_path: &Path,
    journal_path: &Path,
) -> goofi_core::Result<()> {
    let monitor = ProgressMonitor::new(campaign.experiment_count());
    runner::resume_campaign_shard_vfs(
        SimTarget::new,
        None::<fn() -> Box<dyn envsim::Environment>>,
        campaign,
        &monitor,
        1,
        vfs,
        journal_path,
        0..campaign.experiment_count(),
    )?;
    let mut db = if vfs.exists(db_path) {
        dbio::load_database(vfs, db_path)?
    } else {
        let mut fresh = goofidb::Database::new();
        dbio::init_schema(&mut fresh)?;
        dbio::store_campaign(&mut fresh, campaign)?;
        fresh
    };
    dbio::import_journal_with(&mut db, vfs, journal_path, &campaign.name)?;
    dbio::save_database(vfs, db_path, &db)
}

/// The tentpole: exhaustively crash a run→persist cycle at every mutating
/// filesystem operation with fault `kind`, then prove crash → fsck →
/// resume converges to the uninterrupted run's database.
fn crash_walk(kind: FaultKind) {
    let dir = temp_dir(&format!("walk-{}", kind.encode()));
    let campaign = sim_campaign(CAMPAIGN, 5);
    let want = serial_records(&campaign);

    // Pass 0: learn how many mutating operations the walk must cover.
    let count_dir = dir.join("count");
    std::fs::create_dir_all(&count_dir).unwrap();
    let counting = FaultFs::counting();
    run_and_persist(
        &counting,
        &campaign,
        &count_dir.join("c.gdb"),
        &count_dir.join("c.gjl"),
    )
    .unwrap();
    let total = counting.ops();
    assert!(total > 10, "counting pass looks too small: {total} ops");

    for at in 1..=total {
        let kdir = dir.join(format!("at{at}"));
        std::fs::create_dir_all(&kdir).unwrap();
        let db = kdir.join("campaigns.gdb");
        let journal = kdir.join("run.gjl");
        let fault = FaultFs::new(FaultPlan {
            at,
            kind,
            seed: 0xD15_EA5E ^ at,
        });

        // Phase 1: run until the machine dies. (A fault landing on a
        // best-effort operation like the directory sync can let the run
        // report success; the walk does not care — the wreckage on disk is
        // what matters.)
        let _ = run_and_persist(&fault, &campaign, &db, &journal);

        // Phase 2: repair with the real filesystem, as an operator would.
        let report = fsck::fsck_all(&RealFs, &db, Some((&journal, CAMPAIGN)), true)
            .unwrap_or_else(|e| panic!("fsck --repair failed at op {at} ({kind:?}): {e}"));

        // Phase 3: fsck converges — a second pass finds nothing.
        let second = fsck::fsck_all(&RealFs, &db, Some((&journal, CAMPAIGN)), false).unwrap();
        assert!(
            second.clean(),
            "fsck did not converge at op {at} ({kind:?}):\nsecond: {}\nfirst: {}",
            second.render(),
            report.render()
        );

        // Phase 4: resume on the clean filesystem.
        run_and_persist(&RealFs, &campaign, &db, &journal)
            .unwrap_or_else(|e| panic!("resume failed at op {at} ({kind:?}): {e}"));

        // Phase 5: nothing was lost, nothing was duplicated.
        assert_essence_equal(&db, CAMPAIGN, &want);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_write_crash_at_every_operation_converges() {
    crash_walk(FaultKind::Torn);
}

#[test]
fn garbled_write_crash_at_every_operation_converges() {
    crash_walk(FaultKind::Garble);
}

#[test]
fn lost_sync_crash_at_every_operation_converges() {
    crash_walk(FaultKind::LostSync);
}

/// Satellite: `ENOSPC`/`EIO` at any operation surface as
/// [`GoofiError::Io`] naming the damaged file — never a panic — and since
/// they are transient, simply re-running the same cycle completes.
#[test]
fn transient_disk_errors_surface_as_io_and_retry_completes() {
    let dir = temp_dir("transient");
    let campaign = sim_campaign(CAMPAIGN, 4);
    let want = serial_records(&campaign);

    let count_dir = dir.join("count");
    std::fs::create_dir_all(&count_dir).unwrap();
    let counting = FaultFs::counting();
    run_and_persist(
        &counting,
        &campaign,
        &count_dir.join("c.gdb"),
        &count_dir.join("c.gjl"),
    )
    .unwrap();
    let total = counting.ops();

    for kind in [FaultKind::Enospc, FaultKind::Eio] {
        let mut surfaced = 0;
        for at in 1..=total {
            let kdir = dir.join(format!("{}-at{at}", kind.encode()));
            std::fs::create_dir_all(&kdir).unwrap();
            let db = kdir.join("campaigns.gdb");
            let journal = kdir.join("run.gjl");
            let fault = FaultFs::new(FaultPlan { at, kind, seed: 7 });
            match run_and_persist(&fault, &campaign, &db, &journal) {
                // The fault landed on a best-effort step (directory sync).
                Ok(()) => {}
                Err(GoofiError::Io { path, detail, .. }) => {
                    surfaced += 1;
                    assert!(
                        path.starts_with(&kdir),
                        "I/O error names a foreign path {path:?} (op {at}, {kind:?})"
                    );
                    assert!(!detail.is_empty());
                    assert!(
                        !fault.crashed(),
                        "transient fault must not kill the machine"
                    );
                    // The disk recovered; the identical retry completes.
                    run_and_persist(&fault, &campaign, &db, &journal).unwrap_or_else(|e| {
                        panic!("retry after transient {kind:?} at op {at} failed: {e}")
                    });
                }
                Err(other) => {
                    panic!("op {at} {kind:?}: expected GoofiError::Io, got: {other}")
                }
            }
            assert_essence_equal(&db, CAMPAIGN, &want);
        }
        assert!(
            surfaced > 0,
            "{kind:?} walk never surfaced an I/O error — the fault plan is dead"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full corruption-class matrix: every [`CorruptionClass`] is detected
/// (and named) by a plain fsck pass, and `--repair` converges — after one
/// repair pass, a second plain pass is clean.
#[test]
fn fsck_detects_and_repairs_every_corruption_class() {
    let dir = temp_dir("classes");
    let campaign = sim_campaign(CAMPAIGN, 3);

    // Pristine fixtures to mutate per case.
    let fixture = dir.join("fixture");
    std::fs::create_dir_all(&fixture).unwrap();
    let fdb = fixture.join("campaigns.gdb");
    let fjournal = fixture.join("run.gjl");
    run_and_persist(&RealFs, &campaign, &fdb, &fjournal).unwrap();
    let db_text = std::fs::read_to_string(&fdb).unwrap();
    let journal_text = std::fs::read_to_string(&fjournal).unwrap();
    assert!(
        fsck::fsck_all(&RealFs, &fdb, Some((&fjournal, CAMPAIGN)), false)
            .unwrap()
            .clean()
    );
    assert!(db_text.contains("T:end"), "fixture rows look unexpected");

    let check = |name: &str, class: CorruptionClass, corrupt: &dyn Fn(&Path, &Path)| {
        let cdir = dir.join(name);
        std::fs::create_dir_all(&cdir).unwrap();
        let db = cdir.join("campaigns.gdb");
        let journal = cdir.join("run.gjl");
        std::fs::write(&db, &db_text).unwrap();
        std::fs::write(&journal, &journal_text).unwrap();
        corrupt(&db, &journal);

        // Detection names the class without touching anything.
        let found = fsck::fsck_all(&RealFs, &db, Some((&journal, CAMPAIGN)), false).unwrap();
        assert!(!found.clean(), "{name}: corruption not detected");
        assert!(
            found.findings.iter().any(|f| f.class == class),
            "{name}: expected {class} among:\n{}",
            found.render()
        );
        assert_eq!(found.repaired(), 0, "{name}: plain pass must not repair");

        // Repair converges.
        let repaired = fsck::fsck_all(&RealFs, &db, Some((&journal, CAMPAIGN)), true).unwrap();
        assert!(
            repaired.repaired() >= 1,
            "{name}: nothing repaired:\n{}",
            repaired.render()
        );
        let after = fsck::fsck_all(&RealFs, &db, Some((&journal, CAMPAIGN)), false).unwrap();
        assert!(
            after.clean(),
            "{name}: fsck did not converge:\n{}",
            after.render()
        );
    };

    check(
        "journal-bad-header",
        CorruptionClass::JournalBadHeader,
        &|_, j| std::fs::write(j, "definitely not a journal\nnoise\n").unwrap(),
    );
    check(
        "journal-torn-tail",
        CorruptionClass::JournalTornTail,
        &|_, j| {
            let t = journal_text.trim_end_matches('\n');
            std::fs::write(j, &t[..t.len() - 3]).unwrap();
        },
    );
    check(
        "journal-garbled-entry",
        CorruptionClass::JournalGarbledEntry,
        &|_, j| {
            let mut lines: Vec<String> = journal_text.lines().map(String::from).collect();
            assert!(lines.len() > 4, "fixture journal too short to garble");
            let mid = lines[2].clone();
            lines[2] = format!("{}XX", &mid[..mid.len() - 2]);
            std::fs::write(j, format!("{}\n", lines.join("\n"))).unwrap();
        },
    );
    check("db-unreadable", CorruptionClass::DbUnreadable, &|db, _| {
        std::fs::write(db, "garbage, not a database\n").unwrap();
    });
    check(
        "db-checksum-mismatch",
        CorruptionClass::DbChecksumMismatch,
        &|db, _| std::fs::write(db, db_text.replacen("T:end", "T:foo", 1)).unwrap(),
    );
    check("db-garbled-row", CorruptionClass::DbGarbledRow, &|db, _| {
        std::fs::write(db, db_text.replacen("T:end", "X?end", 1)).unwrap()
    });
    check("db-stray-temp", CorruptionClass::DbStrayTemp, &|db, _| {
        std::fs::write(format!("{}.tmp", db.display()), "half a save").unwrap();
    });
    check(
        "spool-orphan-dir",
        CorruptionClass::SpoolOrphanDir,
        &|db, _| {
            let spool = PathBuf::from(format!("{}.spool", db.display()));
            std::fs::create_dir_all(spool.join("job-1")).unwrap();
        },
    );
    check(
        "spool-bad-manifest",
        CorruptionClass::SpoolBadManifest,
        &|db, _| {
            let job = PathBuf::from(format!("{}.spool", db.display())).join("job-2");
            std::fs::create_dir_all(&job).unwrap();
            std::fs::write(job.join("manifest"), "wat\n").unwrap();
        },
    );
    check(
        "spool-shard-mismatch",
        CorruptionClass::SpoolShardMismatch,
        &|db, _| {
            let job = PathBuf::from(format!("{}.spool", db.display())).join("job-3");
            std::fs::create_dir_all(&job).unwrap();
            std::fs::write(
                job.join("manifest"),
                "#goofi-job v1\ncampaign someone-else\nworkers 1\n",
            )
            .unwrap();
            std::fs::write(job.join("shard-0.gjl"), &journal_text).unwrap();
        },
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spool recovery after a daemon SIGKILL: a job directory whose manifest
/// was destroyed is quarantined aside (never resumed, never deleted) while
/// the intact job resumes and completes.
#[test]
fn recover_quarantines_damaged_spool_jobs_and_resumes_intact_ones() {
    use goofi_core::service::{JobState, Scheduler, ServiceConfig, WorkerCommand};

    let dir = temp_dir("recover");
    let campaign = sim_campaign("torture-spool", 6);
    let want = serial_records(&campaign);
    let db = dir.join("campaigns.gdb");
    let mut dbo = goofidb::Database::new();
    dbio::init_schema(&mut dbo).unwrap();
    dbio::store_campaign(&mut dbo, &campaign).unwrap();
    dbio::save_database(&RealFs, &db, &dbo).unwrap();

    // A spool as a killed daemon leaves it: one intact in-flight job, one
    // whose manifest a crash destroyed.
    let spool = dir.join("campaigns.gdb.spool");
    let good = spool.join("job-1");
    std::fs::create_dir_all(&good).unwrap();
    std::fs::write(
        good.join("manifest"),
        "#goofi-job v1\ncampaign torture-spool\nworkers 2\n",
    )
    .unwrap();
    let bad = spool.join("job-2");
    std::fs::create_dir_all(&bad).unwrap();
    std::fs::write(bad.join("manifest"), "\u{1}\u{2}garbage").unwrap();

    let mut cfg = ServiceConfig::new(
        &db,
        WorkerCommand {
            program: PathBuf::from(env!("CARGO_BIN_EXE_goofi-mock-worker")),
            args: Vec::new(),
        },
    );
    cfg.default_workers = 2;
    cfg.lease = std::time::Duration::from_secs(5);
    let scheduler = Scheduler::new(cfg).unwrap();
    let recovered = scheduler.recover().unwrap();
    assert_eq!(recovered.resumed, vec!["job-1".to_string()]);
    assert_eq!(recovered.quarantined, vec!["job-2".to_string()]);
    assert!(!bad.exists(), "damaged job dir must be renamed aside");
    assert!(
        spool.join("quarantined-job-2").join("manifest").exists(),
        "quarantine must preserve the damaged artifacts"
    );

    let done = scheduler.watch("job-1").unwrap().wait();
    assert_eq!(done.state, JobState::Done, "{}", done.detail);
    assert_essence_equal(&db, "torture-spool", &want);
    scheduler.shutdown();

    // A second daemon generation skips the quarantined directory forever.
    let recovered2 = {
        let mut cfg = ServiceConfig::new(
            &db,
            WorkerCommand {
                program: PathBuf::from(env!("CARGO_BIN_EXE_goofi-mock-worker")),
                args: Vec::new(),
            },
        );
        cfg.default_workers = 2;
        let scheduler2 = Scheduler::new(cfg).unwrap();
        let outcome = scheduler2.recover().unwrap();
        scheduler2.shutdown();
        outcome
    };
    assert!(recovered2.quarantined.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Proptests: random truncation and bit-rot over journal tails and spool
// manifests. The decoders must be total, and salvage must always converge
// to a clean (or quarantined) journal.
// ---------------------------------------------------------------------------

/// A pristine journal produced by a real run, fixed across cases.
fn fixture_journal() -> &'static str {
    static TEXT: OnceLock<String> = OnceLock::new();
    TEXT.get_or_init(|| {
        let dir = temp_dir("prop-fixture");
        let campaign = sim_campaign(CAMPAIGN, 4);
        run_and_persist(&RealFs, &campaign, &dir.join("c.gdb"), &dir.join("c.gjl")).unwrap();
        let text = std::fs::read_to_string(dir.join("c.gjl")).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        assert!(text.is_ascii(), "fixture journal must be ASCII");
        text
    })
}

/// Writes `bytes` to a scratch journal, salvages it, and asserts the
/// result is either a clean journal or a quarantined (renamed) file —
/// never an error, never a still-damaged journal.
fn salvage_converges(case: &str, bytes: &[u8]) {
    let dir = temp_dir(&format!("prop-{case}"));
    let path = dir.join("t.gjl");
    std::fs::write(&path, bytes).unwrap();
    let outcome = journal::salvage_with(&RealFs, &path)
        .unwrap_or_else(|e| panic!("salvage errored on damaged input: {e}"));
    if outcome.quarantined.is_some() {
        assert!(!path.exists(), "quarantine must move the file aside");
    } else {
        let after = std::fs::read_to_string(&path).unwrap();
        let scan = journal::scan_text(&after);
        assert!(
            scan.clean(),
            "journal still damaged after salvage (kept {}, dropped {})",
            outcome.kept,
            outcome.dropped
        );
        assert_eq!(scan.valid.len(), outcome.kept);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #[test]
    fn truncated_journal_tails_salvage_clean(cut in 0usize..4096) {
        let text = fixture_journal();
        let cut = cut.min(text.len());
        let scan = journal::scan_text(&text[..cut]);
        prop_assert!(scan.valid.len() <= text.lines().count());
        salvage_converges("trunc", text[..cut].as_bytes());
    }

    #[test]
    fn bit_flipped_journals_salvage_clean(pos in 0usize..4096, bit in 0u32..8) {
        let mut bytes = fixture_journal().as_bytes().to_vec();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        // Total even when the flip breaks UTF-8.
        let _ = journal::scan_text(&String::from_utf8_lossy(&bytes));
        salvage_converges("flip", &bytes);
    }

    #[test]
    fn journal_scan_is_total_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = journal::scan_text(&String::from_utf8_lossy(&bytes));
        salvage_converges("noise", &bytes);
    }

    #[test]
    fn manifest_parser_is_total_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = fsck::parse_manifest(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn truncated_manifests_never_misparse(cut in 0usize..64) {
        let valid = "#goofi-job v1\ncampaign tort camp\nworkers 3\n";
        let cut = cut.min(valid.len());
        if let Some((campaign, workers)) = fsck::parse_manifest(&valid[..cut]) {
            // A prefix either fails to parse or yields the original values.
            prop_assert_eq!(campaign, "tort camp");
            prop_assert_eq!(workers, 3);
        }
    }
}
