//! End-to-end unreliable-link resilience tests.
//!
//! The two acceptance properties of the link-resilience subsystem:
//!
//! 1. **Recoverable faults are invisible.** A campaign run through
//!    `VerifiedTarget(UnreliableTarget(target))` at a recoverable fault
//!    rate produces a result bit-for-bit identical to the same campaign on
//!    a perfect link.
//! 2. **Unrecoverable drift is quarantined.** When golden-run revalidation
//!    detects that the link misbehaved, the records of the suspect window
//!    are marked invalid, kept for audit, and superseded by
//!    `parentExperiment`-linked re-runs — in the campaign result, in the
//!    crash-safe journal, and in the database.

use goofi_core::algorithms;
use goofi_core::campaign::{Campaign, OutputRegion, Termination, WorkloadImage};
use goofi_core::fault::{FaultLocation, FaultModel, FaultSpec};
use goofi_core::journal::ExperimentJournal;
use goofi_core::link::{UnreliableTarget, VerifiedTarget, VerifyConfig};
use goofi_core::logging::Validity;
use goofi_core::monitor::ProgressMonitor;
use goofi_core::policy::ExperimentPolicy;
use goofi_core::preinject::StepAccess;
use goofi_core::trigger::Trigger;
use goofi_core::{dbio, runner};
use goofi_core::{GoofiError, RunBudget, RunEvent, TargetAccess};
use goofidb::Database;
use scanchain::{BitVec, CellAccess, ChainLayout, LinkFaultConfig};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A deterministic lab target. `bad_loads` names the (1-based) workload
/// loads whose runs produce drifted outputs — modelling a link that went
/// bad between two golden-run checks. The load counter is shared across
/// clones so parallel workers observe one global timeline.
#[derive(Clone)]
struct LabTarget {
    layout: ChainLayout,
    chain: BitVec,
    memory: Vec<u32>,
    instructions: u64,
    cycles: u64,
    workload_len: u64,
    breakpoint: Option<u64>,
    halted: bool,
    loads: Arc<AtomicU64>,
    bad_loads: Range<u64>,
    bad_now: bool,
}

impl LabTarget {
    fn new(workload_len: u64) -> Self {
        Self::drifting(workload_len, 0..0, Arc::new(AtomicU64::new(0)))
    }

    fn drifting(workload_len: u64, bad_loads: Range<u64>, loads: Arc<AtomicU64>) -> Self {
        let layout = ChainLayout::builder("internal")
            .cell("A", 8, CellAccess::ReadWrite)
            .cell("S", 4, CellAccess::ReadOnly)
            .build();
        LabTarget {
            chain: BitVec::zeros(layout.total_bits()),
            layout,
            memory: vec![0; 64],
            instructions: 0,
            cycles: 0,
            workload_len,
            breakpoint: None,
            halted: false,
            loads,
            bad_loads,
            bad_now: false,
        }
    }

    fn exec_one(&mut self) -> Option<RunEvent> {
        if self.halted {
            return Some(RunEvent::Halted);
        }
        if self.breakpoint == Some(self.instructions) {
            return Some(RunEvent::Breakpoint {
                at_instruction: self.instructions,
                at_cycle: self.cycles,
            });
        }
        self.instructions += 1;
        self.cycles += 1;
        if self.instructions >= self.workload_len {
            self.halted = true;
            return Some(RunEvent::Halted);
        }
        None
    }
}

impl TargetAccess for LabTarget {
    fn target_name(&self) -> &str {
        "lab"
    }
    fn init_test_card(&mut self) -> goofi_core::Result<()> {
        Ok(())
    }
    fn load_workload(&mut self, _image: &WorkloadImage) -> goofi_core::Result<()> {
        let load = self.loads.fetch_add(1, Ordering::SeqCst) + 1;
        self.bad_now = self.bad_loads.contains(&load);
        self.instructions = 0;
        self.cycles = 0;
        self.halted = false;
        self.breakpoint = None;
        self.memory = vec![0; 64];
        self.chain = BitVec::zeros(self.layout.total_bits());
        Ok(())
    }
    fn reset_target(&mut self) -> goofi_core::Result<()> {
        Ok(())
    }
    fn write_memory(&mut self, addr: u32, data: &[u32]) -> goofi_core::Result<()> {
        for (i, w) in data.iter().enumerate() {
            self.memory[addr as usize + i] = *w;
        }
        Ok(())
    }
    fn read_memory(&mut self, addr: u32, len: usize) -> goofi_core::Result<Vec<u32>> {
        Ok(self.memory[addr as usize..addr as usize + len].to_vec())
    }
    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> goofi_core::Result<()> {
        self.memory[addr as usize] ^= 1 << bit;
        Ok(())
    }
    fn memory_size(&self) -> u32 {
        self.memory.len() as u32
    }
    fn set_breakpoint(&mut self, trigger: Trigger) -> goofi_core::Result<()> {
        match trigger {
            Trigger::AfterInstructions(n) => {
                self.breakpoint = Some(n);
                Ok(())
            }
            other => Err(GoofiError::Config(format!(
                "lab target only supports instruction-count triggers, got {other}"
            ))),
        }
    }
    fn clear_breakpoints(&mut self) -> goofi_core::Result<()> {
        self.breakpoint = None;
        Ok(())
    }
    fn run_workload(&mut self, budget: RunBudget) -> goofi_core::Result<RunEvent> {
        for _ in 0..budget.max_instructions {
            if let Some(ev) = self.exec_one() {
                return Ok(ev);
            }
        }
        Ok(RunEvent::BudgetExhausted)
    }
    fn step_instruction(&mut self) -> goofi_core::Result<Option<RunEvent>> {
        Ok(self.exec_one())
    }
    fn chain_layouts(&self) -> Vec<ChainLayout> {
        vec![self.layout.clone()]
    }
    fn read_scan_chain(&mut self, chain: &str) -> goofi_core::Result<BitVec> {
        assert_eq!(chain, "internal");
        Ok(self.chain.clone())
    }
    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> goofi_core::Result<()> {
        assert_eq!(chain, "internal");
        self.chain = self.layout.masked_update(&self.chain, bits).unwrap();
        Ok(())
    }
    fn write_input_ports(&mut self, _inputs: &[u32]) -> goofi_core::Result<()> {
        Ok(())
    }
    fn read_output_ports(&mut self) -> goofi_core::Result<Vec<u32>> {
        let value = self.instructions as u32;
        // A drifted run yields wrong outputs — what a stuck scan link
        // looks like from the host.
        Ok(vec![if self.bad_now {
            value ^ 0x8000_0000
        } else {
            value
        }])
    }
    fn instructions_executed(&self) -> u64 {
        self.instructions
    }
    fn cycles_executed(&self) -> u64 {
        self.cycles
    }
    fn iterations_completed(&self) -> u64 {
        0
    }
    fn step_traced(&mut self) -> goofi_core::Result<(Option<RunEvent>, StepAccess)> {
        let ev = self.exec_one();
        Ok((
            ev,
            StepAccess {
                reads: vec![],
                writes: vec!["internal:A".into()],
            },
        ))
    }
}

fn campaign_n(n: usize, policy: ExperimentPolicy) -> Campaign {
    let faults: Vec<FaultSpec> = (0..n)
        .map(|i| FaultSpec {
            locations: vec![FaultLocation::ScanCell {
                chain: "internal".into(),
                cell: "A".into(),
                bit: i % 8,
            }],
            model: FaultModel::TransientBitFlip,
            trigger: Trigger::AfterInstructions(10 * (i as u64 + 1)),
        })
        .collect();
    Campaign::builder("lossy")
        .workload(WorkloadImage {
            name: "lab-wl".into(),
            words: vec![0],
            code_words: 1,
            entry: 0,
        })
        .observe_chains(["internal"])
        .output(OutputRegion::Ports)
        .termination(Termination {
            max_instructions: 1_000_000,
            max_iterations: None,
        })
        .policy(policy)
        .faults(faults)
        .build()
        .unwrap()
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("goofi-link-{}-{name}", std::process::id()));
    p
}

#[test]
fn verified_campaign_over_lossy_link_matches_fault_free_run() {
    let c = campaign_n(8, ExperimentPolicy::default());

    // Ground truth: the campaign on a perfect link.
    let mut clean_target = LabTarget::new(200);
    let clean = algorithms::run_campaign(
        &mut clean_target,
        &c,
        &ProgressMonitor::new(8),
        &mut envsim::NullEnvironment,
    )
    .unwrap();

    // The same campaign through a lossy link with the recovery layer on.
    let monitor = ProgressMonitor::new(8);
    let lossy = UnreliableTarget::new(
        LabTarget::new(200),
        LinkFaultConfig {
            seed: 7,
            corrupt_rate: 0.02,
            drop_rate: 0.01,
            duplicate_rate: 0.01,
            stall_rate: 0.005,
            disconnect_rate: 0.005,
            ..Default::default()
        },
    );
    let mut verified = VerifiedTarget::with_config(lossy, VerifyConfig { max_attempts: 10 })
        .with_monitor(monitor.clone());
    let recovered_result =
        algorithms::run_campaign(&mut verified, &c, &monitor, &mut envsim::NullEnvironment)
            .unwrap();

    assert_eq!(
        recovered_result, clean,
        "recoverable link faults must be invisible in the campaign result"
    );
    assert!(recovered_result.quarantined.is_empty());
    let stats = verified.stats();
    assert!(
        stats.recovered > 0,
        "the lossy link must actually have misbehaved"
    );
    assert_eq!(stats.unrecovered, 0);
    assert!(
        verified.inner().counts().total() > 0,
        "fault model must have injected transport events"
    );
    assert_eq!(monitor.snapshot().link_recovered as u64, stats.recovered);
}

#[test]
fn golden_run_drift_quarantines_window_and_reruns_with_parent_links() {
    // Timeline by workload load: 1 reference, 2-3 experiments 0-1,
    // 4 golden run (BAD: the link drifted) -> quarantine + reruns on
    // loads 5-6, 7-8 experiments 2-3, 9 golden run (clean again).
    let c = campaign_n(4, ExperimentPolicy::default().with_revalidation(2));
    let mut target = LabTarget::drifting(200, 4..5, Arc::new(AtomicU64::new(0)));

    let journal_path = temp_path("quarantine.gjl");
    let _ = std::fs::remove_file(&journal_path);
    let mut journal = ExperimentJournal::create(&journal_path, "lossy").unwrap();
    let monitor = ProgressMonitor::new(4);
    let result = algorithms::run_campaign_journaled(
        &mut target,
        &c,
        &monitor,
        &mut envsim::NullEnvironment,
        Some(&mut journal),
    )
    .unwrap();
    drop(journal);

    // The first window was quarantined and superseded by linked re-runs.
    assert_eq!(result.records.len(), 4);
    assert_eq!(result.records[0].name, "lossy/exp00000/rerun1");
    assert_eq!(result.records[0].parent.as_deref(), Some("lossy/exp00000"));
    assert_eq!(result.records[1].name, "lossy/exp00001/rerun1");
    assert_eq!(result.records[1].parent.as_deref(), Some("lossy/exp00001"));
    assert_eq!(result.records[2].name, "lossy/exp00002");
    assert_eq!(result.records[3].name, "lossy/exp00003");
    assert!(result.records.iter().all(|r| r.validity == Validity::Valid));
    assert_eq!(result.quarantined.len(), 2);
    assert!(result
        .quarantined
        .iter()
        .all(|r| r.validity == Validity::Invalid));
    assert_eq!(result.quarantined[0].name, "lossy/exp00000");
    assert_eq!(monitor.snapshot().quarantined, 2);

    // The reruns ran on a clean link, so apart from name/parent they must
    // equal what the quarantined originals measured on the clean link too.
    for (rerun, original) in result.records.iter().zip(&result.quarantined) {
        assert_eq!(rerun.termination, original.termination);
        assert_eq!(rerun.state, original.state);
        assert_eq!(rerun.fault, original.fault);
    }

    // Journal: the quarantine marks and reruns are durable; the invalid
    // originals stay available for import.
    let state = ExperimentJournal::load(&journal_path, "lossy").unwrap();
    assert_eq!(state.completed.len(), 4);
    assert_eq!(state.completed[&0].name, "lossy/exp00000/rerun1");
    assert!(state.failed.is_empty());
    assert_eq!(state.quarantined.len(), 2);

    // Database: originals logged as invalid, reruns linked via
    // parentExperiment — and the analysis layer sees only valid records.
    let mut db = Database::new();
    dbio::init_schema(&mut db).unwrap();
    dbio::store_campaign(&mut db, &c).unwrap();
    let imported = dbio::import_journal(&mut db, &journal_path, "lossy").unwrap();
    assert_eq!(imported, 7); // reference + 4 valid records + 2 quarantined
    let original = dbio::load_experiment(&db, "lossy/exp00000").unwrap();
    assert_eq!(original.validity, Validity::Invalid);
    let rerun = dbio::load_experiment(&db, "lossy/exp00000/rerun1").unwrap();
    assert_eq!(rerun.validity, Validity::Valid);
    assert_eq!(rerun.parent.as_deref(), Some("lossy/exp00000"));
    std::fs::remove_file(&journal_path).unwrap();
}

#[test]
fn interrupted_quarantine_is_finished_by_resume() {
    // Run the drifting campaign, then truncate the journal right after the
    // two quarantine marks (simulating a crash mid-revalidation): resume
    // must re-run the quarantined experiments as linked reruns.
    let c = campaign_n(4, ExperimentPolicy::default().with_revalidation(2));
    let mut target = LabTarget::drifting(200, 4..5, Arc::new(AtomicU64::new(0)));
    let journal_path = temp_path("crashed-quarantine.gjl");
    let _ = std::fs::remove_file(&journal_path);
    let mut journal = ExperimentJournal::create(&journal_path, "lossy").unwrap();
    algorithms::run_campaign_journaled(
        &mut target,
        &c,
        &ProgressMonitor::new(4),
        &mut envsim::NullEnvironment,
        Some(&mut journal),
    )
    .unwrap();
    drop(journal);

    // Keep header, campaign line, reference, exp0, exp1, and both invalid
    // re-journalings — drop the reruns and the rest of the campaign.
    let text = std::fs::read_to_string(&journal_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let crashed = temp_path("crashed-quarantine-cut.gjl");
    std::fs::write(&crashed, format!("{}\n", lines[..7].join("\n"))).unwrap();

    let resumed = runner::resume_campaign(
        || LabTarget::new(200),
        None::<fn() -> Box<dyn envsim::Environment>>,
        &c,
        &ProgressMonitor::new(4),
        2,
        &crashed,
    )
    .unwrap();
    assert_eq!(resumed.records.len(), 4);
    assert_eq!(resumed.records[0].name, "lossy/exp00000/rerun1");
    assert_eq!(resumed.records[0].parent.as_deref(), Some("lossy/exp00000"));
    assert_eq!(resumed.records[1].name, "lossy/exp00001/rerun1");
    assert!(resumed.failures.is_empty());
    std::fs::remove_file(&journal_path).unwrap();
    std::fs::remove_file(&crashed).unwrap();
}

#[test]
fn parallel_runner_quarantines_on_end_of_run_drift() {
    // The drift begins after all experiments completed, so the end-of-run
    // golden check sees it and quarantines everything completed this run.
    let c = campaign_n(4, ExperimentPolicy::default().with_revalidation(1));
    let loads = Arc::new(AtomicU64::new(0));
    let make_loads = loads.clone();
    let monitor = ProgressMonitor::new(4);
    let result = runner::run_campaign_parallel(
        move || LabTarget::drifting(200, 6..u64::MAX, make_loads.clone()),
        None::<fn() -> Box<dyn envsim::Environment>>,
        &c,
        &monitor,
        2,
    )
    .unwrap();
    assert_eq!(result.records.len(), 4);
    assert_eq!(result.quarantined.len(), 4);
    for (i, record) in result.records.iter().enumerate() {
        assert_eq!(record.name, format!("lossy/exp{i:05}/rerun1"));
        assert_eq!(
            record.parent.as_deref(),
            Some(format!("lossy/exp{i:05}")).as_deref()
        );
        assert_eq!(record.validity, Validity::Valid);
    }
    assert!(result
        .quarantined
        .iter()
        .all(|r| r.validity == Validity::Invalid));
    assert_eq!(monitor.snapshot().quarantined, 4);
}

#[test]
fn unrecovered_link_fault_is_a_policy_visible_failure() {
    // A permanently dead link: the verified target escalates to
    // GoofiError::LinkFault and the skip policy records the failure
    // instead of aborting the campaign.
    let c = campaign_n(2, ExperimentPolicy::skip_and_continue());
    let monitor = ProgressMonitor::new(2);
    let lossy = UnreliableTarget::new(
        LabTarget::new(200),
        LinkFaultConfig {
            seed: 9,
            disconnect_rate: 1.0,
            // The reference run needs a working link (it consumes exactly
            // four transport ops on this target); every transaction after
            // it is dead.
            skip_ops: 4,
            ..Default::default()
        },
    );
    let mut verified = VerifiedTarget::with_config(lossy, VerifyConfig { max_attempts: 2 })
        .with_monitor(monitor.clone());
    let result =
        algorithms::run_campaign(&mut verified, &c, &monitor, &mut envsim::NullEnvironment);
    match result {
        Ok(r) => {
            assert!(
                !r.failures.is_empty(),
                "a dead link must surface as experiment failures"
            );
            assert!(r.failures[0].error.contains("link fault"));
        }
        Err(e) => panic!("skip policy must not abort the campaign: {e}"),
    }
    assert!(verified.stats().unrecovered > 0);
    assert!(monitor.snapshot().link_unrecovered > 0);
}
