//! Jepsen-style network torture harness for the campaign service.
//!
//! The GOOFI discipline applied to the service's own wire: every byte of
//! service I/O flows through the [`Transport`] seam, so a seeded
//! [`FaultNet`] can drop, duplicate, reorder, delay, truncate and corrupt
//! frames, reset connections mid-frame, go half-open, or refuse accepts —
//! at the N-th network operation of a real daemon/client/worker run.
//!
//! The oracle never changes: whatever the network does, a submitted
//! campaign must run to `done` and the merged database must be
//! essence-equal to a fault-free serial in-process run. A first
//! counting-mode pass learns how many network ops a clean run performs;
//! the walk then replays the campaign with a single deterministic fault
//! planted across that op range, for every fault kind.

use goofi_core::algorithms;
use goofi_core::campaign::{Campaign, OutputRegion, Termination, WorkloadImage};
use goofi_core::dbio;
use goofi_core::fault::{FaultLocation, FaultSpec};
use goofi_core::framework::SimTarget;
use goofi_core::logging::{ExperimentRecord, TerminationCause, Validity};
use goofi_core::monitor::ProgressMonitor;
use goofi_core::policy::Backoff;
use goofi_core::service::{
    self, serve, Client, FaultNet, JobState, NetFaultConfig, NetFaultKind, RealNet, Request,
    Response, Scheduler, ServiceConfig, Transport, WorkerCommand,
};
use goofi_core::trigger::Trigger;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Experiments per torture campaign — small, because the walk runs many
/// campaigns back to back.
const FAULTS: usize = 4;
const SHARDS: usize = 2;
/// Client-side acknowledgement deadline: short, so a lost frame costs a
/// quick retry instead of a production-sized timeout.
const ACK_TIMEOUT: Duration = Duration::from_millis(1500);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("goofi-netchaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sim_campaign(name: &str, faults: usize) -> Campaign {
    Campaign::builder(name)
        .workload(WorkloadImage {
            name: "sim-wl".into(),
            words: vec![60],
            code_words: 1,
            entry: 0,
        })
        .observe_chains(["internal"])
        .output(OutputRegion::Ports)
        .termination(Termination {
            max_instructions: 1_000,
            max_iterations: None,
        })
        .faults(
            (0..faults)
                .map(|i| {
                    FaultSpec::single(
                        FaultLocation::ScanCell {
                            chain: "internal".into(),
                            cell: "A".into(),
                            bit: i % 8,
                        },
                        Trigger::AfterInstructions(5 + i as u64),
                    )
                })
                .collect::<Vec<_>>(),
        )
        .build()
        .unwrap()
}

fn make_db(dir: &Path, campaign: &Campaign) -> PathBuf {
    let path = dir.join("campaigns.gdb");
    let mut db = goofidb::Database::new();
    dbio::init_schema(&mut db).unwrap();
    dbio::store_campaign(&mut db, campaign).unwrap();
    db.save_to_path(&path).unwrap();
    path
}

/// The serial in-process ground truth over the same simulated target.
fn serial_records(campaign: &Campaign) -> Vec<ExperimentRecord> {
    let mut target = SimTarget::new();
    let monitor = ProgressMonitor::new(campaign.experiment_count());
    algorithms::run_campaign(
        &mut target,
        campaign,
        &monitor,
        &mut envsim::NullEnvironment,
    )
    .unwrap()
    .records
}

fn essence(r: &ExperimentRecord) -> (Option<&FaultSpec>, &TerminationCause, String, Validity) {
    (
        r.fault.as_ref(),
        &r.termination,
        r.state.encode(),
        r.validity,
    )
}

fn mock_worker_cmd() -> WorkerCommand {
    WorkerCommand {
        program: PathBuf::from(env!("CARGO_BIN_EXE_goofi-mock-worker")),
        args: Vec::new(),
    }
}

fn config(db: &Path, workers: usize) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(db, mock_worker_cmd());
    cfg.default_workers = workers;
    cfg.lease = Duration::from_secs(2);
    cfg.backoff = Backoff::exponential(5, 50);
    cfg
}

fn assert_essence_equal(db_path: &Path, campaign: &str, want: &[ExperimentRecord], tag: &str) {
    let text = std::fs::read_to_string(db_path).unwrap();
    let db = goofidb::Database::load_from_string(&text).unwrap();
    let got = dbio::load_experiments(&db, campaign).unwrap();
    let by_name: BTreeMap<&str, &ExperimentRecord> =
        got.iter().map(|r| (r.name.as_str(), r)).collect();
    assert_eq!(
        got.len(),
        by_name.len(),
        "[{tag}] merged database must not hold duplicate experiments"
    );
    for record in want {
        let merged = by_name
            .get(record.name.as_str())
            .unwrap_or_else(|| panic!("[{tag}] experiment `{}` missing after merge", record.name));
        assert_eq!(
            essence(merged),
            essence(record),
            "[{tag}] experiment `{}` diverged from the serial run",
            record.name
        );
    }
}

/// A daemon serving over `transport`, stopped via the shared flag.
struct TestDaemon {
    addr: String,
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<goofi_core::Result<()>>,
}

fn start_daemon(
    transport: &dyn Transport,
    db: &Path,
    worker_net: Option<NetFaultConfig>,
) -> TestDaemon {
    let mut cfg = config(db, SHARDS);
    cfg.net_chaos = worker_net;
    let scheduler = Arc::new(Scheduler::new(cfg).unwrap());
    let listener = transport.listen("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let handle = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || serve(listener, scheduler, stop))
    };
    TestDaemon { addr, stop, handle }
}

impl TestDaemon {
    fn shutdown(self) {
        self.stop.store(true, Ordering::Release);
        self.handle.join().unwrap().unwrap();
    }
}

/// Runs one full campaign — submit, watch to the end, check the merged
/// database against the serial ground truth — with `transport_fault`
/// armed on the daemon/client wire and `worker_fault` armed on every
/// worker's event stream. Returns the number of network ops counted on
/// the daemon/client wire.
fn torture_run(
    tag: &str,
    transport_fault: NetFaultConfig,
    worker_fault: Option<NetFaultConfig>,
) -> u64 {
    let dir = temp_dir(tag);
    let name = format!("net-{tag}");
    let campaign = sim_campaign(&name, FAULTS);
    let db = make_db(&dir, &campaign);
    let want = serial_records(&campaign);

    let net = FaultNet::new(transport_fault);
    let injector = net.injector();
    let daemon = start_daemon(&net, &db, worker_fault);

    let request_id = format!("req-{tag}");
    let job = service::submit_job_with(&net, &daemon.addr, &request_id, &name, SHARDS, ACK_TIMEOUT)
        .unwrap_or_else(|e| panic!("[{tag}] submit failed: {e}"));
    let terminal = service::watch_to_end_with(&net, &daemon.addr, &job, 0, ACK_TIMEOUT, |_| {})
        .unwrap_or_else(|e| panic!("[{tag}] watch failed: {e}"));
    match &terminal {
        Response::Progress { state, detail, .. } => {
            assert_eq!(state, "done", "[{tag}] job failed: {detail}");
        }
        other => panic!("[{tag}] terminal frame is not progress: {other:?}"),
    }
    assert_essence_equal(&db, &name, &want, tag);

    // The one-shot status listing rides the same retry machinery and
    // must survive whatever the walk throws at its network ops too.
    let rows = service::job_list_with(&net, &daemon.addr, ACK_TIMEOUT)
        .unwrap_or_else(|e| panic!("[{tag}] status failed: {e}"));
    assert!(
        rows.iter()
            .any(|(j, state, c)| *j == job && state == "done" && *c == name),
        "[{tag}] listing must show the finished job: {rows:?}"
    );

    daemon.shutdown();
    let ops = injector.ops();
    let _ = std::fs::remove_dir_all(&dir);
    ops
}

/// Up to `points` op indices spread across `1..=ops`, ends included.
fn spread(ops: u64, points: u64) -> Vec<u64> {
    let mut out = Vec::new();
    for i in 0..points {
        let at = 1 + i * ops.saturating_sub(1) / (points - 1).max(1);
        if !out.contains(&at) {
            out.push(at);
        }
    }
    out
}

/// The tentpole walk: learn a clean run's op count, then replay the
/// campaign with every fault kind planted across that op range. Every
/// single run must still converge to the serial essence.
#[test]
fn transport_faults_at_walked_ops_leave_campaigns_essence_equal() {
    let ops = torture_run("count", NetFaultConfig::counting(), None);
    assert!(
        ops >= 8,
        "suspiciously few network ops in a clean run: {ops}"
    );
    for kind in NetFaultKind::ALL {
        for at in spread(ops, 3) {
            let tag = format!("{}-{at}", kind.encode());
            torture_run(&tag, NetFaultConfig::plan(at, kind, 40 + at), None);
        }
    }
}

/// The same walk, aimed at the worker→daemon event stream: each worker
/// process perturbs its own framed stdout. The journal, not the event
/// stream, is the ground truth for shard completion, so a mangled stream
/// must never change the merged database.
#[test]
fn worker_event_stream_faults_leave_campaigns_essence_equal() {
    let kinds = [
        NetFaultKind::Drop,
        NetFaultKind::Dup,
        NetFaultKind::Reorder,
        NetFaultKind::Corrupt,
        NetFaultKind::Truncate,
        NetFaultKind::HalfOpen,
    ];
    for kind in kinds {
        for at in [1, 3] {
            let tag = format!("wrk-{}-{at}", kind.encode());
            torture_run(
                &tag,
                NetFaultConfig::counting(),
                Some(NetFaultConfig::plan(at, kind, 9 + at)),
            );
        }
    }
}

/// Standing rate-mode chaos on every seam at once — the `--net-chaos
/// drop=0.05,seed=7`-style drill — still converges.
#[test]
fn rate_mode_chaos_on_every_seam_still_converges() {
    let transport = NetFaultConfig::decode(
        "drop=0.02,dup=0.02,reorder=0.02,corrupt=0.02,delay=0.02,seed=29,delay-ms=5",
    )
    .unwrap();
    let worker = NetFaultConfig::decode("drop=0.05,corrupt=0.05,seed=31").unwrap();
    torture_run("rate", transport, Some(worker));
}

/// `--status` and `--shutdown` are one-shot requests, but they ride the
/// same retry machinery as submits: under rate chaos the listing still
/// arrives intact and the shutdown is still acknowledged.
#[test]
fn status_and_shutdown_ride_out_rate_chaos() {
    let dir = temp_dir("statuschaos");
    let campaign = sim_campaign("net-status", FAULTS);
    let db = make_db(&dir, &campaign);
    let want = serial_records(&campaign);
    // Damage-only kinds (no drop/delay): every fault is answered or
    // detected immediately, so retries fire without read-timeout stalls.
    let net = FaultNet::new(
        NetFaultConfig::decode("dup=0.05,corrupt=0.05,reorder=0.05,seed=43").unwrap(),
    );
    let daemon = start_daemon(&net, &db, None);

    assert!(
        service::job_list_with(&net, &daemon.addr, ACK_TIMEOUT)
            .unwrap()
            .is_empty(),
        "no jobs before the first submit"
    );
    let job = service::submit_job_with(
        &net,
        &daemon.addr,
        "req-status",
        "net-status",
        SHARDS,
        ACK_TIMEOUT,
    )
    .unwrap();
    service::watch_to_end_with(&net, &daemon.addr, &job, 0, ACK_TIMEOUT, |_| {}).unwrap();
    let rows = service::job_list_with(&net, &daemon.addr, ACK_TIMEOUT).unwrap();
    assert!(
        rows.iter()
            .any(|(j, state, c)| *j == job && state == "done" && c == "net-status"),
        "listing must show the finished job: {rows:?}"
    );
    assert_essence_equal(&db, "net-status", &want, "statuschaos");

    service::request_shutdown_with(&net, &daemon.addr, ACK_TIMEOUT).unwrap();
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A `--watch` client killed mid-stream reconnects with `after` set to
/// the last sequence number it acknowledged and sees every later update
/// exactly once: no duplicates, no gaps, one terminal frame.
#[test]
fn killed_watch_client_resumes_from_last_acked_seq_without_dups_or_gaps() {
    let dir = temp_dir("resume");
    let campaign = sim_campaign("net-resume", 12);
    let db = make_db(&dir, &campaign);
    let want = serial_records(&campaign);
    let daemon = start_daemon(&RealNet, &db, None);

    let job = service::submit_job_with(
        &RealNet,
        &daemon.addr,
        "req-resume",
        "net-resume",
        SHARDS,
        ACK_TIMEOUT,
    )
    .unwrap();

    // Phase 1: watch from the start, ack a few frames, then die without
    // so much as a goodbye — the connection is dropped mid-stream.
    let mut phase1: Vec<u64> = Vec::new();
    {
        let mut client = Client::connect(&daemon.addr).unwrap();
        client.set_read_timeout(Duration::from_secs(5));
        client
            .send(&Request::Watch {
                job: job.clone(),
                after: 0,
            })
            .unwrap();
        let mut last = 0u64;
        while phase1.len() < 2 {
            match client.recv().unwrap() {
                Some(Response::Progress { seq, state, .. }) => {
                    if seq <= last {
                        continue;
                    }
                    last = seq;
                    phase1.push(seq);
                    if state == "done" || state == "failed" {
                        break;
                    }
                }
                other => panic!("unexpected mid-watch response: {other:?}"),
            }
        }
    }
    let resume_after = *phase1.last().unwrap();

    // Phase 2: a fresh session resumes from the last-acked seq.
    let mut phase2: Vec<u64> = Vec::new();
    let terminal = service::watch_to_end_with(
        &RealNet,
        &daemon.addr,
        &job,
        resume_after,
        Duration::from_secs(5),
        |response| {
            if let Response::Progress { seq, .. } = response {
                phase2.push(*seq);
            }
        },
    )
    .unwrap();
    match &terminal {
        Response::Progress { state, detail, .. } => {
            assert_eq!(state, "done", "job failed: {detail}");
        }
        other => panic!("terminal frame is not progress: {other:?}"),
    }

    // The union of both sessions is exactly the job's update history:
    // strictly increasing from the first update, no seam artifacts.
    let mut all = phase1;
    all.extend(&phase2);
    let last = *all.last().unwrap();
    assert_eq!(
        all,
        (all[0]..=last).collect::<Vec<u64>>(),
        "resumed stream must replay exactly the missed updates"
    );
    assert!(
        phase2.iter().all(|&seq| seq > resume_after),
        "resume must not repeat acknowledged frames: {phase2:?}"
    );

    assert_essence_equal(&db, "net-resume", &want, "resume");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Retrying a submit with the same request id never double-submits; a
/// fresh id does.
#[test]
fn duplicate_submits_with_one_request_id_yield_one_job() {
    let dir = temp_dir("dedup");
    let campaign = sim_campaign("net-dedup", FAULTS);
    let db = make_db(&dir, &campaign);
    let daemon = start_daemon(&RealNet, &db, None);

    let first = service::submit_job_with(
        &RealNet,
        &daemon.addr,
        "req-dedup",
        "net-dedup",
        SHARDS,
        ACK_TIMEOUT,
    )
    .unwrap();
    let replay = service::submit_job_with(
        &RealNet,
        &daemon.addr,
        "req-dedup",
        "net-dedup",
        SHARDS,
        ACK_TIMEOUT,
    )
    .unwrap();
    assert_eq!(first, replay, "one request id, one job");
    let terminal = service::watch_to_end(&RealNet, &daemon.addr, &first, |_| {}).unwrap();
    assert!(matches!(
        &terminal,
        Response::Progress { state, .. } if state == "done"
    ));

    // Dedup holds after completion, and a fresh id is a fresh job.
    let after_done = service::submit_job_with(
        &RealNet,
        &daemon.addr,
        "req-dedup",
        "net-dedup",
        SHARDS,
        ACK_TIMEOUT,
    )
    .unwrap();
    assert_eq!(first, after_done);
    let fresh = service::submit_job_with(
        &RealNet,
        &daemon.addr,
        "req-dedup-2",
        "net-dedup",
        SHARDS,
        ACK_TIMEOUT,
    )
    .unwrap();
    assert_ne!(first, fresh, "a fresh request id must submit a fresh job");

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Request-id dedup is spooled with the manifest, so a daemon restart
/// still recognises a retried submit.
#[test]
fn request_dedup_survives_daemon_restart() {
    let dir = temp_dir("dedup-restart");
    let campaign = sim_campaign("net-dedup-restart", FAULTS);
    let db = make_db(&dir, &campaign);

    let scheduler = Scheduler::new(config(&db, SHARDS)).unwrap();
    let job = scheduler
        .submit_request(Some("req-persist"), "net-dedup-restart", SHARDS)
        .unwrap();
    let progress = scheduler.watch(&job).unwrap().wait();
    assert_eq!(progress.state, JobState::Done, "{}", progress.detail);
    scheduler.shutdown();

    let restarted = Scheduler::new(config(&db, SHARDS)).unwrap();
    restarted.recover().unwrap();
    let replay = restarted
        .submit_request(Some("req-persist"), "net-dedup-restart", SHARDS)
        .unwrap();
    assert_eq!(replay, job, "dedup must survive a daemon restart");
    restarted.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Version negotiation: a too-old client gets a typed refusal naming the
/// supported range, a newer client is negotiated down, and a connection
/// that skips the hello is told so.
#[test]
fn protocol_version_negotiation_refuses_old_and_caps_new() {
    let dir = temp_dir("version");
    let campaign = sim_campaign("net-version", 2);
    let db = make_db(&dir, &campaign);
    let daemon = start_daemon(&RealNet, &db, None);
    let connect = |daemon: &TestDaemon| {
        let mut conn = RealNet
            .connect(&daemon.addr, Duration::from_secs(2))
            .unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn
    };
    let recv_response =
        |conn: &mut Box<dyn goofi_core::service::net::Conn>| match conn.recv().unwrap() {
            goofi_core::service::net::FrameRead::Frame(line) => Response::decode(&line).unwrap(),
            other => panic!("expected a frame, got {other:?}"),
        };

    // Below the floor: refused by name.
    let mut old = connect(&daemon);
    old.send(&Request::Hello { version: 1 }.encode()).unwrap();
    match recv_response(&mut old) {
        Response::Error { detail } => assert!(
            detail.contains("unsupported protocol version 1"),
            "unexpected refusal: {detail}"
        ),
        other => panic!("expected refusal, got {other:?}"),
    }

    // Above ours: negotiated down to what the daemon speaks.
    let mut new = connect(&daemon);
    new.send(&Request::Hello { version: 99 }.encode()).unwrap();
    match recv_response(&mut new) {
        Response::Hello { version } => assert!(
            version < 99,
            "daemon must negotiate down from a futuristic client"
        ),
        other => panic!("expected hello, got {other:?}"),
    }

    // No hello at all: told to handshake first.
    let mut rude = connect(&daemon);
    rude.send(&Request::Status.encode()).unwrap();
    match recv_response(&mut rude) {
        Response::Error { detail } => assert!(
            detail.contains("expected hello"),
            "unexpected error: {detail}"
        ),
        other => panic!("expected error, got {other:?}"),
    }

    // The blessed path reports the negotiated version.
    let client = Client::connect(&daemon.addr).unwrap();
    assert!(client.negotiated_version() >= 2);

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Garbage on an established connection draws typed errors while the
/// frame codec stays in sync: the next well-formed request still works.
#[test]
fn damaged_frames_get_typed_errors_and_the_stream_stays_in_sync() {
    let dir = temp_dir("desync");
    let campaign = sim_campaign("net-desync", 2);
    let db = make_db(&dir, &campaign);
    let daemon = start_daemon(&RealNet, &db, None);

    let mut client = Client::connect(&daemon.addr).unwrap();
    client.send_raw("complete garbage, not a frame\n").unwrap();
    match client.recv().unwrap() {
        Some(Response::Error { detail }) => assert!(
            detail.contains("bad frame"),
            "unexpected error detail: {detail}"
        ),
        other => panic!("expected typed error, got {other:?}"),
    }

    // Still in sync: a status request on the same connection answers.
    client.send(&Request::Status).unwrap();
    loop {
        match client.recv().unwrap() {
            Some(Response::Listing { .. }) | Some(Response::Job { .. }) => continue,
            Some(Response::End) => break,
            other => panic!("unexpected status response: {other:?}"),
        }
    }

    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A half-open peer — accepts the TCP connection, then says nothing —
/// is flushed out by the heartbeat deadline as a clean wire error, not a
/// hang.
#[test]
fn half_open_daemon_is_flushed_out_as_a_clean_timeout() {
    // A bound listener that never accepts: the kernel completes the TCP
    // handshake, then the daemon-shaped hole stays silent forever.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let Err(err) = Client::connect_via(&RealNet, &addr, 1) else {
        panic!("connecting to a silent peer must not succeed");
    };
    let message = err.to_string();
    assert!(
        message.contains("timed out") || message.contains("gave up"),
        "half-open peer must surface as a timeout, got: {message}"
    );
    drop(listener);
}
