//! Property-based tests for framework data types and their database
//! encodings.

use goofi_core::campaign::{OutputRegion, Technique, WorkloadImage};
use goofi_core::fault::{FaultLocation, FaultModel, FaultSpec};
use goofi_core::logging::{StateSnapshot, TerminationCause};
use goofi_core::supervisor::{RecoveryStage, RecoveryTrigger};
use goofi_core::telemetry::{HistogramSnapshot, Metric, SpanKind, SpanRecord, Stage, Telemetry};
use goofi_core::trigger::Trigger;
use goofi_core::DetectionInfo;
use proptest::prelude::*;
use scanchain::{RecoveryDepth, WedgeConfig, WedgeModel};

fn arb_trigger() -> impl Strategy<Value = Trigger> {
    prop_oneof![
        Just(Trigger::PreRuntime),
        any::<u32>().prop_map(Trigger::Breakpoint),
        any::<u64>().prop_map(Trigger::AfterInstructions),
        any::<u32>().prop_map(Trigger::DataAccess),
        any::<u32>().prop_map(Trigger::DataWrite),
        Just(Trigger::BranchExecuted),
        Just(Trigger::CallExecuted),
        any::<u64>().prop_map(Trigger::AfterCycles),
    ]
}

fn arb_location() -> impl Strategy<Value = FaultLocation> {
    prop_oneof![
        ("[a-z]{1,8}", "[A-Z][A-Z0-9.]{0,8}", 0usize..64)
            .prop_map(|(chain, cell, bit)| { FaultLocation::ScanCell { chain, cell, bit } }),
        (any::<u32>(), 0u8..32).prop_map(|(addr, bit)| FaultLocation::Memory { addr, bit }),
    ]
}

fn arb_model() -> impl Strategy<Value = FaultModel> {
    prop_oneof![
        Just(FaultModel::TransientBitFlip),
        Just(FaultModel::StuckAtZero),
        Just(FaultModel::StuckAtOne),
        (1u64..10_000, 1u32..100)
            .prop_map(|(period, bursts)| FaultModel::Intermittent { period, bursts }),
    ]
}

fn arb_spec() -> impl Strategy<Value = FaultSpec> {
    (
        proptest::collection::vec(arb_location(), 1..4),
        arb_model(),
        arb_trigger(),
    )
        .prop_map(|(locations, model, trigger)| FaultSpec {
            locations,
            model,
            trigger,
        })
}

fn arb_termination() -> impl Strategy<Value = TerminationCause> {
    prop_oneof![
        Just(TerminationCause::WorkloadEnd),
        Just(TerminationCause::Timeout),
        Just(TerminationCause::IterationLimit),
        Just(TerminationCause::TargetHang),
        ("[a-z_]{1,16}", any::<u32>()).prop_map(|(mechanism, code)| {
            TerminationCause::Detected(DetectionInfo { mechanism, code })
        }),
    ]
}

fn arb_recovery_depth() -> impl Strategy<Value = RecoveryDepth> {
    prop_oneof![
        Just(RecoveryDepth::SoftReset),
        Just(RecoveryDepth::Reinit),
        Just(RecoveryDepth::PowerCycle),
        Just(RecoveryDepth::Never),
    ]
}

/// Latency samples small enough that `sum_us` cannot overflow even when
/// several strategies' worth are merged into one histogram.
fn arb_latencies() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..(1 << 40), 0..64)
}

fn histogram_of(values: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::default();
    for &v in values {
        h.record(v);
    }
    h
}

fn arb_span_kind() -> impl Strategy<Value = SpanKind> {
    prop_oneof![
        Just(SpanKind::Campaign),
        Just(SpanKind::Experiment),
        Just(SpanKind::Event),
        (0usize..Stage::ALL.len()).prop_map(|i| SpanKind::Stage(Stage::ALL[i])),
    ]
}

fn arb_wedge_config() -> impl Strategy<Value = WedgeConfig> {
    (
        any::<u64>(),
        0.0..0.33f64,
        0.0..0.33f64,
        0.0..0.33f64,
        proptest::option::of(0u32..10),
        arb_recovery_depth(),
    )
        .prop_map(
            |(seed, hang_rate, stuck_tap_rate, garbage_rate, max_events, recovery)| WedgeConfig {
                seed,
                hang_rate,
                stuck_tap_rate,
                garbage_rate,
                max_events,
                recovery,
            },
        )
}

proptest! {
    #[test]
    fn trigger_roundtrip(t in arb_trigger()) {
        prop_assert_eq!(Trigger::decode(&t.encode()), Some(t));
    }

    #[test]
    fn location_roundtrip(l in arb_location()) {
        prop_assert_eq!(FaultLocation::decode(&l.encode()), Some(l));
    }

    #[test]
    fn model_roundtrip(m in arb_model()) {
        prop_assert_eq!(FaultModel::decode(&m.encode()), Some(m));
    }

    #[test]
    fn spec_roundtrip(s in arb_spec()) {
        prop_assert_eq!(FaultSpec::decode(&s.encode()), Some(s));
    }

    #[test]
    fn termination_roundtrip(t in arb_termination()) {
        prop_assert_eq!(TerminationCause::decode(&t.encode()), Some(t));
    }

    #[test]
    fn workload_words_roundtrip(words in proptest::collection::vec(any::<u32>(), 0..100)) {
        let img = WorkloadImage {
            name: "w".into(),
            words: words.clone(),
            code_words: 0,
            entry: 0,
        };
        prop_assert_eq!(WorkloadImage::decode_words(&img.encode_words()), Some(words));
    }

    #[test]
    fn output_region_roundtrip(addr: u32, len: u32, ports: bool) {
        let o = if ports {
            OutputRegion::Ports
        } else {
            OutputRegion::Memory { addr, len }
        };
        prop_assert_eq!(OutputRegion::decode(&o.encode()), Some(o));
    }

    #[test]
    fn technique_roundtrip(i in 0usize..4) {
        let t = [
            Technique::Scifi,
            Technique::SwifiPreRuntime,
            Technique::SwifiRuntime,
            Technique::PinLevel,
        ][i];
        prop_assert_eq!(Technique::decode(t.encode()), Some(t));
    }

    #[test]
    fn snapshot_roundtrip(
        chains in proptest::collection::btree_map("[a-z]{1,8}", "[01]{0,64}", 0..4),
        digest: u64,
        outputs in proptest::collection::vec(any::<u32>(), 0..8),
        iterations: u64,
        instructions: u64,
        cycles: u64,
    ) {
        let snap = StateSnapshot {
            scan: chains,
            memory_digest: digest,
            outputs,
            iterations,
            instructions,
            cycles,
        };
        prop_assert_eq!(StateSnapshot::decode(&snap.encode()), Some(snap));
    }

    #[test]
    fn wedge_config_roundtrip(cfg in arb_wedge_config()) {
        prop_assert_eq!(WedgeConfig::decode(&cfg.encode()), Some(cfg));
    }

    #[test]
    fn recovery_depth_roundtrip(d in arb_recovery_depth()) {
        prop_assert_eq!(RecoveryDepth::decode(d.encode()), Some(d));
    }

    #[test]
    fn recovery_stage_roundtrip(i in 0usize..4) {
        let s = [
            RecoveryStage::SoftReset,
            RecoveryStage::ReinitTestCard,
            RecoveryStage::PowerCycle,
            RecoveryStage::Offline,
        ][i];
        prop_assert_eq!(RecoveryStage::decode(s.encode()), Some(s));
    }

    #[test]
    fn recovery_trigger_roundtrip(hang: bool) {
        let t = if hang {
            RecoveryTrigger::TargetHang
        } else {
            RecoveryTrigger::ProbeFailure
        };
        prop_assert_eq!(RecoveryTrigger::decode(t.encode()), Some(t));
    }

    /// The whole wedge schedule — which operations wedge, into which kind —
    /// is a pure function of the configuration.
    #[test]
    fn wedge_schedule_is_seed_deterministic(cfg in arb_wedge_config(), ops in 1usize..200) {
        let mut a = WedgeModel::new(cfg);
        let mut b = WedgeModel::new(cfg);
        for _ in 0..ops {
            prop_assert_eq!(a.advance(), b.advance());
        }
        prop_assert_eq!(a.counts(), b.counts());
        prop_assert_eq!(a.wedged(), b.wedged());
        if let Some(max) = cfg.max_events {
            prop_assert!(a.counts().total() <= max);
        }
    }

    /// A wedge clears exactly when the recovery action reaches the
    /// configured depth (and `Never` wedges never clear).
    #[test]
    fn wedge_recovery_respects_configured_depth(
        cfg in arb_wedge_config(),
        ops in 1usize..200,
        action in arb_recovery_depth(),
    ) {
        let mut model = WedgeModel::new(cfg);
        for _ in 0..ops {
            model.advance();
            if model.wedged().is_some() {
                break;
            }
        }
        let was_wedged = model.wedged().is_some();
        let cleared = model.recover(action);
        let should_clear =
            was_wedged && cfg.recovery != RecoveryDepth::Never && action >= cfg.recovery;
        prop_assert_eq!(cleared, should_clear);
        prop_assert_eq!(model.wedged().is_some(), was_wedged && !should_clear);
    }

    /// Garbage scan captures are seeded: same model state, same garbage.
    #[test]
    fn wedge_garbage_is_deterministic(seed: u64, len in 0usize..256) {
        let cfg = WedgeConfig { seed, garbage_rate: 1.0, ..WedgeConfig::default() };
        let mut a = WedgeModel::new(cfg);
        let mut b = WedgeModel::new(cfg);
        prop_assert_eq!(a.advance(), b.advance());
        prop_assert_eq!(a.garbage_bits(len), b.garbage_bits(len));
    }

    #[test]
    fn fault_space_samples_stay_in_bounds(
        n in 1usize..50,
        seed: u64,
        mem_start in 0u32..1000,
        mem_len in 1u32..1000,
        t_end in 1u64..100_000,
    ) {
        use goofi_core::fault::FaultSpace;
        use rand::SeedableRng;
        let space = FaultSpace {
            scan_cells: vec![("internal".into(), "R1".into(), 32)],
            memory: Some(mem_start..mem_start + mem_len),
            time_window: 0..t_end,
        };
        let specs = space.sample_campaign(n, &mut rand::rngs::StdRng::seed_from_u64(seed));
        prop_assert_eq!(specs.len(), n);
        for s in specs {
            match &s.locations[0] {
                FaultLocation::ScanCell { cell, bit, .. } => {
                    prop_assert_eq!(cell.as_str(), "R1");
                    prop_assert!(*bit < 32);
                }
                FaultLocation::Memory { addr, bit } => {
                    prop_assert!((mem_start..mem_start + mem_len).contains(addr));
                    prop_assert!(*bit < 32);
                }
            }
            match s.trigger {
                Trigger::AfterInstructions(t) => prop_assert!(t < t_end),
                other => prop_assert!(false, "unexpected trigger {other:?}"),
            }
        }
    }

    /// Merging shard histograms is associative and commutative, and equals
    /// recording every sample into a single histogram — so per-worker
    /// histograms can be combined in any order.
    #[test]
    fn histogram_merge_is_order_independent(
        a in arb_latencies(),
        b in arb_latencies(),
        c in arb_latencies(),
    ) {
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));
        prop_assert_eq!(ha.merge(&hb), hb.merge(&ha));
        prop_assert_eq!(ha.merge(&hb).merge(&hc), ha.merge(&hb.merge(&hc)));
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(ha.merge(&hb).merge(&hc), histogram_of(&all));
    }

    /// Counter and histogram aggregation through a shared telemetry handle
    /// is independent of how the work is split across worker threads.
    #[test]
    fn metric_aggregation_parallel_equals_serial(
        ops in proptest::collection::vec(
            (
                0usize..Metric::ALL.len(),
                0u64..1_000,
                0usize..Stage::ALL.len(),
                0u64..(1 << 20),
            ),
            0..64,
        ),
        workers in 1usize..8,
    ) {
        let serial = Telemetry::enabled();
        for (m, n, s, us) in &ops {
            serial.count(Metric::ALL[*m], *n);
            serial.record_stage(Stage::ALL[*s], *us);
        }
        let parallel = Telemetry::enabled();
        let chunk = ops.len().div_ceil(workers).max(1);
        std::thread::scope(|scope| {
            for ops in ops.chunks(chunk) {
                let tel = parallel.clone();
                scope.spawn(move || {
                    for (m, n, s, us) in ops {
                        tel.count(Metric::ALL[*m], *n);
                        tel.record_stage(Stage::ALL[*s], *us);
                    }
                });
            }
        });
        prop_assert_eq!(parallel.metrics(), serial.metrics());
    }

    /// The hand-rolled JSON span codec round-trips arbitrary names and
    /// details (quotes, backslashes, control characters, unicode).
    #[test]
    fn span_record_roundtrip(
        id: u64,
        parent in proptest::option::of(any::<u64>()),
        kind in arb_span_kind(),
        name in ".{0,32}",
        start_us: u64,
        duration_us: u64,
        detail in ".{0,32}",
    ) {
        let record = SpanRecord { id, parent, kind, name, start_us, duration_us, detail };
        prop_assert_eq!(SpanRecord::decode(&record.encode()), Some(record));
    }
}
