//! Campaign resilience tests: retry/skip/abort policies, watchdog hang
//! detection, crash-safe journaling and resume with `parentExperiment`
//! re-runs — driven by a scripted target that can fail or hang on demand.

use goofi_core::algorithms::{self, CampaignResult};
use goofi_core::campaign::{Campaign, OutputRegion, Termination, WorkloadImage};
use goofi_core::fault::{FaultLocation, FaultModel, FaultSpec};
use goofi_core::journal::ExperimentJournal;
use goofi_core::logging::TerminationCause;
use goofi_core::monitor::ProgressMonitor;
use goofi_core::policy::{ExperimentPolicy, WatchdogBudget};
use goofi_core::preinject::StepAccess;
use goofi_core::trigger::Trigger;
use goofi_core::{dbio, runner};
use goofi_core::{GoofiError, RunBudget, RunEvent, TargetAccess};
use goofidb::Database;
use scanchain::{BitVec, CellAccess, ChainLayout};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;

/// A deterministic target whose experiments can be scripted to fail or
/// hang, keyed by the experiment's trigger time (each campaign fault gets
/// a distinct trigger, so the key identifies the experiment — and the
/// reference run, which sets no breakpoint, is never affected).
#[derive(Clone)]
struct FlakyTarget {
    layout: ChainLayout,
    chain: BitVec,
    memory: Vec<u32>,
    instructions: u64,
    cycles: u64,
    workload_len: u64,
    breakpoint: Option<u64>,
    current_trigger: Option<u64>,
    halted: bool,
    injected: bool,
    /// trigger time → how many more run_workload calls fail (pre-injection).
    fail_plan: HashMap<u64, u32>,
    /// trigger times whose post-injection run stalls while burning cycles.
    hang_cycles: HashSet<u64>,
    /// trigger times whose post-injection run stalls burning nothing but
    /// wall time.
    hang_wall: HashSet<u64>,
}

impl FlakyTarget {
    fn new(workload_len: u64) -> Self {
        let layout = ChainLayout::builder("internal")
            .cell("A", 8, CellAccess::ReadWrite)
            .cell("S", 4, CellAccess::ReadOnly)
            .build();
        FlakyTarget {
            chain: BitVec::zeros(layout.total_bits()),
            layout,
            memory: vec![0; 64],
            instructions: 0,
            cycles: 0,
            workload_len,
            breakpoint: None,
            current_trigger: None,
            halted: false,
            injected: false,
            fail_plan: HashMap::new(),
            hang_cycles: HashSet::new(),
            hang_wall: HashSet::new(),
        }
    }

    fn exec_one(&mut self) -> Option<RunEvent> {
        if self.halted {
            return Some(RunEvent::Halted);
        }
        if self.breakpoint == Some(self.instructions) {
            return Some(RunEvent::Breakpoint {
                at_instruction: self.instructions,
                at_cycle: self.cycles,
            });
        }
        self.instructions += 1;
        self.cycles += 1;
        if self.instructions >= self.workload_len {
            self.halted = true;
            return Some(RunEvent::Halted);
        }
        None
    }
}

impl TargetAccess for FlakyTarget {
    fn target_name(&self) -> &str {
        "flaky"
    }
    fn init_test_card(&mut self) -> goofi_core::Result<()> {
        Ok(())
    }
    fn load_workload(&mut self, _image: &WorkloadImage) -> goofi_core::Result<()> {
        self.instructions = 0;
        self.cycles = 0;
        self.halted = false;
        self.injected = false;
        self.breakpoint = None;
        self.current_trigger = None;
        self.chain = BitVec::zeros(self.layout.total_bits());
        Ok(())
    }
    fn reset_target(&mut self) -> goofi_core::Result<()> {
        Ok(())
    }
    fn write_memory(&mut self, addr: u32, data: &[u32]) -> goofi_core::Result<()> {
        for (i, w) in data.iter().enumerate() {
            self.memory[addr as usize + i] = *w;
        }
        Ok(())
    }
    fn read_memory(&mut self, addr: u32, len: usize) -> goofi_core::Result<Vec<u32>> {
        Ok(self.memory[addr as usize..addr as usize + len].to_vec())
    }
    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> goofi_core::Result<()> {
        self.memory[addr as usize] ^= 1 << bit;
        Ok(())
    }
    fn memory_size(&self) -> u32 {
        self.memory.len() as u32
    }
    fn set_breakpoint(&mut self, trigger: Trigger) -> goofi_core::Result<()> {
        match trigger {
            Trigger::AfterInstructions(n) => {
                self.breakpoint = Some(n);
                self.current_trigger = Some(n);
                Ok(())
            }
            other => Err(GoofiError::Config(format!(
                "flaky target only supports instruction-count triggers, got {other}"
            ))),
        }
    }
    fn clear_breakpoints(&mut self) -> goofi_core::Result<()> {
        self.breakpoint = None;
        Ok(())
    }
    fn run_workload(&mut self, budget: RunBudget) -> goofi_core::Result<RunEvent> {
        if let Some(t) = self.current_trigger {
            if !self.injected {
                if let Some(n) = self.fail_plan.get_mut(&t) {
                    if *n > 0 {
                        *n -= 1;
                        return Err(GoofiError::Target("flaky test card link".into()));
                    }
                }
            } else if self.hang_cycles.contains(&t) {
                // Stalled hardware: cycles tick, nothing retires.
                self.cycles += budget.max_instructions.max(1);
                return Ok(RunEvent::BudgetExhausted);
            } else if self.hang_wall.contains(&t) {
                // Dead link: nothing advances at all.
                return Ok(RunEvent::BudgetExhausted);
            }
        }
        for _ in 0..budget.max_instructions {
            if let Some(ev) = self.exec_one() {
                return Ok(ev);
            }
        }
        Ok(RunEvent::BudgetExhausted)
    }
    fn step_instruction(&mut self) -> goofi_core::Result<Option<RunEvent>> {
        Ok(self.exec_one())
    }
    fn chain_layouts(&self) -> Vec<ChainLayout> {
        vec![self.layout.clone()]
    }
    fn read_scan_chain(&mut self, chain: &str) -> goofi_core::Result<BitVec> {
        assert_eq!(chain, "internal");
        Ok(self.chain.clone())
    }
    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> goofi_core::Result<()> {
        assert_eq!(chain, "internal");
        self.chain = self.layout.masked_update(&self.chain, bits).unwrap();
        self.injected = true;
        Ok(())
    }
    fn write_input_ports(&mut self, _inputs: &[u32]) -> goofi_core::Result<()> {
        Ok(())
    }
    fn read_output_ports(&mut self) -> goofi_core::Result<Vec<u32>> {
        Ok(vec![self.instructions as u32])
    }
    fn instructions_executed(&self) -> u64 {
        self.instructions
    }
    fn cycles_executed(&self) -> u64 {
        self.cycles
    }
    fn iterations_completed(&self) -> u64 {
        0
    }
    fn step_traced(&mut self) -> goofi_core::Result<(Option<RunEvent>, StepAccess)> {
        let ev = self.exec_one();
        Ok((
            ev,
            StepAccess {
                reads: vec![],
                writes: vec!["internal:A".into()],
            },
        ))
    }
}

/// Experiment `i` triggers at instruction `10 * (i + 1)`.
fn trigger_of(index: usize) -> u64 {
    10 * (index as u64 + 1)
}

fn campaign_n(n: usize, policy: ExperimentPolicy) -> Campaign {
    let faults: Vec<FaultSpec> = (0..n)
        .map(|i| FaultSpec {
            locations: vec![FaultLocation::ScanCell {
                chain: "internal".into(),
                cell: "A".into(),
                bit: 2,
            }],
            model: FaultModel::TransientBitFlip,
            trigger: Trigger::AfterInstructions(trigger_of(i)),
        })
        .collect();
    Campaign::builder("mock")
        .workload(WorkloadImage {
            name: "mock-wl".into(),
            words: vec![0],
            code_words: 1,
            entry: 0,
        })
        .observe_chains(["internal"])
        .output(OutputRegion::Ports)
        .termination(Termination {
            max_instructions: 1_000_000,
            max_iterations: None,
        })
        .policy(policy)
        .faults(faults)
        .build()
        .unwrap()
}

fn run_serial(
    target: &mut FlakyTarget,
    c: &Campaign,
    monitor: &ProgressMonitor,
) -> goofi_core::Result<CampaignResult> {
    algorithms::run_campaign(target, c, monitor, &mut envsim::NullEnvironment)
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("goofi-resilience-{}-{name}", std::process::id()));
    p
}

#[test]
fn fail_fast_aborts_but_preserves_completed_records() {
    let mut target = FlakyTarget::new(200);
    target.fail_plan.insert(trigger_of(2), u32::MAX);
    let c = campaign_n(4, ExperimentPolicy::fail_fast());
    let err = run_serial(&mut target, &c, &ProgressMonitor::new(4)).unwrap_err();
    match err {
        GoofiError::ExperimentFailed { failure, partial } => {
            assert_eq!(failure.index, 2);
            assert_eq!(failure.name, "mock/exp00002");
            assert_eq!(failure.attempts, 1);
            assert_eq!(partial.records.len(), 2);
            assert_eq!(partial.records[0].name, "mock/exp00000");
            assert_eq!(partial.reference.termination, TerminationCause::WorkloadEnd);
        }
        other => panic!("expected ExperimentFailed, got {other:?}"),
    }
}

#[test]
fn skip_and_continue_records_failure_and_finishes() {
    let mut target = FlakyTarget::new(200);
    target.fail_plan.insert(trigger_of(2), u32::MAX);
    let c = campaign_n(4, ExperimentPolicy::skip_and_continue());
    let monitor = ProgressMonitor::new(4);
    let result = run_serial(&mut target, &c, &monitor).unwrap();
    assert_eq!(result.records.len(), 3);
    assert_eq!(result.failures.len(), 1);
    assert_eq!(result.failures[0].index, 2);
    assert!(result.failures[0].error.contains("flaky test card link"));
    let progress = monitor.snapshot();
    assert_eq!(progress.completed, 3);
    assert_eq!(progress.failed, 1);
    assert_eq!(progress.fraction(), 1.0);
}

#[test]
fn retry_then_skip_recovers_a_transient_failure() {
    let mut target = FlakyTarget::new(200);
    target.fail_plan.insert(trigger_of(1), 2); // fails twice, then works
    let c = campaign_n(4, ExperimentPolicy::retry_then_skip(3));
    let monitor = ProgressMonitor::new(4);
    let result = run_serial(&mut target, &c, &monitor).unwrap();
    assert_eq!(result.records.len(), 4);
    assert!(result.failures.is_empty());
    assert_eq!(result.records[1].name, "mock/exp00001");
    assert_eq!(monitor.snapshot().retried, 2);
}

#[test]
fn retry_then_fail_aborts_after_exhausting_retries() {
    let mut target = FlakyTarget::new(200);
    target.fail_plan.insert(trigger_of(1), u32::MAX);
    let c = campaign_n(3, ExperimentPolicy::retry_then_fail(2));
    let err = run_serial(&mut target, &c, &ProgressMonitor::new(3)).unwrap_err();
    match err {
        GoofiError::ExperimentFailed { failure, partial } => {
            assert_eq!(failure.index, 1);
            assert_eq!(failure.attempts, 3); // initial try + 2 retries
            assert_eq!(partial.records.len(), 1);
        }
        other => panic!("expected ExperimentFailed, got {other:?}"),
    }
}

#[test]
fn cycle_watchdog_classifies_a_hung_workload_as_timeout() {
    let mut target = FlakyTarget::new(200);
    target.hang_cycles.insert(trigger_of(1));
    let c = campaign_n(
        3,
        ExperimentPolicy::default().with_watchdog(WatchdogBudget {
            max_cycles: Some(5_000),
            max_wall_ms: None,
        }),
    );
    let result = run_serial(&mut target, &c, &ProgressMonitor::new(3)).unwrap();
    assert_eq!(result.reference.termination, TerminationCause::WorkloadEnd);
    assert_eq!(result.records[0].termination, TerminationCause::WorkloadEnd);
    assert_eq!(result.records[1].termination, TerminationCause::Timeout);
    assert_eq!(result.records[2].termination, TerminationCause::WorkloadEnd);
}

#[test]
fn wall_clock_watchdog_classifies_a_dead_target_as_timeout() {
    let mut target = FlakyTarget::new(200);
    target.hang_wall.insert(trigger_of(0));
    let c = campaign_n(
        2,
        ExperimentPolicy::default().with_watchdog(WatchdogBudget {
            max_cycles: None,
            max_wall_ms: Some(50),
        }),
    );
    let result = run_serial(&mut target, &c, &ProgressMonitor::new(2)).unwrap();
    assert_eq!(result.records[0].termination, TerminationCause::Timeout);
    assert_eq!(result.records[1].termination, TerminationCause::WorkloadEnd);
}

#[test]
fn parallel_runner_reports_lowest_index_failure_with_partials() {
    // Both experiment 0 and 1 fail, on different workers, at roughly the
    // same time: the reported failure must deterministically be index 0.
    let make_target = || {
        let mut t = FlakyTarget::new(200);
        t.fail_plan.insert(trigger_of(0), u32::MAX);
        t.fail_plan.insert(trigger_of(1), u32::MAX);
        t
    };
    let c = campaign_n(6, ExperimentPolicy::fail_fast());
    let err = runner::run_campaign_parallel(
        make_target,
        None::<fn() -> Box<dyn envsim::Environment>>,
        &c,
        &ProgressMonitor::new(6),
        2,
    )
    .unwrap_err();
    match err {
        GoofiError::ExperimentFailed { failure, partial } => {
            assert_eq!(failure.index, 0);
            assert!(partial
                .records
                .iter()
                .all(|r| r.name != "mock/exp00000" && r.name != "mock/exp00001"));
        }
        other => panic!("expected ExperimentFailed, got {other:?}"),
    }
}

#[test]
fn parallel_runner_skip_policy_matches_serial() {
    let make_target = || {
        let mut t = FlakyTarget::new(200);
        t.fail_plan.insert(trigger_of(3), u32::MAX);
        t
    };
    let c = campaign_n(6, ExperimentPolicy::skip_and_continue());
    let mut serial_target = make_target();
    let serial = run_serial(&mut serial_target, &c, &ProgressMonitor::new(6)).unwrap();
    let parallel = runner::run_campaign_parallel(
        make_target,
        None::<fn() -> Box<dyn envsim::Environment>>,
        &c,
        &ProgressMonitor::new(6),
        3,
    )
    .unwrap();
    assert_eq!(serial, parallel);
    assert_eq!(serial.failures.len(), 1);
    assert_eq!(serial.failures[0].index, 3);
}

#[test]
fn resume_reruns_failed_experiments_as_linked_children() {
    let journal = temp_path("rerun.gjl");
    let _ = std::fs::remove_file(&journal);
    let c = campaign_n(3, ExperimentPolicy::skip_and_continue());

    // First run: experiment 1 fails and is journaled as a failure.
    let mut flaky = FlakyTarget::new(200);
    flaky.fail_plan.insert(trigger_of(1), u32::MAX);
    let mut j = ExperimentJournal::create(&journal, "mock").unwrap();
    let first = algorithms::run_campaign_journaled(
        &mut flaky,
        &c,
        &ProgressMonitor::new(3),
        &mut envsim::NullEnvironment,
        Some(&mut j),
    )
    .unwrap();
    drop(j);
    assert_eq!(first.failures.len(), 1);

    // The flakiness is gone; resume re-runs experiment 1 as a child of
    // the original experiment (paper §2.3 parentExperiment linking).
    let resumed = runner::resume_campaign(
        || FlakyTarget::new(200),
        None::<fn() -> Box<dyn envsim::Environment>>,
        &c,
        &ProgressMonitor::new(3),
        2,
        &journal,
    )
    .unwrap();
    assert_eq!(resumed.records.len(), 3);
    assert!(resumed.failures.is_empty());
    assert_eq!(resumed.records[0], first.records[0]);
    assert_eq!(resumed.records[2], first.records[1]);
    let rerun = &resumed.records[1];
    assert_eq!(rerun.name, "mock/exp00001/rerun1");
    assert_eq!(rerun.parent.as_deref(), Some("mock/exp00001"));
    assert_eq!(rerun.termination, TerminationCause::WorkloadEnd);

    // The journal now supersedes the failure with the re-run record, and
    // the records import cleanly into the database under the child name.
    let state = ExperimentJournal::load(&journal, "mock").unwrap();
    assert!(state.failed.is_empty());
    assert_eq!(state.completed.len(), 3);
    let mut db = Database::new();
    dbio::init_schema(&mut db).unwrap();
    dbio::store_campaign(&mut db, &c).unwrap();
    let imported = dbio::import_journal(&mut db, &journal, "mock").unwrap();
    assert_eq!(imported, 4); // reference + 3 experiments
    let rerun_row = dbio::load_experiment(&db, "mock/exp00001/rerun1").unwrap();
    assert_eq!(rerun_row.parent.as_deref(), Some("mock/exp00001"));
    std::fs::remove_file(&journal).unwrap();
}

#[test]
fn resume_after_any_crash_point_reproduces_the_uninterrupted_run() {
    let journal = temp_path("crash.gjl");
    let _ = std::fs::remove_file(&journal);
    let c = campaign_n(6, ExperimentPolicy::default());

    // Uninterrupted journaled run — the ground truth.
    let mut target = FlakyTarget::new(200);
    let mut j = ExperimentJournal::create(&journal, "mock").unwrap();
    let full = algorithms::run_campaign_journaled(
        &mut target,
        &c,
        &ProgressMonitor::new(6),
        &mut envsim::NullEnvironment,
        Some(&mut j),
    )
    .unwrap();
    drop(j);
    let text = std::fs::read_to_string(&journal).unwrap();
    std::fs::remove_file(&journal).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2 + 1 + 6); // header, campaign, reference, experiments

    // Crash after every possible number of journaled lines (even before
    // the reference run), then resume: the result must be identical.
    for crash_after in 2..=lines.len() {
        let partial = temp_path(&format!("crash-{crash_after}.gjl"));
        std::fs::write(&partial, format!("{}\n", lines[..crash_after].join("\n"))).unwrap();
        let resumed = runner::resume_campaign(
            || FlakyTarget::new(200),
            None::<fn() -> Box<dyn envsim::Environment>>,
            &c,
            &ProgressMonitor::new(6),
            2,
            &partial,
        )
        .unwrap_or_else(|e| panic!("resume after {crash_after} lines: {e}"));
        assert_eq!(resumed, full, "crash after {crash_after} journal lines");
        // The journal is whole again after the resume.
        let state = ExperimentJournal::load(&partial, "mock").unwrap();
        assert_eq!(state.completed.len(), 6);
        std::fs::remove_file(&partial).unwrap();
    }

    // A crash mid-append (torn final line) resumes identically too.
    let torn = temp_path("crash-torn.gjl");
    std::fs::write(&torn, &text[..text.len() - 9]).unwrap();
    let resumed = runner::resume_campaign(
        || FlakyTarget::new(200),
        None::<fn() -> Box<dyn envsim::Environment>>,
        &c,
        &ProgressMonitor::new(6),
        2,
        &torn,
    )
    .unwrap();
    assert_eq!(resumed, full, "torn journal tail");
    std::fs::remove_file(&torn).unwrap();
}

#[test]
fn resume_on_a_missing_journal_runs_the_full_campaign() {
    let journal = temp_path("fresh.gjl");
    let _ = std::fs::remove_file(&journal);
    let c = campaign_n(3, ExperimentPolicy::default());
    let mut target = FlakyTarget::new(200);
    let serial = run_serial(&mut target, &c, &ProgressMonitor::new(3)).unwrap();
    let resumed = runner::resume_campaign(
        || FlakyTarget::new(200),
        None::<fn() -> Box<dyn envsim::Environment>>,
        &c,
        &ProgressMonitor::new(3),
        2,
        &journal,
    )
    .unwrap();
    assert_eq!(resumed, serial);
    assert!(journal.exists(), "resume created the journal");
    std::fs::remove_file(&journal).unwrap();
}
