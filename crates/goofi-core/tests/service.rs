//! End-to-end tests of the campaign service: sharded jobs over real
//! worker OS processes (the `goofi-mock-worker` binary wrapping
//! [`SimTarget`]), chaos-killed workers, daemon-death resume, and
//! poison-shard quarantine.
//!
//! Every test's oracle is the same: the merged database must be
//! *essence-equal* to a serial in-process run of the same campaign —
//! same records, same faults, same terminations, same end states.

use goofi_core::algorithms;
use goofi_core::campaign::{Campaign, OutputRegion, Termination, WorkloadImage};
use goofi_core::dbio;
use goofi_core::fault::{FaultLocation, FaultSpec};
use goofi_core::framework::SimTarget;
use goofi_core::logging::{ExperimentRecord, TerminationCause, Validity};
use goofi_core::monitor::ProgressMonitor;
use goofi_core::service::{ChaosConfig, JobState, Scheduler, ServiceConfig, WorkerCommand};
use goofi_core::trigger::Trigger;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("goofi-service-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sim_campaign(name: &str, faults: usize) -> Campaign {
    Campaign::builder(name)
        .workload(WorkloadImage {
            name: "sim-wl".into(),
            words: vec![60],
            code_words: 1,
            entry: 0,
        })
        .observe_chains(["internal"])
        .output(OutputRegion::Ports)
        .termination(Termination {
            max_instructions: 1_000,
            max_iterations: None,
        })
        .faults(
            (0..faults)
                .map(|i| {
                    FaultSpec::single(
                        FaultLocation::ScanCell {
                            chain: "internal".into(),
                            cell: "A".into(),
                            bit: i % 8,
                        },
                        Trigger::AfterInstructions(5 + i as u64),
                    )
                })
                .collect::<Vec<_>>(),
        )
        .build()
        .unwrap()
}

/// Stores `campaign` in a fresh database file and returns its path.
fn make_db(dir: &Path, campaign: &Campaign) -> PathBuf {
    let path = dir.join("campaigns.gdb");
    let mut db = goofidb::Database::new();
    dbio::init_schema(&mut db).unwrap();
    dbio::store_campaign(&mut db, campaign).unwrap();
    db.save_to_path(&path).unwrap();
    path
}

/// The serial in-process ground truth over the same simulated target.
fn serial_records(campaign: &Campaign) -> Vec<ExperimentRecord> {
    let mut target = SimTarget::new();
    let monitor = ProgressMonitor::new(campaign.experiment_count());
    algorithms::run_campaign(
        &mut target,
        campaign,
        &monitor,
        &mut envsim::NullEnvironment,
    )
    .unwrap()
    .records
}

/// The part of a record sharding must preserve.
fn essence(r: &ExperimentRecord) -> (Option<&FaultSpec>, &TerminationCause, String, Validity) {
    (
        r.fault.as_ref(),
        &r.termination,
        r.state.encode(),
        r.validity,
    )
}

fn mock_worker_cmd() -> WorkerCommand {
    WorkerCommand {
        program: PathBuf::from(env!("CARGO_BIN_EXE_goofi-mock-worker")),
        args: Vec::new(),
    }
}

fn config(db: &Path, workers: usize) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(db, mock_worker_cmd());
    cfg.default_workers = workers;
    cfg.lease = Duration::from_secs(5);
    cfg
}

/// Submits the campaign, waits for the job, and asserts it completed.
fn run_job(scheduler: &Scheduler, campaign: &str, workers: usize) -> String {
    let job = scheduler.submit(campaign, workers).unwrap();
    let progress = scheduler.watch(&job).unwrap().wait();
    assert_eq!(
        progress.state,
        JobState::Done,
        "job should complete: {}",
        progress.detail
    );
    job
}

/// Asserts the database's experiment records for `campaign` are
/// essence-equal to `want` (same names, same outcomes).
fn assert_essence_equal(db_path: &Path, campaign: &str, want: &[ExperimentRecord]) {
    let text = std::fs::read_to_string(db_path).unwrap();
    let db = goofidb::Database::load_from_string(&text).unwrap();
    let got = dbio::load_experiments(&db, campaign).unwrap();
    let by_name: BTreeMap<&str, &ExperimentRecord> =
        got.iter().map(|r| (r.name.as_str(), r)).collect();
    assert_eq!(
        got.len(),
        by_name.len(),
        "merged database must not hold duplicate experiments"
    );
    for record in want {
        let merged = by_name
            .get(record.name.as_str())
            .unwrap_or_else(|| panic!("experiment `{}` missing after merge", record.name));
        assert_eq!(
            essence(merged),
            essence(record),
            "experiment `{}` diverged from the serial run",
            record.name
        );
    }
}

#[test]
fn sharded_job_merges_to_serial_essence() {
    let dir = temp_dir("happy");
    let campaign = sim_campaign("svc-happy", 12);
    let db = make_db(&dir, &campaign);
    let want = serial_records(&campaign);

    let scheduler = Scheduler::new(config(&db, 3)).unwrap();
    let job = run_job(&scheduler, "svc-happy", 3);
    let progress = scheduler.watch(&job).unwrap().current();
    assert_eq!(progress.total, 12);
    assert_eq!(progress.completed, 12);
    assert_eq!(progress.shards_done, 3);
    assert_eq!(progress.shards_poisoned, 0);
    assert!(dir
        .join("campaigns.gdb.spool")
        .join(&job)
        .join("done")
        .exists());

    assert_essence_equal(&db, "svc-happy", &want);
    scheduler.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_killed_workers_are_reassigned_and_the_job_completes() {
    let dir = temp_dir("chaos");
    let campaign = sim_campaign("svc-chaos", 10);
    let db = make_db(&dir, &campaign);
    let want = serial_records(&campaign);

    // Every shard's first lease self-kills within its first 2 completions;
    // the reassigned attempt 2 leases are allowed to finish.
    let mut cfg = config(&db, 2);
    cfg.chaos = Some(ChaosConfig::decode("kill-after=2,seed=3").unwrap());
    cfg.backoff = goofi_core::policy::Backoff::exponential(5, 50);
    let scheduler = Scheduler::new(cfg).unwrap();
    let job = run_job(&scheduler, "svc-chaos", 2);

    // Both shards were struck (attempt 1 always dies), so both journals
    // were written across at least two leases — yet the merged database is
    // still essence-equal to the serial run, with no duplicates.
    assert_essence_equal(&db, "svc-chaos", &want);
    let progress = scheduler.watch(&job).unwrap().current();
    assert_eq!(progress.completed, 10);
    assert_eq!(progress.shards_poisoned, 0);
    scheduler.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_daemon_resumes_in_flight_jobs_from_the_spool() {
    let dir = temp_dir("resume");
    let campaign = sim_campaign("svc-resume", 8);
    let db = make_db(&dir, &campaign);
    let want = serial_records(&campaign);

    // Phase 1: a scheduler whose workers stall (freeze mid-shard) on every
    // attempt, so the job can never finish — it survives on lease-expiry
    // kills and reassignment until we "kill the daemon".
    let mut cfg = config(&db, 2);
    cfg.chaos = Some(ChaosConfig::decode("kill-after=1,seed=5,kills=999,mode=stall").unwrap());
    cfg.lease = Duration::from_millis(400);
    cfg.poison_after = 1_000; // never poison in this phase
    cfg.backoff = goofi_core::policy::Backoff::exponential(5, 20);
    let scheduler = Scheduler::new(cfg).unwrap();
    let job = scheduler.submit("svc-resume", 2).unwrap();

    // Wait until the job has made *some* journaled progress.
    let watcher = scheduler.watch(&job).unwrap();
    let mut progress = watcher.current();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while progress.completed < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "no progress under stall chaos: {progress:?}"
        );
        progress = watcher.wait_changed(&progress, Duration::from_millis(250));
    }

    // "Kill" the daemon: abort mid-job. No done marker is written; the
    // manifest and partial shard journals stay in the spool.
    scheduler.shutdown();
    let spool = dir.join("campaigns.gdb.spool");
    assert!(spool.join(&job).join("manifest").exists());
    assert!(!spool.join(&job).join("done").exists());

    // Phase 2: a fresh scheduler (chaos off) recovers the spool and the
    // job runs to completion, replaying the journals instead of redoing
    // finished work.
    let scheduler2 = Scheduler::new(config(&db, 2)).unwrap();
    let recovered = scheduler2.recover().unwrap();
    assert_eq!(recovered.resumed, vec![job.clone()]);
    assert!(recovered.quarantined.is_empty());
    let done = scheduler2.watch(&job).unwrap().wait();
    assert_eq!(done.state, JobState::Done, "{}", done.detail);
    assert_eq!(done.completed, 8);

    assert_essence_equal(&db, "svc-resume", &want);
    scheduler2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poison_shard_is_quarantined_with_parent_linked_rerun_stubs() {
    let dir = temp_dir("poison");
    let campaign = sim_campaign("svc-poison", 6);
    let db = make_db(&dir, &campaign);

    // Workers that cannot even parse their command line: every lease of
    // every shard fails instantly, so both shards go poison.
    let mut cfg = config(&db, 2);
    cfg.worker_cmd.args = vec!["--nonsense".into(), "x".into()];
    cfg.poison_after = 2;
    cfg.backoff = goofi_core::policy::Backoff::exponential(5, 20);
    let scheduler = Scheduler::new(cfg).unwrap();
    let job = scheduler.submit("svc-poison", 2).unwrap();
    let progress = scheduler.watch(&job).unwrap().wait();

    // The job completes *around* the poison shards instead of wedging.
    assert_eq!(progress.state, JobState::Done, "{}", progress.detail);
    assert_eq!(progress.shards_poisoned, 2);
    assert_eq!(progress.completed, 0);
    assert_eq!(progress.quarantined, 12, "two stubs per lost experiment");

    // Every lost experiment is documented in the merged database: an
    // invalid original plus an invalid `parentExperiment`-linked rerun
    // stub, the paper's §2.3 re-run hook.
    let text = std::fs::read_to_string(&db).unwrap();
    let parsed = goofidb::Database::load_from_string(&text).unwrap();
    let records = dbio::load_experiments(&parsed, "svc-poison").unwrap();
    for i in 0..6 {
        let name = campaign.experiment_name(i);
        let original = records.iter().find(|r| r.name == name).unwrap();
        assert_eq!(original.validity, Validity::Invalid);
        assert_eq!(original.termination, TerminationCause::TargetHang);
        assert_eq!(original.parent, None);
        let rerun = records
            .iter()
            .find(|r| r.name == format!("{name}/rerun1"))
            .unwrap();
        assert_eq!(rerun.validity, Validity::Invalid);
        assert_eq!(rerun.parent.as_deref(), Some(name.as_str()));
    }
    scheduler.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn submit_rejects_unknown_campaigns_without_spooling_anything() {
    let dir = temp_dir("reject");
    let campaign = sim_campaign("svc-known", 2);
    let db = make_db(&dir, &campaign);
    let scheduler = Scheduler::new(config(&db, 1)).unwrap();
    assert!(scheduler.submit("no-such-campaign", 1).is_err());
    let spool: Vec<_> = std::fs::read_dir(dir.join("campaigns.gdb.spool"))
        .unwrap()
        .collect();
    assert!(
        spool.is_empty(),
        "rejected submission must not leave a job dir"
    );
    scheduler.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_and_client_speak_the_wire_protocol_end_to_end() {
    use goofi_core::service::{serve, Client, RealNet, Request, Response, Transport};
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    let dir = temp_dir("wire");
    let campaign = sim_campaign("svc-wire", 6);
    let db = make_db(&dir, &campaign);
    let want = serial_records(&campaign);

    let listener = RealNet.listen("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let scheduler = Arc::new(Scheduler::new(config(&db, 2)).unwrap());
    let stop = Arc::new(AtomicBool::new(false));
    let daemon = {
        let scheduler = Arc::clone(&scheduler);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || serve(listener, scheduler, stop))
    };

    // Submit with watch: accepted, then progress lines to a terminal one.
    let mut client = Client::connect(&addr).unwrap();
    client
        .send(&Request::Submit {
            id: "req-wire-1".into(),
            campaign: "svc-wire".into(),
            workers: 2,
            watch: true,
            target: String::new(),
        })
        .unwrap();
    let job = match client.recv().unwrap() {
        Some(Response::Accepted { job }) => job,
        other => panic!("expected accepted, got {other:?}"),
    };
    let mut saw_done = false;
    while let Some(response) = client.recv().unwrap() {
        match response {
            Response::Progress {
                state,
                completed,
                total,
                ..
            } => {
                assert!(completed <= total);
                if state == "done" {
                    saw_done = true;
                    break;
                }
                // The first snapshot can race the runner thread's start.
                assert!(
                    state == "running" || state == "queued",
                    "unexpected mid-watch state `{state}`"
                );
            }
            other => panic!("unexpected mid-watch response: {other:?}"),
        }
    }
    assert!(
        saw_done,
        "watch stream must end with a terminal progress line"
    );
    assert_essence_equal(&db, "svc-wire", &want);

    // Status lists the finished job.
    let mut status = Client::connect(&addr).unwrap();
    status.send(&Request::Status).unwrap();
    let mut jobs = Vec::new();
    loop {
        match status.recv().unwrap() {
            Some(Response::Listing { jobs }) => assert_eq!(jobs, 1),
            Some(Response::Job { job, state, .. }) => jobs.push((job, state)),
            Some(Response::End) | None => break,
            other => panic!("unexpected status response: {other:?}"),
        }
    }
    assert_eq!(jobs, vec![(job, "done".to_string())]);

    // A malformed frame gets a typed error, not a dead daemon.
    let mut bad = Client::connect(&addr).unwrap();
    bad.send_raw("this is not a frame\n").unwrap();
    match bad.recv().unwrap() {
        Some(Response::Error { detail }) => assert!(
            detail.contains("bad frame"),
            "unexpected error detail: {detail}"
        ),
        other => panic!("expected error response, got {other:?}"),
    }

    // Shutdown stops the accept loop.
    let mut shut = Client::connect(&addr).unwrap();
    shut.send(&Request::Shutdown).unwrap();
    let _ = shut.recv();
    daemon.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
